package repro

// The streaming leakage monitor: instead of collecting a campaign's full
// trace budget and scoring it afterwards (Evaluate), the monitor consumes
// profile windows as the pipeline emits them, maintains sequential
// hypothesis tests per (event, class-pair), and stops the campaign the
// moment a test crosses its alpha-spending boundary — reporting how many
// monitored classifications the detection cost. A campaign that runs to
// exhaustion ends in the ordinary batch report, byte-identical to
// Evaluate on the same configuration.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/fabric"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/mem"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// MonitorConfig controls a streaming monitor campaign. The zero value
// monitors the paper's four categories with the default counters at
// α = 0.05 under a 300-trace-per-class budget on one worker.
type MonitorConfig struct {
	Classes []int
	Events  []Event
	// Budget is the per-class trace budget: the campaign never consumes
	// more than this many monitored classifications per category, and a
	// run to exhaustion equals a batch Evaluate with RunsPerClass=Budget.
	Budget int
	// Alpha is the overall significance level. The sequential boundary
	// spends it across looks so the per-hypothesis false-positive rate of
	// early stopping stays below it; on exhaustion the batch report
	// applies it in full.
	Alpha float64
	// Workers fans shard collection out (1 = the sequential reference;
	// the consumed window stream is identical at any worker count).
	Workers int
	// Seed is the pipeline root seed; 0 uses the scenario seed.
	Seed int64
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// Batch groups a shard's runs into batched replay sessions; windows —
	// and therefore monitor looks — arrive at this cadence. Default 1.
	Batch int
	// MannWhitney monitors with the sequential rank-sum test (and scores
	// the exhaustion report with the batch Mann-Whitney) instead of
	// Welch's t-test.
	MannWhitney bool
	// MinSamples is the per-side sample floor before a hypothesis takes
	// its first look (default 8).
	MinSamples int
	// NoStop disables early stopping: the campaign always runs to
	// exhaustion and only the batch report decides.
	NoStop bool
	// Tenants ≥ 2 monitors the co-residency scenario: every shard engine
	// hosts a second, co-located classifier of the same network that the
	// core interleaves with the victim quantum by quantum, so the
	// victim's measured counters include the co-tenant's contention.
	Tenants int
	// Quantum is the instruction quantum of the tenant interleaving
	// (default 5000). Ignored when Tenants < 2.
	Quantum uint64
	// Processes streams shard completions from that many shardworker OS
	// processes through the audit fabric instead of collecting
	// in-process; the window cadence and therefore every monitor
	// decision is identical either way.
	Processes int
	// Fabric configures the fabric when Processes ≥ 1.
	Fabric FabricConfig
	// Obs, when non-nil, records campaign telemetry (windows emitted,
	// shard spans, fabric traffic). Observational output only — the
	// window stream and every monitor decision are identical with or
	// without it.
	Obs *obs.Recorder
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if len(c.Classes) == 0 {
		c.Classes = PaperClasses()
	}
	if c.Budget <= 0 {
		c.Budget = 300
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Quantum == 0 {
		c.Quantum = 5000
	}
	return c
}

// Detection records the first sequential boundary crossing of a
// campaign.
type Detection struct {
	// Event and EventName identify the leaking counter.
	Event     Event  `json:"event"`
	EventName string `json:"event_name"`
	// ClassA and ClassB are the distinguished categories.
	ClassA int `json:"class_a"`
	ClassB int `json:"class_b"`
	// P is the p-value at the crossing look and Stat the test statistic
	// (Welch t, or the rank-sum z under MannWhitney).
	P    float64 `json:"p"`
	Stat float64 `json:"stat"`
	// PairTraces is the crossing hypothesis's sample count (both sides);
	// Traces is the campaign's total consumption at the crossing — the
	// paper-facing "how many monitored inferences until the defense is
	// known to leak".
	PairTraces int `json:"pair_traces"`
	Traces     int `json:"traces"`
}

// MonitorReport is the outcome of a streaming monitor campaign.
type MonitorReport struct {
	Name string `json:"name"`
	// Stopped reports early termination; Detection is non-nil iff set.
	Stopped   bool       `json:"stopped"`
	Detection *Detection `json:"detection,omitempty"`
	// TracesSeen is the total number of monitored classifications
	// consumed (= Budget × classes on exhaustion).
	TracesSeen int `json:"traces_seen"`
	// Report is the batch evaluation of the full budget, present only
	// when the campaign ran to exhaustion; it is byte-identical to
	// Evaluate with RunsPerClass=Budget on the same scenario and seed.
	Report *Report `json:"report,omitempty"`
}

// seqPair is one monitored hypothesis: a sequential two-sample test plus
// its alpha-spending schedule.
type seqPair struct {
	classA, classB int
	mw             *stats.SeqMannWhitney
	welch          *stats.SeqWelch
	spender        stats.AlphaSpender
}

func (sp *seqPair) add(class int, v float64) {
	switch {
	case sp.mw != nil && class == sp.classA:
		sp.mw.AddA(v)
	case sp.mw != nil:
		sp.mw.AddB(v)
	case class == sp.classA:
		sp.welch.AddA(v)
	default:
		sp.welch.AddB(v)
	}
}

func (sp *seqPair) counts() (na, nb int) {
	if sp.mw != nil {
		return sp.mw.Na(), sp.mw.Nb()
	}
	return sp.welch.Na(), sp.welch.Nb()
}

// test runs the current look and returns (statistic, p).
func (sp *seqPair) test() (float64, float64, error) {
	if sp.mw != nil {
		r, err := sp.mw.Test()
		return r.Z, r.P, err
	}
	r, err := sp.welch.Test()
	return r.T, r.P, err
}

// monitorRun is the stream consumer: it accumulates the raw samples (for
// the exhaustion report) and drives one seqPair per (event, class-pair).
// Consumption happens on one goroutine in the pipeline's deterministic
// stream order, so every decision — including the detection trace count —
// is a pure function of the campaign configuration.
type monitorRun struct {
	events     []Event
	classes    []int // sorted
	budget     int
	minSamples int
	noStop     bool

	// samples[event][class] accumulates observations in run order —
	// exactly the series core.MergeShards produces.
	samples map[Event]map[int][]float64
	// pairs[event] lists hypotheses in deterministic (A, B) order.
	pairs map[Event][]*seqPair

	total     int
	detection *Detection
}

func newMonitorRun(events []Event, classes []int, cfg MonitorConfig, alpha float64) *monitorRun {
	sorted := append([]int(nil), classes...)
	sort.Ints(sorted)
	m := &monitorRun{
		events:     events,
		classes:    sorted,
		budget:     cfg.Budget,
		minSamples: cfg.MinSamples,
		noStop:     cfg.NoStop,
		samples:    map[Event]map[int][]float64{},
		pairs:      map[Event][]*seqPair{},
	}
	boundary := stats.SpendingBoundary{Alpha: alpha}
	for _, e := range events {
		m.samples[e] = map[int][]float64{}
		for _, cls := range sorted {
			m.samples[e][cls] = make([]float64, 0, cfg.Budget)
		}
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				sp := &seqPair{classA: sorted[i], classB: sorted[j], spender: stats.AlphaSpender{Boundary: boundary}}
				if cfg.MannWhitney {
					sp.mw = &stats.SeqMannWhitney{}
				} else {
					sp.welch = &stats.SeqWelch{}
				}
				m.pairs[e] = append(m.pairs[e], sp)
			}
		}
	}
	return m
}

// consume folds one profile window into the monitor state and takes the
// scheduled looks. It returns pipeline.ErrStop on the first boundary
// crossing (unless NoStop).
func (m *monitorRun) consume(w core.Window) error {
	cls := w.Class
	for _, p := range w.Profiles {
		m.total++
		for _, e := range m.events {
			v := p.Get(e)
			m.samples[e][cls] = append(m.samples[e][cls], v)
			for _, sp := range m.pairs[e] {
				if sp.classA == cls || sp.classB == cls {
					sp.add(cls, v)
				}
			}
		}
	}
	if m.noStop {
		return nil
	}
	for _, e := range m.events {
		for _, sp := range m.pairs[e] {
			if sp.classA != cls && sp.classB != cls {
				continue
			}
			na, nb := sp.counts()
			if na < m.minSamples || nb < m.minSamples {
				continue
			}
			stat, p, err := sp.test()
			if err != nil {
				return err
			}
			t := float64(na+nb) / float64(2*m.budget)
			if sp.spender.Cross(p, t) {
				m.detection = &Detection{
					Event:      e,
					EventName:  e.String(),
					ClassA:     sp.classA,
					ClassB:     sp.classB,
					P:          p,
					Stat:       stat,
					PairTraces: na + nb,
					Traces:     m.total,
				}
				return pipeline.ErrStop
			}
		}
	}
	return nil
}

// distributions assembles the accumulated samples into the batch
// Distributions the exhaustion report is scored from.
func (m *monitorRun) distributions() (*core.Distributions, error) {
	d := &core.Distributions{
		Events:  append([]march.Event(nil), m.events...),
		Classes: append([]int(nil), m.classes...),
		Samples: map[march.Event]map[int][]float64{},
	}
	for _, e := range m.events {
		d.Samples[e] = map[int][]float64{}
		for _, cls := range m.classes {
			s := m.samples[e][cls]
			if len(s) != m.budget {
				return nil, fmt.Errorf("repro: monitor exhausted with %d/%d traces for event %v class %d", len(s), m.budget, e, cls)
			}
			d.Samples[e][cls] = s
		}
	}
	return d, nil
}

// Monitor runs a streaming leakage-monitor campaign against the
// scenario.
func (s *Scenario) Monitor(cfg MonitorConfig) (*MonitorReport, error) {
	return s.MonitorCtx(context.Background(), cfg)
}

// MonitorCtx is Monitor with cancellation. Collection streams through
// the sharded pipeline (cfg.Workers in-process workers, or
// cfg.Processes shardworker OS processes via the audit fabric); the
// consumed window stream — and with it every look, detection and trace
// count — is identical across worker and process counts. A cancelled
// campaign surfaces a *pipeline.Cancelled wrapping the context error,
// distinguishable from an empty-budget misconfiguration at the CLI
// layer.
func (s *Scenario) MonitorCtx(ctx context.Context, cfg MonitorConfig) (*MonitorReport, error) {
	cfg = cfg.withDefaults()
	method := core.MethodWelch
	if cfg.MannWhitney {
		method = core.MethodMannWhitney
	}
	ev, err := core.NewEvaluator(core.Config{
		Events:       cfg.Events,
		Alpha:        cfg.Alpha,
		RunsPerClass: cfg.Budget,
		Batch:        cfg.Batch,
		Method:       method,
		Obs:          cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	pools, err := s.ClassPools(cfg.Classes...)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	p, err := pipeline.New(ev, pipeline.Config{
		Workers:   cfg.Workers,
		RootSeed:  seed,
		ShardRuns: cfg.ShardRuns,
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s", s.Config.Dataset, s.Config.Defense)
	if cfg.Tenants >= 2 {
		name += "+cotenant"
	}
	run := newMonitorRun(ev.Config().Events, cfg.Classes, cfg, ev.Config().Alpha)

	var stopped bool
	if cfg.Processes > 0 {
		stopped, err = s.monitorFabric(ctx, p, pools, cfg, seed, ev.Config(), run.consume)
	} else {
		factory := s.monitorFactory(s.Config.Defense, cfg.Tenants, cfg.Quantum)
		stopped, err = p.Stream(ctx, func(_ int, shardSeed int64) (core.Target, error) {
			return factory(shardSeed)
		}, pools, run.consume)
	}
	if err != nil {
		return nil, err
	}
	rep := &MonitorReport{Name: name, Stopped: stopped, Detection: run.detection, TracesSeen: run.total}
	if !stopped {
		d, err := run.distributions()
		if err != nil {
			return nil, err
		}
		tests, err := p.Test(ctx, d)
		if err != nil {
			return nil, err
		}
		rep.Report = ev.BuildReport(name, d, tests)
	}
	return rep, nil
}

// tenantTarget is the multi-tenant victim: classifications run on a
// shared simulated core whose quantum scheduler interleaves a co-located
// classifier, and the ring is drained after every inference so each
// monitored interval covers a deterministic co-tenant slice.
type tenantTarget struct {
	victim core.Target
	ring   *march.Ring
	// coErr is written by the co-tenant while it holds the core token and
	// read after Drain; the token handoff orders the accesses.
	coErr error
}

// Classify deliberately does NOT gain a batch path: tenantTarget must
// not satisfy core.BatchTarget, so the evaluator measures tenant shards
// run by run and the ring drains inside every measured interval.
func (t *tenantTarget) Classify(img *tensor.Tensor) (int, error) {
	pred, err := t.victim.Classify(img)
	t.ring.Drain()
	if err == nil && t.coErr != nil {
		err = fmt.Errorf("repro: co-tenant: %w", t.coErr)
	}
	return pred, err
}

// Engine exposes the shared core (core.Target).
func (t *tenantTarget) Engine() *march.Engine { return t.victim.Engine() }

// monitorFactory returns the monitor's target factory: FactoryFor's
// deployment, co-located with a second classifier of the same network
// when tenants ≥ 2. The co-tenant's allocations are bumped past the
// victim's activation scratch (which is not arena-registered — see
// instrument.Classifier.ScratchTop) so the two footprints contend in the
// cache hierarchy without silently aliasing.
func (s *Scenario) monitorFactory(level DefenseLevel, tenants int, quantum uint64) pipeline.TargetFactory {
	base := s.FactoryFor(level)
	if tenants < 2 {
		return base
	}
	cfg := s.Config
	net := s.Net
	coInput := s.Test.Samples[0].Image
	return func(seed int64) (core.Target, error) {
		victim, err := base(seed)
		if err != nil {
			return nil, err
		}
		eng := victim.Engine()
		if st, ok := victim.(interface{ ScratchTop() mem.Addr }); ok {
			if top := st.ScratchTop(); top > eng.Arena().Mark().Base {
				if _, err := eng.Arena().Alloc("tenant.gap", uint64(top-eng.Arena().Mark().Base)); err != nil {
					return nil, err
				}
			}
		}
		rt := instrument.DefaultRuntime()
		if cfg.DisableRuntime {
			rt = instrument.NoRuntime()
		}
		co, err := defense.New(net, eng, defense.Config{
			Level:   DefenseBaseline,
			Seed:    seed + 2,
			Runtime: rt,
		})
		if err != nil {
			return nil, err
		}
		tt := &tenantTarget{victim: victim}
		tt.ring = march.NewRing(eng, quantum, func() {
			if _, err := co.Classify(coInput); err != nil && tt.coErr == nil {
				tt.coErr = err
			}
		})
		return tt, nil
	}
}

// monitorFabric streams one monitor campaign's shard completions from
// worker processes. Workers execute whole shards (reusing the
// collection journal format, so an interrupted campaign resumes);
// delivery re-slices each shard payload into Batch-sized windows, so
// the consumer sees the exact window cadence of in-process streaming
// and every monitor decision is process-count-invariant.
func (s *Scenario) monitorFabric(ctx context.Context, p *pipeline.Pipeline, pools map[int][]*tensor.Tensor, cfg MonitorConfig, seed int64, evCfg core.Config, consume func(core.Window) error) (bool, error) {
	bin, err := cfg.Fabric.workerBin()
	if err != nil {
		return false, err
	}
	batch := evCfg.Batch
	spec := WorkerSpec{
		Proto:        specProto,
		Stage:        StageMonitor,
		Scenario:     s.spec(),
		Level:        s.Config.Defense.String(),
		Events:       eventNames(evCfg.Events),
		Classes:      cfg.Classes,
		RunsPerClass: cfg.Budget,
		RootSeed:     seed,
		ShardRuns:    cfg.ShardRuns,
		Batch:        cfg.Batch,
		Tenants:      cfg.Tenants,
		Quantum:      cfg.Quantum,
	}
	specBytes, err := json.Marshal(spec)
	if err != nil {
		return false, err
	}
	plans, err := p.WirePlans(pools)
	if err != nil {
		return false, err
	}
	rec := cfg.Obs
	rec.Add(obs.CShardsPlanned, int64(len(plans)))
	rec.SetPhase("stream")
	stage := rec.Span("fabric", "stream")
	defer stage.End()
	// Reorder the plan slice into the pipeline's stream order so fabric
	// delivery interleaves classes exactly like in-process streaming.
	sort.SliceStable(plans, func(a, b int) bool {
		if plans[a].Start != plans[b].Start {
			return plans[a].Start < plans[b].Start
		}
		return plans[a].Class < plans[b].Class
	})
	var journal *fabric.Journal
	if cfg.Fabric.Journal != "" {
		digest := fabric.CampaignDigest(specBytes)
		journal, err = fabric.OpenJournal(cfg.Fabric.journalPath(spec, digest), digest)
		if err != nil {
			return false, err
		}
		defer journal.Close()
	}
	pool, err := fabric.StartPool(ctx, fabric.PoolConfig{
		Bin:   bin,
		Env:   cfg.Fabric.Env,
		Spec:  specBytes,
		Procs: cfg.Processes,
		TCP:   cfg.Fabric.TCP,
		Obs:   rec,
	})
	if err != nil {
		return false, err
	}
	defer pool.Close()
	coord := &fabric.Coordinator{Dispatcher: pool, Journal: journal, Obs: rec}
	err = coord.RunStream(ctx, plans, func(i int, payload []byte) error {
		profs, err := pipeline.DecodeProfiles(payload)
		if err != nil {
			return err
		}
		pl := plans[i]
		if len(profs) != pl.Count {
			return fmt.Errorf("repro: monitor shard %d returned %d profiles, plan says %d", pl.Index, len(profs), pl.Count)
		}
		for off := 0; off < len(profs); off += batch {
			n := batch
			if rem := len(profs) - off; rem < n {
				n = rem
			}
			if err := consume(core.Window{Shard: pl.Index, Class: pl.Class, Start: pl.Start + off, Profiles: profs[off : off+n]}); err != nil {
				return err
			}
		}
		return nil
	})
	switch {
	case errors.Is(err, pipeline.ErrStop):
		return true, nil
	case err == nil:
		return false, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return false, &pipeline.Cancelled{Stage: "fabric stream", Err: err}
	default:
		return false, err
	}
}
