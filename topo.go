package repro

// The topology-recovery stage: the full reverse engineering the paper's
// title asks about. Where the archid stage recovers *which zoo member* is
// deployed, this stage reconstructs an architecture the attacker has
// never profiled — layer count, per-layer kinds and hyper-parameters —
// from the per-layer side-channel evidence stream, CSI-NN style. The
// attacker's segmenter, kind classifier and hyper-parameter estimators
// are fitted on a training zoo of random architectures that is disjoint
// from the held-out victim zoo by construction, and every recovered spec
// is rebuilt and validated against measured victim profiles collected
// through the concurrent sharded pipeline (see internal/topo).

import (
	"context"
	"fmt"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/topo"
)

// TopoResult is the topology-recovery stage's output: per-victim
// reconstruction scorecards plus campaign aggregates.
type TopoResult = topo.Result

// TopoConfig controls a topology-recovery campaign. The zero value
// reconstructs 6 held-out victims with models trained on an 8-member zoo,
// observing 8 pipeline runs per victim on instructions + L1-dcache-loads.
type TopoConfig struct {
	// Events are the monitored pipeline events; default instructions and
	// L1-dcache-loads (the footprint-verification channels).
	Events []Event
	// TrainZoo / Holdout are the training and held-out zoo sizes;
	// defaults 8 / 6. The zoos are always disjoint.
	TrainZoo, Holdout int
	// Runs is the measured pipeline observations per victim; default 8.
	Runs int
	// Quantum is the trace-sampling quantum in instructions; default
	// topo.DefaultQuantum.
	Quantum uint64
	// Workers is the pipeline worker count; 0 → GOMAXPROCS.
	Workers int
	// Seed is the campaign root seed; 0 uses the scenario seed. Zoo
	// generation, weights and observations derive from it in domains
	// disjoint from every other stage.
	Seed int64
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// MaxInputs caps the shared input pool taken from the scenario's test
	// split; 0 uses every test image.
	MaxInputs int
	// Processes distributes shard execution over that many shardworker OS
	// processes through the distributed audit fabric; 0 keeps execution
	// in-process. Results are byte-identical either way.
	Processes int
	// Fabric configures the fabric when Processes ≥ 1.
	Fabric FabricConfig
	// Obs, when non-nil, records campaign telemetry. Observational
	// output only — results are byte-identical with or without it.
	Obs *obs.Recorder
}

// Topo runs the topology-recovery stage against held-out random victims
// at the scenario's configured defense level.
func (s *Scenario) Topo(ctx context.Context, cfg TopoConfig) (*TopoResult, error) {
	return s.TopoGrouped(ctx, s.Config.Defense, cfg)
}

// TopoGrouped runs the topology-recovery stage at an explicit defense
// level over an arbitrarily wide event list. Event sets wider than the
// HPC register file are split into register-sized groups, each collected
// as its own pipeline session against the *same* deterministic victims,
// and the per-run profiles are joined per (victim, run). Results are
// bit-identical at any worker count.
func (s *Scenario) TopoGrouped(ctx context.Context, level DefenseLevel, cfg TopoConfig) (*TopoResult, error) {
	inputs := s.Test.Inputs()
	if cfg.MaxInputs > 0 && cfg.MaxInputs < len(inputs) {
		inputs = inputs[:cfg.MaxInputs]
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	events := cfg.Events
	if len(events) == 0 {
		events = []Event{EvInstructions, march.EvL1DLoads}
	}
	camp, err := topo.NewCampaign(topo.Config{
		Name:           fmt.Sprintf("%s-topo/%s", s.Config.Dataset, level),
		InH:            s.Arch.InH,
		InW:            s.Arch.InW,
		InC:            s.Arch.InC,
		Classes:        s.Arch.Classes,
		Inputs:         inputs,
		Level:          level,
		TrainSize:      cfg.TrainZoo,
		HoldoutSize:    cfg.Holdout,
		Runs:           cfg.Runs,
		Quantum:        cfg.Quantum,
		Workers:        cfg.Workers,
		Seed:           seed,
		ShardRuns:      cfg.ShardRuns,
		DisableRuntime: s.Config.DisableRuntime,
		DisableNoise:   s.Config.DisableNoise,
		Obs:            cfg.Obs,
	})
	if err != nil {
		return nil, err
	}

	// One collection session per register-sized event group against the
	// campaign's shared victims; profiles of the same (victim, run) are
	// joined across sessions into one feature vector.
	byVictim := map[int][]hpc.Profile{}
	for g := 0; g*hpc.DefaultCounters < len(events); g++ {
		lo := g * hpc.DefaultCounters
		hi := lo + hpc.DefaultCounters
		if hi > len(events) {
			hi = len(events)
		}
		var part map[int][]hpc.Profile
		if cfg.Processes > 0 {
			p, _, err := camp.SessionExecutor(events[lo:hi], g)
			if err != nil {
				return nil, err
			}
			spec := WorkerSpec{
				Stage:     StageTopo,
				Scenario:  s.spec(),
				Level:     level.String(),
				Events:    eventNames(events[lo:hi]),
				Session:   g,
				Seed:      seed,
				MaxInputs: cfg.MaxInputs,
				TrainZoo:  cfg.TrainZoo,
				Holdout:   cfg.Holdout,
				Runs:      cfg.Runs,
				Quantum:   cfg.Quantum,
				ShardRuns: cfg.ShardRuns,
			}
			part, err = collectFabric(ctx, p, camp.Pools(), spec, cfg.Processes, cfg.Fabric)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			part, err = camp.Collect(ctx, events[lo:hi], g)
			if err != nil {
				return nil, err
			}
		}
		joinProfiles(byVictim, part)
	}
	return camp.Score(events, byVictim)
}
