// Package repro is the public API of the reproduction of "How Secure are
// Deep Learning Algorithms from Side-Channel based Reverse Engineering?"
// (Alam & Mukhopadhyay, DAC 2019).
//
// It ties the substrates together into the paper's two case studies:
//
//   - a Scenario bundles a synthetic dataset, a CNN trained on it, and an
//     instrumented execution of that CNN on a simulated core;
//   - Evaluate runs the paper's Evaluator (HPC collection + pairwise Welch
//     t-tests) against the scenario and reports alarms;
//   - the experiment helpers regenerate every table and figure of the
//     paper's evaluation section (see bench_test.go and cmd/figures).
//
// Quickstart:
//
//	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.DatasetMNIST})
//	if err != nil { ... }
//	rep, err := s.Evaluate(repro.EvalConfig{})
//	if err != nil { ... }
//	if rep.Leaky() { fmt.Println("input privacy leak detected") }
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/archid"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Dataset selects one of the paper's two case studies.
type Dataset string

// The two datasets of the paper's evaluation.
const (
	DatasetMNIST Dataset = "mnist"
	DatasetCIFAR Dataset = "cifar"
)

// Re-exported types so downstream users need only this package for the
// common workflow.
type (
	// Report is the evaluator's output (alarms, tests, distributions).
	Report = core.Report
	// Event is a hardware performance counter event.
	Event = march.Event
	// DefenseLevel selects a hardening strategy for the classifier.
	DefenseLevel = defense.Level
)

// Events (Figure 2(b) order).
const (
	EvBranches        = march.EvBranches
	EvBranchMisses    = march.EvBranchMisses
	EvBusCycles       = march.EvBusCycles
	EvCacheMisses     = march.EvCacheMisses
	EvCacheReferences = march.EvCacheReferences
	EvCycles          = march.EvCycles
	EvInstructions    = march.EvInstructions
	EvRefCycles       = march.EvRefCycles
)

// AllPaperEvents returns the eight events of the paper's Figure 2(b).
func AllPaperEvents() []Event { return march.AllEvents() }

// Defense levels.
const (
	DefenseBaseline       = defense.Baseline
	DefenseDense          = defense.DenseExecution
	DefenseConstantTime   = defense.ConstantTime
	DefenseNoiseInjection = defense.NoiseInjection
	// DefensePaddedEnvelope is constant-time kernels plus envelope padding
	// to the default zoo's footprint envelope — the hardening that hides
	// the *model*, not just the input (see internal/defense.PaddedEnvelope).
	DefensePaddedEnvelope = defense.PaddedEnvelope
)

// AllDefenses returns every supported hardening level in severity order.
func AllDefenses() []DefenseLevel {
	return []DefenseLevel{DefenseBaseline, DefenseDense, DefenseConstantTime,
		DefenseNoiseInjection, DefensePaddedEnvelope}
}

// ParseDefense resolves a defense-level name as printed by
// DefenseLevel.String() — the single mapping the CLIs share.
func ParseDefense(s string) (DefenseLevel, error) {
	for _, l := range AllDefenses() {
		if s == l.String() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown defense %q (want baseline, dense-execution, constant-time, noise-injection or padded-envelope)", s)
}

// ParseClasses parses a comma-separated category-label list
// ("1,2,3,4") — the single -classes mapping the CLIs share.
func ParseClasses(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("repro: bad class list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// ScenarioConfig controls scenario construction. The zero value (plus a
// Dataset) reproduces the paper's setup.
type ScenarioConfig struct {
	Dataset Dataset
	// Seed drives dataset generation, weight init and noise; default 1.
	Seed int64
	// PerClassTrain / PerClassTest size the synthetic dataset; defaults
	// 120 / 60.
	PerClassTrain, PerClassTest int
	// Epochs of SGD training; default 2.
	Epochs int
	// LR is the SGD learning rate; defaults to 0.05 for MNIST and 0.01
	// for CIFAR (the larger 3-channel net diverges at 0.05).
	LR float64
	// Defense hardens the deployed classifier; default Baseline (leaky).
	Defense DefenseLevel
	// DisableRuntime removes the simulated framework overhead (pure
	// kernel measurements; used by ablations).
	DisableRuntime bool
	// DisableNoise removes measurement noise (deterministic counts).
	DisableNoise bool
	// TrainProgress, when non-nil, receives per-epoch training loss and
	// accuracy (used by cmd/train).
	TrainProgress func(epoch int, loss, acc float64)
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PerClassTrain <= 0 {
		c.PerClassTrain = 120
	}
	if c.PerClassTest <= 0 {
		c.PerClassTest = 60
	}
	if c.Epochs <= 0 {
		c.Epochs = 2
	}
	return c
}

// Scenario is one deployed case study: data, model, simulated core and the
// instrumented classifier running on it.
type Scenario struct {
	Config ScenarioConfig
	Arch   nn.Arch
	Train  *dataset.Set
	Test   *dataset.Set
	Net    *nn.Network
	Engine *march.Engine
	// Target is the classifier under evaluation (satisfies core.Target).
	Target core.Target
	// TestAccuracy of the trained model on the synthetic test split.
	TestAccuracy float64

	// Lazily-built padded-envelope deployment state: the hypothesis-set
	// envelope (default zoo + the scenario's own trained network) is
	// measured once and shared by the deployed target and every pipeline
	// shard that deploys at DefensePaddedEnvelope.
	envOnce sync.Once
	env     *defense.Envelope
	envIdx  int
	envErr  error
}

// deploymentEnvelope lazily measures the scenario's padded-envelope
// hypothesis set: the default zoo's candidate architectures plus the
// scenario's own trained network as the final member (so its pad is
// well-defined and non-negative too).
func (s *Scenario) deploymentEnvelope() (*defense.Envelope, int, error) {
	s.envOnce.Do(func() {
		zoo, err := s.ArchZoo()
		if err != nil {
			s.envErr = err
			return
		}
		nets, err := archid.Nets(zoo, s.Config.Seed)
		if err != nil {
			s.envErr = err
			return
		}
		nets = append(nets, s.Net)
		s.envIdx = len(nets) - 1
		s.env, s.envErr = defense.NewEnvelope(nets, s.Test.Inputs()[0])
	})
	return s.env, s.envIdx, s.envErr
}

// NewScenario generates the dataset, trains the CNN, and deploys it
// instrumented on a simulated core.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	var (
		arch nn.Arch
		gen  func(dataset.Config) (*dataset.Set, *dataset.Set, error)
	)
	switch cfg.Dataset {
	case DatasetMNIST:
		arch = nn.MNISTArch()
		gen = dataset.MNISTLike
	case DatasetCIFAR:
		arch = nn.CIFARArch()
		gen = dataset.CIFARLike
	default:
		return nil, fmt.Errorf("repro: unknown dataset %q (want %q or %q)", cfg.Dataset, DatasetMNIST, DatasetCIFAR)
	}
	train, test, err := gen(dataset.Config{
		PerClassTrain: cfg.PerClassTrain,
		PerClassTest:  cfg.PerClassTest,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	net, err := nn.Build(arch, rand.New(rand.NewSource(cfg.Seed+1)))
	if err != nil {
		return nil, err
	}
	lr := cfg.LR
	if lr <= 0 {
		lr = 0.05
		if cfg.Dataset == DatasetCIFAR {
			lr = 0.01
		}
	}
	err = nn.Train(net, train.Inputs(), train.Labels(), nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 16, LR: lr, Momentum: 0.9, Seed: cfg.Seed + 2,
		Progress: cfg.TrainProgress,
	})
	if err != nil {
		return nil, err
	}
	acc, err := nn.Accuracy(net, test.Inputs(), test.Labels())
	if err != nil {
		return nil, err
	}

	var noise *march.NoiseModel
	if !cfg.DisableNoise {
		noise = march.DefaultNoise(cfg.Seed + 3)
	}
	engine, err := march.NewEngine(march.Config{
		Hierarchy: instrument.SimHierarchy(),
		Noise:     noise,
	})
	if err != nil {
		return nil, err
	}
	rt := instrument.DefaultRuntime()
	if cfg.DisableRuntime {
		rt = instrument.NoRuntime()
	}
	s := &Scenario{
		Config:       cfg,
		Arch:         arch,
		Train:        train,
		Test:         test,
		Net:          net,
		Engine:       engine,
		TestAccuracy: acc,
	}
	var env *defense.Envelope
	envIdx := 0
	if cfg.Defense == DefensePaddedEnvelope {
		if env, envIdx, err = s.deploymentEnvelope(); err != nil {
			return nil, err
		}
	}
	target, err := defense.New(net, engine, defense.Config{
		Level:         cfg.Defense,
		Seed:          cfg.Seed + 4,
		Runtime:       rt,
		Envelope:      env,
		EnvelopeIndex: envIdx,
	})
	if err != nil {
		return nil, err
	}
	s.Target = target
	return s, nil
}

// ClassPools groups the test images of the requested categories, the pools
// the Evaluator cycles through.
func (s *Scenario) ClassPools(classes ...int) (map[int][]*tensor.Tensor, error) {
	if len(classes) == 0 {
		classes = PaperClasses()
	}
	by := s.Test.ByClass()
	pools := map[int][]*tensor.Tensor{}
	for _, cls := range classes {
		idxs := by[cls]
		if len(idxs) == 0 {
			return nil, fmt.Errorf("repro: no test images for category %d", cls)
		}
		for _, i := range idxs {
			pools[cls] = append(pools[cls], s.Test.Samples[i].Image)
		}
	}
	return pools, nil
}

// PaperClasses returns the four categories used throughout the paper's
// evaluation ("without loss of generality, four different categories").
func PaperClasses() []int { return []int{1, 2, 3, 4} }

// EvalConfig controls an evaluation campaign. The zero value reproduces
// the paper's settings (cache-misses and branches, α = 0.05, four
// categories, 300 monitored classifications per category) on the
// sequential path.
type EvalConfig struct {
	Classes      []int
	Events       []Event
	RunsPerClass int
	Alpha        float64
	// Workers selects the concurrent sharded pipeline: ≥1 fans collection
	// and testing out over that many workers (1 is the sequential
	// reference execution of the same shard plan). 0 keeps the legacy
	// single-engine sequential path on Scenario.Target.
	Workers int
	// Seed is the pipeline's root seed, from which every shard's RNG seed
	// is derived; 0 uses the scenario seed. Ignored on the legacy path.
	Seed int64
	// ShardRuns bounds measured runs per shard in the pipeline; 0 uses
	// pipeline.DefaultShardRuns. Ignored on the legacy path.
	ShardRuns int
	// Processes distributes shard execution over that many shardworker OS
	// processes through the distributed audit fabric (internal/fabric);
	// 0 keeps execution in-process. The shard plan, derived seeds and
	// merge are identical either way, so reports are byte-for-byte the
	// same at any process count. Requires a shardworker binary (see
	// Fabric).
	Processes int
	// Fabric configures the fabric (worker binary, completion journal,
	// transport) when Processes ≥ 1.
	Fabric FabricConfig
	// Batch groups a shard's measured runs into batched replay sessions
	// of this size (core.Config.Batch). Per-run counter attribution is
	// exact, so any batch size reproduces the batch=1 report
	// byte-for-byte; it only changes wall-clock. Default 1.
	Batch int
	// Obs, when non-nil, records spans, counters and (with Processes ≥ 1)
	// worker-side telemetry for the campaign. Telemetry is observational
	// output only: the report is byte-for-byte identical with or without
	// it, at any worker or process count.
	Obs *obs.Recorder
}

// Evaluate runs the paper's Evaluator against the scenario.
func (s *Scenario) Evaluate(cfg EvalConfig) (*Report, error) {
	return s.EvaluateCtx(context.Background(), cfg)
}

// EvaluateCtx is Evaluate with cancellation. With cfg.Workers ≥ 1 the
// campaign runs on the concurrent sharded pipeline (fresh per-shard
// engines, deterministic per-shard seeds); with cfg.Processes ≥ 1 the
// same shard plan is executed by shardworker OS processes through the
// distributed audit fabric; with both zero it runs sequentially on the
// scenario's deployed target.
func (s *Scenario) EvaluateCtx(ctx context.Context, cfg EvalConfig) (*Report, error) {
	if len(cfg.Classes) == 0 {
		cfg.Classes = PaperClasses()
	}
	if cfg.RunsPerClass <= 0 {
		cfg.RunsPerClass = 300
	}
	ev, err := core.NewEvaluator(core.Config{
		Events:       cfg.Events,
		Alpha:        cfg.Alpha,
		RunsPerClass: cfg.RunsPerClass,
		Batch:        cfg.Batch,
		Obs:          cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	pools, err := s.ClassPools(cfg.Classes...)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s", s.Config.Dataset, s.Config.Defense)
	if cfg.Workers == 0 && cfg.Processes == 0 {
		d, err := ev.CollectCtx(ctx, s.Target, pools)
		if err != nil {
			return nil, err
		}
		tests, err := ev.Test(d)
		if err != nil {
			return nil, err
		}
		return ev.BuildReport(name, d, tests), nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	p, err := pipeline.New(ev, pipeline.Config{
		Workers:   cfg.Workers,
		RootSeed:  seed,
		ShardRuns: cfg.ShardRuns,
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Processes > 0 {
		spec := WorkerSpec{
			Stage:        StageReport,
			Scenario:     s.spec(),
			Level:        s.Config.Defense.String(),
			Events:       eventNames(ev.Config().Events),
			Classes:      cfg.Classes,
			RunsPerClass: cfg.RunsPerClass,
			RootSeed:     seed,
			ShardRuns:    cfg.ShardRuns,
			Batch:        cfg.Batch,
		}
		byClass, err := collectFabric(ctx, p, pools, spec, cfg.Processes, cfg.Fabric)
		if err != nil {
			return nil, err
		}
		return p.ReportFromProfiles(ctx, name, byClass)
	}
	return p.Evaluate(ctx, name, s.TargetFactory(), pools)
}

// TargetFactory returns a pipeline factory that deploys the scenario's
// trained network on a fresh simulated core per shard, at the scenario's
// configured defense level. The factory only reads the shared network
// weights; every stateful structure (engine, caches, predictor, noise and
// jitter RNGs) is rebuilt per shard from the shard seed.
func (s *Scenario) TargetFactory() pipeline.TargetFactory {
	return s.FactoryFor(s.Config.Defense)
}

// FactoryFor is TargetFactory at an explicit defense level, letting sweeps
// reuse one trained scenario across hardening strategies without
// retraining.
func (s *Scenario) FactoryFor(level DefenseLevel) pipeline.TargetFactory {
	cfg := s.Config
	net := s.Net
	return func(seed int64) (core.Target, error) {
		var env *defense.Envelope
		envIdx := 0
		if level == DefensePaddedEnvelope {
			var err error
			if env, envIdx, err = s.deploymentEnvelope(); err != nil {
				return nil, err
			}
		}
		var noise *march.NoiseModel
		if !cfg.DisableNoise {
			noise = march.DefaultNoise(seed)
		}
		engine, err := march.NewEngine(march.Config{
			Hierarchy: instrument.SimHierarchy(),
			Noise:     noise,
		})
		if err != nil {
			return nil, err
		}
		rt := instrument.DefaultRuntime()
		if cfg.DisableRuntime {
			rt = instrument.NoRuntime()
		}
		return defense.New(net, engine, defense.Config{
			Level:         level,
			Seed:          seed + 1,
			Runtime:       rt,
			Envelope:      env,
			EnvelopeIndex: envIdx,
		})
	}
}

// Cached default scenarios: building one means generating data and
// training a CNN, so the experiment harness shares them.
var (
	defaultMu     sync.Mutex
	defaultCached = map[Dataset]*Scenario{}
)

// DefaultScenario returns the shared baseline scenario for a dataset,
// building it on first use.
func DefaultScenario(d Dataset) (*Scenario, error) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if s, ok := defaultCached[d]; ok {
		return s, nil
	}
	s, err := NewScenario(ScenarioConfig{Dataset: d})
	if err != nil {
		return nil, err
	}
	defaultCached[d] = s
	return s, nil
}
