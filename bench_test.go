package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Heavy campaign benches print the regenerated table/figure once; the
// per-operation micro benches quantify the simulation costs.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/branch"
	"repro/internal/march/cache"
	"repro/internal/march/mem"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// headline caches the full Table 1/2 campaign reports so the figure
// benches re-render from the same distributions instead of re-collecting.
var (
	headlineMu   sync.Mutex
	headlineReps = map[Dataset]*Report{}

	printedMu sync.Mutex
	printed   = map[string]bool{}
)

// printOnce returns true the first time label is seen; the benchmark
// framework re-invokes bench functions with growing b.N, and regenerated
// tables should be printed only once per process.
func printOnce(label string) bool {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[label] {
		return false
	}
	printed[label] = true
	return true
}

func headlineReport(b *testing.B, d Dataset) *Report {
	b.Helper()
	headlineMu.Lock()
	defer headlineMu.Unlock()
	if rep, ok := headlineReps[d]; ok {
		return rep
	}
	s, err := DefaultScenario(d)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := s.Evaluate(EvalConfig{})
	if err != nil {
		b.Fatal(err)
	}
	headlineReps[d] = rep
	return rep
}

// runTableBench runs the full campaign per iteration and prints the
// regenerated table once.
func runTableBench(b *testing.B, d Dataset, label string) {
	s, err := DefaultScenario(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.Evaluate(EvalConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && printOnce(label) {
			b.StopTimer()
			fmt.Printf("\n=== %s (regenerated) ===\n", label)
			if err := TableTTests(os.Stdout, rep); err != nil {
				b.Fatal(err)
			}
			ok, findings := ShapeCheck(rep)
			for _, f := range findings {
				fmt.Println("  ", f)
			}
			fmt.Printf("   shape matches paper: %v\n", ok)
			headlineMu.Lock()
			headlineReps[d] = rep
			headlineMu.Unlock()
			b.StartTimer()
		}
	}
}

// BenchmarkTable1MNISTTTests regenerates Table 1: Welch t-tests on
// cache-misses and branches over MNIST categories 1-4.
func BenchmarkTable1MNISTTTests(b *testing.B) {
	runTableBench(b, DatasetMNIST, "Table 1: MNIST t-tests")
}

// BenchmarkTable2CIFARTTests regenerates Table 2 for CIFAR-10.
func BenchmarkTable2CIFARTTests(b *testing.B) {
	runTableBench(b, DatasetCIFAR, "Table 2: CIFAR-10 t-tests")
}

// figure1Bench renders the Figure 1 bar chart from the headline
// distributions.
func figure1Bench(b *testing.B, d Dataset, title string) {
	rep := headlineReport(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		means := make([]float64, len(rep.Dists.Classes))
		for j, cls := range rep.Dists.Classes {
			means[j] = stats.Mean(rep.Dists.Get(EvCacheMisses, cls))
		}
		if i == 0 && printOnce(title) {
			b.StopTimer()
			fmt.Printf("\n=== %s (regenerated) ===\n", title)
			if err := RenderFigure1(os.Stdout, title, rep); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFigure1aMNISTAvgCacheMisses regenerates Figure 1(a).
func BenchmarkFigure1aMNISTAvgCacheMisses(b *testing.B) {
	figure1Bench(b, DatasetMNIST, "Figure 1(a): avg cache-misses per category, MNIST")
}

// BenchmarkFigure1bCIFARAvgCacheMisses regenerates Figure 1(b).
func BenchmarkFigure1bCIFARAvgCacheMisses(b *testing.B) {
	figure1Bench(b, DatasetCIFAR, "Figure 1(b): avg cache-misses per category, CIFAR-10")
}

// BenchmarkFigure2bPerfStat regenerates Figure 2(b): the perf-stat dump of
// all 8 events for one classification (8 events multiplexed onto 6
// registers).
func BenchmarkFigure2bPerfStat(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := Figure2b(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && printOnce("fig2b") {
			b.StopTimer()
			fmt.Printf("\n=== Figure 2(b): perf stat for one classification (regenerated) ===\n%s", out)
			b.StartTimer()
		}
	}
}

// figureDistBench renders a Figure 3/4 histogram panel.
func figureDistBench(b *testing.B, d Dataset, e Event, title string) {
	rep := headlineReport(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i == 0 && printOnce(title) {
			b.StopTimer()
			fmt.Printf("\n=== %s (regenerated) ===\n", title)
			if err := FigureDistributions(os.Stdout, title, rep, e); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		var sink nullWriter
		if err := FigureDistributions(&sink, title, rep, e); err != nil {
			b.Fatal(err)
		}
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFigure3aMNISTCacheMissDistributions regenerates Figure 3(a).
func BenchmarkFigure3aMNISTCacheMissDistributions(b *testing.B) {
	figureDistBench(b, DatasetMNIST, EvCacheMisses, "Figure 3(a): cache-misses distributions, MNIST")
}

// BenchmarkFigure3bMNISTBranchDistributions regenerates Figure 3(b).
func BenchmarkFigure3bMNISTBranchDistributions(b *testing.B) {
	figureDistBench(b, DatasetMNIST, EvBranches, "Figure 3(b): branches distributions, MNIST")
}

// BenchmarkFigure4aCIFARCacheMissDistributions regenerates Figure 4(a).
func BenchmarkFigure4aCIFARCacheMissDistributions(b *testing.B) {
	figureDistBench(b, DatasetCIFAR, EvCacheMisses, "Figure 4(a): cache-misses distributions, CIFAR-10")
}

// BenchmarkFigure4bCIFARBranchDistributions regenerates Figure 4(b).
func BenchmarkFigure4bCIFARBranchDistributions(b *testing.B) {
	figureDistBench(b, DatasetCIFAR, EvBranches, "Figure 4(b): branches distributions, CIFAR-10")
}

// BenchmarkAblationDefenseVsBaseline reruns the Table 1 campaign at every
// defense level — the countermeasure evaluation from the paper's
// conclusion. Alarm counts per level are printed.
func BenchmarkAblationDefenseVsBaseline(b *testing.B) {
	levels := []DefenseLevel{DefenseBaseline, DefenseDense, DefenseConstantTime, DefenseNoiseInjection}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 || !printOnce("ablation-defense") {
			break
		}
		b.StopTimer()
		fmt.Printf("\n=== Ablation: defenses vs baseline (MNIST, 120 runs/category) ===\n")
		fmt.Printf("%-18s%10s%16s%12s\n", "defense", "alarms", "cache-misses", "branches")
		b.StartTimer()
		for _, level := range levels {
			s, err := NewScenario(ScenarioConfig{
				Dataset: DatasetMNIST, Defense: level, Seed: 3,
				PerClassTrain: 60, PerClassTest: 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := s.Evaluate(EvalConfig{RunsPerClass: 120})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			fmt.Printf("%-18s%10d%16d%12d\n", level, len(rep.Alarms),
				len(rep.AlarmsFor(EvCacheMisses)), len(rep.AlarmsFor(EvBranches)))
			b.StartTimer()
		}
	}
}

// BenchmarkAblationPredictors compares branch predictor algorithms on the
// instrumented MNIST inference: mispredict rate per predictor.
func BenchmarkAblationPredictors(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	kinds := []branch.Kind{branch.StaticTaken, branch.Bimodal, branch.GShare, branch.Tournament}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 || !printOnce("ablation-predictors") {
			break
		}
		b.StopTimer()
		fmt.Printf("\n=== Ablation: branch predictors (MNIST inference) ===\n")
		fmt.Printf("%-14s%14s%14s%16s\n", "predictor", "branches", "mispredicts", "mispredict-rate")
		b.StartTimer()
		for _, kind := range kinds {
			eng, err := march.NewEngine(march.Config{
				Hierarchy: instrument.SimHierarchy(),
				Predictor: branch.New(branch.Config{Kind: kind}),
			})
			if err != nil {
				b.Fatal(err)
			}
			cls, err := instrument.New(s.Net, eng, instrument.Options{SparsitySkip: true, Runtime: instrument.NoRuntime()})
			if err != nil {
				b.Fatal(err)
			}
			for c := 1; c <= 4; c++ {
				for r := 0; r < 10; r++ {
					if _, err := cls.Classify(pools[c][r%len(pools[c])]); err != nil {
						b.Fatal(err)
					}
				}
			}
			counts := eng.Counts()
			br := counts.Get(EvBranches)
			miss := counts.Get(EvBranchMisses)
			b.StopTimer()
			fmt.Printf("%-14s%14d%14d%15.2f%%\n", kind, br, miss, 100*float64(miss)/float64(br))
			b.StartTimer()
		}
	}
}

// BenchmarkAblationCacheGeometry sweeps the LLC size and reports the
// strongest cache-miss |t| across category pairs: the leak requires the
// working set to exceed the LLC.
func BenchmarkAblationCacheGeometry(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	sizes := []uint64{16 << 10, 32 << 10, 64 << 10, 256 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 || !printOnce("ablation-geometry") {
			break
		}
		b.StopTimer()
		fmt.Printf("\n=== Ablation: LLC size vs leakage (MNIST, 80 runs/category) ===\n")
		fmt.Printf("%-12s%18s%22s\n", "LLC", "max |t| (misses)", "significant pairs")
		b.StartTimer()
		for _, size := range sizes {
			h, err := cache.NewHierarchy(
				cache.Config{Name: "L1D", Size: 4 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
				cache.Config{Name: "L2", Size: 16 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
				cache.Config{Name: "LLC", Size: size, LineSize: 64, Assoc: 8, Policy: cache.LRU},
			)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := march.NewEngine(march.Config{Hierarchy: h, Noise: march.DefaultNoise(9)})
			if err != nil {
				b.Fatal(err)
			}
			cls, err := instrument.New(s.Net, eng, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime(), Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			ev, err := core.NewEvaluator(core.Config{Events: []Event{EvCacheMisses}, RunsPerClass: 80})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := ev.Evaluate("geom", cls, pools)
			if err != nil {
				b.Fatal(err)
			}
			maxT, sig := 0.0, 0
			for _, t := range rep.Tests {
				at := t.Result.T
				if at < 0 {
					at = -at
				}
				if at > maxT {
					maxT = at
				}
				if t.Distinguishable(0.05) {
					sig++
				}
			}
			b.StopTimer()
			fmt.Printf("%-12s%18.2f%19d/6\n", fmt.Sprintf("%dKiB", size>>10), maxT, sig)
			b.StartTimer()
		}
	}
}

// BenchmarkAblationSampleSize shows the √n growth of the t-statistic with
// the number of monitored classifications.
func BenchmarkAblationSampleSize(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{25, 50, 100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 || !printOnce("ablation-samplesize") {
			break
		}
		b.StopTimer()
		fmt.Printf("\n=== Ablation: sample size vs t-statistic (MNIST, strongest pair) ===\n")
		fmt.Printf("%-10s%16s%20s\n", "n/class", "max |t| (misses)", "significant pairs")
		b.StartTimer()
		for _, n := range sizes {
			rep, err := s.Evaluate(EvalConfig{RunsPerClass: n, Events: []Event{EvCacheMisses}})
			if err != nil {
				b.Fatal(err)
			}
			maxT, sig := 0.0, 0
			for _, t := range rep.TestsFor(EvCacheMisses) {
				at := t.Result.T
				if at < 0 {
					at = -at
				}
				if at > maxT {
					maxT = at
				}
				if t.Distinguishable(0.05) {
					sig++
				}
			}
			b.StopTimer()
			fmt.Printf("%-10d%16.2f%17d/6\n", n, maxT, sig)
			b.StartTimer()
		}
	}
}

// BenchmarkAttackInputRecovery runs the end-to-end template attack: the
// exploitability demonstration behind the Evaluator's alarms.
func BenchmarkAttackInputRecovery(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	events := []Event{EvCacheMisses, EvBranches}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
		if err != nil {
			b.Fatal(err)
		}
		if err := pmu.Program(events...); err != nil {
			b.Fatal(err)
		}
		profiler, err := attack.NewProfiler(events)
		if err != nil {
			b.Fatal(err)
		}
		for cls, imgs := range pools {
			for r := 0; r < 40; r++ {
				img := imgs[r%len(imgs)]
				prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
				if err != nil {
					b.Fatal(err)
				}
				profiler.Add(cls, prof)
			}
		}
		atk, err := profiler.Build()
		if err != nil {
			b.Fatal(err)
		}
		cm := attack.NewConfusionMatrix([]int{1, 2, 3, 4})
		for cls, imgs := range pools {
			for r := 0; r < 20; r++ {
				img := imgs[(r*3+1)%len(imgs)]
				prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
				if err != nil {
					b.Fatal(err)
				}
				pred, _ := atk.Classify(prof)
				cm.Record(cls, pred)
			}
		}
		if i == 0 && printOnce("attack") {
			b.StopTimer()
			fmt.Printf("\n=== Attack: input-category recovery from HPCs (MNIST) ===\n")
			fmt.Printf("accuracy %.0f%% (chance %.0f%%)\n", 100*cm.Accuracy(), 100*cm.ChanceLevel())
			b.StartTimer()
		}
		b.ReportMetric(cm.Accuracy(), "accuracy")
	}
}

// BenchmarkAttackStage runs the pipeline-backed attack stage — sharded
// profile collection, deterministic split, both attackers fitted and
// scored — the workload `make ci` smoke-tests alongside the evaluation
// campaigns. Sequential and pooled runs report the same accuracy for the
// same seed; only wall-clock differs.
func BenchmarkAttackStage(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name           string
		workers, batch int
	}{
		{"workers=1", 1, 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), 1},
		{"workers=1/batch=8", 1, 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := s.Attack(context.Background(), AttackConfig{
					ProfileRuns: 40,
					AttackRuns:  20,
					Workers:     c.workers,
					Batch:       c.batch,
					Seed:        17,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Template.Accuracy(), "template_acc")
				b.ReportMetric(res.KNN.Accuracy(), "knn_acc")
			}
		})
	}
}

// BenchmarkArchIDStage runs the architecture-fingerprinting stage — the
// default zoo deployed per class label through the class-aware pipeline,
// both attackers recovering the architecture id — at both worker counts,
// extending the trajectory alongside the evaluation and attack stages.
// Accuracy metrics are identical across worker counts for the same seed.
func BenchmarkArchIDStage(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := s.ArchID(context.Background(), ArchIDConfig{
					ProfileRuns: 12,
					AttackRuns:  6,
					MaxInputs:   12,
					Workers:     workers,
					Seed:        17,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Attack.Template.Accuracy(), "template_acc")
				b.ReportMetric(res.Attack.KNN.Accuracy(), "knn_acc")
			}
		})
	}
}

// BenchmarkTopoStage runs the topology-recovery stage — attacker models
// fitted on a training zoo, a disjoint held-out zoo reconstructed
// layer-by-layer and validated through the class-aware pipeline — at both
// worker counts, extending the trajectory alongside the evaluation,
// attack and archid stages. Recovery metrics are identical across worker
// counts for the same seed.
func BenchmarkTopoStage(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := s.Topo(context.Background(), TopoConfig{
					TrainZoo:  6,
					Holdout:   5,
					Runs:      6,
					MaxInputs: 8,
					Workers:   workers,
					Seed:      17,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ExactCountRate, "exact_rate")
				b.ReportMetric(res.MeanKindAccuracy, "kind_acc")
			}
		})
	}
}

// --- Micro benchmarks: per-operation simulation costs. ---

// BenchmarkClassifyMNIST measures one instrumented MNIST classification.
func BenchmarkClassifyMNIST(b *testing.B) {
	benchClassify(b, DatasetMNIST)
}

// BenchmarkClassifyCIFAR measures one instrumented CIFAR classification.
func BenchmarkClassifyCIFAR(b *testing.B) {
	benchClassify(b, DatasetCIFAR)
}

// BenchmarkClassifyBatch measures batched instrumented classification
// through Hardened.ClassifyBatchInto at several batch sizes; ns/op is
// per input, so any per-session overhead shows up as the batch=1 gap.
func BenchmarkClassifyBatch(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	pools, err := s.ClassPools(1)
	if err != nil {
		b.Fatal(err)
	}
	imgs := pools[1]
	target, ok := s.Target.(core.BatchTarget)
	if !ok {
		b.Fatalf("scenario target %T does not support batched classification", s.Target)
	}
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			window := make([]*tensor.Tensor, batch)
			preds := make([]int, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := range window {
					window[j] = imgs[(i+j)%len(imgs)]
				}
				if err := target.ClassifyBatchInto(preds, window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchClassify(b *testing.B, d Dataset) {
	s, err := DefaultScenario(d)
	if err != nil {
		b.Fatal(err)
	}
	pools, err := s.ClassPools(1)
	if err != nil {
		b.Fatal(err)
	}
	imgs := pools[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Target.Classify(imgs[i%len(imgs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the simulator's per-access cost.
func BenchmarkCacheAccess(b *testing.B) {
	h := instrument.SimHierarchy()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(mem.Addr(addrs[i%len(addrs)]), false)
	}
}

// BenchmarkEngineLoadHot measures the engine's same-line fast path: the
// cost of a load that re-touches the line the previous access hit.
func BenchmarkEngineLoadHot(b *testing.B) {
	eng, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		b.Fatal(err)
	}
	eng.Load(0x1000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Load(0x1000, 4)
	}
}

// BenchmarkEngineLoadRange measures the batched sequential element walk
// (one cache-line lookup per 16 four-byte elements).
func BenchmarkEngineLoadRange(b *testing.B) {
	eng, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LoadRange(0x1000, 4, 256) // 1 KiB walk, L1-resident
	}
}

// BenchmarkBranchPredict measures the tournament predictor's per-branch
// cost.
func BenchmarkBranchPredict(b *testing.B) {
	p := branch.New(branch.Config{Kind: branch.Tournament})
	rng := rand.New(rand.NewSource(2))
	pattern := make([]bool, 4096)
	for i := range pattern {
		pattern[i] = rng.Float64() < 0.7
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Record(uint64(i%256)*4, pattern[i%len(pattern)])
	}
}

// BenchmarkWelchTTest measures the statistical core on 300-sample groups.
func BenchmarkWelchTTest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64() * 100
		y[i] = rng.NormFloat64()*100 + 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.WelchTTest(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPMUMeasure measures the measurement-interval overhead on the
// steady-state path the collection pipeline uses: a reused Profile through
// MeasureOnceInto (0 allocs/op).
func BenchmarkPMUMeasure(b *testing.B) {
	eng, err := march.NewEngine(march.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pmu, err := hpc.NewPMU(eng, hpc.DefaultCounters)
	if err != nil {
		b.Fatal(err)
	}
	if err := pmu.Program(EvCacheMisses, EvBranches); err != nil {
		b.Fatal(err)
	}
	prof := make(hpc.Profile, 2)
	work := func() { eng.Ops(100) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pmu.MeasureOnceInto(prof, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTensorConv2D measures the reference (non-instrumented) conv
// kernel used in training.
func BenchmarkTensorConv2D(b *testing.B) {
	g := tensor.ConvGeom{InH: 28, InW: 28, InC: 1, K: 3, Stride: 1, OutC: 8}
	in := tensor.New(28, 28, 1)
	rng := rand.New(rand.NewSource(4))
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	filt := tensor.New(9, 8)
	for i := range filt.Data {
		filt.Data[i] = rng.Float32()
	}
	bias := make([]float32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.Conv2D(in, filt, bias, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorStream runs the streaming leakage monitor — windowed
// collection through the stream seam, sequential tests under the
// alpha-spending boundary — against the shared MNIST scenario. The
// early-stop variants report the detection trace count (identical
// across worker counts for the same seed); the no-stop variant measures
// the full streamed-to-exhaustion campaign including the batch report
// tail.
func BenchmarkMonitorStream(b *testing.B) {
	s, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		workers int
		noStop  bool
	}{
		{"workers=1", 1, false},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), false},
		{"workers=1/nostop", 1, true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := s.Monitor(MonitorConfig{
					Classes: []int{1, 2},
					Budget:  60,
					Workers: c.workers,
					Seed:    17,
					NoStop:  c.noStop,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.TracesSeen), "traces")
				if rep.Detection != nil {
					b.ReportMetric(float64(rep.Detection.Traces), "detect_traces")
				}
			}
		})
	}
}
