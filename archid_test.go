package repro

// Architecture-fingerprinting regression tests: a golden report pinning a
// fixed campaign's confusion matrices, zoo metadata and layer evidence;
// the byte-invariance guarantee across worker counts; and the
// attack-stage defense matrix guarding the template attacker's
// variance-floor fix. Regenerate the golden file deliberately with:
//
//	go test -run TestArchIDGoldenReport -update .

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/archid"
)

const goldenArchIDPath = "testdata/golden_archid.json"

// goldenArchID is the serialized form of a fingerprinting result. The
// confusion matrices are integer counts and the layer evidence integer
// counters, so everything is compared exactly.
type goldenArchID struct {
	Name        string                 `json:"name"`
	Defense     string                 `json:"defense"`
	Padded      bool                   `json:"padded"`
	Events      []string               `json:"events"`
	Zoo         []archid.SpecInfo      `json:"zoo"`
	ProfileRuns int                    `json:"profile_runs"`
	AttackRuns  int                    `json:"attack_runs"`
	K           int                    `json:"k"`
	TemplateAcc float64                `json:"template_acc"`
	KNNAcc      float64                `json:"knn_acc"`
	Template    map[int]map[int]int    `json:"template_matrix"`
	KNN         map[int]map[int]int    `json:"knn_matrix"`
	Evidence    []archid.LayerEvidence `json:"layer_evidence"`
}

func toGoldenArchID(res *ArchIDResult) goldenArchID {
	g := goldenArchID{
		Name:        res.Attack.Name,
		Defense:     res.Level.String(),
		Padded:      res.Padded,
		Zoo:         res.Specs,
		ProfileRuns: res.Attack.ProfileRuns,
		AttackRuns:  res.Attack.AttackRuns,
		K:           res.Attack.K,
		TemplateAcc: res.Attack.Template.Accuracy(),
		KNNAcc:      res.Attack.KNN.Accuracy(),
		Template:    res.Attack.Template.Matrix,
		KNN:         res.Attack.KNN.Matrix,
		Evidence:    res.Evidence,
	}
	for _, e := range res.Attack.Events {
		g.Events = append(g.Events, e.String())
	}
	return g
}

// goldenArchIDCampaign is the fixed campaign the golden file pins: the
// small shared attack scenario's zoo fingerprinted at the scenario's
// baseline level, 12 profiling + 6 attack runs per architecture, root
// seed 17, on the pipeline with 2 workers.
func goldenArchIDCampaign(t *testing.T, workers int) *ArchIDResult {
	t.Helper()
	res, err := attackScenario(t).ArchID(context.Background(), ArchIDConfig{
		ProfileRuns: 12,
		AttackRuns:  6,
		MaxInputs:   12,
		Workers:     workers,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArchIDGoldenReport(t *testing.T) {
	got := toGoldenArchID(goldenArchIDCampaign(t, 2))

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenArchIDPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenArchIDPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden archid report rewritten: %s", goldenArchIDPath)
		return
	}

	data, err := os.ReadFile(goldenArchIDPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestArchIDGoldenReport -update .` to create it): %v", err)
	}
	var want goldenArchID
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("archid result diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", gotJSON, data)
	}
	// The golden campaign itself must show the headline result: near-
	// perfect recovery of the deployed architecture at baseline.
	if got.TemplateAcc < 3.0/7 {
		t.Fatalf("golden baseline template recovery = %.3f, want >= 3x chance", got.TemplateAcc)
	}
}

// TestArchIDGoldenByteInvariantAcrossWorkers executes the exact golden
// campaign at workers=1 and workers=8; the serialized reports must be
// byte-for-byte identical to each other and to the committed golden file.
func TestArchIDGoldenByteInvariantAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		data, err := json.MarshalIndent(toGoldenArchID(goldenArchIDCampaign(t, workers)), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one, eight := marshal(1), marshal(8)
	if string(one) != string(eight) {
		t.Fatalf("workers=1 and workers=8 archid reports differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", one, eight)
	}
	want, err := os.ReadFile(goldenArchIDPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if string(one)+"\n" != string(want) {
		t.Fatalf("archid report diverged from committed golden:\n--- got ---\n%s\n--- want ---\n%s", one, want)
	}
}

// TestAttackStageDefenseMatrix is the input-recovery regression matrix
// over all four defense levels. It guards the template attacker's
// variance-floor fix: baseline recovery must be far above chance, and the
// (near-constant-channel) ConstantTime level must land near chance *via
// finite, spread-out decisions* — not via the degenerate templates[0]
// fallback the old absolute 1e-9 floor produced.
func TestAttackStageDefenseMatrix(t *testing.T) {
	// A pure-kernel scenario (runtime overhead disabled): the matrix
	// guards the attacker's decision machinery, so the kernels' class
	// signal must not be drowned by the statistical runtime jitter.
	s, err := NewScenario(ScenarioConfig{
		Dataset:        DatasetMNIST,
		PerClassTrain:  60,
		PerClassTest:   20,
		Epochs:         2,
		Seed:           5,
		DisableRuntime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chance := 0.25 // 4 paper classes
	for _, level := range []DefenseLevel{DefenseBaseline, DefenseDense, DefenseConstantTime, DefenseNoiseInjection} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			res, err := s.AttackGrouped(ctx, level, AttackConfig{
				ProfileRuns: 30,
				AttackRuns:  15,
				Workers:     4,
				Seed:        19,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Template.Total != 60 || res.KNN.Total != 60 {
				t.Fatalf("matrix totals %d/%d, want 60", res.Template.Total, res.KNN.Total)
			}
			acc := res.Template.Accuracy()
			switch level {
			case DefenseBaseline:
				if acc < 2*chance {
					t.Fatalf("baseline template recovery %.3f, want >= 2x chance (%.2f)", acc, chance)
				}
			case DefenseConstantTime:
				if acc > 1.6*chance {
					t.Fatalf("constant-time template recovery %.3f, want <= 1.6x chance (%.2f)", acc, chance)
				}
				// Anti-fallback guards: predictions spread over classes and
				// every fitted variance sits above the degenerate absolute
				// floor (the counts are O(10³)+, so a healthy scale-relative
				// floor is orders of magnitude above 1e-9).
				predicted := map[int]bool{}
				for _, row := range res.Template.Matrix {
					for pred, n := range row {
						if n > 0 {
							predicted[pred] = true
						}
					}
				}
				if len(predicted) < 2 {
					t.Fatalf("constant-time template predictions collapsed onto %v — the templates[0] fallback", predicted)
				}
				for _, tpl := range res.Templates {
					for e, v := range tpl.Variance {
						if v <= 1e-9 {
							t.Fatalf("class %d event %s variance %g at the degenerate absolute floor", tpl.Class, e, v)
						}
					}
				}
			}
		})
	}
}
