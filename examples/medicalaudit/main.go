// Medical-image audit: the privacy scenario that motivates the paper.
//
// An online medical-image service classifies patient scans with a CNN. The
// diagnosis category of each scan is sensitive: if the execution footprint
// of the classifier depends on the category, anyone who can read the
// machine's performance counters learns each patient's diagnosis without
// ever seeing the scan.
//
// This example plays the auditor: before the service goes live, it runs
// the paper's Evaluator against the deployment with representative scans
// of each diagnosis category and reports whether an alarm is raised — and
// then demonstrates the harm by mounting the template attack an insider
// could run.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/attack"
	"repro/internal/hpc"
	"repro/internal/march"
)

func main() {
	log.SetFlags(0)

	// The "scan" dataset: synthetic stand-in with one class per diagnosis
	// category. Two diagnosis categories keep the audit quick.
	fmt.Println("deploying diagnostic classifier (synthetic scans, 4 categories)...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetMNIST, // grayscale scans
		PerClassTrain: 60,
		PerClassTest:  30,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier ready (test accuracy %.0f%%)\n\n", 100*s.TestAccuracy)

	// --- Audit phase: the Evaluator's verdict. ---
	fmt.Println("audit: monitoring HPCs over classifications of each category...")
	rep, err := s.Evaluate(repro.EvalConfig{
		Classes:      []int{1, 2, 3, 4},
		RunsPerClass: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.RenderAlarms(os.Stdout, rep)
	if !rep.Leaky() {
		fmt.Println("audit passed; service may go live.")
		return
	}

	// --- Exploitation demo: what an insider could actually do. ---
	fmt.Println("\ndemonstrating the harm: an insider profiles the service,")
	fmt.Println("then infers each patient's diagnosis category from HPCs alone.")

	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
	if err != nil {
		log.Fatal(err)
	}
	if err := pmu.Program(events...); err != nil {
		log.Fatal(err)
	}
	profiler, err := attack.NewProfiler(events)
	if err != nil {
		log.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Profiling: the insider submits scans of known categories.
	for cls, imgs := range pools {
		for i := 0; i < 40; i++ {
			img := imgs[i%len(imgs)]
			prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
			if err != nil {
				log.Fatal(err)
			}
			profiler.Add(cls, prof)
		}
	}
	atk, err := profiler.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Attack: patients' scans arrive; the insider sees only HPC values.
	cm := attack.NewConfusionMatrix([]int{1, 2, 3, 4})
	for cls, imgs := range pools {
		for i := 0; i < 25; i++ {
			img := imgs[(i*3+1)%len(imgs)]
			prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
			if err != nil {
				log.Fatal(err)
			}
			pred, _ := atk.Classify(prof)
			cm.Record(cls, pred)
		}
	}
	fmt.Printf("\ninsider recovers the diagnosis category of %.0f%% of patients\n", 100*cm.Accuracy())
	fmt.Printf("(random guessing: %.0f%%)\n", 100*cm.ChanceLevel())
	fmt.Println("\naudit verdict: deployment blocked — harden the classifier first")
	fmt.Println("(see examples/hardening for the countermeasures).")
}
