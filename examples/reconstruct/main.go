// Reconstruct: full CSI-NN-style reverse engineering of architectures the
// attacker has never seen.
//
// The zooaudit example asks whether an adversary can tell *which zoo
// member* is deployed; this example asks the stronger question the paper's
// title implies: can they reconstruct an unknown architecture outright —
// layer count, layer kinds, channel counts, kernel sizes, hidden widths —
// from the side channel alone?
//
// The attacker first profiles a training zoo of random architectures it
// built itself, fitting three models on the per-layer evidence stream:
//
//   - a segmenter (change-point detection over per-quantum
//     instruction/L1-load signatures) that finds layer boundaries in the
//     flat trace;
//   - a per-segment layer-kind classifier (conv/relu/pool/dense) riding
//     the attack stage's kNN model;
//   - per-kind hyper-parameter estimators (structural inversion plus
//     log-log regression) for channel counts, kernel sizes and widths.
//
// It then reconstructs a *disjoint* held-out zoo of victims — no victim
// architecture appears in the training zoo — and validates each recovered
// spec by rebuilding it and comparing footprints against measured
// pipeline profiles.
//
// The run tells the story in both directions:
//
//  1. baseline — every victim is reconstructed essentially exactly;
//  2. padded-envelope — the constant-rate envelope-padded deployments
//     present an identical, structureless trace, and recovery collapses
//     to chance.
//
// Every observation derives from the root seed, so the numbers below are
// byte-identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	fmt.Println("preparing the MNIST-like input pool...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructing never-profiled victims with %d workers\n\n", runtime.GOMAXPROCS(0))

	ctx := context.Background()
	audit := func(title string, level repro.DefenseLevel) {
		fmt.Printf("=== %s ===\n", title)
		res, err := s.TopoGrouped(ctx, level, repro.TopoConfig{
			TrainZoo:  8,
			Holdout:   6,
			Runs:      8,
			MaxInputs: 16,
			Seed:      29,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := report.TopoSummary(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--> exact layer counts %.0f%%, layer kinds %.0f%% (chance %.0f%%)\n\n",
			100*res.ExactCountRate, 100*res.MeanKindAccuracy, 100*res.ChanceKind)
	}

	audit("baseline deployment", repro.DefenseBaseline)
	audit("envelope-padded deployment", repro.DefensePaddedEnvelope)

	fmt.Println("conclusion: per-layer evidence reconstructs unknown architectures outright;")
	fmt.Println("only padding every deployment to a shared footprint envelope hides the topology.")
}
