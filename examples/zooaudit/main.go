// Zoo audit: which deployment hides *what it is* from the side channel?
//
// The input-recovery scenarios ask whether an adversary can tell what a
// model is looking at; this audit asks the prior question (CSI-NN): can
// they tell which model is deployed at all? A zoo of seven candidate
// architectures — MLP depth/width variants, CNN conv-count/channel
// variants, pooling on and off — is deployed one by one, and the template
// and kNN attackers try to recover the architecture id from held-out HPC
// profiles.
//
// The audit runs the zoo through three deployments:
//
//  1. baseline — the leaky sparsity-skipping kernels;
//  2. constant-time WITHOUT envelope padding — the ablation showing that
//     per-kernel constant time hides the input but not the model: each
//     architecture's own fixed footprint still identifies it;
//  3. constant-time WITH envelope padding — every classification tops up
//     to the zoo-wide footprint envelope, and recovery collapses to
//     chance.
//
// Every observation derives from the root seed, so the numbers below are
// byte-identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	fmt.Println("preparing the MNIST-like input pool...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	zoo, err := s.ArchZoo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditing a %d-architecture zoo with %d workers\n\n", zoo.Len(), runtime.GOMAXPROCS(0))

	ctx := context.Background()
	audit := func(title string, level repro.DefenseLevel, noPad bool) {
		fmt.Printf("=== %s ===\n", title)
		res, err := s.ArchIDGrouped(ctx, level, repro.ArchIDConfig{
			ProfileRuns: 24,
			AttackRuns:  12,
			MaxInputs:   20,
			Seed:        29,
			NoPad:       noPad,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := report.ArchIDSummary(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
		chance := res.ChanceLevel()
		fmt.Printf("--> template %.1f%%, kNN %.1f%% (chance %.1f%%)\n\n",
			100*res.Attack.Template.Accuracy(), 100*res.Attack.KNN.Accuracy(), 100*chance)
	}

	audit("baseline deployment", repro.DefenseBaseline, false)
	audit("constant-time kernels, no envelope padding (ablation)", repro.DefenseConstantTime, true)
	audit("constant-time kernels + envelope padding", repro.DefenseConstantTime, false)

	fmt.Println("conclusion: hiding the model requires padding to an architecture-")
	fmt.Println("independent envelope — constant-time kernels alone only hide the input.")
}
