// Layer leak localization: once the Evaluator raises an alarm, which part
// of the network is responsible?
//
// This example classifies one sparse and one dense input with per-layer
// event attribution and prints where the footprints diverge: the
// sparsity-skipping convolutions dominate the difference, the pooling and
// flatten stages contribute nothing — exactly the hint a defender needs to
// decide which kernels to harden (see examples/hardening).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/instrument"
	"repro/internal/march"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building MNIST scenario...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetMNIST,
		PerClassTrain: 60,
		PerClassTest:  30,
		Seed:          13,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rebuild an instrumented classifier directly so we can use the
	// attribution API (the scenario's Target wraps it behind the defense
	// layer).
	eng, err := instrument.NewEngine(99)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := instrument.New(s.Net, eng, instrument.Options{
		SparsitySkip: true,
		Runtime:      instrument.NoRuntime(), // pure kernel view
	})
	if err != nil {
		log.Fatal(err)
	}

	pools, err := s.ClassPools(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Warm the simulated core, then attribute one classification per class.
	for i := 0; i < 3; i++ {
		if _, err := cls.Classify(pools[1][i]); err != nil {
			log.Fatal(err)
		}
	}

	events := []march.Event{march.EvInstructions, march.EvCacheMisses, march.EvBranches}
	var perClass [][]instrument.LayerCounts
	for _, c := range []int{1, 2} {
		_, attribution, err := cls.ClassifyWithAttribution(pools[c][0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nper-layer footprint, category %d:\n", c)
		instrument.RenderAttribution(os.Stdout, attribution, events...)
		perClass = append(perClass, attribution)
	}

	fmt.Println("\nper-layer |difference| between the two categories:")
	fmt.Printf("%-8s%-10s%18s%18s%18s\n", "layer", "kind", "Δinstructions", "Δcache-misses", "Δbranches")
	type rowDelta struct {
		kind  string
		instr int64
	}
	var worst rowDelta
	a, b := perClass[0], perClass[1]
	for i := range a {
		if i >= len(b) {
			break
		}
		di := int64(a[i].Counts.Get(march.EvInstructions)) - int64(b[i].Counts.Get(march.EvInstructions))
		dm := int64(a[i].Counts.Get(march.EvCacheMisses)) - int64(b[i].Counts.Get(march.EvCacheMisses))
		dbr := int64(a[i].Counts.Get(march.EvBranches)) - int64(b[i].Counts.Get(march.EvBranches))
		abs := func(x int64) int64 {
			if x < 0 {
				return -x
			}
			return x
		}
		idx := fmt.Sprintf("%d", a[i].Index)
		if a[i].Index < 0 {
			idx = "-"
		}
		fmt.Printf("%-8s%-10s%18d%18d%18d\n", idx, a[i].Kind, abs(di), abs(dm), abs(dbr))
		if abs(di) > worst.instr {
			worst = rowDelta{kind: a[i].Kind, instr: abs(di)}
		}
	}
	fmt.Printf("\nlargest input-dependent footprint: the %s stage (Δ %d instructions)\n", worst.kind, worst.instr)
	fmt.Println("hardening advice: replace the sparsity-skipping kernels in that stage")
	fmt.Println("with dense or constant-time variants (see examples/hardening).")
}
