// Hardening: evaluate the countermeasure ladder from the paper's
// conclusion — "designing CNN architectures with indistinguishable CPU
// footprints".
//
// The same trained model is deployed at four hardening levels and the
// Evaluator is run against each:
//
//	baseline         sparsity-skipping kernels (leaky)
//	dense-execution  no zero-skipping: traffic independent of sparsity
//	constant-time    additionally branchless: fixed instruction stream
//	noise-injection  leaky kernels masked by randomized dummy traffic
//
// The alarm counts show which defenses actually silence the side channel.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)

	levels := []repro.DefenseLevel{
		repro.DefenseBaseline,
		repro.DefenseDense,
		repro.DefenseConstantTime,
		repro.DefenseNoiseInjection,
	}

	fmt.Println("evaluating 4 deployments of the same CNN (MNIST-like, categories 1-4)...")
	fmt.Println()
	type row struct {
		level  repro.DefenseLevel
		alarms int
		cm     int
		br     int
	}
	var rows []row
	for _, level := range levels {
		s, err := repro.NewScenario(repro.ScenarioConfig{
			Dataset:       repro.DatasetMNIST,
			PerClassTrain: 60,
			PerClassTest:  30,
			Defense:       level,
			Seed:          3,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := s.Evaluate(repro.EvalConfig{RunsPerClass: 120})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			level:  level,
			alarms: len(rep.Alarms),
			cm:     len(rep.AlarmsFor(repro.EvCacheMisses)),
			br:     len(rep.AlarmsFor(repro.EvBranches)),
		})
		fmt.Printf("--- %s ---\n", level)
		if err := repro.TableTTests(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("summary (alarms out of 6 category pairs per event):")
	fmt.Printf("  %-18s%8s%15s%12s\n", "defense", "alarms", "cache-misses", "branches")
	for _, r := range rows {
		fmt.Printf("  %-18s%8d%15d%12d\n", r.level, r.alarms, r.cm, r.br)
	}
	fmt.Println("\nreading: the baseline leaks through cache-misses; dense execution")
	fmt.Println("removes the sparsity signal; constant-time removes branch leakage too;")
	fmt.Println("noise injection only masks the signal and may still leak at larger n.")
}
