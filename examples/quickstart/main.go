// Quickstart: evaluate whether a deployed CNN classifier leaks its input
// category through hardware performance counters.
//
// This is the minimal end-to-end use of the library: build a scenario
// (synthetic dataset + trained CNN + instrumented execution), run the
// Evaluator, and inspect the alarms. A small configuration keeps it under
// ~10 seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A scenario bundles everything the paper's setup needs: the
	// synthetic MNIST-like dataset, a CNN trained on it, and the
	// instrumented deployment on a simulated core.
	fmt.Println("building scenario (generating data, training CNN)...")
	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.DatasetMNIST})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model trained: %.0f%% test accuracy\n\n", 100*s.TestAccuracy)

	// The Evaluator monitors HPC events while the classifier handles
	// inputs of each category, then t-tests every category pair. Workers
	// selects the concurrent sharded pipeline: collection fans out over
	// the CPU with deterministic per-shard seeds, so any worker count
	// reproduces the same report.
	fmt.Println("evaluating leakage for categories 1-4 (cache-misses, branches)...")
	rep, err := s.Evaluate(repro.EvalConfig{RunsPerClass: 100, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}

	if err := repro.TableTTests(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	repro.RenderAlarms(os.Stdout, rep)

	if rep.Leaky() {
		fmt.Println("\nverdict: this implementation leaks the input category —")
		fmt.Println("an adversary watching the HPCs can tell what kind of image was classified.")
	} else {
		fmt.Println("\nverdict: no distinguishable leakage at this sample size.")
	}
}
