// Input recovery: the adversary's side of the paper's threat model.
//
// The Evaluator flags that HPC distributions differ per input category;
// this example shows the flag is not hypothetical. The attack stage
// profiles the classifier once per category over the concurrent sharded
// pipeline, fits a Gaussian template and a kNN attacker on the profiling
// split, then recovers the category of held-out private classifications
// from their HPC profiles alone — the direction Wei et al. pursued for
// FPGA power traces, here through commodity performance counters. Every
// observation derives from the root seed, so the confusion matrices below
// are byte-identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
	"repro/internal/march"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)

	fmt.Println("deploying the victim classifier (CIFAR-like, categories 1-4)...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetCIFAR,
		PerClassTrain: 60,
		PerClassTest:  40,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim ready (test accuracy %.0f%%)\n\n", 100*s.TestAccuracy)

	// Phase 1+2 in one deterministic campaign: 60 profiling observations
	// per category to fit the attackers, 40 held-out observations per
	// category to score them — collected shard-by-shard across the worker
	// pool.
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("profiling 60 + attacking 40 classifications per category (%d workers)...\n\n", workers)
	res, err := s.Attack(context.Background(), repro.AttackConfig{
		Classes:     []int{1, 2, 3, 4},
		Events:      []repro.Event{march.EvCacheMisses, march.EvBranches, march.EvCycles},
		ProfileRuns: 60,
		AttackRuns:  40,
		Workers:     workers,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, tpl := range res.Templates {
		fmt.Printf("  template cat %d: cache-misses μ=%.0f, branches μ=%.0f\n",
			tpl.Class, tpl.Mean[march.EvCacheMisses], tpl.Mean[march.EvBranches])
	}
	fmt.Println()
	if err := report.AttackSummary(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	best := res.Template.Accuracy()
	if res.KNN.Accuracy() > best {
		best = res.KNN.Accuracy()
	}
	if best > 2*res.ChanceLevel() {
		fmt.Println("\nthe side channel the Evaluator flagged is practically exploitable.")
	}
}
