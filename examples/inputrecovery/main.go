// Input recovery: the adversary's side of the paper's threat model.
//
// The Evaluator flags that HPC distributions differ per input category;
// this example shows the flag is not hypothetical. A Gaussian template
// attack profiles the classifier once per category, then recovers the
// category of unseen private inputs from their HPC profiles alone — the
// direction Wei et al. pursued for FPGA power traces, here through
// commodity performance counters.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/attack"
	"repro/internal/hpc"
	"repro/internal/march"
)

func main() {
	log.SetFlags(0)

	fmt.Println("deploying the victim classifier (CIFAR-like, categories 1-4)...")
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.DatasetCIFAR,
		PerClassTrain: 60,
		PerClassTest:  40,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim ready (test accuracy %.0f%%)\n\n", 100*s.TestAccuracy)

	events := []march.Event{march.EvCacheMisses, march.EvBranches, march.EvCycles}
	pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
	if err != nil {
		log.Fatal(err)
	}
	if err := pmu.Program(events...); err != nil {
		log.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 — profiling: the adversary submits images of known
	// categories and records each classification's HPC profile.
	fmt.Println("phase 1: profiling 60 classifications per category...")
	profiler, err := attack.NewProfiler(events)
	if err != nil {
		log.Fatal(err)
	}
	for cls, imgs := range pools {
		for i := 0; i < 60; i++ {
			img := imgs[i%len(imgs)]
			prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
			if err != nil {
				log.Fatal(err)
			}
			profiler.Add(cls, prof)
		}
	}
	atk, err := profiler.Build()
	if err != nil {
		log.Fatal(err)
	}
	for _, tpl := range atk.Templates() {
		fmt.Printf("  template cat %d: cache-misses μ=%.0f, branches μ=%.0f\n",
			tpl.Class, tpl.Mean[march.EvCacheMisses], tpl.Mean[march.EvBranches])
	}

	// Phase 2 — recovery: private inputs arrive; the adversary sees only
	// the counters.
	fmt.Println("\nphase 2: recovering categories of 160 private inputs from HPCs alone...")
	cm := attack.NewConfusionMatrix([]int{1, 2, 3, 4})
	for cls, imgs := range pools {
		for i := 0; i < 40; i++ {
			img := imgs[(i*7+3)%len(imgs)]
			prof, err := pmu.MeasureOnce(func() { s.Target.Classify(img) })
			if err != nil {
				log.Fatal(err)
			}
			pred, _ := atk.Classify(prof)
			cm.Record(cls, pred)
		}
	}

	fmt.Println("\nconfusion matrix (rows: true category, cols: recovered):")
	fmt.Printf("      %6d%6d%6d%6d\n", 1, 2, 3, 4)
	for _, truth := range cm.Classes {
		fmt.Printf("  %d:  ", truth)
		for _, pred := range cm.Classes {
			fmt.Printf("%6d", cm.Matrix[truth][pred])
		}
		fmt.Println()
	}
	fmt.Printf("\nrecovery accuracy: %.0f%% (random guessing: %.0f%%)\n",
		100*cm.Accuracy(), 100*cm.ChanceLevel())
	if cm.Accuracy() > 2*cm.ChanceLevel() {
		fmt.Println("the side channel the Evaluator flagged is practically exploitable.")
	}
}
