package repro

// Integration tests exercising cross-module flows end to end: the process
// registry + PMU attach path (the perf-stat deployment), the sampling
// series over a real classification, the TVLA verdict through the facade,
// and the template attack against the hardened classifier.

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
)

// TestIntegrationPerfStatDeployment wires the full perf-stat path: spawn
// the classifier as a simulated process, attach a PMU by pid, observe one
// classification with 8 events multiplexed onto 6 registers.
func TestIntegrationPerfStatDeployment(t *testing.T) {
	s := smallScenario(t)
	registry := hpc.NewRegistry()
	proc, err := registry.Spawn("cnn-classifier", s.Engine)
	if err != nil {
		t.Fatal(err)
	}
	pmu, err := registry.Attach(proc.PID, hpc.DefaultCounters)
	if err != nil {
		t.Fatal(err)
	}
	events := march.AllEvents()
	if err := pmu.Program(events...); err != nil {
		t.Fatal(err)
	}
	if !pmu.Multiplexed() {
		t.Fatal("8 events on 6 registers must multiplex")
	}
	pools, err := s.ClassPools(1)
	if err != nil {
		t.Fatal(err)
	}
	groups := 2
	prof, err := pmu.Measure(groups, func(i int) {
		if _, err := s.Target.Classify(pools[1][i%len(pools[1])]); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if prof.Get(e) <= 0 {
			t.Fatalf("event %s observed zero activity", e)
		}
	}
	out := hpc.FormatStat(prof)
	if out == "" {
		t.Fatal("empty perf-stat output")
	}
}

// TestIntegrationSamplingOverClassifications exercises the perf-record
// analogue: per-classification samples of a running service show the
// class-dependent signal sample-by-sample.
func TestIntegrationSamplingOverClassifications(t *testing.T) {
	s := smallScenario(t)
	pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmu.Program(EvCacheMisses, EvInstructions); err != nil {
		t.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave the two categories; every sample is one classification.
	imgs := append(pools[1][:4], pools[2][:4]...)
	series, err := pmu.SampleSeries(len(imgs), func(i int) {
		if _, err := s.Target.Classify(imgs[i]); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Samples) != len(imgs) {
		t.Fatalf("samples = %d, want %d", len(series.Samples), len(imgs))
	}
	for i, sm := range series.Samples {
		if sm.Deltas.Get(EvInstructions) <= 0 {
			t.Fatalf("sample %d observed no instructions", i)
		}
	}
}

// TestIntegrationTVLAThroughFacade runs the fixed-vs-random assessment on
// the facade's scenario.
func TestIntegrationTVLAThroughFacade(t *testing.T) {
	s := smallScenario(t)
	ev, err := core.NewEvaluator(core.Config{RunsPerClass: 20})
	if err != nil {
		t.Fatal(err)
	}
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	fixed := pools[1][0]
	mixed := append(append(append(pools[1][1:], pools[2]...), pools[3]...), pools[4]...)
	results, err := ev.TVLA(s.Target, fixed, mixed, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("TVLA results = %d, want 2 events", len(results))
	}
	// At minimum the verdict must be well-formed; leakiness depends on the
	// small model's separation and is asserted in internal/core's tests.
	for _, r := range results {
		if r.Result.P < 0 || r.Result.P > 1 {
			t.Fatalf("TVLA p out of range: %+v", r)
		}
	}
}

// TestIntegrationAttackVsDefense: the template attack's accuracy must drop
// toward chance when the classifier is hardened.
func TestIntegrationAttackVsDefense(t *testing.T) {
	run := func(defense DefenseLevel) float64 {
		s, err := NewScenario(ScenarioConfig{
			Dataset:        DatasetMNIST,
			PerClassTrain:  20,
			PerClassTest:   10,
			Epochs:         1,
			Seed:           5,
			Defense:        defense,
			DisableNoise:   true, // structural signal only: sharpest contrast
			DisableRuntime: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		pools, err := s.ClassPools(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		events := []march.Event{march.EvCacheMisses, march.EvBranches}
		pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
		if err != nil {
			t.Fatal(err)
		}
		if err := pmu.Program(events...); err != nil {
			t.Fatal(err)
		}
		profiler, err := attack.NewProfiler(events)
		if err != nil {
			t.Fatal(err)
		}
		for cls, imgs := range pools {
			for i := 0; i < 20; i++ {
				prof, err := pmu.MeasureOnce(func() { s.Target.Classify(imgs[i%len(imgs)]) })
				if err != nil {
					t.Fatal(err)
				}
				profiler.Add(cls, prof)
			}
		}
		atk, err := profiler.Build()
		if err != nil {
			t.Fatal(err)
		}
		cm := attack.NewConfusionMatrix([]int{1, 2})
		for cls, imgs := range pools {
			for i := 0; i < 15; i++ {
				prof, err := pmu.MeasureOnce(func() { s.Target.Classify(imgs[(i*2+1)%len(imgs)]) })
				if err != nil {
					t.Fatal(err)
				}
				pred, _ := atk.Classify(prof)
				cm.Record(cls, pred)
			}
		}
		return cm.Accuracy()
	}
	baseline := run(DefenseBaseline)
	hardened := run(DefenseConstantTime)
	if baseline < 0.7 {
		t.Fatalf("baseline attack accuracy %.2f too weak for the contrast test", baseline)
	}
	if hardened > baseline-0.15 {
		t.Fatalf("hardening did not hurt the attack: baseline %.2f, constant-time %.2f", baseline, hardened)
	}
}

// TestIntegrationMannWhitneyFacade: the nonparametric method must agree
// with the default Welch campaign on a leaky small scenario.
func TestIntegrationMannWhitneyFacade(t *testing.T) {
	s := smallScenario(t)
	pools, err := s.ClassPools(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []core.Method{core.MethodWelch, core.MethodMannWhitney} {
		ev, err := core.NewEvaluator(core.Config{RunsPerClass: 30, Method: method})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ev.Evaluate("facade-"+method.String(), s.Target, pools)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tests) != 12 { // 6 pairs × 2 events
			t.Fatalf("%s: tests = %d, want 12", method, len(rep.Tests))
		}
	}
}
