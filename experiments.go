package repro

import (
	"fmt"
	"io"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/report"
	"repro/internal/stats"
)

// Figure1 computes the average number of cache-misses per category — the
// data behind Figure 1(a) (MNIST) and 1(b) (CIFAR-10). It returns the
// per-category means in the order of cfg.Classes. Set cfg.Workers to run
// the collection campaign on the concurrent sharded pipeline; the means
// are reproducible for a fixed cfg.Seed at any worker count.
func Figure1(s *Scenario, cfg EvalConfig) ([]float64, *Report, error) {
	cfg.Events = []Event{EvCacheMisses}
	rep, err := s.Evaluate(cfg)
	if err != nil {
		return nil, nil, err
	}
	means := make([]float64, len(rep.Dists.Classes))
	for i, cls := range rep.Dists.Classes {
		means[i] = stats.Mean(rep.Dists.Get(EvCacheMisses, cls))
	}
	return means, rep, nil
}

// RenderFigure1 prints the Figure 1 bar chart for a prepared report.
func RenderFigure1(w io.Writer, title string, rep *Report) error {
	labels := make([]string, len(rep.Dists.Classes))
	values := make([]float64, len(rep.Dists.Classes))
	for i, cls := range rep.Dists.Classes {
		labels[i] = fmt.Sprintf("category %d", cls)
		values[i] = stats.Mean(rep.Dists.Get(EvCacheMisses, cls))
	}
	return report.BarChart(w, title, labels, values, 50)
}

// Figure2b reproduces the perf-stat dump of all eight hardware events for
// a single classification (Figure 2(b)). Eight events exceed the six
// programmable HPC registers, so the PMU multiplexes across `groups`
// classifications of the same image and reports the scaled
// per-classification estimate — exactly perf's enabled/running scaling.
func Figure2b(s *Scenario) (hpc.Profile, string, error) {
	pmu, err := hpc.NewPMU(s.Engine, hpc.DefaultCounters)
	if err != nil {
		return nil, "", err
	}
	events := march.AllEvents()
	if err := pmu.Program(events...); err != nil {
		return nil, "", err
	}
	groups := (len(events) + pmu.Registers() - 1) / pmu.Registers()
	pools, err := s.ClassPools(1)
	if err != nil {
		return nil, "", err
	}
	img := pools[1][0]
	var classifyErr error
	prof, err := pmu.Measure(groups, func(int) {
		if _, err := s.Target.Classify(img); err != nil {
			classifyErr = err
		}
	})
	if err != nil {
		return nil, "", err
	}
	if classifyErr != nil {
		return nil, "", classifyErr
	}
	// Scale the multi-classification interval down to one classification.
	perRun := hpc.Profile{}
	for e, v := range prof {
		perRun[e] = v / float64(groups)
	}
	return perRun, hpc.FormatStat(perRun), nil
}

// FigureDistributions regenerates the Figure 3/4 panels: per-category
// distributions of one event rendered as ASCII histograms.
func FigureDistributions(w io.Writer, title string, rep *Report, e Event) error {
	return report.HistogramPanel(w, title, rep, e, 40, 7)
}

// TableTTests renders the Table 1/2 layout (t and p per category pair for
// cache-misses and branches).
func TableTTests(w io.Writer, rep *Report) error {
	return report.TTable(w, rep, EvCacheMisses, EvBranches)
}

// RenderAlarms prints the evaluator's alarms.
func RenderAlarms(w io.Writer, rep *Report) { report.Alarms(w, rep) }

// RenderSummary prints per-class descriptive statistics.
func RenderSummary(w io.Writer, rep *Report) { report.SummaryTable(w, rep) }

// WriteCSV exports the raw distributions for external plotting.
func WriteCSV(w io.Writer, rep *Report) error { return report.CSV(w, rep) }

// ShapeCheck verifies the qualitative reproduction targets for a Table 1/2
// style report and returns human-readable findings:
//
//   - cache-misses must distinguish every category pair (the paper's
//     headline result);
//   - branches must leave most pairs indistinguishable (at most half
//     significant).
//
// It returns ok=false if either target fails — used by the experiment
// tests and EXPERIMENTS.md generation.
func ShapeCheck(rep *Report) (ok bool, findings []string) {
	alpha := rep.Config.Alpha
	cm := rep.TestsFor(EvCacheMisses)
	cmSig := 0
	for _, t := range cm {
		if t.Distinguishable(alpha) {
			cmSig++
		}
	}
	br := rep.TestsFor(EvBranches)
	brSig := 0
	for _, t := range br {
		if t.Distinguishable(alpha) {
			brSig++
		}
	}
	ok = true
	if len(cm) > 0 {
		findings = append(findings, fmt.Sprintf("cache-misses: %d/%d pairs distinguishable", cmSig, len(cm)))
		if cmSig != len(cm) {
			ok = false
			findings = append(findings, "FAIL: paper's Tables 1–2 separate every pair via cache-misses")
		}
	}
	if len(br) > 0 {
		findings = append(findings, fmt.Sprintf("branches: %d/%d pairs distinguishable", brSig, len(br)))
		if brSig > len(br)/2 {
			ok = false
			findings = append(findings, "FAIL: paper's Tables 1–2 leave most branch pairs indistinguishable")
		}
	}
	return ok, findings
}
