package repro

// Telemetry byte-invariance: arming a fully-loaded obs.Recorder — live
// JSONL stream, trace export afterwards, every span and counter firing —
// must not move a single byte of any campaign result. Telemetry is
// observational output only; these tests run the golden report, attack
// and monitor campaigns with obs off and obs fully armed and require the
// serialized results to be identical.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

// armedRecorder builds a Recorder with the JSONL exporter streaming into
// a buffer, so every emit path (not just in-memory recording) is active
// during the campaign.
func armedRecorder() (*obs.Recorder, *bytes.Buffer) {
	jsonl := &bytes.Buffer{}
	return obs.New(obs.Config{Label: "invariance", JSONL: jsonl}), jsonl
}

// requireArmed asserts the recorder actually observed the campaign —
// otherwise the invariance comparison would pass vacuously — and that
// both exporters produce output.
func requireArmed(t *testing.T, rec *obs.Recorder, jsonl *bytes.Buffer) {
	t.Helper()
	if len(rec.Events()) == 0 {
		t.Fatal("armed recorder captured no events; the campaign was not instrumented")
	}
	if rec.Get(obs.CShardsDone) == 0 {
		t.Fatal("armed recorder counted no finished shards")
	}
	if jsonl.Len() == 0 {
		t.Fatal("JSONL exporter received nothing")
	}
	trace := &bytes.Buffer{}
	if err := rec.WriteTrace(trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if trace.Len() == 0 {
		t.Fatal("trace exporter produced nothing")
	}
}

// TestObsReportByteInvariant: golden evaluate campaign at eight workers,
// obs off vs fully armed, identical report bytes.
func TestObsReportByteInvariant(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Dataset: DatasetMNIST, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalConfig{
		Classes:      []int{1, 2},
		RunsPerClass: 60,
		Workers:      8,
		Seed:         17,
	}
	off, err := s.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, jsonl := armedRecorder()
	cfg.Obs = rec
	on, err := s.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireArmed(t, rec, jsonl)
	if !bytes.Equal(mustJSON(t, off), mustJSON(t, on)) {
		t.Fatal("report bytes differ between obs-off and obs-armed runs")
	}
}

// TestObsAttackByteInvariant: the golden attack campaign is likewise
// untouched by an armed recorder.
func TestObsAttackByteInvariant(t *testing.T) {
	cfg := AttackConfig{
		Classes:     []int{1, 2, 3},
		ProfileRuns: 40,
		AttackRuns:  20,
		Workers:     8,
		Seed:        17,
	}
	off, err := attackScenario(t).Attack(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, jsonl := armedRecorder()
	cfg.Obs = rec
	on, err := attackScenario(t).Attack(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireArmed(t, rec, jsonl)
	if !bytes.Equal(mustJSON(t, off), mustJSON(t, on)) {
		t.Fatal("attack result bytes differ between obs-off and obs-armed runs")
	}
}

// TestObsMonitorByteInvariant: the early-stopping monitor — the stage
// most sensitive to ordering, since its stop point depends on arrival
// sequence — is byte-invariant under an armed recorder.
func TestObsMonitorByteInvariant(t *testing.T) {
	s := monitorScenario(t)
	cfg := goldenMonitorConfig()
	off, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec, jsonl := armedRecorder()
	cfg = goldenMonitorConfig()
	cfg.Obs = rec
	on, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireArmed(t, rec, jsonl)
	if !bytes.Equal(mustJSON(t, off), mustJSON(t, on)) {
		t.Fatal("monitor result bytes differ between obs-off and obs-armed runs")
	}
}
