package nn

// Seeded random architecture generation: the hypothesis-free counterpart
// of DefaultZoo. The topology-recovery stage (internal/topo) must be
// scored against victims the attacker has *never profiled*, so it draws
// two disjoint zoos from this generator — a training zoo the per-segment
// classifiers and estimators are fitted on, and a held-out victim zoo the
// reconstruction is scored on. Generation is deterministic: the same
// ZooGenConfig always yields the same specs in the same order, so two
// processes (or the golden tests at different worker counts) agree on the
// exact hypothesis spaces.

import (
	"fmt"
	"math/rand"
	"strings"
)

// Hyper-parameter menus the random specs draw from. The values span the
// ranges the DefaultZoo covers and beyond, so held-out victims genuinely
// exercise extrapolation in the estimators.
var (
	randMLPWidths   = []int{24, 32, 48, 64, 96, 128, 192, 256}
	randCNNChannels = []int{4, 6, 8, 12, 16, 24, 32}
	randCNNKernels  = []int{3, 5}
)

// RandomSpec draws one random architecture spec for the given input shape
// and class count: an MLP with 1–3 hidden layers or a CNN with 1–3 conv
// blocks (random channel widths, kernel size 3 or 5, pooling on or off).
// The name encodes every hyper-parameter, so equal names mean equal
// architectures — which is what GenerateZoo dedups on.
func RandomSpec(rng *rand.Rand, inH, inW, inC, classes int) Spec {
	if rng.Intn(2) == 0 {
		return randomMLPSpec(rng, inH, inW, inC, classes)
	}
	return randomCNNSpec(rng, inH, inW, inC, classes)
}

func randomMLPSpec(rng *rand.Rand, inH, inW, inC, classes int) Spec {
	depth := 1 + rng.Intn(3)
	hidden := make([]int, depth)
	parts := make([]string, depth)
	width := 0
	for i := range hidden {
		hidden[i] = randMLPWidths[rng.Intn(len(randMLPWidths))]
		parts[i] = fmt.Sprintf("%d", hidden[i])
		if hidden[i] > width {
			width = hidden[i]
		}
	}
	a := MLPArch{Name: "mlp-r-" + strings.Join(parts, "-"), InH: inH, InW: inW, InC: inC,
		Hidden: hidden, Classes: classes}
	return Spec{
		Name: a.Name, Family: "mlp", Depth: depth + 1, Width: width,
		Build: func(rng *rand.Rand) (*Network, error) { return BuildMLP(a, rng) },
	}
}

func randomCNNSpec(rng *rand.Rand, inH, inW, inC, classes int) Spec {
	blocks := 1 + rng.Intn(3)
	channels := make([]int, blocks)
	parts := make([]string, blocks)
	width := 0
	for i := range channels {
		channels[i] = randCNNChannels[rng.Intn(len(randCNNChannels))]
		parts[i] = fmt.Sprintf("%d", channels[i])
		if channels[i] > width {
			width = channels[i]
		}
	}
	kernel := randCNNKernels[rng.Intn(len(randCNNKernels))]
	pool := rng.Intn(2) == 0
	suffix := "nopool"
	if pool {
		suffix = "pool"
	}
	a := ConvNetArch{
		Name: fmt.Sprintf("cnn-r-k%d-%s-%s", kernel, strings.Join(parts, "-"), suffix),
		InH:  inH, InW: inW, InC: inC,
		Channels: channels, Kernel: kernel, Pool: pool, Classes: classes,
	}
	return Spec{
		Name: a.Name, Family: "cnn", Depth: blocks + 1, Width: width, Pool: pool,
		Build: func(rng *rand.Rand) (*Network, error) { return BuildConvNet(a, rng) },
	}
}

// ZooGenConfig parameterizes deterministic random zoo generation.
type ZooGenConfig struct {
	// InH/InW/InC/Classes are shared by every generated spec.
	InH, InW, InC, Classes int
	// Size is the number of distinct architectures to register.
	Size int
	// Seed drives every random draw; equal configs yield equal zoos.
	Seed int64
	// Avoid lists spec names that must not appear (the disjointness
	// mechanism between a training zoo and a held-out victim zoo).
	Avoid map[string]bool
}

// GenerateZoo registers Size distinct random architectures drawn from
// ZooGenConfig.Seed. Specs whose geometry does not build (e.g. a deep
// pooled kernel-5 CNN on a small input) are resampled, as are name
// collisions with the zoo itself or with cfg.Avoid. When Size ≥ 2 the
// first two slots are forced to a pooled CNN and an MLP respectively, so
// any generated training zoo covers all four observable layer kinds
// (conv, relu, pool, dense).
func GenerateZoo(cfg ZooGenConfig) (*Zoo, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("nn: zoo size must be positive, got %d", cfg.Size)
	}
	if cfg.InH <= 0 || cfg.InW <= 0 || cfg.InC <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("nn: bad zoo shape %dx%dx%d/%d classes", cfg.InH, cfg.InW, cfg.InC, cfg.Classes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := NewZoo()
	draw := func(slot int) Spec {
		switch {
		case slot == 0 && cfg.Size >= 2:
			s := randomCNNSpec(rng, cfg.InH, cfg.InW, cfg.InC, cfg.Classes)
			for !s.Pool {
				s = randomCNNSpec(rng, cfg.InH, cfg.InW, cfg.InC, cfg.Classes)
			}
			return s
		case slot == 1 && cfg.Size >= 2:
			return randomMLPSpec(rng, cfg.InH, cfg.InW, cfg.InC, cfg.Classes)
		default:
			return RandomSpec(rng, cfg.InH, cfg.InW, cfg.InC, cfg.Classes)
		}
	}
	const maxAttemptsPerSlot = 256
	for z.Len() < cfg.Size {
		slot := z.Len()
		registered := false
		for attempt := 0; attempt < maxAttemptsPerSlot; attempt++ {
			s := draw(slot)
			if cfg.Avoid[s.Name] {
				continue
			}
			if _, dup := z.ByName(s.Name); dup {
				continue
			}
			if err := z.Register(s); err != nil {
				continue // unbuildable geometry for this input shape: resample
			}
			registered = true
			break
		}
		if !registered {
			return nil, fmt.Errorf("nn: could not draw %d distinct buildable specs for %dx%dx%d (got %d)",
				cfg.Size, cfg.InH, cfg.InW, cfg.InC, z.Len())
		}
	}
	return z, nil
}

// Names returns the registered spec names in ID order — the Avoid set a
// disjoint second zoo is generated against.
func (z *Zoo) Names() map[string]bool {
	out := make(map[string]bool, z.Len())
	for _, s := range z.specs {
		out[s.Name] = true
	}
	return out
}
