package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Optimizer updates network parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update scaled by 1/batchSize and zeroes gradients.
	Step(n *Network, batchSize int)
	// Name identifies the algorithm for logs.
	Name() string
}

// Name implements Optimizer for SGD.
func (o *SGD) Name() string { return "sgd" }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*tensor.Tensor][]float32
	v map[*tensor.Tensor][]float32
}

// NewAdam constructs Adam with conventional defaults for zero fields
// (lr 0.001, β₁ 0.9, β₂ 0.999, ε 1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 0.001
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*tensor.Tensor][]float32{},
		v: map[*tensor.Tensor][]float32{},
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (o *Adam) Step(n *Network, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	o.t++
	inv := 1.0 / float64(batchSize)
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range n.Params() {
		m, ok := o.m[p.Value]
		if !ok {
			m = make([]float32, p.Value.Len())
			o.m[p.Value] = m
			o.v[p.Value] = make([]float32, p.Value.Len())
		}
		v := o.v[p.Value]
		for i := range p.Value.Data {
			g := float64(p.Grad.Data[i]) * inv
			m[i] = float32(o.Beta1*float64(m[i]) + (1-o.Beta1)*g)
			v[i] = float32(o.Beta2*float64(v[i]) + (1-o.Beta2)*g*g)
			mhat := float64(m[i]) / c1
			vhat := float64(v[i]) / c2
			p.Value.Data[i] -= float32(o.LR * mhat / (math.Sqrt(vhat) + o.Epsilon))
		}
		p.Grad.Zero()
	}
}

// LRSchedule maps an epoch index to a learning-rate multiplier.
type LRSchedule func(epoch int) float64

// ConstantLR keeps the base rate.
func ConstantLR() LRSchedule { return func(int) float64 { return 1 } }

// StepDecay halves the rate every `every` epochs.
func StepDecay(every int) LRSchedule {
	if every <= 0 {
		every = 1
	}
	return func(epoch int) float64 {
		return math.Pow(0.5, float64(epoch/every))
	}
}

// CosineDecay anneals from 1 to floor over total epochs.
func CosineDecay(total int, floor float64) LRSchedule {
	if total <= 1 {
		total = 1
	}
	return func(epoch int) float64 {
		if epoch >= total {
			return floor
		}
		cos := 0.5 * (1 + math.Cos(math.Pi*float64(epoch)/float64(total)))
		return floor + (1-floor)*cos
	}
}

// TrainWith fits the network using an arbitrary optimizer and optional
// learning-rate schedule; it generalizes Train (which remains the simple
// SGD entry point).
func TrainWith(n *Network, inputs []*tensor.Tensor, labels []int, opt Optimizer, cfg TrainConfig, sched LRSchedule) error {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return fmt.Errorf("nn: TrainWith needs parallel non-empty inputs/labels, got %d/%d", len(inputs), len(labels))
	}
	if opt == nil {
		return fmt.Errorf("nn: TrainWith needs an optimizer")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if sched == nil {
		sched = ConstantLR()
	}
	baseSGD, isSGD := opt.(*SGD)
	baseAdam, isAdam := opt.(*Adam)
	var baseLR float64
	switch {
	case isSGD:
		baseLR = baseSGD.LR
	case isAdam:
		baseLR = baseAdam.LR
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if baseLR > 0 {
			mult := sched(epoch)
			if isSGD {
				baseSGD.LR = baseLR * mult
			}
			if isAdam {
				baseAdam.LR = baseLR * mult
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss, correct := 0.0, 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				logits, err := n.Forward(inputs[idx])
				if err != nil {
					return err
				}
				cls, _ := logits.MaxIndex()
				if cls == labels[idx] {
					correct++
				}
				loss, grad, err := LossGrad(logits, labels[idx])
				if err != nil {
					return err
				}
				totalLoss += loss
				if err := n.Backward(grad); err != nil {
					return err
				}
			}
			opt.Step(n, end-start)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, totalLoss/float64(len(order)), float64(correct)/float64(len(order)))
		}
	}
	// Restore the caller's base rate.
	if isSGD {
		baseSGD.LR = baseLR
	}
	if isAdam {
		baseAdam.LR = baseLR
	}
	return nil
}
