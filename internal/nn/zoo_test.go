package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDefaultZooRegistersDistinctArchitectures(t *testing.T) {
	z, err := DefaultZoo(28, 28, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() < 6 {
		t.Fatalf("zoo has %d architectures, want >= 6", z.Len())
	}
	seenName := map[string]bool{}
	seenShape := map[[3]int]bool{} // (family-coded depth, width, layers) uniqueness proxy
	for i, s := range z.Specs() {
		if s.ID != i {
			t.Fatalf("spec %q has ID %d at position %d", s.Name, s.ID, i)
		}
		if seenName[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		seenName[s.Name] = true
		if s.Layers <= 0 || s.Depth <= 0 || s.Width <= 0 {
			t.Fatalf("spec %q missing metadata: %+v", s.Name, s)
		}
		key := [3]int{s.Depth, s.Width, s.Layers}
		if s.Family == "cnn" {
			key[0] += 100
		}
		if seenShape[key] {
			t.Fatalf("spec %q duplicates another architecture's shape %v", s.Name, key)
		}
		seenShape[key] = true
		byName, ok := z.ByName(s.Name)
		if !ok || byName.ID != s.ID {
			t.Fatalf("ByName(%q) = %+v, %v", s.Name, byName, ok)
		}
	}
	if _, ok := z.ByName("no-such-arch"); ok {
		t.Fatal("ByName resolved a non-existent spec")
	}
	if _, ok := z.ByID(z.Len()); ok {
		t.Fatal("ByID resolved an out-of-range id")
	}
}

func TestZooBuildDeterministic(t *testing.T) {
	z, err := DefaultZoo(28, 28, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range z.Specs() {
		a, err := z.Build(s.ID, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := z.Build(s.ID, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Layers) != s.Layers {
			t.Fatalf("%s: built %d layers, spec says %d", s.Name, len(a.Layers), s.Layers)
		}
		pa, pb := a.Params(), b.Params()
		if len(pa) != len(pb) {
			t.Fatalf("%s: param groups differ", s.Name)
		}
		for i := range pa {
			for j := range pa[i].Value.Data {
				if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
					t.Fatalf("%s: same seed produced different weights (%s[%d])", s.Name, pa[i].Name, j)
				}
			}
		}
		c, err := z.Build(s.ID, 43)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		pc := c.Params()
		for j := range pa[0].Value.Data {
			if pa[0].Value.Data[j] != pc[0].Value.Data[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical first-layer weights", s.Name)
		}
	}
}

func TestZooNetworksForward(t *testing.T) {
	z, err := DefaultZoo(28, 28, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(28, 28, 1)
	rng := rand.New(rand.NewSource(9))
	for i := range img.Data {
		img.Data[i] = float32(rng.Float64())
	}
	for _, s := range z.Specs() {
		net, err := z.Build(s.ID, 7)
		if err != nil {
			t.Fatal(err)
		}
		cls, probs, err := net.Predict(img)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if cls < 0 || cls >= 10 || probs.Len() != 10 {
			t.Fatalf("%s: prediction %d over %d probs", s.Name, cls, probs.Len())
		}
	}
}

func TestZooRegisterValidation(t *testing.T) {
	z := NewZoo()
	if err := z.Register(Spec{Name: "", Build: nil}); err == nil {
		t.Fatal("empty spec accepted")
	}
	bad := Spec{Name: "bad", Build: func(rng *rand.Rand) (*Network, error) {
		return BuildMLP(MLPArch{Name: "bad", InH: 0, InW: 0, InC: 0, Classes: 10}, rng)
	}}
	if err := z.Register(bad); err == nil {
		t.Fatal("unbuildable spec accepted")
	}
	ok := Spec{Name: "ok", Family: "mlp", Depth: 1, Width: 8, Build: func(rng *rand.Rand) (*Network, error) {
		return BuildMLP(MLPArch{Name: "ok", InH: 4, InW: 4, InC: 1, Hidden: []int{8}, Classes: 2}, rng)
	}}
	if err := z.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := z.Register(ok); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := z.Build(99, 1); err == nil {
		t.Fatal("Build of unknown id accepted")
	}
}

func TestBuildConvNetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildConvNet(ConvNetArch{InH: 8, InW: 8, InC: 1, Channels: []int{4}, Kernel: 3, Classes: 1}, rng); err == nil {
		t.Fatal("single-class convnet accepted")
	}
	if _, err := BuildConvNet(ConvNetArch{InH: 8, InW: 8, InC: 1, Kernel: 3, Classes: 10}, rng); err == nil {
		t.Fatal("convnet without conv blocks accepted")
	}
	if _, err := BuildConvNet(ConvNetArch{InH: 8, InW: 8, InC: 1, Channels: []int{4}, Classes: 10}, rng); err == nil {
		t.Fatal("zero kernel accepted")
	}
}
