package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Network is a sequential stack of layers ending in logits; softmax is
// applied by the loss (training) or by Predict (inference).
type Network struct {
	InShape []int
	Layers  []Layer
	Classes int
}

// Arch describes one of the two CNN architectures from the paper's
// evaluation: a small convnet for the MNIST-like dataset and a slightly
// larger one for the CIFAR-like dataset.
type Arch struct {
	Name          string
	InH, InW, InC int
	Conv1, Conv2  int // output channels of the two conv blocks
	Kernel        int
	Classes       int
}

// MNISTArch is the reference architecture for 28×28×1 digit images.
func MNISTArch() Arch {
	return Arch{Name: "mnist-cnn", InH: 28, InW: 28, InC: 1, Conv1: 8, Conv2: 16, Kernel: 3, Classes: 10}
}

// CIFARArch is the reference architecture for 32×32×3 colour images.
func CIFARArch() Arch {
	return Arch{Name: "cifar-cnn", InH: 32, InW: 32, InC: 3, Conv1: 16, Conv2: 32, Kernel: 3, Classes: 10}
}

// Build constructs the conv-relu-pool ×2 + dense network for the
// architecture, with weights drawn from rng.
func Build(a Arch, rng *rand.Rand) (*Network, error) {
	if a.Classes <= 1 {
		return nil, fmt.Errorf("nn: architecture needs at least 2 classes, got %d", a.Classes)
	}
	var layers []Layer

	g1 := tensor.ConvGeom{InH: a.InH, InW: a.InW, InC: a.InC, K: a.Kernel, Stride: 1, Pad: 0, OutC: a.Conv1}
	c1, err := NewConv2D(g1, rng)
	if err != nil {
		return nil, fmt.Errorf("nn: conv1: %w", err)
	}
	layers = append(layers, c1, NewReLU(c1.OutShape()))
	p1, err := NewMaxPool2(c1.OutShape())
	if err != nil {
		return nil, fmt.Errorf("nn: pool1: %w", err)
	}
	layers = append(layers, p1)

	s1 := p1.OutShape()
	g2 := tensor.ConvGeom{InH: s1[0], InW: s1[1], InC: s1[2], K: a.Kernel, Stride: 1, Pad: 0, OutC: a.Conv2}
	c2, err := NewConv2D(g2, rng)
	if err != nil {
		return nil, fmt.Errorf("nn: conv2: %w", err)
	}
	layers = append(layers, c2, NewReLU(c2.OutShape()))
	p2, err := NewMaxPool2(c2.OutShape())
	if err != nil {
		return nil, fmt.Errorf("nn: pool2: %w", err)
	}
	layers = append(layers, p2)

	flat := NewFlatten(p2.OutShape())
	layers = append(layers, flat)
	d, err := NewDense(flat.OutShape()[0], a.Classes, rng)
	if err != nil {
		return nil, fmt.Errorf("nn: dense: %w", err)
	}
	layers = append(layers, d)

	return &Network{InShape: []int{a.InH, a.InW, a.InC}, Layers: layers, Classes: a.Classes}, nil
}

// Forward runs the network on one sample and returns the logits.
func (n *Network) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	x := in
	for _, l := range n.Layers {
		var err error
		x, err = l.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: forward through %s: %w", l.Name(), err)
		}
	}
	return x, nil
}

// Predict returns the argmax class and the softmax probabilities.
func (n *Network) Predict(in *tensor.Tensor) (int, *tensor.Tensor, error) {
	logits, err := n.Forward(in)
	if err != nil {
		return 0, nil, err
	}
	probs := tensor.Softmax(logits)
	cls, _ := probs.MaxIndex()
	return cls, probs, nil
}

// Backward runs backprop from dL/d(logits) through the whole stack.
func (n *Network) Backward(gradLogits *tensor.Tensor) error {
	g := gradLogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		var err error
		g, err = n.Layers[i].Backward(g)
		if err != nil {
			return fmt.Errorf("nn: backward through %s: %w", n.Layers[i].Name(), err)
		}
	}
	return nil
}

// Params returns all parameter/gradient pairs in layer order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// LossGrad computes softmax cross-entropy loss for one sample and the
// gradient with respect to the logits (probs - onehot).
func LossGrad(logits *tensor.Tensor, label int) (float64, *tensor.Tensor, error) {
	if label < 0 || label >= logits.Len() {
		return 0, nil, fmt.Errorf("nn: label %d out of range for %d logits", label, logits.Len())
	}
	probs := tensor.Softmax(logits)
	p := float64(probs.Data[label])
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(p)
	grad := probs.Clone()
	grad.Data[label] -= 1
	return loss, grad, nil
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*tensor.Tensor][]float32
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*tensor.Tensor][]float32{}}
}

// Step applies one update to every parameter given its accumulated
// gradient scaled by 1/batchSize, then zeroes the gradients.
func (o *SGD) Step(n *Network, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	inv := float32(1.0 / float64(batchSize))
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range n.Params() {
		vel, ok := o.velocity[p.Value]
		if !ok {
			vel = make([]float32, p.Value.Len())
			o.velocity[p.Value] = vel
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]*inv + wd*p.Value.Data[i]
			vel[i] = mu*vel[i] - lr*g
			p.Value.Data[i] += vel[i]
		}
		p.Grad.Zero()
	}
}

// TrainConfig bundles the training hyperparameters.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      int64
	// Progress, when non-nil, receives per-epoch loss and accuracy.
	Progress func(epoch int, loss, acc float64)
}

// Train fits the network on the given samples with SGD. Inputs and labels
// must be parallel slices; inputs are single samples (no batch dim).
func Train(n *Network, inputs []*tensor.Tensor, labels []int, cfg TrainConfig) error {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return fmt.Errorf("nn: Train needs parallel non-empty inputs/labels, got %d/%d", len(inputs), len(labels))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, 0)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss, correct := 0.0, 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				logits, err := n.Forward(inputs[idx])
				if err != nil {
					return err
				}
				cls, _ := logits.MaxIndex()
				if cls == labels[idx] {
					correct++
				}
				loss, grad, err := LossGrad(logits, labels[idx])
				if err != nil {
					return err
				}
				totalLoss += loss
				if err := n.Backward(grad); err != nil {
					return err
				}
			}
			opt.Step(n, end-start)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, totalLoss/float64(len(order)), float64(correct)/float64(len(order)))
		}
	}
	return nil
}

// Accuracy evaluates classification accuracy on a labelled set.
func Accuracy(n *Network, inputs []*tensor.Tensor, labels []int) (float64, error) {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return 0, fmt.Errorf("nn: Accuracy needs parallel non-empty inputs/labels")
	}
	correct := 0
	for i, in := range inputs {
		cls, _, err := n.Predict(in)
		if err != nil {
			return 0, err
		}
		if cls == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(inputs)), nil
}

// modelFile is the gob wire format for a trained network. Only weights and
// the architecture are persisted; optimizer state is not.
type modelFile struct {
	Arch    Arch
	Tensors map[string][]float32
}

// SaveModel serializes the network (built from arch) to w.
func SaveModel(w io.Writer, a Arch, n *Network) error {
	mf := modelFile{Arch: a, Tensors: map[string][]float32{}}
	for _, p := range n.Params() {
		mf.Tensors[p.Name] = p.Value.Data
	}
	if err := gob.NewEncoder(w).Encode(&mf); err != nil {
		return fmt.Errorf("nn: encoding model: %w", err)
	}
	return nil
}

// LoadModel rebuilds a network from a stream written by SaveModel.
func LoadModel(r io.Reader) (Arch, *Network, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return Arch{}, nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	n, err := Build(mf.Arch, rand.New(rand.NewSource(0)))
	if err != nil {
		return Arch{}, nil, err
	}
	for _, p := range n.Params() {
		data, ok := mf.Tensors[p.Name]
		if !ok {
			return Arch{}, nil, fmt.Errorf("nn: model file missing tensor %q", p.Name)
		}
		if len(data) != p.Value.Len() {
			return Arch{}, nil, fmt.Errorf("nn: tensor %q has %d values, want %d", p.Name, len(data), p.Value.Len())
		}
		copy(p.Value.Data, data)
	}
	return mf.Arch, n, nil
}
