package nn

import (
	"reflect"
	"testing"
)

func genNames(t *testing.T, cfg ZooGenConfig) []string {
	t.Helper()
	z, err := GenerateZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range z.Specs() {
		names = append(names, s.Name)
	}
	return names
}

func TestGenerateZooDeterministic(t *testing.T) {
	cfg := ZooGenConfig{InH: 28, InW: 28, InC: 1, Classes: 10, Size: 8, Seed: 41}
	a := genNames(t, cfg)
	b := genNames(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config generated different zoos:\n%v\n%v", a, b)
	}
	if len(a) != 8 {
		t.Fatalf("generated %d specs, want 8", len(a))
	}
	seen := map[string]bool{}
	for _, n := range a {
		if seen[n] {
			t.Fatalf("duplicate spec %q in generated zoo", n)
		}
		seen[n] = true
	}
	c := genNames(t, ZooGenConfig{InH: 28, InW: 28, InC: 1, Classes: 10, Size: 8, Seed: 42})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical zoos")
	}
}

func TestGenerateZooAvoidsNames(t *testing.T) {
	cfg := ZooGenConfig{InH: 28, InW: 28, InC: 1, Classes: 10, Size: 6, Seed: 7}
	train, err := GenerateZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := GenerateZoo(ZooGenConfig{InH: 28, InW: 28, InC: 1, Classes: 10,
		Size: 6, Seed: 8, Avoid: train.Names()})
	if err != nil {
		t.Fatal(err)
	}
	trained := train.Names()
	for name := range hold.Names() {
		if trained[name] {
			t.Fatalf("avoided name %q regenerated", name)
		}
	}
}

// TestGenerateZooCoversKinds: zoos of size ≥ 2 must expose every
// observable layer kind (conv/relu/pool/dense), which the forced pooled
// CNN + MLP slots guarantee.
func TestGenerateZooCoversKinds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		z, err := GenerateZoo(ZooGenConfig{InH: 28, InW: 28, InC: 1, Classes: 10, Size: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var pooledCNN, mlp bool
		for _, s := range z.Specs() {
			if s.Family == "cnn" && s.Pool {
				pooledCNN = true
			}
			if s.Family == "mlp" {
				mlp = true
			}
		}
		if !pooledCNN || !mlp {
			t.Fatalf("seed %d: zoo lacks pooled CNN (%v) or MLP (%v)", seed, pooledCNN, mlp)
		}
	}
}

// TestGenerateZooBuildsDeterministically: every generated spec builds, and
// Zoo.Build from the same seed yields identical weights.
func TestGenerateZooBuildsDeterministically(t *testing.T) {
	z, err := GenerateZoo(ZooGenConfig{InH: 12, InW: 12, InC: 1, Classes: 4, Size: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range z.Specs() {
		a, err := z.Build(s.ID, 99)
		if err != nil {
			t.Fatalf("spec %s does not build: %v", s.Name, err)
		}
		b, err := z.Build(s.ID, 99)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Layers) != s.Layers {
			t.Fatalf("%s built %d layers, spec says %d", s.Name, len(a.Layers), s.Layers)
		}
		ap, bp := a.Params(), b.Params()
		for i := range ap {
			if !reflect.DeepEqual(ap[i].Value.Data, bp[i].Value.Data) {
				t.Fatalf("%s: weights differ across identical builds", s.Name)
			}
		}
	}
}

func TestGenerateZooRejectsBadConfig(t *testing.T) {
	if _, err := GenerateZoo(ZooGenConfig{Size: 0, InH: 28, InW: 28, InC: 1, Classes: 10}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := GenerateZoo(ZooGenConfig{Size: 3, InH: 0, InW: 28, InC: 1, Classes: 10}); err == nil {
		t.Fatal("zero input height accepted")
	}
	if _, err := GenerateZoo(ZooGenConfig{Size: 3, InH: 28, InW: 28, InC: 1, Classes: 1}); err == nil {
		t.Fatal("single class accepted")
	}
}

// TestZooInfos: the serializable metadata mirrors the registered specs.
func TestZooInfos(t *testing.T) {
	z, err := DefaultZoo(28, 28, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	infos := z.Infos()
	if len(infos) != z.Len() {
		t.Fatalf("%d infos for %d specs", len(infos), z.Len())
	}
	for i, s := range z.Specs() {
		in := infos[i]
		if in.ID != s.ID || in.Name != s.Name || in.Family != s.Family ||
			in.Depth != s.Depth || in.Width != s.Width || in.Pool != s.Pool || in.Layers != s.Layers {
			t.Fatalf("info %d = %+v, spec = %+v", i, in, s)
		}
	}
}
