package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestConv2DForwardShape(t *testing.T) {
	g := tensor.ConvGeom{InH: 8, InW: 8, InC: 2, K: 3, Stride: 1, Pad: 0, OutC: 4}
	c, err := NewConv2D(g, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Forward(tensor.New(8, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 6 || out.Shape[1] != 6 || out.Shape[2] != 4 {
		t.Fatalf("conv out shape = %v, want [6 6 4]", out.Shape)
	}
}

func TestConv2DRejectsBadInput(t *testing.T) {
	g := tensor.ConvGeom{InH: 8, InW: 8, InC: 2, K: 3, Stride: 1, OutC: 4}
	c, _ := NewConv2D(g, testRNG())
	if _, err := c.Forward(tensor.New(4, 4, 2)); err == nil {
		t.Fatal("conv accepted wrong input volume")
	}
	if _, err := c.Backward(tensor.New(6, 6, 4)); err == nil {
		t.Fatal("conv Backward before Forward accepted")
	}
}

func TestDenseForwardBackwardShapes(t *testing.T) {
	d, err := NewDense(10, 4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Forward(tensor.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("dense out = %d, want 4", out.Len())
	}
	dIn, err := d.Backward(tensor.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if dIn.Len() != 10 {
		t.Fatalf("dense dIn = %d, want 10", dIn.Len())
	}
	if _, err := NewDense(0, 4, testRNG()); err == nil {
		t.Fatal("dense accepted zero input dim")
	}
}

// numericalGrad estimates dLoss/dparam[i] with central differences.
func numericalGrad(t *testing.T, n *Network, in *tensor.Tensor, label int, p *tensor.Tensor, i int) float64 {
	t.Helper()
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	lp, _, err := forwardLoss(n, in, label)
	if err != nil {
		t.Fatal(err)
	}
	p.Data[i] = orig - eps
	lm, _, err := forwardLoss(n, in, label)
	if err != nil {
		t.Fatal(err)
	}
	p.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

func forwardLoss(n *Network, in *tensor.Tensor, label int) (float64, *tensor.Tensor, error) {
	logits, err := n.Forward(in)
	if err != nil {
		return 0, nil, err
	}
	loss, grad, err := LossGrad(logits, label)
	return loss, grad, err
}

// TestGradientsMatchNumerical is the core correctness check for backprop: a
// tiny full network's analytic gradients must match finite differences.
func TestGradientsMatchNumerical(t *testing.T) {
	rng := testRNG()
	arch := Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 3, Kernel: 3, Classes: 3}
	n, err := Build(arch, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(12, 12, 1)
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	label := 1

	n.ZeroGrads()
	_, grad, err := forwardLoss(n, in, label)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Backward(grad); err != nil {
		t.Fatal(err)
	}

	for _, p := range n.Params() {
		// Spot-check a handful of indices per parameter tensor.
		idxs := []int{0, p.Value.Len() / 2, p.Value.Len() - 1}
		for _, i := range idxs {
			want := numericalGrad(t, n, in, label, p.Value, i)
			got := float64(p.Grad.Data[i])
			if math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %v, numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestLossGradProperties(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{2, -1, 0.5}, 3)
	loss, grad, err := LossGrad(logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	// Gradient components sum to zero (probs sum 1, one-hot sums 1).
	if s := grad.Sum(); math.Abs(s) > 1e-5 {
		t.Fatalf("grad sum = %v, want 0", s)
	}
	// Gradient at the true label is negative.
	if grad.Data[0] >= 0 {
		t.Fatalf("grad at true label = %v, want < 0", grad.Data[0])
	}
	if _, _, err := LossGrad(logits, 5); err == nil {
		t.Fatal("LossGrad accepted out-of-range label")
	}
}

func TestBuildArchitectures(t *testing.T) {
	for _, arch := range []Arch{MNISTArch(), CIFARArch()} {
		n, err := Build(arch, testRNG())
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		in := tensor.New(arch.InH, arch.InW, arch.InC)
		logits, err := n.Forward(in)
		if err != nil {
			t.Fatalf("%s forward: %v", arch.Name, err)
		}
		if logits.Len() != arch.Classes {
			t.Fatalf("%s logits = %d, want %d", arch.Name, logits.Len(), arch.Classes)
		}
		if n.ParamCount() == 0 {
			t.Fatalf("%s has no parameters", arch.Name)
		}
	}
	if _, err := Build(Arch{Name: "bad", InH: 8, InW: 8, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 1}, testRNG()); err == nil {
		t.Fatal("Build accepted 1-class arch")
	}
}

func TestTrainLearnsSeparableProblem(t *testing.T) {
	// Two trivially separable classes: bright top half vs bright bottom half.
	rng := testRNG()
	arch := Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 2}
	n, err := Build(arch, rng)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []*tensor.Tensor
	var labels []int
	for i := 0; i < 120; i++ {
		img := tensor.New(12, 12, 1)
		cls := i % 2
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				v := rng.Float32() * 0.2
				if (cls == 0 && y < 6) || (cls == 1 && y >= 6) {
					v += 0.8
				}
				img.Set(v, y, x, 0)
			}
		}
		inputs = append(inputs, img)
		labels = append(labels, cls)
	}
	err = Train(n, inputs, labels, TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(n, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("training accuracy = %v, want >= 0.95 on separable data", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	n, err := Build(Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := Train(n, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("Train accepted empty dataset")
	}
	if err := Train(n, []*tensor.Tensor{tensor.New(12, 12, 1)}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("Train accepted mismatched inputs/labels")
	}
	if _, err := Accuracy(n, nil, nil); err == nil {
		t.Fatal("Accuracy accepted empty dataset")
	}
}

func TestSGDMomentumMovesParams(t *testing.T) {
	n, err := Build(Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	before := n.Params()[0].Value.Clone()
	in := tensor.New(12, 12, 1)
	for i := range in.Data {
		in.Data[i] = 0.5
	}
	_, grad, err := forwardLoss(n, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Backward(grad); err != nil {
		t.Fatal(err)
	}
	NewSGD(0.1, 0.9, 0).Step(n, 1)
	after := n.Params()[0].Value
	moved := false
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("SGD step did not change parameters")
	}
	// Gradients are zeroed after a step.
	for _, p := range n.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("gradient not zeroed after Step")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	arch := Arch{Name: "t", InH: 10, InW: 10, InC: 1, Conv1: 3, Conv2: 4, Kernel: 3, Classes: 4}
	n, err := Build(arch, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, arch, n); err != nil {
		t.Fatal(err)
	}
	arch2, n2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if arch2.Name != arch.Name || arch2.Classes != arch.Classes {
		t.Fatalf("arch round-trip mismatch: %+v vs %+v", arch2, arch)
	}
	// Same input must produce identical logits.
	in := tensor.New(10, 10, 1)
	rng := rand.New(rand.NewSource(9))
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	l1, err := n.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := n2.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1.Data {
		if l1.Data[i] != l2.Data[i] {
			t.Fatalf("logits differ after round trip at %d: %v vs %v", i, l1.Data[i], l2.Data[i])
		}
	}
}

func TestLoadModelCorruptStream(t *testing.T) {
	if _, _, err := LoadModel(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("LoadModel accepted garbage")
	}
}

func TestQuickReLUBackwardMask(t *testing.T) {
	// Gradient passes exactly where forward input was >= 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		r := NewReLU([]int{n})
		in := tensor.New(n)
		for i := range in.Data {
			in.Data[i] = rng.Float32()*4 - 2
		}
		if _, err := r.Forward(in); err != nil {
			return false
		}
		g := tensor.New(n)
		for i := range g.Data {
			g.Data[i] = 1
		}
		dIn, err := r.Backward(g)
		if err != nil {
			return false
		}
		for i := range in.Data {
			want := float32(1)
			if in.Data[i] < 0 {
				want = 0
			}
			if dIn.Data[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPoolBackwardConservesMass(t *testing.T) {
	// Sum of pooled-gradient scatter equals sum of incoming gradient.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w, c := 2+2*rng.Intn(4), 2+2*rng.Intn(4), 1+rng.Intn(3)
		p, err := NewMaxPool2([]int{h, w, c})
		if err != nil {
			return false
		}
		in := tensor.New(h, w, c)
		for i := range in.Data {
			in.Data[i] = rng.Float32()
		}
		out, err := p.Forward(in)
		if err != nil {
			return false
		}
		g := tensor.New(out.Shape...)
		for i := range g.Data {
			g.Data[i] = rng.Float32()
		}
		dIn, err := p.Backward(g)
		if err != nil {
			return false
		}
		return math.Abs(dIn.Sum()-g.Sum()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
