// Package nn implements the convolutional neural network substrate: layers
// with forward and backward passes, a sequential network container, softmax
// cross-entropy training with SGD+momentum, and gob model serialization.
//
// The paper under reproduction runs a TensorFlow CNN; this package replaces
// it with a from-scratch implementation so the instrumented side-channel
// execution (package instrument) can walk real trained weights.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one stage of a sequential network.
//
// Forward consumes the previous layer's output and caches whatever it needs
// for Backward. Backward consumes dL/d(output) and returns dL/d(input),
// accumulating parameter gradients internally.
type Layer interface {
	// Name returns a short identifier used in diagnostics and model files.
	Name() string
	// OutShape returns the output shape for the configured input shape.
	OutShape() []int
	// Forward runs the layer on one sample (no batch dimension).
	Forward(in *tensor.Tensor) (*tensor.Tensor, error)
	// Backward propagates the gradient; must be called after Forward.
	Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns parameter/gradient pairs; empty for stateless layers.
	Params() []Param
}

// Param couples a parameter tensor with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Conv2D is a 2-D convolution layer with HWC input, square kernels, and a
// bias per output channel. Filters are stored as {K*K*InC, OutC} so the
// forward pass is im2col + matmul.
type Conv2D struct {
	Geom   tensor.ConvGeom
	Filter *tensor.Tensor // {K*K*InC, OutC}
	Bias   *tensor.Tensor // {OutC}

	gFilter *tensor.Tensor
	gBias   *tensor.Tensor
	colBuf  []float32 // cached im2col of the last input
	lastIn  *tensor.Tensor
}

// NewConv2D constructs a convolution layer with He-initialized weights
// drawn from rng.
func NewConv2D(g tensor.ConvGeom, rng *rand.Rand) (*Conv2D, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	fanIn := g.K * g.K * g.InC
	std := math.Sqrt(2.0 / float64(fanIn))
	filt := tensor.New(fanIn, g.OutC)
	for i := range filt.Data {
		filt.Data[i] = float32(rng.NormFloat64() * std)
	}
	return &Conv2D{
		Geom:    g,
		Filter:  filt,
		Bias:    tensor.New(g.OutC),
		gFilter: tensor.New(fanIn, g.OutC),
		gBias:   tensor.New(g.OutC),
	}, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%dx%d", c.Geom.K, c.Geom.K, c.Geom.OutC) }

// OutShape implements Layer.
func (c *Conv2D) OutShape() []int { return []int{c.Geom.OutH(), c.Geom.OutW(), c.Geom.OutC} }

// Forward implements Layer.
func (c *Conv2D) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	g := c.Geom
	if in.Len() != g.InH*g.InW*g.InC {
		return nil, fmt.Errorf("nn: %s input volume %d, want %d", c.Name(), in.Len(), g.InH*g.InW*g.InC)
	}
	cols := g.K * g.K * g.InC
	oh, ow := g.OutH(), g.OutW()
	if len(c.colBuf) != oh*ow*cols {
		c.colBuf = make([]float32, oh*ow*cols)
	}
	tensor.Im2Col(c.colBuf, in.Data, g)
	out := tensor.New(oh, ow, g.OutC)
	tensor.MatMulInto(out.Data, c.colBuf, c.Filter.Data, oh*ow, cols, g.OutC)
	for i := 0; i < oh*ow; i++ {
		row := out.Data[i*g.OutC : (i+1)*g.OutC]
		for ch := range row {
			row[ch] += c.Bias.Data[ch]
		}
	}
	c.lastIn = in
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	if gradOut.Len() != oh*ow*g.OutC {
		return nil, fmt.Errorf("nn: %s gradOut volume %d, want %d", c.Name(), gradOut.Len(), oh*ow*g.OutC)
	}
	if c.lastIn == nil {
		return nil, fmt.Errorf("nn: %s Backward before Forward", c.Name())
	}
	cols := g.K * g.K * g.InC
	// dFilter += colsᵀ · gradOut   ({cols, oh*ow}·{oh*ow, OutC})
	df := make([]float32, cols*g.OutC)
	tensor.MatMulTransA(df, c.colBuf, gradOut.Data, cols, oh*ow, g.OutC)
	for i, v := range df {
		c.gFilter.Data[i] += v
	}
	// dBias += column sums of gradOut.
	for i := 0; i < oh*ow; i++ {
		row := gradOut.Data[i*g.OutC : (i+1)*g.OutC]
		for ch, v := range row {
			c.gBias.Data[ch] += v
		}
	}
	// dCols = gradOut · Filterᵀ; dIn = Col2Im(dCols).
	dCols := make([]float32, oh*ow*cols)
	tensor.MatMulTransB(dCols, gradOut.Data, c.Filter.Data, oh*ow, g.OutC, cols)
	dIn := tensor.New(g.InH, g.InW, g.InC)
	tensor.Col2Im(dIn.Data, dCols, g)
	return dIn, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []Param {
	return []Param{
		{Name: c.Name() + ".filter", Value: c.Filter, Grad: c.gFilter},
		{Name: c.Name() + ".bias", Value: c.Bias, Grad: c.gBias},
	}
}

// Dense is a fully connected layer: out = in·W + b with W {In, Out}.
type Dense struct {
	In, Out int
	W       *tensor.Tensor // {In, Out}
	B       *tensor.Tensor // {Out}

	gW, gB *tensor.Tensor
	lastIn *tensor.Tensor
}

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(in, out int, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense dims must be positive, got %d->%d", in, out)
	}
	std := math.Sqrt(2.0 / float64(in))
	w := tensor.New(in, out)
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64() * std)
	}
	return &Dense{In: in, Out: out, W: w, B: tensor.New(out), gW: tensor.New(in, out), gB: tensor.New(out)}, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense%dx%d", d.In, d.Out) }

// OutShape implements Layer.
func (d *Dense) OutShape() []int { return []int{d.Out} }

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Len() != d.In {
		return nil, fmt.Errorf("nn: %s input volume %d, want %d", d.Name(), in.Len(), d.In)
	}
	out := tensor.New(d.Out)
	tensor.MatMulInto(out.Data, in.Data, d.W.Data, 1, d.In, d.Out)
	for i := range out.Data {
		out.Data[i] += d.B.Data[i]
	}
	d.lastIn = in
	return out, nil
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if gradOut.Len() != d.Out {
		return nil, fmt.Errorf("nn: %s gradOut volume %d, want %d", d.Name(), gradOut.Len(), d.Out)
	}
	if d.lastIn == nil {
		return nil, fmt.Errorf("nn: %s Backward before Forward", d.Name())
	}
	// dW += inᵀ·gradOut (outer product), dB += gradOut.
	for i := 0; i < d.In; i++ {
		iv := d.lastIn.Data[i]
		if iv == 0 {
			continue
		}
		row := d.gW.Data[i*d.Out : (i+1)*d.Out]
		for j, gv := range gradOut.Data {
			row[j] += iv * gv
		}
	}
	for j, gv := range gradOut.Data {
		d.gB.Data[j] += gv
	}
	// dIn = gradOut · Wᵀ.
	dIn := tensor.New(d.In)
	tensor.MatMulTransB(dIn.Data, gradOut.Data, d.W.Data, 1, d.Out, d.In)
	return dIn, nil
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: d.Name() + ".w", Value: d.W, Grad: d.gW},
		{Name: d.Name() + ".b", Value: d.B, Grad: d.gB},
	}
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	shape []int
	mask  []bool
}

// NewReLU constructs a ReLU for the given input shape.
func NewReLU(shape []int) *ReLU {
	return &ReLU{shape: append([]int(nil), shape...)}
}

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape() []int { return r.shape }

// Forward implements Layer.
func (r *ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	if len(r.mask) != len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if len(r.mask) != gradOut.Len() {
		return nil, fmt.Errorf("nn: relu Backward before Forward or shape changed")
	}
	dIn := gradOut.Clone()
	for i := range dIn.Data {
		if !r.mask[i] {
			dIn.Data[i] = 0
		}
	}
	return dIn, nil
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// MaxPool2 is 2×2/stride-2 max pooling over HWC input.
type MaxPool2 struct {
	inShape []int
	arg     []int32
}

// NewMaxPool2 constructs the pool for the given HWC input shape.
func NewMaxPool2(inShape []int) (*MaxPool2, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("nn: maxpool needs HWC input shape, got %v", inShape)
	}
	return &MaxPool2{inShape: append([]int(nil), inShape...)}, nil
}

// Name implements Layer.
func (m *MaxPool2) Name() string { return "maxpool2" }

// OutShape implements Layer.
func (m *MaxPool2) OutShape() []int {
	return []int{m.inShape[0] / 2, m.inShape[1] / 2, m.inShape[2]}
}

// Forward implements Layer.
func (m *MaxPool2) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out, arg, err := tensor.MaxPool2(in)
	if err != nil {
		return nil, err
	}
	m.arg = arg
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if m.arg == nil {
		return nil, fmt.Errorf("nn: maxpool Backward before Forward")
	}
	if gradOut.Len() != len(m.arg) {
		return nil, fmt.Errorf("nn: maxpool gradOut volume %d, want %d", gradOut.Len(), len(m.arg))
	}
	dIn := tensor.New(m.inShape...)
	for o, src := range m.arg {
		dIn.Data[src] += gradOut.Data[o]
	}
	return dIn, nil
}

// Params implements Layer.
func (m *MaxPool2) Params() []Param { return nil }

// Flatten reshapes an HWC tensor to rank-1. It exists so the network's
// layer list mirrors the textbook CNN architecture.
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flatten stage for the given input shape.
func NewFlatten(inShape []int) *Flatten {
	return &Flatten{inShape: append([]int(nil), inShape...)}
}

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape() []int { return []int{tensor.Volume(f.inShape)} }

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return in.Reshape(in.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	return gradOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []Param { return nil }
