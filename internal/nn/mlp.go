package nn

import (
	"fmt"
	"math/rand"
)

// MLPArch describes a fully connected network (flatten → dense/ReLU stack
// → dense). The paper's conclusion asks about "other deep learning
// models"; the MLP is the natural first comparison point — it exercises
// the dense sparsity-skip kernel without any convolutional structure.
type MLPArch struct {
	Name          string
	InH, InW, InC int
	Hidden        []int
	Classes       int
}

// MNISTMLPArch is a two-hidden-layer MLP for 28×28×1 images.
func MNISTMLPArch() MLPArch {
	return MLPArch{Name: "mnist-mlp", InH: 28, InW: 28, InC: 1, Hidden: []int{128, 64}, Classes: 10}
}

// BuildMLP constructs the network for an MLP architecture.
func BuildMLP(a MLPArch, rng *rand.Rand) (*Network, error) {
	if a.Classes <= 1 {
		return nil, fmt.Errorf("nn: MLP needs at least 2 classes, got %d", a.Classes)
	}
	if a.InH <= 0 || a.InW <= 0 || a.InC <= 0 {
		return nil, fmt.Errorf("nn: MLP input dims must be positive: %dx%dx%d", a.InH, a.InW, a.InC)
	}
	inShape := []int{a.InH, a.InW, a.InC}
	var layers []Layer
	flat := NewFlatten(inShape)
	layers = append(layers, flat)
	in := flat.OutShape()[0]
	for i, h := range a.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("nn: MLP hidden layer %d has size %d", i, h)
		}
		d, err := NewDense(in, h, rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, d, NewReLU([]int{h}))
		in = h
	}
	out, err := NewDense(in, a.Classes, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, out)
	return &Network{InShape: inShape, Layers: layers, Classes: a.Classes}, nil
}

// Validate checks an MLP architecture without building it.
func (a MLPArch) Validate() error {
	_, err := BuildMLP(a, rand.New(rand.NewSource(0)))
	return err
}
