package nn

// The model zoo: the registry of candidate architectures the
// architecture-fingerprinting stage (internal/archid) discriminates
// between. CSI-NN (Batina et al.) demonstrates that layer counts and
// hyper-parameters of a deployed network are recoverable from side
// channels; the zoo provides the hypothesis space for that attack — a set
// of plausible deployments differing along exactly the axes the paper's
// threat model cares about: depth (MLP layer count, CNN conv-block
// count), width (hidden sizes, conv channels) and topology (pooling on or
// off).
//
// Construction is deterministic: Zoo.Build derives every weight from the
// caller's seed alone, so two processes (or two pipeline shards) that
// build the same spec from the same seed hold bit-identical networks.

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Spec is one registered architecture: an identifier (the class label of
// the archid stage), human-readable metadata, and a deterministic builder.
type Spec struct {
	// ID is the architecture's class label, assigned by registration order.
	ID int
	// Name identifies the architecture ("mlp-128-64", "cnn-8-16", ...).
	Name string
	// Family is the coarse topology family ("mlp" or "cnn").
	Family string
	// Depth/Width/Pool summarize the fingerprintable hyper-parameters:
	// Depth counts weight layers (dense + conv), Width is the dominant
	// hidden size or channel count, Pool reports pooling presence.
	Depth, Width int
	Pool         bool
	// Layers is the length of the built layer stack (what per-layer
	// attribution observes).
	Layers int
	// Build constructs the network with weights drawn from rng.
	Build func(rng *rand.Rand) (*Network, error)
}

// Zoo is an ordered registry of architecture specs.
type Zoo struct {
	specs  []Spec
	byName map[string]int
}

// NewZoo creates an empty registry.
func NewZoo() *Zoo { return &Zoo{byName: map[string]int{}} }

// Register adds a spec under the next free ID. Names must be unique; the
// build function is probed once (with a throwaway RNG) so a malformed
// architecture fails at registration, not mid-campaign.
func (z *Zoo) Register(s Spec) error {
	if s.Name == "" || s.Build == nil {
		return fmt.Errorf("nn: zoo spec needs a name and a build function")
	}
	if _, dup := z.byName[s.Name]; dup {
		return fmt.Errorf("nn: duplicate zoo spec %q", s.Name)
	}
	net, err := s.Build(rand.New(rand.NewSource(0)))
	if err != nil {
		return fmt.Errorf("nn: zoo spec %q does not build: %w", s.Name, err)
	}
	s.ID = len(z.specs)
	s.Layers = len(net.Layers)
	z.byName[s.Name] = s.ID
	z.specs = append(z.specs, s)
	return nil
}

// Specs returns the registered architectures in ID order.
func (z *Zoo) Specs() []Spec { return z.specs }

// Len returns the number of registered architectures.
func (z *Zoo) Len() int { return len(z.specs) }

// ByName resolves a spec by name.
func (z *Zoo) ByName(name string) (Spec, bool) {
	id, ok := z.byName[name]
	if !ok {
		return Spec{}, false
	}
	return z.specs[id], true
}

// ByID resolves a spec by class label.
func (z *Zoo) ByID(id int) (Spec, bool) {
	if id < 0 || id >= len(z.specs) {
		return Spec{}, false
	}
	return z.specs[id], true
}

// Build constructs the identified architecture with weights derived from
// seed alone — the deterministic construction the archid pipeline's
// worker-invariance guarantee rests on.
func (z *Zoo) Build(id int, seed int64) (*Network, error) {
	s, ok := z.ByID(id)
	if !ok {
		return nil, fmt.Errorf("nn: zoo has no architecture %d", id)
	}
	return s.Build(rand.New(rand.NewSource(seed)))
}

// SpecInfo is the serializable metadata of one zoo architecture (the Spec
// minus its build closure), as reported in campaign results and goldens by
// the fingerprinting and topology-recovery stages.
type SpecInfo struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Family string `json:"family"`
	Depth  int    `json:"depth"`
	Width  int    `json:"width"`
	Pool   bool   `json:"pool"`
	Layers int    `json:"layers"`
}

// Infos returns the registered architectures' serializable metadata in ID
// order.
func (z *Zoo) Infos() []SpecInfo {
	out := make([]SpecInfo, 0, z.Len())
	for _, s := range z.specs {
		out = append(out, SpecInfo{ID: s.ID, Name: s.Name, Family: s.Family,
			Depth: s.Depth, Width: s.Width, Pool: s.Pool, Layers: s.Layers})
	}
	return out
}

// ConvNetArch is the generalized convolutional architecture behind the
// zoo's CNN variants: Channels[i] output channels per conv block, each
// block conv→ReLU(→2×2 pool when Pool), then flatten→dense.
type ConvNetArch struct {
	Name          string
	InH, InW, InC int
	Channels      []int
	Kernel        int
	Pool          bool
	Classes       int
}

// BuildConvNet constructs the network for a generalized CNN architecture.
func BuildConvNet(a ConvNetArch, rng *rand.Rand) (*Network, error) {
	if a.Classes <= 1 {
		return nil, fmt.Errorf("nn: convnet needs at least 2 classes, got %d", a.Classes)
	}
	if len(a.Channels) == 0 {
		return nil, fmt.Errorf("nn: convnet needs at least one conv block")
	}
	if a.Kernel <= 0 {
		return nil, fmt.Errorf("nn: convnet kernel must be positive, got %d", a.Kernel)
	}
	var layers []Layer
	inH, inW, inC := a.InH, a.InW, a.InC
	for i, outC := range a.Channels {
		g := tensor.ConvGeom{InH: inH, InW: inW, InC: inC, K: a.Kernel, Stride: 1, Pad: 0, OutC: outC}
		c, err := NewConv2D(g, rng)
		if err != nil {
			return nil, fmt.Errorf("nn: conv block %d: %w", i, err)
		}
		layers = append(layers, c, NewReLU(c.OutShape()))
		s := c.OutShape()
		if a.Pool {
			p, err := NewMaxPool2(s)
			if err != nil {
				return nil, fmt.Errorf("nn: pool block %d: %w", i, err)
			}
			layers = append(layers, p)
			s = p.OutShape()
		}
		inH, inW, inC = s[0], s[1], s[2]
	}
	flat := NewFlatten([]int{inH, inW, inC})
	layers = append(layers, flat)
	d, err := NewDense(flat.OutShape()[0], a.Classes, rng)
	if err != nil {
		return nil, fmt.Errorf("nn: dense: %w", err)
	}
	layers = append(layers, d)
	return &Network{InShape: []int{a.InH, a.InW, a.InC}, Layers: layers, Classes: a.Classes}, nil
}

// DefaultZoo registers the reference hypothesis space for an input shape:
// seven architectures spanning MLP depth/width, CNN conv count and
// channel width, and pooling on/off. All specs share the input shape and
// class count, so one dataset serves every candidate deployment.
func DefaultZoo(inH, inW, inC, classes int) (*Zoo, error) {
	z := NewZoo()
	mlp := func(name string, hidden ...int) Spec {
		a := MLPArch{Name: name, InH: inH, InW: inW, InC: inC, Hidden: hidden, Classes: classes}
		width := 0
		for _, h := range hidden {
			if h > width {
				width = h
			}
		}
		return Spec{
			Name: name, Family: "mlp", Depth: len(hidden) + 1, Width: width,
			Build: func(rng *rand.Rand) (*Network, error) { return BuildMLP(a, rng) },
		}
	}
	cnn := func(name string, pool bool, channels ...int) Spec {
		a := ConvNetArch{Name: name, InH: inH, InW: inW, InC: inC,
			Channels: channels, Kernel: 3, Pool: pool, Classes: classes}
		width := 0
		for _, c := range channels {
			if c > width {
				width = c
			}
		}
		return Spec{
			Name: name, Family: "cnn", Depth: len(channels) + 1, Width: width, Pool: pool,
			Build: func(rng *rand.Rand) (*Network, error) { return BuildConvNet(a, rng) },
		}
	}
	for _, s := range []Spec{
		mlp("mlp-64", 64),                    // shallow, narrow
		mlp("mlp-256", 256),                  // shallow, wide (width variant)
		mlp("mlp-128-64", 128, 64),           // depth variant
		cnn("cnn-8", true, 8),                // single conv block
		cnn("cnn-8-16", true, 8, 16),         // the paper's MNIST shape
		cnn("cnn-16-32", true, 16, 32),       // channel variant
		cnn("cnn-8-16-nopool", false, 8, 16), // pooling off
	} {
		if err := z.Register(s); err != nil {
			return nil, err
		}
	}
	return z, nil
}
