package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// separableData builds the bright-top vs bright-bottom toy problem.
func separableData(rng *rand.Rand, n int) ([]*tensor.Tensor, []int) {
	var inputs []*tensor.Tensor
	var labels []int
	for i := 0; i < n; i++ {
		img := tensor.New(12, 12, 1)
		cls := i % 2
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				v := rng.Float32() * 0.2
				if (cls == 0 && y < 6) || (cls == 1 && y >= 6) {
					v += 0.8
				}
				img.Set(v, y, x, 0)
			}
		}
		inputs = append(inputs, img)
		labels = append(labels, cls)
	}
	return inputs, labels
}

func TestAdamLearnsSeparableProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arch := Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 2}
	n, err := Build(arch, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs, labels := separableData(rng, 120)
	err = TrainWith(n, inputs, labels, NewAdam(0.003), TrainConfig{Epochs: 6, BatchSize: 8, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(n, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("adam training accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainWithValidation(t *testing.T) {
	n, err := Build(Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainWith(n, nil, nil, NewAdam(0.001), TrainConfig{}, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := TrainWith(n, []*tensor.Tensor{tensor.New(12, 12, 1)}, []int{0}, nil, TrainConfig{}, nil); err == nil {
		t.Fatal("nil optimizer accepted")
	}
}

func TestOptimizerNames(t *testing.T) {
	if NewAdam(0).Name() != "adam" || NewSGD(0.1, 0, 0).Name() != "sgd" {
		t.Fatal("optimizer names wrong")
	}
	if NewAdam(0).LR != 0.001 {
		t.Fatal("adam default LR wrong")
	}
}

func TestAdamZeroesGradients(t *testing.T) {
	n, err := Build(Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(12, 12, 1)
	in.Fill(0.5)
	_, grad, err := forwardLoss(n, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Backward(grad); err != nil {
		t.Fatal(err)
	}
	NewAdam(0.01).Step(n, 1)
	for _, p := range n.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("adam left gradients nonzero")
			}
		}
	}
}

func TestLRSchedules(t *testing.T) {
	c := ConstantLR()
	if c(0) != 1 || c(100) != 1 {
		t.Fatal("constant schedule wrong")
	}
	s := StepDecay(2)
	want := []float64{1, 1, 0.5, 0.5, 0.25}
	for i, w := range want {
		if got := s(i); math.Abs(got-w) > 1e-12 {
			t.Fatalf("step decay(%d) = %v, want %v", i, got, w)
		}
	}
	if StepDecay(0)(1) != 0.5 {
		t.Fatal("step decay zero-interval clamp wrong")
	}
	cd := CosineDecay(10, 0.1)
	if cd(0) != 1 {
		t.Fatalf("cosine(0) = %v, want 1", cd(0))
	}
	if got := cd(10); got != 0.1 {
		t.Fatalf("cosine(end) = %v, want floor 0.1", got)
	}
	for i := 1; i < 10; i++ {
		if cd(i) >= cd(i-1) {
			t.Fatal("cosine schedule not monotone decreasing")
		}
	}
}

func TestTrainWithScheduleRestoresBaseLR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	arch := Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}
	n, err := Build(arch, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs, labels := separableData(rng, 16)
	opt := NewSGD(0.05, 0.9, 0)
	err = TrainWith(n, inputs, labels, opt, TrainConfig{Epochs: 3, BatchSize: 8, Seed: 1}, StepDecay(1))
	if err != nil {
		t.Fatal(err)
	}
	if opt.LR != 0.05 {
		t.Fatalf("base LR not restored: %v", opt.LR)
	}
}

func TestBuildMLP(t *testing.T) {
	n, err := BuildMLP(MNISTMLPArch(), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	logits, err := n.Forward(tensor.New(28, 28, 1))
	if err != nil {
		t.Fatal(err)
	}
	if logits.Len() != 10 {
		t.Fatalf("MLP logits = %d", logits.Len())
	}
	// flatten + 2×(dense+relu) + dense = 6 layers.
	if len(n.Layers) != 6 {
		t.Fatalf("MLP layers = %d, want 6", len(n.Layers))
	}
	bad := MLPArch{Name: "bad", InH: 8, InW: 8, InC: 1, Hidden: []int{0}, Classes: 3}
	if bad.Validate() == nil {
		t.Fatal("zero hidden size accepted")
	}
	bad = MLPArch{Name: "bad", InH: 0, InW: 8, InC: 1, Classes: 3}
	if bad.Validate() == nil {
		t.Fatal("zero input dim accepted")
	}
	bad = MLPArch{Name: "bad", InH: 8, InW: 8, InC: 1, Classes: 1}
	if bad.Validate() == nil {
		t.Fatal("single class accepted")
	}
}

func TestMLPLearnsSeparableProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	arch := MLPArch{Name: "t", InH: 12, InW: 12, InC: 1, Hidden: []int{16}, Classes: 2}
	n, err := BuildMLP(arch, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs, labels := separableData(rng, 100)
	if err := Train(n, inputs, labels, TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(n, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("MLP accuracy = %v", acc)
	}
}

func TestAdamVsSGDBothConverge(t *testing.T) {
	// Both optimizers must reach low loss on the same problem; this guards
	// against silent divergence in either implementation.
	for _, name := range []string{"sgd", "adam"} {
		rng := rand.New(rand.NewSource(9))
		arch := Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 3, Conv2: 3, Kernel: 3, Classes: 2}
		n, err := Build(arch, rng)
		if err != nil {
			t.Fatal(err)
		}
		inputs, labels := separableData(rng, 80)
		var opt Optimizer = NewSGD(0.05, 0.9, 0)
		epochs := 5
		if name == "adam" {
			opt = NewAdam(0.005)
			epochs = 10
		}
		var lastLoss float64
		err = TrainWith(n, inputs, labels, opt, TrainConfig{
			Epochs: epochs, BatchSize: 8, Seed: 2,
			Progress: func(_ int, loss, _ float64) { lastLoss = loss },
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastLoss > 0.4 {
			t.Fatalf("%s final loss = %v, did not converge", name, lastLoss)
		}
	}
}
