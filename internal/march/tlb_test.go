package march

import (
	"testing"

	"repro/internal/march/mem"
)

func TestDefaultTLBGeometry(t *testing.T) {
	tlb := DefaultTLB()
	cfg := tlb.Config()
	if cfg.LineSize != 4096 {
		t.Fatalf("TLB page size = %d, want 4096", cfg.LineSize)
	}
	if cfg.Size/cfg.LineSize != 64 {
		t.Fatalf("TLB entries = %d, want 64", cfg.Size/cfg.LineSize)
	}
}

func TestTLBCountsTranslations(t *testing.T) {
	e := newTestEngine(t)
	// Two accesses in the same page: one TLB miss, one hit.
	e.Load(0x10000, 4)
	e.Load(0x10800, 4)
	c := e.Counts()
	if c.Get(EvDTLBLoads) != 2 {
		t.Fatalf("dTLB loads = %d, want 2", c.Get(EvDTLBLoads))
	}
	if c.Get(EvDTLBLoadMisses) != 1 {
		t.Fatalf("dTLB misses = %d, want 1", c.Get(EvDTLBLoadMisses))
	}
	// A different page misses again.
	e.Load(0x20000, 4)
	if got := e.Counts().Get(EvDTLBLoadMisses); got != 2 {
		t.Fatalf("dTLB misses = %d, want 2", got)
	}
}

func TestTLBMissCostsCycles(t *testing.T) {
	// Same cache line footprint, different page spread: page-crossing
	// traffic must cost more cycles via page walks.
	samePage, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	manyPages, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		samePage.Load(0x5000, 4)
		manyPages.Load(mem.Addr(0x5000+uint64(i%128)*4096), 4)
	}
	if manyPages.Counts().Get(EvCycles) <= samePage.Counts().Get(EvCycles) {
		t.Fatal("page walks did not cost cycles")
	}
}

func TestExtendedEventsConsistency(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 500; i++ {
		e.Load(mem.Addr(uint64(i)*64), 4)
	}
	c := e.Counts()
	// L1 sees every access; deeper structures see no more than that.
	if c.Get(EvL1DLoads) != 500 {
		t.Fatalf("L1 loads = %d, want 500", c.Get(EvL1DLoads))
	}
	if c.Get(EvL1DLoadMisses) > c.Get(EvL1DLoads) {
		t.Fatal("L1 misses exceed loads")
	}
	if c.Get(EvLLCLoads) > c.Get(EvL1DLoadMisses) {
		t.Fatal("LLC loads exceed L1 misses")
	}
	// The LLC alias events agree with the Figure 2(b) names.
	if c.Get(EvLLCLoads) != c.Get(EvCacheReferences) || c.Get(EvLLCLoadMisses) != c.Get(EvCacheMisses) {
		t.Fatal("LLC alias events disagree with cache-references/misses")
	}
	if c.Get(EvDTLBLoads) != 500 {
		t.Fatalf("dTLB loads = %d, want 500", c.Get(EvDTLBLoads))
	}
}

func TestColdResetDropsTLB(t *testing.T) {
	e := newTestEngine(t)
	e.Load(0x9000, 4)
	e.ColdReset()
	e.Load(0x9000, 4)
	if e.Counts().Get(EvDTLBLoadMisses) != 1 {
		t.Fatal("ColdReset kept TLB contents")
	}
	if e.TLB() == nil {
		t.Fatal("TLB accessor nil")
	}
}

func TestBackgroundTraffic(t *testing.T) {
	e := newTestEngine(t)
	e.Background(1000, 200, 10, 50, 5)
	c := e.Counts()
	if c.Get(EvInstructions) != 1200 {
		t.Fatalf("instructions = %d, want 1200 (ops+branches)", c.Get(EvInstructions))
	}
	if c.Get(EvBranches) != 200 || c.Get(EvBranchMisses) != 10 {
		t.Fatalf("branches/misses = %d/%d", c.Get(EvBranches), c.Get(EvBranchMisses))
	}
	if c.Get(EvCacheReferences) != 50 || c.Get(EvCacheMisses) != 5 {
		t.Fatalf("refs/misses = %d/%d", c.Get(EvCacheReferences), c.Get(EvCacheMisses))
	}
	// Clamping: misses cannot exceed refs, branch misses cannot exceed
	// branches.
	e2 := newTestEngine(t)
	e2.Background(0, 5, 50, 10, 100)
	c2 := e2.Counts()
	if c2.Get(EvBranchMisses) > c2.Get(EvBranches) {
		t.Fatal("branch misses exceed branches")
	}
	if c2.Get(EvCacheMisses) > c2.Get(EvCacheReferences) {
		t.Fatal("cache misses exceed references")
	}
	// Background stalls must show up in cycles.
	if c.Get(EvCycles) <= 1200 {
		t.Fatalf("background penalties missing from cycles: %d", c.Get(EvCycles))
	}
}
