package march

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/march/branch"
	"repro/internal/march/cache"
	"repro/internal/march/mem"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEventStringAndParse(t *testing.T) {
	for _, e := range AllEvents() {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
	if _, err := ParseEvent("no-such-event"); err == nil {
		t.Fatal("ParseEvent accepted junk")
	}
	if Event(99).String() == "" {
		t.Fatal("unknown event has empty String")
	}
	if len(AllEvents()) != 8 {
		t.Fatalf("AllEvents (Figure 2(b) set) = %d events, want 8", len(AllEvents()))
	}
	if len(ExtendedEvents()) != NumEvents {
		t.Fatalf("ExtendedEvents covers %d of %d events", len(ExtendedEvents()), NumEvents)
	}
	for _, e := range ExtendedEvents() {
		if got, err := ParseEvent(e.String()); err != nil || got != e {
			t.Fatalf("extended event %v round trip failed: %v, %v", e, got, err)
		}
	}
}

func TestCountsSubAndGet(t *testing.T) {
	var a, b Counts
	a[EvCycles] = 100
	b[EvCycles] = 40
	d := a.Sub(b)
	if d.Get(EvCycles) != 60 {
		t.Fatalf("Sub = %d, want 60", d.Get(EvCycles))
	}
}

func TestLoadCountsInstructionsAndReferences(t *testing.T) {
	e := newTestEngine(t)
	e.Load(0x1000, 4)
	c := e.Counts()
	if c.Get(EvInstructions) != 1 {
		t.Fatalf("instructions = %d, want 1", c.Get(EvInstructions))
	}
	// Cold load misses every level → one LLC reference and one LLC miss.
	if c.Get(EvCacheReferences) != 1 || c.Get(EvCacheMisses) != 1 {
		t.Fatalf("LLC refs/misses = %d/%d, want 1/1", c.Get(EvCacheReferences), c.Get(EvCacheMisses))
	}
	// A hot load never reaches the LLC.
	e.Load(0x1000, 4)
	c = e.Counts()
	if c.Get(EvCacheReferences) != 1 {
		t.Fatalf("hot load reached LLC: refs = %d", c.Get(EvCacheReferences))
	}
}

func TestLoadSplitsAcrossLines(t *testing.T) {
	e := newTestEngine(t)
	// 8 bytes starting 4 before a line boundary touches two lines.
	e.Load(0x103c, 8)
	if got := e.Counts().Get(EvInstructions); got != 2 {
		t.Fatalf("split load retired %d instructions, want 2", got)
	}
	e2 := newTestEngine(t)
	e2.Load(0x1000, 256) // exactly 4 lines
	if got := e2.Counts().Get(EvInstructions); got != 4 {
		t.Fatalf("256B load retired %d instructions, want 4", got)
	}
}

func TestZeroSizeLoadStillRetires(t *testing.T) {
	e := newTestEngine(t)
	e.Load(0x0, 0)
	if e.Counts().Get(EvInstructions) != 1 {
		t.Fatal("zero-size load did not retire an instruction")
	}
}

func TestBranchCountsAndMispredicts(t *testing.T) {
	e := newTestEngine(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		e.Branch(0x40, rng.Intn(2) == 0) // random direction: ~50% misses
	}
	c := e.Counts()
	if c.Get(EvBranches) != 1000 {
		t.Fatalf("branches = %d, want 1000", c.Get(EvBranches))
	}
	if m := c.Get(EvBranchMisses); m < 300 || m > 700 {
		t.Fatalf("mispredicts = %d, want ~500 for random directions", m)
	}

	e2 := newTestEngine(t)
	for i := 0; i < 1000; i++ {
		e2.Branch(0x40, true)
	}
	if m := e2.Counts().Get(EvBranchMisses); m > 5 {
		t.Fatalf("constant branch mispredicted %d times", m)
	}
}

func TestPredictableBranchesBulk(t *testing.T) {
	e := newTestEngine(t)
	e.PredictableBranches(5000)
	c := e.Counts()
	if c.Get(EvBranches) != 5000 || c.Get(EvBranchMisses) != 0 {
		t.Fatalf("bulk branches = %d/%d, want 5000/0", c.Get(EvBranches), c.Get(EvBranchMisses))
	}
	if c.Get(EvInstructions) != 5000 {
		t.Fatalf("instructions = %d, want 5000", c.Get(EvInstructions))
	}
}

func TestOpsRetireInstructions(t *testing.T) {
	e := newTestEngine(t)
	e.Ops(123)
	if e.Counts().Get(EvInstructions) != 123 {
		t.Fatal("Ops did not retire instructions")
	}
}

func TestPadInjectsExactCounts(t *testing.T) {
	e := newTestEngine(t)
	before := e.Counts()
	e.Pad(100, 40, 7, 30, 12, 555)
	d := e.Counts().Sub(before)
	if d.Get(EvInstructions) != 140 {
		t.Fatalf("instructions delta = %d, want 140 (ops+branches)", d.Get(EvInstructions))
	}
	if d.Get(EvBranches) != 40 || d.Get(EvBranchMisses) != 7 {
		t.Fatalf("branch deltas = %d/%d, want 40/7", d.Get(EvBranches), d.Get(EvBranchMisses))
	}
	if d.Get(EvCacheReferences) != 30 || d.Get(EvCacheMisses) != 12 {
		t.Fatalf("LLC deltas = %d/%d, want 30/12", d.Get(EvCacheReferences), d.Get(EvCacheMisses))
	}
	// Cycle accounting is entirely the caller's: base CPI on the padded
	// instructions plus exactly the requested stall — no hidden penalties
	// (that is what lets the archid envelope pad equalize cycles exactly).
	wantCycles := uint64(float64(140)*e.timing.BaseCPI) + 555
	if d.Get(EvCycles) != wantCycles {
		t.Fatalf("cycles delta = %d, want %d", d.Get(EvCycles), wantCycles)
	}
	// Unlike Background, branchMisses are not clamped to branches: the
	// caller computes pads against a consistent envelope.
	e2 := newTestEngine(t)
	e2.Pad(0, 1, 5, 0, 0, 0)
	if got := e2.Counts().Get(EvBranchMisses); got != 5 {
		t.Fatalf("unclamped mispredict pad = %d, want 5", got)
	}
}

func TestCyclesReflectStalls(t *testing.T) {
	// A thrashing access pattern must cost more cycles per instruction
	// than an L1-resident one.
	hot := newTestEngine(t)
	for i := 0; i < 10000; i++ {
		hot.Load(0x1000, 4)
	}
	cold, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		cold.Load(mem.Addr(uint64(i)*4096), 4) // new page every time
	}
	hotC, coldC := hot.Counts(), cold.Counts()
	if hotC.Get(EvInstructions) != coldC.Get(EvInstructions) {
		t.Fatal("instruction counts differ between scenarios")
	}
	if coldC.Get(EvCycles) <= hotC.Get(EvCycles)*2 {
		t.Fatalf("memory-bound cycles (%d) not clearly above cache-resident (%d)",
			coldC.Get(EvCycles), hotC.Get(EvCycles))
	}
}

func TestDerivedCycleRatios(t *testing.T) {
	e := newTestEngine(t)
	e.Ops(100000)
	c := e.Counts()
	cy := float64(c.Get(EvCycles))
	if rr := float64(c.Get(EvRefCycles)) / cy; rr < 0.9 || rr > 1.1 {
		t.Fatalf("ref-cycles ratio = %v", rr)
	}
	if br := float64(c.Get(EvBusCycles)) / cy; br < 0.3 || br > 0.5 {
		t.Fatalf("bus-cycles ratio = %v", br)
	}
}

func TestResetCountersKeepsWarmState(t *testing.T) {
	e := newTestEngine(t)
	e.Load(0x2000, 4)
	e.ResetCounters()
	if e.Counts() != (Counts{}) {
		t.Fatal("ResetCounters left nonzero counts")
	}
	// The line is still cached: a re-access is an L1 hit, so zero LLC refs.
	e.Load(0x2000, 4)
	if e.Counts().Get(EvCacheReferences) != 0 {
		t.Fatal("ResetCounters dropped cache contents")
	}
}

func TestColdResetDropsState(t *testing.T) {
	e := newTestEngine(t)
	e.Load(0x2000, 4)
	e.ColdReset()
	e.Load(0x2000, 4)
	if e.Counts().Get(EvCacheMisses) != 1 {
		t.Fatal("ColdReset kept cache contents")
	}
}

func TestNoiseModelApply(t *testing.T) {
	n := DefaultNoise(7)
	var c Counts
	c[EvCacheMisses] = 100000
	c[EvBranches] = 1000000
	orig := c
	n.Apply(&c)
	if c == orig {
		t.Fatal("noise did not perturb counts")
	}
	// Noise must stay small in relative terms.
	rel := float64(int64(c[EvBranches])-int64(orig[EvBranches])) / float64(orig[EvBranches])
	if rel > 0.05 || rel < -0.05 {
		t.Fatalf("branch noise %v too large", rel)
	}
}

func TestNoiseNilSafe(t *testing.T) {
	var n *NoiseModel
	var c Counts
	c[EvCycles] = 10
	n.Apply(&c)
	if c[EvCycles] != 10 {
		t.Fatal("nil noise modified counts")
	}
}

func TestSilentNoiseIsDeterministic(t *testing.T) {
	n := Silent()
	var c Counts
	c[EvCacheMisses] = 12345
	n.Apply(&c)
	if c[EvCacheMisses] != 12345 {
		t.Fatalf("silent noise changed counts: %d", c[EvCacheMisses])
	}
}

func TestNoisyCountsClampsAtZero(t *testing.T) {
	n := &NoiseModel{rng: rand.New(rand.NewSource(1))}
	n.FloorSigma[EvCacheMisses] = 1e9 // enormous absolute noise
	for i := 0; i < 50; i++ {
		var c Counts
		c[EvCacheMisses] = 10
		n.Apply(&c)
		if int64(c[EvCacheMisses]) < 0 {
			t.Fatal("noise produced negative count")
		}
	}
}

func TestEngineCustomComponents(t *testing.T) {
	h, err := cache.NewHierarchy(cache.Config{Name: "only", Size: 1024, LineSize: 64, Assoc: 2, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Hierarchy: h,
		Predictor: branch.New(branch.Config{Kind: branch.Bimodal}),
		Timing:    TimingModel{BaseCPI: 1, MemPenalty: 10, RefCycleRatio: 1, BusCycleRatio: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Predictor().Kind() != branch.Bimodal {
		t.Fatal("custom predictor not used")
	}
	if len(e.Hierarchy().Levels) != 1 {
		t.Fatal("custom hierarchy not used")
	}
	e.Load(0, 4)
	if e.Counts().Get(EvCycles) != 1+10 {
		t.Fatalf("custom timing cycles = %d, want 11", e.Counts().Get(EvCycles))
	}
}

func TestArenaAccessible(t *testing.T) {
	e := newTestEngine(t)
	r, err := e.Arena().Alloc("weights", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(r.Base)%64 != 0 {
		t.Fatal("arena region not line-aligned")
	}
}

func TestQuickCountsMonotone(t *testing.T) {
	// Counts never decrease as more work is simulated.
	f := func(seed int64) bool {
		e, err := NewEngine(Config{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		prev := e.Counts()
		for step := 0; step < 50; step++ {
			switch rng.Intn(4) {
			case 0:
				e.Load(mem.Addr(rng.Intn(1<<20)), uint64(1+rng.Intn(64)))
			case 1:
				e.Store(mem.Addr(rng.Intn(1<<20)), uint64(1+rng.Intn(64)))
			case 2:
				e.Branch(uint64(rng.Intn(256)*4), rng.Intn(2) == 0)
			case 3:
				e.Ops(uint64(rng.Intn(100)))
			}
			cur := e.Counts()
			for i := range cur {
				if cur[i] < prev[i] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInstructionAccounting(t *testing.T) {
	// instructions == loads+stores(line pieces) + branches + ops.
	f := func(seed int64) bool {
		e, err := NewEngine(Config{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var want uint64
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				// Aligned 4-byte access: exactly one piece.
				e.Load(mem.Addr(rng.Intn(1<<16)*64), 4)
				want++
			case 1:
				e.Branch(uint64(rng.Intn(64)*4), rng.Intn(2) == 0)
				want++
			case 2:
				n := uint64(rng.Intn(10))
				e.Ops(n)
				want += n
			}
		}
		return e.Counts().Get(EvInstructions) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
