// Package branch implements the branch predictor simulators behind the
// `branches` and `branch-misses` HPC events.
//
// The instrumented CNN routes its data-dependent branches (ReLU sign tests,
// sparsity-skip tests, max-pool comparisons) through a predictor; mispredict
// counts feed the branch-misses event and the cycle penalty model.
package branch

import "fmt"

// Kind selects the predictor algorithm.
type Kind int

// Predictor kinds.
const (
	StaticTaken Kind = iota
	Bimodal
	GShare
	Tournament
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case StaticTaken:
		return "static-taken"
	case Bimodal:
		return "bimodal"
	case GShare:
		return "gshare"
	case Tournament:
		return "tournament"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Stats holds predictor counters.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts/branches (0 when no branches).
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Predictor is the common interface: Predict-then-Update per branch.
type Predictor interface {
	// Record predicts the branch at pc, compares with the actual outcome,
	// updates internal state, and returns whether the prediction was correct.
	Record(pc uint64, taken bool) bool
	// RecordRun replays n consecutive branches at pc with the same outcome
	// and returns the number of mispredicts. State and counters end up
	// exactly as n Record(pc, taken) calls would leave them; implementations
	// iterate only until the touched state reaches a fixpoint (saturating
	// counters and a saturated history register stop changing after a
	// handful of identical outcomes) and account the remainder in O(1).
	RecordRun(pc uint64, taken bool, n uint64) uint64
	// Stats returns the counters so far.
	Stats() Stats
	// Reset clears both state and counters.
	Reset()
	// Kind reports the algorithm.
	Kind() Kind
}

// Config sizes a predictor.
type Config struct {
	Kind Kind
	// TableBits is the log2 of the pattern table size (default 12 → 4096
	// two-bit counters).
	TableBits uint
	// HistoryBits is the global history length for GShare (default =
	// TableBits).
	HistoryBits uint
}

func (c Config) withDefaults() Config {
	if c.TableBits == 0 {
		c.TableBits = 12
	}
	if c.TableBits > 20 {
		c.TableBits = 20
	}
	if c.HistoryBits == 0 || c.HistoryBits > c.TableBits {
		c.HistoryBits = c.TableBits
	}
	return c
}

// New constructs a predictor.
func New(cfg Config) Predictor {
	cfg = cfg.withDefaults()
	switch cfg.Kind {
	case StaticTaken:
		return &static{}
	case Bimodal:
		return newBimodal(cfg.TableBits)
	case GShare:
		return newGShare(cfg.TableBits, cfg.HistoryBits)
	case Tournament:
		return &tournament{
			bim:     newBimodal(cfg.TableBits),
			gsh:     newGShare(cfg.TableBits, cfg.HistoryBits),
			chooser: make([]uint8, 1<<cfg.TableBits),
			mask:    (1 << cfg.TableBits) - 1,
		}
	default:
		return &static{}
	}
}

// static always predicts taken.
type static struct{ stats Stats }

func (s *static) Record(_ uint64, taken bool) bool {
	s.stats.Branches++
	if !taken {
		s.stats.Mispredicts++
		return false
	}
	return true
}
func (s *static) RecordRun(_ uint64, taken bool, n uint64) uint64 {
	s.stats.Branches += n
	if !taken {
		s.stats.Mispredicts += n
		return n
	}
	return 0
}

func (s *static) Stats() Stats { return s.stats }
func (s *static) Reset()       { s.stats = Stats{} }
func (s *static) Kind() Kind   { return StaticTaken }

// bimodal is a classic table of 2-bit saturating counters indexed by pc.
type bimodal struct {
	table []uint8
	mask  uint64
	stats Stats
}

func newBimodal(bits uint) *bimodal {
	b := &bimodal{table: make([]uint8, 1<<bits), mask: (1 << bits) - 1}
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
	return b
}

func (b *bimodal) Record(pc uint64, taken bool) bool {
	idx := (pc >> 2) & b.mask
	pred := b.table[idx] >= 2
	b.table[idx] = bump(b.table[idx], taken)
	b.stats.Branches++
	if pred != taken {
		b.stats.Mispredicts++
		return false
	}
	return true
}

func (b *bimodal) RecordRun(pc uint64, taken bool, n uint64) uint64 {
	idx := (pc >> 2) & b.mask
	var mis uint64
	for n > 0 {
		ctr := b.table[idx]
		next := bump(ctr, taken)
		if next == ctr {
			// Saturated toward the outcome: the counter (and therefore the
			// prediction, which now matches taken) no longer changes.
			break
		}
		if (ctr >= 2) != taken {
			mis++
		}
		b.table[idx] = next
		b.stats.Branches++
		n--
	}
	if n > 0 {
		b.stats.Branches += n
		if (b.table[idx] >= 2) != taken {
			mis += n
		}
	}
	b.stats.Mispredicts += mis
	return mis
}

func (b *bimodal) Stats() Stats { return b.stats }
func (b *bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.stats = Stats{}
}
func (b *bimodal) Kind() Kind { return Bimodal }

// gshare XORs global history into the table index.
type gshare struct {
	table   []uint8
	mask    uint64
	history uint64
	hmask   uint64
	stats   Stats
}

func newGShare(bits, hbits uint) *gshare {
	g := &gshare{table: make([]uint8, 1<<bits), mask: (1 << bits) - 1, hmask: (1 << hbits) - 1}
	for i := range g.table {
		g.table[i] = 1
	}
	return g
}

func (g *gshare) predictIdx(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

func (g *gshare) Record(pc uint64, taken bool) bool {
	idx := g.predictIdx(pc)
	pred := g.table[idx] >= 2
	g.table[idx] = bump(g.table[idx], taken)
	g.history = ((g.history << 1) | b2u(taken)) & g.hmask
	g.stats.Branches++
	if pred != taken {
		g.stats.Mispredicts++
		return false
	}
	return true
}

func (g *gshare) RecordRun(pc uint64, taken bool, n uint64) uint64 {
	tk := b2u(taken)
	var mis uint64
	for n > 0 {
		idx := g.predictIdx(pc)
		ctr := g.table[idx]
		next := bump(ctr, taken)
		nh := ((g.history << 1) | tk) & g.hmask
		if next == ctr && nh == g.history {
			// Fixpoint: the history register is saturated (so the table
			// index repeats) and the indexed counter is saturated toward
			// the outcome — no further iteration changes any state.
			break
		}
		if (ctr >= 2) != taken {
			mis++
		}
		g.table[idx] = next
		g.history = nh
		g.stats.Branches++
		n--
	}
	if n > 0 {
		g.stats.Branches += n
		if (g.table[g.predictIdx(pc)] >= 2) != taken {
			mis += n
		}
	}
	g.stats.Mispredicts += mis
	return mis
}

func (g *gshare) Stats() Stats { return g.stats }
func (g *gshare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
	g.stats = Stats{}
}
func (g *gshare) Kind() Kind { return GShare }

// tournament arbitrates between bimodal and gshare with a chooser table of
// 2-bit counters (≥2 → trust gshare).
type tournament struct {
	bim     *bimodal
	gsh     *gshare
	chooser []uint8
	mask    uint64
	stats   Stats
}

func (t *tournament) Record(pc uint64, taken bool) bool {
	key := pc >> 2
	idx := key & t.mask
	bIdx := key & t.bim.mask
	gIdx := (key ^ t.gsh.history) & t.gsh.mask
	bCtr := t.bim.table[bIdx]
	gCtr := t.gsh.table[gIdx]
	cCtr := t.chooser[idx]
	bPred := bCtr >= 2
	gPred := gCtr >= 2
	pred := bPred
	if cCtr >= 2 {
		pred = gPred
	}
	// Train components inline — predictor state ends up exactly as
	// bim.Record/gsh.Record would leave it, without paying the calls and
	// the duplicate index computations on the hot path. The components'
	// own stats are not maintained here: they are unexported and
	// unobservable behind a tournament (its Stats() reports only the
	// arbitrated outcome).
	t.bim.table[bIdx] = bump(bCtr, taken)
	t.gsh.table[gIdx] = bump(gCtr, taken)
	t.gsh.history = ((t.gsh.history << 1) | b2u(taken)) & t.gsh.hmask
	// Train chooser toward whichever component was right.
	if bPred != gPred {
		t.chooser[idx] = bump(cCtr, taken == gPred)
	}
	t.stats.Branches++
	if pred != taken {
		t.stats.Mispredicts++
		return false
	}
	return true
}

func (t *tournament) RecordRun(pc uint64, taken bool, n uint64) uint64 {
	key := pc >> 2
	idx := key & t.mask
	bIdx := key & t.bim.mask
	tk := b2u(taken)
	// Hoist the per-pc state (fixed indices) and the gshare registers into
	// locals for the replay loop; only the gshare counter's index moves.
	gTab, gMask, hMask := t.gsh.table, t.gsh.mask, t.gsh.hmask
	hist := t.gsh.history
	bCtr := t.bim.table[bIdx]
	cCtr := t.chooser[idx]
	var mis, done uint64
	for n > 0 {
		// One exact iteration of Record's body, plus fixpoint detection.
		gIdx := (key ^ hist) & gMask
		gCtr := gTab[gIdx]
		bNext := bump(bCtr, taken)
		gNext := bump(gCtr, taken)
		nh := ((hist << 1) | tk) & hMask
		bPred := bCtr >= 2
		gPred := gCtr >= 2
		cNext := cCtr
		if bPred != gPred {
			cNext = bump(cCtr, taken == gPred)
		}
		if nh == hist && bNext == bCtr && gNext == gCtr && cNext == cCtr {
			// Fixpoint: history saturated (index repeats), both component
			// counters and the chooser unchanged — every remaining
			// iteration is state-identical.
			break
		}
		pred := bPred
		if cCtr >= 2 {
			pred = gPred
		}
		if pred != taken {
			mis++
		}
		gTab[gIdx] = gNext
		bCtr, cCtr, hist = bNext, cNext, nh
		done++
		n--
	}
	t.bim.table[bIdx] = bCtr
	t.chooser[idx] = cCtr
	t.gsh.history = hist
	t.stats.Branches += done
	if n > 0 {
		t.stats.Branches += n
		gIdx := (key ^ hist) & gMask
		pred := bCtr >= 2
		if cCtr >= 2 {
			pred = gTab[gIdx] >= 2
		}
		if pred != taken {
			mis += n
		}
	}
	t.stats.Mispredicts += mis
	return mis
}

func (t *tournament) Stats() Stats { return t.stats }
func (t *tournament) Reset() {
	t.bim.Reset()
	t.gsh.Reset()
	clear(t.chooser)
	t.stats = Stats{}
}
func (t *tournament) Kind() Kind { return Tournament }

// bumpTab folds the 2-bit saturating counter transition into a lookup
// (index = counter<<1 | taken): branchless on the predictor hot path.
var bumpTab = [8]uint8{
	0<<1 | 0: 0, 0<<1 | 1: 1,
	1<<1 | 0: 0, 1<<1 | 1: 2,
	2<<1 | 0: 1, 2<<1 | 1: 3,
	3<<1 | 0: 2, 3<<1 | 1: 3,
}

// bump moves a 2-bit saturating counter toward taken/not-taken.
func bump(c uint8, taken bool) uint8 {
	return bumpTab[uint64(c)<<1|b2u(taken)]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a small direct-mapped branch target buffer. It models target
// misses separately from direction misses; the engine charges a smaller
// front-end penalty for BTB misses on taken branches.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
	hits    uint64
	misses  uint64
}

// NewBTB builds a 2^bits-entry BTB.
func NewBTB(bits uint) *BTB {
	if bits == 0 {
		bits = 9
	}
	if bits > 16 {
		bits = 16
	}
	return &BTB{tags: make([]uint64, 1<<bits), targets: make([]uint64, 1<<bits), mask: (1 << bits) - 1}
}

// Lookup checks for pc's target; on miss (or target change) it installs
// the mapping and reports false.
func (b *BTB) Lookup(pc, target uint64) bool {
	idx := (pc >> 2) & b.mask
	if b.tags[idx] == pc && b.targets[idx] == target {
		b.hits++
		return true
	}
	b.tags[idx] = pc
	b.targets[idx] = target
	b.misses++
	return false
}

// HitN accounts n guaranteed BTB hits without lookups — used by the
// engine's branch-run replay after the first lookup has installed (or
// confirmed) the target, which makes the remaining lookups of an identical
// run provable hits.
func (b *BTB) HitN(n uint64) { b.hits += n }

// Hits returns the number of BTB hits.
func (b *BTB) Hits() uint64 { return b.hits }

// Misses returns the number of BTB misses.
func (b *BTB) Misses() uint64 { return b.misses }

// Reset clears the BTB.
func (b *BTB) Reset() {
	clear(b.tags)
	clear(b.targets)
	b.hits, b.misses = 0, 0
}

// RAS is a return address stack for call/return pairs in the instrumented
// kernels. Overflow wraps (oldest entries are lost), as in hardware.
type RAS struct {
	stack []uint64
	top   int
	depth int
	hits  uint64
	miss  uint64
}

// NewRAS builds a stack with the given depth (default 16).
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		depth = 16
	}
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a call's return address.
func (r *RAS) Push(ret uint64) {
	r.stack[r.top%r.depth] = ret
	r.top++
}

// Pop predicts a return target and checks it; returns true when correct.
func (r *RAS) Pop(actual uint64) bool {
	if r.top == 0 {
		r.miss++
		return false
	}
	r.top--
	if r.stack[r.top%r.depth] == actual {
		r.hits++
		return true
	}
	r.miss++
	return false
}

// Hits returns correct return predictions.
func (r *RAS) Hits() uint64 { return r.hits }

// Misses returns incorrect return predictions.
func (r *RAS) Misses() uint64 { return r.miss }
