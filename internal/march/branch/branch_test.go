package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		StaticTaken: "static-taken", Bimodal: "bimodal", GShare: "gshare",
		Tournament: "tournament", Kind(7): "kind(7)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestStaticTaken(t *testing.T) {
	p := New(Config{Kind: StaticTaken})
	p.Record(0x40, true)
	p.Record(0x40, false)
	st := p.Stats()
	if st.Branches != 2 || st.Mispredicts != 1 {
		t.Fatalf("stats = %+v, want 2 branches / 1 miss", st)
	}
	if st.MispredictRate() != 0.5 {
		t.Fatalf("rate = %v, want 0.5", st.MispredictRate())
	}
}

func TestBimodalLearnsConstantBranch(t *testing.T) {
	p := New(Config{Kind: Bimodal, TableBits: 8})
	// Always-taken branch: after warm-up, no more mispredicts.
	for i := 0; i < 100; i++ {
		p.Record(0x1000, true)
	}
	st := p.Stats()
	if st.Mispredicts > 2 {
		t.Fatalf("bimodal mispredicted %d times on a constant branch", st.Mispredicts)
	}
}

func TestBimodalAlternatingWorstCase(t *testing.T) {
	p := New(Config{Kind: Bimodal, TableBits: 8})
	for i := 0; i < 1000; i++ {
		p.Record(0x2000, i%2 == 0)
	}
	// A strict alternation defeats a 2-bit counter: expect a high rate.
	if r := p.Stats().MispredictRate(); r < 0.4 {
		t.Fatalf("bimodal rate on alternation = %v, want >= 0.4", r)
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	p := New(Config{Kind: GShare, TableBits: 10, HistoryBits: 8})
	for i := 0; i < 2000; i++ {
		p.Record(0x2000, i%2 == 0)
	}
	// History lets gshare nail a period-2 pattern after warm-up.
	if r := p.Stats().MispredictRate(); r > 0.1 {
		t.Fatalf("gshare rate on alternation = %v, want <= 0.1", r)
	}
}

func TestGShareLearnsLongerPattern(t *testing.T) {
	p := New(Config{Kind: GShare, TableBits: 12, HistoryBits: 10})
	pattern := []bool{true, true, false, true, false, false}
	for i := 0; i < 6000; i++ {
		p.Record(0x3000, pattern[i%len(pattern)])
	}
	if r := p.Stats().MispredictRate(); r > 0.1 {
		t.Fatalf("gshare rate on period-6 pattern = %v, want <= 0.1", r)
	}
}

func TestTournamentBeatsOrMatchesComponents(t *testing.T) {
	// Mixed workload: one biased branch (bimodal-friendly) + one patterned
	// branch (gshare-friendly).
	run := func(kind Kind) float64 {
		p := New(Config{Kind: kind, TableBits: 10})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 8000; i++ {
			p.Record(0x100, rng.Float64() < 0.95)
			p.Record(0x200, i%2 == 0)
		}
		return p.Stats().MispredictRate()
	}
	tRate := run(Tournament)
	bRate := run(Bimodal)
	gRate := run(GShare)
	if tRate > bRate+0.02 && tRate > gRate+0.02 {
		t.Fatalf("tournament (%.3f) worse than both bimodal (%.3f) and gshare (%.3f)", tRate, bRate, gRate)
	}
}

func TestPredictorReset(t *testing.T) {
	for _, kind := range []Kind{StaticTaken, Bimodal, GShare, Tournament} {
		p := New(Config{Kind: kind, TableBits: 8})
		for i := 0; i < 50; i++ {
			p.Record(uint64(i*4), i%3 == 0)
		}
		p.Reset()
		if st := p.Stats(); st.Branches != 0 || st.Mispredicts != 0 {
			t.Errorf("%v: Reset left stats %+v", kind, st)
		}
		if p.Kind() != kind {
			t.Errorf("Kind() = %v, want %v", p.Kind(), kind)
		}
	}
}

func TestConfigDefaultsClamped(t *testing.T) {
	c := Config{Kind: GShare, TableBits: 40, HistoryBits: 99}.withDefaults()
	if c.TableBits != 20 || c.HistoryBits != 20 {
		t.Fatalf("defaults not clamped: %+v", c)
	}
	c = Config{Kind: Bimodal}.withDefaults()
	if c.TableBits != 12 {
		t.Fatalf("default TableBits = %d, want 12", c.TableBits)
	}
}

func TestUnknownKindFallsBackToStatic(t *testing.T) {
	p := New(Config{Kind: Kind(42)})
	if p.Kind() != StaticTaken {
		t.Fatalf("unknown kind produced %v", p.Kind())
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4)
	if b.Lookup(0x40, 0x100) {
		t.Fatal("cold BTB lookup hit")
	}
	if !b.Lookup(0x40, 0x100) {
		t.Fatal("warm BTB lookup missed")
	}
	// Target change is a miss and retrains.
	if b.Lookup(0x40, 0x200) {
		t.Fatal("changed target reported as hit")
	}
	if !b.Lookup(0x40, 0x200) {
		t.Fatal("retrained target missed")
	}
	if b.Hits() != 2 || b.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", b.Hits(), b.Misses())
	}
	b.Reset()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Fatal("Reset did not clear BTB stats")
	}
}

func TestBTBDefaultAndClamp(t *testing.T) {
	if got := len(NewBTB(0).tags); got != 1<<9 {
		t.Fatalf("default BTB size = %d, want 512", got)
	}
	if got := len(NewBTB(30).tags); got != 1<<16 {
		t.Fatalf("clamped BTB size = %d, want 65536", got)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x10)
	r.Push(0x20)
	if !r.Pop(0x20) || !r.Pop(0x10) {
		t.Fatal("RAS failed on matched call/return pairs")
	}
	if r.Pop(0x30) {
		t.Fatal("empty RAS pop reported hit")
	}
	if r.Hits() != 2 || r.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", r.Hits(), r.Misses())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if !r.Pop(3) || !r.Pop(2) {
		t.Fatal("RAS lost recent entries on overflow")
	}
	if r.Pop(1) {
		t.Fatal("RAS kept an entry that overflow destroyed")
	}
}

func TestQuickStatsInvariant(t *testing.T) {
	// branches == number of Record calls; mispredicts <= branches.
	f := func(seed int64, kindRaw uint8) bool {
		p := New(Config{Kind: Kind(int(kindRaw) % 4), TableBits: 8})
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(500)
		for i := 0; i < n; i++ {
			p.Record(uint64(rng.Intn(64)*4), rng.Intn(2) == 0)
		}
		st := p.Stats()
		return st.Branches == uint64(n) && st.Mispredicts <= st.Branches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() Stats {
			p := New(Config{Kind: Tournament, TableBits: 9})
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1500; i++ {
				p.Record(uint64(rng.Intn(128)*4), rng.Float64() < 0.7)
			}
			return p.Stats()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
