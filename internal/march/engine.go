// Package march is the micro-architecture simulation engine: it combines
// the cache hierarchy and branch predictor into an execution environment
// that instrumented code drives with loads, stores, branches and retired
// instruction counts, and it derives the eight hardware events the paper's
// Figure 2(b) lists (branches, branch-misses, bus-cycles, cache-misses,
// cache-references, cycles, instructions, ref-cycles).
package march

import (
	"fmt"
	"math/rand"

	"repro/internal/march/branch"
	"repro/internal/march/cache"
	"repro/internal/march/mem"
	"repro/internal/obs"
)

// Event identifies a hardware event, mirroring the perf event names used
// throughout the paper.
type Event int

// The eight events of Figure 2(b), followed by the extended per-level
// events a real perf installation also exposes (the paper notes "more
// than 1000" events exist; we model the ones our simulated structures can
// honestly produce).
const (
	EvBranches Event = iota
	EvBranchMisses
	EvBusCycles
	EvCacheMisses
	EvCacheReferences
	EvCycles
	EvInstructions
	EvRefCycles
	// Extended events beyond Figure 2(b).
	EvL1DLoads
	EvL1DLoadMisses
	EvLLCLoads
	EvLLCLoadMisses
	EvDTLBLoads
	EvDTLBLoadMisses
	numEvents
)

// NumEvents is the number of defined hardware events.
const NumEvents = int(numEvents)

var eventNames = [NumEvents]string{
	EvBranches:        "branches",
	EvBranchMisses:    "branch-misses",
	EvBusCycles:       "bus-cycles",
	EvCacheMisses:     "cache-misses",
	EvCacheReferences: "cache-references",
	EvCycles:          "cycles",
	EvInstructions:    "instructions",
	EvRefCycles:       "ref-cycles",
	EvL1DLoads:        "L1-dcache-loads",
	EvL1DLoadMisses:   "L1-dcache-load-misses",
	EvLLCLoads:        "LLC-loads",
	EvLLCLoadMisses:   "LLC-load-misses",
	EvDTLBLoads:       "dTLB-loads",
	EvDTLBLoadMisses:  "dTLB-load-misses",
}

// String returns the perf-style event name.
func (e Event) String() string {
	if e >= 0 && int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// ParseEvent resolves a perf-style event name.
func ParseEvent(name string) (Event, error) {
	for e := Event(0); e < numEvents; e++ {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("march: unknown event %q", name)
}

// AllEvents returns the eight events of Figure 2(b) in the paper's
// (alphabetical) order, as perf prints them.
func AllEvents() []Event {
	return []Event{EvBranches, EvBranchMisses, EvBusCycles, EvCacheMisses,
		EvCacheReferences, EvCycles, EvInstructions, EvRefCycles}
}

// ExtendedEvents returns every modeled event, including the per-level
// cache and TLB events beyond Figure 2(b).
func ExtendedEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// Counts is a snapshot of all event counters.
type Counts [NumEvents]uint64

// Get returns the count for an event.
func (c Counts) Get(e Event) uint64 { return c[e] }

// Sub returns c - o element-wise (callers ensure monotonicity).
func (c Counts) Sub(o Counts) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] - o[i]
	}
	return out
}

// TimingModel converts architectural activity into cycles. The shape (not
// the absolute values) is what matters for the reproduction; defaults are
// loosely Xeon-class.
type TimingModel struct {
	BaseCPI           float64 // cycles per retired instruction, pipeline-ideal
	L2HitPenalty      uint64  // extra cycles for an L1 miss that hits L2
	LLCHitPenalty     uint64  // extra cycles for an L2 miss that hits LLC
	MemPenalty        uint64  // extra cycles for an LLC miss
	MispredictPenalty uint64  // pipeline flush cost
	TLBMissPenalty    uint64  // page-walk cost for a dTLB miss
	// RefCycleRatio is ref-cycles per core cycle (TSC vs turbo ratio);
	// BusCycleRatio is bus-cycles per core cycle.
	RefCycleRatio float64
	BusCycleRatio float64
}

// DefaultTiming returns the reference timing model.
func DefaultTiming() TimingModel {
	return TimingModel{
		BaseCPI:           0.75,
		L2HitPenalty:      10,
		LLCHitPenalty:     30,
		MemPenalty:        180,
		MispredictPenalty: 15,
		TLBMissPenalty:    24,
		RefCycleRatio:     0.98,
		BusCycleRatio:     0.38,
	}
}

// NoiseModel injects per-run measurement noise into the final counts,
// standing in for the OS/background activity a real `perf stat` session
// sees. Relative sigmas are per-event multiplicative Gaussian noise; Floor
// adds an absolute per-event Gaussian component (e.g. timer interrupts
// polluting cache-misses regardless of workload size).
type NoiseModel struct {
	RelSigma   [NumEvents]float64
	FloorSigma [NumEvents]float64
	rng        *rand.Rand
}

// DefaultNoise calibrates the measurement noise so the reproduction's
// t-statistics land in the paper's bands: the cache-miss noise floor stays
// below the kernel-induced class signal (so every pair separates, as in
// Tables 1 and 2), while branch noise — combined with the runtime model's
// jitter — dominates the tiny class dependence of branch counts (so most
// branch pairs stay indistinguishable).
func DefaultNoise(seed int64) *NoiseModel {
	n := &NoiseModel{rng: rand.New(rand.NewSource(seed))}
	n.RelSigma[EvCacheMisses] = 0.004
	n.RelSigma[EvCacheReferences] = 0.003
	n.RelSigma[EvBranches] = 0.0015
	n.RelSigma[EvBranchMisses] = 0.01
	n.RelSigma[EvInstructions] = 0.001
	n.RelSigma[EvCycles] = 0.01
	n.RelSigma[EvBusCycles] = 0.01
	n.RelSigma[EvRefCycles] = 0.01
	n.FloorSigma[EvCacheMisses] = 6
	n.FloorSigma[EvBranches] = 25
	n.FloorSigma[EvBranchMisses] = 10
	return n
}

// Silent returns a no-noise model (useful for deterministic tests).
func Silent() *NoiseModel { return &NoiseModel{rng: rand.New(rand.NewSource(0))} }

// Apply perturbs a snapshot of counts in place.
func (n *NoiseModel) Apply(c *Counts) {
	if n == nil {
		return
	}
	for i := range c {
		v := float64(c[i])
		v += v*n.RelSigma[i]*n.rng.NormFloat64() + n.FloorSigma[i]*n.rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		c[i] = uint64(v)
	}
}

// Config assembles an Engine.
type Config struct {
	Hierarchy *cache.Hierarchy // nil → cache.DefaultHierarchy()
	Predictor branch.Predictor // nil → tournament
	BTB       *branch.BTB      // nil → 512-entry
	TLB       *cache.Cache     // nil → DefaultTLB(); data-side TLB
	Timing    TimingModel      // zero → DefaultTiming()
	Noise     *NoiseModel      // nil → no noise
	Arena     *mem.Arena       // nil → arena at mem.DefaultBase, 64B lines
}

// DefaultTLB models a 64-entry 4-way data TLB with 4 KiB pages. A TLB is
// just a set-associative cache of page translations, so the cache
// simulator is reused with the line size set to the page size.
func DefaultTLB() *cache.Cache {
	t, err := cache.New(cache.Config{
		Name: "dTLB", Size: 64 * 4096, LineSize: 4096, Assoc: 4, Policy: cache.LRU,
		AltLineMemo: true,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return t
}

// touchSlots sizes the engine's resolved-touch cache (direct-mapped,
// indexed by line). The conv kernels keep every weight-row line plus a
// sliding window of input and output-row lines live at once (~100+ lines
// for the largest zoo convolution), so 512 slots keep conflict evictions
// rare; contiguous regions can never self-conflict below 32 KiB.
const touchSlots = 512

// Engine is the simulated core. It is not safe for concurrent use; each
// simulated process owns one Engine.
type Engine struct {
	caches *cache.Hierarchy
	l1     *cache.Cache // caches.Levels[0], cached for the fast path
	pred   branch.Predictor
	btb    *branch.BTB
	tlb    *cache.Cache
	timing TimingModel
	noise  *NoiseModel
	arena  *mem.Arena

	instructions uint64
	branches     uint64
	mispredicts  uint64
	extraCycles  uint64 // accumulated stall cycles

	// Quantum-yield hook: when yieldFn is non-nil, the engine invokes it
	// at the first operation boundary at or beyond every yieldQuantum
	// retired instructions — the preemption point a multi-tenant
	// scheduler (march.Ring) interleaves tenants at. The hook may drive
	// this same engine for another tenant: nextYield is always advanced
	// past the current instruction count *before* the hook runs, so
	// reentrant operations cannot re-trigger the same yield.
	yieldQuantum uint64
	nextYield    uint64
	yieldFn      func()

	// Resolved-touch cache: recently touched lines with their L1/TLB
	// placement pre-resolved (cache.Placement), so repeat touches replay
	// guaranteed hits without walking either lookup path. touchOn gates it
	// to hierarchies whose L1 line and TLB page are at least the engine's
	// 64-byte access granularity (a 64-byte piece then maps to exactly one
	// line and one page, which is what makes a cached placement reusable).
	touch   [touchSlots]cache.Placement
	pair    cache.Pair
	touchOn bool

	// L2/LLC resolved placements for the miss walk: thrashing kernels miss
	// the same L1 lines cyclically while the deeper levels still hold them,
	// so the walk's L2 (and, past it, LLC) hit replays at the resolved slot.
	// l2/llc are nil when the hierarchy lacks that level (or its line size
	// is below the access granularity).
	l2     *cache.Cache
	touch2 [touchSlots]cache.Solo
	llc    *cache.Cache
	touch3 [touchSlots]cache.Solo

	// Optional telemetry tally. Engines are single-goroutine, so plain
	// increments suffice; the nil check keeps the hot path allocation-free
	// and branch-predictable when observability is off.
	hot *obs.HotCounters
}

// SetHotCounters attaches a telemetry tally for Load/Store operations.
// Pass nil to detach. The tally only counts operations — it never feeds
// back into timing, placement, or any other simulated state.
func (e *Engine) SetHotCounters(h *obs.HotCounters) { e.hot = h }

// NewEngine builds an engine, filling defaults for nil fields.
func NewEngine(cfg Config) (*Engine, error) {
	e := &Engine{
		caches: cfg.Hierarchy,
		pred:   cfg.Predictor,
		btb:    cfg.BTB,
		tlb:    cfg.TLB,
		timing: cfg.Timing,
		noise:  cfg.Noise,
		arena:  cfg.Arena,
	}
	if e.caches == nil {
		e.caches = cache.DefaultHierarchy()
	}
	if e.pred == nil {
		e.pred = branch.New(branch.Config{Kind: branch.Tournament})
	}
	if e.btb == nil {
		e.btb = branch.NewBTB(9)
	}
	if e.tlb == nil {
		e.tlb = DefaultTLB()
	}
	if e.timing == (TimingModel{}) {
		e.timing = DefaultTiming()
	}
	if e.arena == nil {
		a, err := mem.NewArena(mem.DefaultBase, 64)
		if err != nil {
			return nil, err
		}
		e.arena = a
	}
	e.l1 = e.caches.Levels[0]
	e.pair = cache.Pair{Data: e.l1, TLB: e.tlb}
	e.touchOn = e.l1.Config().LineSize >= lineSize && e.tlb.Config().LineSize >= lineSize
	if e.touchOn && len(e.caches.Levels) > 1 && e.caches.Levels[1].Config().LineSize >= lineSize {
		e.l2 = e.caches.Levels[1]
		if len(e.caches.Levels) == 3 && e.caches.Levels[2].Config().LineSize >= lineSize {
			e.llc = e.caches.Levels[2]
		}
	}
	return e, nil
}

// Arena exposes the simulated address space for allocations.
func (e *Engine) Arena() *mem.Arena { return e.arena }

// Hierarchy exposes the cache levels (for per-level stats in reports).
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.caches }

// Predictor exposes the branch predictor.
func (e *Engine) Predictor() branch.Predictor { return e.pred }

// SetQuantumYield installs (or, with quantum 0 or a nil fn, removes)
// the scheduling hook: after every quantum retired instructions the
// engine calls fn at the next operation boundary. Instructions retired
// by the hook itself count toward the shared core's quantum clock, so
// two tenants driving one engine alternate in strict quantum turns.
func (e *Engine) SetQuantumYield(quantum uint64, fn func()) {
	if quantum == 0 || fn == nil {
		e.yieldQuantum, e.nextYield, e.yieldFn = 0, 0, nil
		return
	}
	e.yieldQuantum = quantum
	e.nextYield = e.instructions + quantum
	e.yieldFn = fn
}

// maybeYield fires the quantum hook when the retired-instruction clock
// has crossed the next yield threshold. The threshold is advanced past
// the current count before the hook runs (the hook re-enters the engine
// for the other tenant), and bulk operations that skip several quanta
// at once advance it to the next boundary beyond them — one yield per
// crossing, however large the operation.
//
//detlint:allocpath
func (e *Engine) maybeYield() {
	if e.yieldFn == nil || e.instructions < e.nextYield {
		return
	}
	next := e.nextYield + e.yieldQuantum
	if next <= e.instructions {
		n := (e.instructions-next)/e.yieldQuantum + 1
		next += n * e.yieldQuantum
	}
	e.nextYield = next
	e.yieldFn()
}

// Load simulates a data load of `size` bytes at addr (split into line-sized
// pieces) and retires one load instruction per piece.
//
//detlint:allocpath
func (e *Engine) Load(addr mem.Addr, size uint64) {
	if e.hot != nil {
		e.hot.Loads++
	}
	e.access(addr, size, false)
	e.maybeYield()
}

// Store simulates a data store.
//
//detlint:allocpath
func (e *Engine) Store(addr mem.Addr, size uint64) {
	if e.hot != nil {
		e.hot.Stores++
	}
	e.access(addr, size, true)
	e.maybeYield()
}

// lineSize is the simulated core's cache-line granularity for access
// splitting (matches every configured hierarchy in this repo).
const lineSize = 64

//detlint:allocpath
func (e *Engine) access(addr mem.Addr, size uint64, write bool) {
	if size == 0 {
		size = 1
	}
	// Single-piece fast path: the access fits inside one line (almost every
	// kernel access). Identical to one iteration of the split loop below.
	if uint64(addr)%lineSize+size <= lineSize {
		e.instructions++
		if !e.pair.Touch(&e.touch[(uint64(addr)>>6)&(touchSlots-1)], uint64(addr), write) {
			e.slowPiece(addr, write)
		}
		return
	}
	for off := uint64(0); off < size; {
		a := addr + mem.Addr(off)
		e.instructions++
		// Resolved-touch fast path: when a falls in a line whose placement
		// is cached and still current (the L1 slot and TLB slot both hold
		// the expected tags), the hits are guaranteed and replay directly at
		// the resolved (set, way), skipping both lookup walks. Counters and
		// replacement state change exactly as the full path's hits would.
		if !e.pair.Touch(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a), write) {
			e.slowPiece(a, write)
		}
		off += lineSize - (uint64(a))%lineSize
	}
}

// slowPiece is the full per-piece path: TLB translation (memo replay or
// lookup with page-walk penalty), L1 lookup, miss walk, and finally the
// resolved-touch capture that makes repeat touches of this line fast.
//
//detlint:allocpath
func (e *Engine) slowPiece(a mem.Addr, write bool) {
	// Address translation first: a dTLB miss costs a page walk. A
	// same-page repeat replays the guaranteed hit without the full lookup.
	if e.tlb.MemoIs(a) {
		e.tlb.HitLastN(1, false)
	} else if !e.tlb.Access(a, false) {
		e.extraCycles += e.timing.TLBMissPenalty
	}
	// L1 first (the common hit needs no stall accounting at all); only
	// misses walk the deeper levels.
	if !e.l1.Access(a, write) {
		e.missWalk(a, write)
	}
	if e.touchOn {
		// Capture a's now-resident placement into the resolved-touch cache
		// (skipped when a prefetching level moved the memo off a's line —
		// then the line simply stays on the slow path).
		e.pair.Resolve(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a))
	}
}

// missWalk resolves an L1 miss through the deeper levels, charging the
// stall penalty of the level that finally hits (or memory).
//
//detlint:allocpath
func (e *Engine) missWalk(a mem.Addr, write bool) {
	if e.l2 != nil {
		t2 := &e.touch2[(uint64(a)>>6)&(touchSlots-1)]
		if e.l2.TouchSolo(t2, uint64(a), write) {
			// Resolved L2 replay: the hit is guaranteed, skip the lookup.
			e.extraCycles += e.timing.L2HitPenalty
			return
		}
		hit := e.l2.Access(a, write)
		// Hit or install — either way the line is now L2-resident; capture
		// its placement for the next walk of this line.
		e.l2.ResolveSolo(t2, uint64(a))
		if hit {
			e.extraCycles += e.timing.L2HitPenalty
			return
		}
		if e.llc != nil {
			// Same resolved replay one level down: L2-missing lines usually
			// still sit in the LLC.
			t3 := &e.touch3[(uint64(a)>>6)&(touchSlots-1)]
			if e.llc.TouchSolo(t3, uint64(a), write) {
				e.extraCycles += e.timing.LLCHitPenalty
				return
			}
			hit = e.llc.Access(a, write)
			e.llc.ResolveSolo(t3, uint64(a))
			if hit {
				e.extraCycles += e.timing.LLCHitPenalty
				return
			}
			e.extraCycles += e.timing.MemPenalty
			return
		}
		levels := e.caches.Levels
		for i := 2; i < len(levels); i++ {
			if levels[i].Access(a, write) {
				e.extraCycles += e.timing.LLCHitPenalty
				return
			}
		}
		e.extraCycles += e.timing.MemPenalty
		return
	}
	levels := e.caches.Levels
	for i := 1; i < len(levels); i++ {
		if levels[i].Access(a, write) {
			if i == 1 {
				e.extraCycles += e.timing.L2HitPenalty
			} else {
				e.extraCycles += e.timing.LLCHitPenalty
			}
			return
		}
	}
	e.extraCycles += e.timing.MemPenalty
}

// LoadRange simulates count sequential loads of elem bytes each, starting
// at base and striding by elem — counter-identical to count individual
// Load(base+i*elem, elem) calls. Elements that share a cache line are
// replayed through the batched hit path (one lookup per line instead of
// one per element), which is what makes streaming kernel walks cheap.
//
//detlint:allocpath
func (e *Engine) LoadRange(base mem.Addr, elem uint64, count int) {
	e.rangeAccess(base, elem, count, false)
	e.maybeYield()
}

// StoreRange is LoadRange for stores.
//
//detlint:allocpath
func (e *Engine) StoreRange(base mem.Addr, elem uint64, count int) {
	e.rangeAccess(base, elem, count, true)
	e.maybeYield()
}

//detlint:allocpath
func (e *Engine) rangeAccess(base mem.Addr, elem uint64, count int, write bool) {
	if elem == 0 {
		// Zero-size accesses do not advance; replay them individually.
		for i := 0; i < count; i++ {
			e.access(base, 0, write)
		}
		return
	}
	i := 0
	for i < count {
		a := base + mem.Addr(uint64(i)*elem)
		within := lineSize - uint64(a)%lineSize
		if elem > within {
			// Element crosses a line boundary: take the exact multi-piece
			// path for it.
			e.access(a, elem, write)
			i++
			continue
		}
		var n int // elements wholly inside this line
		if elem == 4 {
			n = int(within >> 2) // dominant element size: avoid the division
		} else {
			n = int(within / elem)
		}
		if n > count-i {
			n = count - i
		}
		// Warm path: the whole chunk — first element included — replays as
		// one resolved bulk touch.
		nu := uint64(n)
		var nw uint64
		if write {
			nw = nu
		}
		if e.pair.TouchRun(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a), nu, nw) {
			e.instructions += nu
			i += n
			continue
		}
		e.access(a, elem, write) // first element: full path (resolves the line)
		if n > 1 {
			k := nu - 1
			var kw uint64
			if write {
				kw = k
			}
			if e.pair.TouchRun(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a), k, kw) {
				// The first element refreshed the placement: bulk-replay the
				// remaining guaranteed hits at it.
				e.instructions += k
			} else if e.l1.MemoIs(a) && e.tlb.MemoIs(a) {
				// The line is now resident (hit or just installed): the
				// remaining elements are guaranteed TLB + L1 hits.
				e.instructions += k
				e.tlb.HitLastN(k, false)
				e.l1.HitLastN(k, write)
			} else {
				// A level with prefetching (or an exotic config) moved the
				// memo: fall back to exact per-element replay.
				for j := 1; j < n; j++ {
					e.access(a+mem.Addr(uint64(j)*elem), elem, write)
				}
			}
		}
		i += n
	}
}

// MacRow simulates the convolution scatter's per-position access triple —
// Load(w, size), Load(o, size), Store(o, size) — exactly, replaying the
// three events fused when both rows' placements are resolved and current.
// The fused path is taken only when each row fits inside one cache line;
// otherwise (or when either placement is stale) the triple goes through
// the ordinary access path piece by piece.
//
//detlint:allocpath
func (e *Engine) MacRow(w, o mem.Addr, size uint64) {
	e.macRow(w, o, size)
	e.maybeYield()
}

//detlint:allocpath
func (e *Engine) macRow(w, o mem.Addr, size uint64) {
	if (uint64(w)&(lineSize-1))+size <= lineSize && (uint64(o)&(lineSize-1))+size <= lineSize {
		tw := &e.touch[(uint64(w)>>6)&(touchSlots-1)]
		to := &e.touch[(uint64(o)>>6)&(touchSlots-1)]
		if e.pair.MacRow(tw, to, uint64(w), uint64(o)) {
			e.instructions += 3
			return
		}
		// Partial replay: the weight row (the thrashing side of the conv2
		// working set) walks the full path in order; the output row's
		// load+store pair still fuses when its placement is current. Each
		// leg is exactly one single-piece access.
		e.instructions++
		if !e.pair.Touch(tw, uint64(w), false) {
			e.slowPiece(w, false)
		}
		if e.pair.TouchRun(to, uint64(o), 2, 1) {
			e.instructions += 2
			return
		}
		e.instructions++
		if !e.pair.Touch(to, uint64(o), false) {
			e.slowPiece(o, false)
		}
		e.instructions++
		if !e.pair.Touch(to, uint64(o), true) {
			e.slowPiece(o, true)
		}
		return
	}
	e.access(w, size, false)
	e.access(o, size, false)
	e.access(o, size, true)
}

// MacSpan simulates n consecutive MacRow triples: position i loads
// w + i*wStep, then loads and stores o - i*size (the convolution scatter's
// inner kernel-column walk, whose output rows recede as the kernel column
// advances). Counter-identical to n individual MacRow calls; the leading
// resolved positions replay fused in one pass over the placement cache.
//
//detlint:allocpath
func (e *Engine) MacSpan(w, o mem.Addr, wStep, size uint64, n int) {
	done := 0
	if e.touchOn {
		done = e.pair.MacSpan(e.touch[:], touchSlots-1, uint64(w), uint64(o), wStep, size, n)
		e.instructions += uint64(3 * done)
	}
	for i := done; i < n; i++ {
		e.MacRow(w+mem.Addr(uint64(i)*wStep), o-mem.Addr(uint64(i)*size), size)
	}
	e.maybeYield()
}

// LoadStoreRange simulates count load+store pairs of elem bytes each,
// striding by elem — counter-identical to count interleaved
// Load(a, elem); Store(a, elem) call pairs (the read-modify-write walk of
// the conv bias pass). Pairs sharing a cache line replay through the
// batched hit path.
//
//detlint:allocpath
func (e *Engine) LoadStoreRange(base mem.Addr, elem uint64, count int) {
	if elem == 0 {
		for i := 0; i < count; i++ {
			e.access(base, 0, false)
			e.access(base, 0, true)
		}
		e.maybeYield()
		return
	}
	i := 0
	for i < count {
		a := base + mem.Addr(uint64(i)*elem)
		within := lineSize - uint64(a)%lineSize
		if elem > within {
			// Element crosses a line boundary: exact multi-piece path.
			e.access(a, elem, false)
			e.access(a, elem, true)
			i++
			continue
		}
		var n int // elements wholly inside this line
		if elem == 4 {
			n = int(within >> 2)
		} else {
			n = int(within / elem)
		}
		if n > count-i {
			n = count - i
		}
		// Warm path: all 2n load/store events replay as one resolved bulk.
		if e.pair.TouchRun(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a), uint64(2*n), uint64(n)) {
			e.instructions += uint64(2 * n)
			i += n
			continue
		}
		e.access(a, elem, false) // first load: full path (resolves the line)
		rest := uint64(2*n) - 1  // its store + load/store pairs after it
		if e.pair.TouchRun(&e.touch[(uint64(a)>>6)&(touchSlots-1)], uint64(a), rest, uint64(n)) {
			e.instructions += rest
		} else if e.l1.MemoIs(a) && e.tlb.MemoIs(a) {
			// Resident line: the remaining events are guaranteed hits. Split
			// the bulk replay into its n stores and n-1 loads — all same-line,
			// so the sums and final replacement stamp are order-exact.
			e.instructions += rest
			e.tlb.HitLastN(rest, false)
			e.l1.HitLastN(uint64(n), true)
			if n > 1 {
				e.l1.HitLastN(uint64(n)-1, false)
			}
		} else {
			e.access(a, elem, true)
			for j := 1; j < n; j++ {
				aj := a + mem.Addr(uint64(j)*elem)
				e.access(aj, elem, false)
				e.access(aj, elem, true)
			}
		}
		i += n
	}
	e.maybeYield()
}

// OpKind discriminates batched trace operations.
type OpKind uint8

// Trace operation kinds.
const (
	OpLoad OpKind = iota
	OpStore
	OpLoadRange
	OpStoreRange
	OpBranch
	OpPredictable
	OpOps
)

// TraceOp is one replayable engine operation. Batching ops lets
// instrumented kernels hand the engine whole loop bodies at once instead
// of crossing a call boundary per simulated instruction.
type TraceOp struct {
	Kind  OpKind
	Addr  mem.Addr // Load/Store/ranges
	Size  uint64   // access size; element size for ranges
	N     uint64   // range element count, Predictable/Ops amount
	PC    uint64   // Branch program counter
	Taken bool     // Branch direction
}

// AccessBatch replays ops in order. It is semantically identical to
// issuing the corresponding Engine calls one by one.
func (e *Engine) AccessBatch(ops []TraceOp) {
	for idx := range ops {
		op := &ops[idx]
		switch op.Kind {
		case OpLoad:
			e.access(op.Addr, op.Size, false)
		case OpStore:
			e.access(op.Addr, op.Size, true)
		case OpLoadRange:
			e.rangeAccess(op.Addr, op.Size, int(op.N), false)
		case OpStoreRange:
			e.rangeAccess(op.Addr, op.Size, int(op.N), true)
		case OpBranch:
			e.Branch(op.PC, op.Taken)
		case OpPredictable:
			e.PredictableBranches(op.N)
		case OpOps:
			e.Ops(op.N)
		}
		e.maybeYield()
	}
}

// Branch simulates one data-dependent conditional branch at pc.
func (e *Engine) Branch(pc uint64, taken bool) {
	e.instructions++
	e.branches++
	if !e.pred.Record(pc, taken) {
		e.mispredicts++
		e.extraCycles += e.timing.MispredictPenalty
	}
	if taken {
		// Taken branches consult the BTB for the target; a miss costs a
		// small front-end bubble.
		if !e.btb.Lookup(pc, pc+64) {
			e.extraCycles += 2
		}
	}
	e.maybeYield()
}

// BranchRun simulates n consecutive data-dependent branches at pc with the
// same outcome — the shape the kernels' zero-skip scans and ReLU sign runs
// produce. Counters, predictor state, and BTB state end up exactly as n
// individual Branch(pc, taken) calls would leave them: the predictor
// replays the run with early fixpoint detection (RecordRun), and after the
// first BTB lookup installs the target, the remaining n-1 lookups are
// guaranteed hits.
//
//detlint:allocpath
func (e *Engine) BranchRun(pc uint64, taken bool, n uint64) {
	if n == 0 {
		return
	}
	if n == 1 {
		e.Branch(pc, taken)
		return
	}
	e.instructions += n
	e.branches += n
	mis := e.pred.RecordRun(pc, taken, n)
	e.mispredicts += mis
	e.extraCycles += mis * e.timing.MispredictPenalty
	if taken {
		if !e.btb.Lookup(pc, pc+64) {
			e.extraCycles += 2
		}
		e.btb.HitN(n - 1)
	}
	e.maybeYield()
}

// PredictableBranches retires n branch instructions that real hardware
// predicts essentially perfectly (loop back-edges). They count as branches
// without walking the predictor tables, keeping simulation costs linear in
// data-dependent work.
func (e *Engine) PredictableBranches(n uint64) {
	e.branches += n
	e.instructions += n
	e.maybeYield()
}

// Ops retires n non-memory, non-branch instructions (arithmetic, address
// generation).
func (e *Engine) Ops(n uint64) {
	e.instructions += n
	e.maybeYield()
}

// Background injects activity that surrounds the instrumented kernels but
// is modeled statistically instead of being simulated access-by-access —
// the stand-in for the ML framework runtime (allocator, dispatcher,
// thread pool) whose footprint dominates the absolute counter values in
// the paper's Figure 2(b). LLC misses and branch mispredicts contribute
// their usual cycle penalties so derived cycle counts stay consistent.
func (e *Engine) Background(ops, branches, branchMisses, llcRefs, llcMisses uint64) {
	if branchMisses > branches {
		branchMisses = branches
	}
	e.instructions += ops + branches
	e.branches += branches
	e.mispredicts += branchMisses
	e.caches.Last().AddExternal(llcRefs, llcMisses)
	e.extraCycles += llcMisses*e.timing.MemPenalty + branchMisses*e.timing.MispredictPenalty
	e.maybeYield()
}

// Pad injects deterministic filler activity: ops/branches/mispredicts and
// LLC references/misses like Background, plus raw stall cycles. It is the
// envelope-padding primitive of the archid scenario's hardened
// deployments — a serving loop that tops every classification up to a
// fixed architecture-independent budget (dummy arithmetic, retired
// no-op branches, cache-thrashing sweeps, fence/spin stalls). Unlike
// Background it does not clamp branchMisses to branches: the pad deltas
// are computed against a consistent envelope by the caller, and clamping
// would silently break the equalization.
func (e *Engine) Pad(ops, branches, branchMisses, llcRefs, llcMisses, stallCycles uint64) {
	e.PadExtended(PadSpec{
		Ops: ops, Branches: branches, BranchMisses: branchMisses,
		LLCRefs: llcRefs, LLCMisses: llcMisses, StallCycles: stallCycles,
	})
}

// PadSpec is the full per-classification pad of an envelope-padded
// deployment, in the engine's independent counter components. Beyond the
// Pad primitive's LLC/branch/instruction components it also covers the
// per-level L1 and dTLB events — the residual fingerprint the original
// archid padding left observable — and the raw stall-cycle residue.
type PadSpec struct {
	Ops, Branches, BranchMisses uint64
	LLCRefs, LLCMisses          uint64
	L1Loads, L1Misses           uint64
	TLBLoads, TLBMisses         uint64
	StallCycles                 uint64
}

// PadExtended injects the deterministic filler activity of a PadSpec: the
// same components as Pad plus external L1 and dTLB traffic, so the padded
// deployment equalizes the *extended* event set too. The external L1/TLB
// pads are stats-only (they do not walk the hierarchy or charge page-walk
// penalties): the stall component already carries the exact cycle residue
// of the envelope, and charging the pads again would double-count it.
func (e *Engine) PadExtended(p PadSpec) {
	e.instructions += p.Ops + p.Branches
	e.branches += p.Branches
	e.mispredicts += p.BranchMisses
	e.caches.Last().AddExternal(p.LLCRefs, p.LLCMisses)
	e.caches.Levels[0].AddExternal(p.L1Loads, p.L1Misses)
	e.tlb.AddExternal(p.TLBLoads, p.TLBMisses)
	e.extraCycles += p.StallCycles
	e.maybeYield()
}

// StallCycles returns the accumulated stall-cycle residue — the exact
// non-base-CPI component of the cycle counter. Padding countermeasures
// read it around a measured interval to extract the interval's stall
// delta without reconstructing (and truncation-aliasing) it from Counts.
func (e *Engine) StallCycles() uint64 { return e.extraCycles }

// Counts derives every modeled event from the current architectural
// state. The returned snapshot is monotonically increasing across calls.
func (e *Engine) Counts() Counts {
	var c Counts
	l1 := e.caches.Levels[0].Stats()
	llc := e.caches.Last().Stats()
	tlb := e.tlb.Stats()
	cycles := uint64(float64(e.instructions)*e.timing.BaseCPI) + e.extraCycles
	c[EvBranches] = e.branches
	c[EvBranchMisses] = e.mispredicts
	c[EvCacheMisses] = llc.Misses
	c[EvCacheReferences] = llc.Accesses
	c[EvCycles] = cycles
	c[EvInstructions] = e.instructions
	c[EvRefCycles] = uint64(float64(cycles) * e.timing.RefCycleRatio)
	c[EvBusCycles] = uint64(float64(cycles) * e.timing.BusCycleRatio)
	c[EvL1DLoads] = l1.Accesses
	c[EvL1DLoadMisses] = l1.Misses
	c[EvLLCLoads] = llc.Accesses
	c[EvLLCLoadMisses] = llc.Misses
	c[EvDTLBLoads] = tlb.Accesses
	c[EvDTLBLoadMisses] = tlb.Misses
	return c
}

// NoisyCounts returns Counts with the engine's noise model applied. Each
// call draws fresh noise; use it once per measurement interval.
func (e *Engine) NoisyCounts() Counts {
	c := e.Counts()
	e.noise.Apply(&c)
	return c
}

// Noise returns the configured noise model (may be nil).
func (e *Engine) Noise() *NoiseModel { return e.noise }

// ResetCounters clears all counters and per-level cache stats while keeping
// cache/predictor *state* (warm microarchitecture, cold counters) — the
// standard measure-after-warm-up discipline.
func (e *Engine) ResetCounters() {
	e.instructions, e.branches, e.mispredicts, e.extraCycles = 0, 0, 0, 0
	e.nextYield = e.yieldQuantum // quantum clock restarts with the instruction counter
	e.caches.ResetStats()
	e.tlb.ResetStats()
	// Predictor stats are embedded with its state; extract-and-subtract
	// would complicate the Stats invariant, so we absorb them here: the
	// engine's own mispredict counter is authoritative for events.
}

// ColdReset flushes caches, TLB, predictor and counters completely.
func (e *Engine) ColdReset() {
	e.ResetCounters()
	e.caches.Flush()
	e.tlb.Flush()
	e.pred.Reset()
	e.btb.Reset()
}

// TLB exposes the data TLB (for per-structure stats in reports).
func (e *Engine) TLB() *cache.Cache { return e.tlb }
