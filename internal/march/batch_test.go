package march

// Equivalence and allocation guards for the batched trace API and the
// engine's same-line fast path: every batched form must leave the engine —
// counters, cache contents, TLB, predictor — exactly where the
// element-by-element form leaves it. Wall-clock is the only thing allowed
// to change.

import (
	"math/rand"
	"testing"

	"repro/internal/march/cache"
	"repro/internal/march/mem"
	"repro/internal/obs"
	"repro/internal/raceinfo"
)

// simEngine builds an engine on the small hierarchy the reproduction
// measures with (misses and evictions are plentiful, so divergence in the
// replacement fast paths cannot hide).
func simEngine(t *testing.T) *Engine {
	t.Helper()
	h, err := cache.NewHierarchy(
		cache.Config{Name: "L1D", Size: 4 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
		cache.Config{Name: "L2", Size: 16 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
		cache.Config{Name: "LLC", Size: 32 << 10, LineSize: 64, Assoc: 8, Policy: cache.LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Hierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// engineState compares every observable of two engines.
func engineState(t *testing.T, a, b *Engine, label string) {
	t.Helper()
	if ac, bc := a.Counts(), b.Counts(); ac != bc {
		t.Fatalf("%s: counts diverged:\n  batched %v\n  element %v", label, ac, bc)
	}
	for i := range a.Hierarchy().Levels {
		if as, bs := a.Hierarchy().Levels[i].Stats(), b.Hierarchy().Levels[i].Stats(); as != bs {
			t.Fatalf("%s: level %d stats diverged: %+v vs %+v", label, i, as, bs)
		}
	}
	if as, bs := a.TLB().Stats(), b.TLB().Stats(); as != bs {
		t.Fatalf("%s: TLB stats diverged: %+v vs %+v", label, as, bs)
	}
}

func TestLoadRangeMatchesIndividualLoads(t *testing.T) {
	cases := []struct {
		name  string
		base  mem.Addr
		elem  uint64
		count int
	}{
		{"aligned4B", 0x1000, 4, 300},
		{"midLineStart", 0x1030, 4, 100},
		{"unalignedCrossing", 0x103c, 8, 64}, // every 8th element straddles lines
		{"elem8", 0x2000, 8, 200},
		{"wholeLines", 0x4000, 64, 40},
		{"biggerThanLine", 0x8000, 160, 16},
		{"pageCrossing", 0xff0, 4, 2048}, // walks across several 4 KiB pages
		{"zeroElem", 0x5000, 0, 10},
		{"single", 0x6000, 4, 1},
		{"empty", 0x7000, 4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, write := range []bool{false, true} {
				a, b := simEngine(t), simEngine(t)
				// Warm both engines identically so the ranges hit a
				// non-trivial cache state.
				for i := 0; i < 200; i++ {
					a.Load(mem.Addr(i*96), 4)
					b.Load(mem.Addr(i*96), 4)
				}
				if write {
					a.StoreRange(tc.base, tc.elem, tc.count)
					for i := 0; i < tc.count; i++ {
						b.Store(tc.base+mem.Addr(uint64(i)*tc.elem), tc.elem)
					}
				} else {
					a.LoadRange(tc.base, tc.elem, tc.count)
					for i := 0; i < tc.count; i++ {
						b.Load(tc.base+mem.Addr(uint64(i)*tc.elem), tc.elem)
					}
				}
				engineState(t, a, b, tc.name)
			}
		})
	}
}

func TestLoadRangeAfterInvalidate(t *testing.T) {
	// Invalidating mid-stream must not let the batched path replay hits on
	// dropped lines.
	a, b := simEngine(t), simEngine(t)
	a.LoadRange(0x1000, 4, 64)
	for i := 0; i < 64; i++ {
		b.Load(0x1000+mem.Addr(i*4), 4)
	}
	a.Hierarchy().Invalidate()
	b.Hierarchy().Invalidate()
	a.LoadRange(0x1000, 4, 64)
	for i := 0; i < 64; i++ {
		b.Load(0x1000+mem.Addr(i*4), 4)
	}
	engineState(t, a, b, "post-invalidate")
	// The re-walk after invalidation must re-miss once per line.
	if misses := a.Hierarchy().Levels[0].Stats().Misses; misses != 2*4 {
		t.Fatalf("L1 misses = %d, want 8 (4 lines, cold twice)", misses)
	}
}

func TestAccessBatchMatchesDirectCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ops []TraceOp
	for i := 0; i < 5000; i++ {
		switch rng.Intn(7) {
		case 0:
			ops = append(ops, TraceOp{Kind: OpLoad, Addr: mem.Addr(rng.Intn(1 << 16)), Size: uint64(1 + rng.Intn(80))})
		case 1:
			ops = append(ops, TraceOp{Kind: OpStore, Addr: mem.Addr(rng.Intn(1 << 16)), Size: uint64(1 + rng.Intn(80))})
		case 2:
			ops = append(ops, TraceOp{Kind: OpLoadRange, Addr: mem.Addr(rng.Intn(1 << 16)), Size: 4, N: uint64(rng.Intn(64))})
		case 3:
			ops = append(ops, TraceOp{Kind: OpStoreRange, Addr: mem.Addr(rng.Intn(1 << 16)), Size: 8, N: uint64(rng.Intn(32))})
		case 4:
			ops = append(ops, TraceOp{Kind: OpBranch, PC: uint64(rng.Intn(64) * 4), Taken: rng.Intn(2) == 0})
		case 5:
			ops = append(ops, TraceOp{Kind: OpPredictable, N: uint64(rng.Intn(10))})
		default:
			ops = append(ops, TraceOp{Kind: OpOps, N: uint64(rng.Intn(10))})
		}
	}
	a, b := simEngine(t), simEngine(t)
	a.AccessBatch(ops)
	for _, op := range ops {
		switch op.Kind {
		case OpLoad:
			b.Load(op.Addr, op.Size)
		case OpStore:
			b.Store(op.Addr, op.Size)
		case OpLoadRange:
			b.LoadRange(op.Addr, op.Size, int(op.N))
		case OpStoreRange:
			b.StoreRange(op.Addr, op.Size, int(op.N))
		case OpBranch:
			b.Branch(op.PC, op.Taken)
		case OpPredictable:
			b.PredictableBranches(op.N)
		case OpOps:
			b.Ops(op.N)
		}
	}
	engineState(t, a, b, "batch")
	if as, bs := a.Predictor().Stats(), b.Predictor().Stats(); as != bs {
		t.Fatalf("predictor stats diverged: %+v vs %+v", as, bs)
	}
}

func TestSameLineFastPathCounters(t *testing.T) {
	e := simEngine(t)
	const n = 100
	for i := 0; i < n; i++ {
		e.Load(0x9000, 4)
	}
	c := e.Counts()
	if c.Get(EvL1DLoads) != n {
		t.Fatalf("L1 loads = %d, want %d", c.Get(EvL1DLoads), n)
	}
	if c.Get(EvL1DLoadMisses) != 1 {
		t.Fatalf("L1 misses = %d, want 1 (fast path must still be one cold miss)", c.Get(EvL1DLoadMisses))
	}
	if c.Get(EvDTLBLoads) != n || c.Get(EvDTLBLoadMisses) != 1 {
		t.Fatalf("TLB loads/misses = %d/%d, want %d/1", c.Get(EvDTLBLoads), c.Get(EvDTLBLoadMisses), n)
	}
	// Invalidation must force the fast path to re-miss.
	e.Hierarchy().Invalidate()
	e.Load(0x9000, 4)
	if got := e.Counts().Get(EvL1DLoadMisses); got != 2 {
		t.Fatalf("post-invalidate L1 misses = %d, want 2", got)
	}
}

// TestEngineLoadCachedLineZeroAlloc is the allocation gate for the hot
// path: a cached-line load must not allocate.
func TestEngineLoadCachedLineZeroAlloc(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	e := simEngine(t)
	e.Load(0x9000, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		e.Load(0x9000, 4)
	})
	if allocs != 0 {
		t.Fatalf("Engine.Load on a cached line allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		e.LoadRange(0x9000, 4, 16)
	})
	if allocs != 0 {
		t.Fatalf("Engine.LoadRange allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		e.Branch(0x40, true)
	})
	if allocs != 0 {
		t.Fatalf("Engine.Branch allocates %v/op, want 0", allocs)
	}
}

// TestEngineObsHookZeroAlloc is the allocation gate for the telemetry
// hooks on the engine hot path: with no hot counters attached (the
// obs-off default) and with a HotCounters block attached, Load and
// Store must stay at 0 allocs/op — the hook is one nil check plus a
// plain integer increment, never an interface call or closure.
func TestEngineObsHookZeroAlloc(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	e := simEngine(t)
	e.Load(0x9000, 4)
	for name, hot := range map[string]*obs.HotCounters{"nil": nil, "attached": {}} {
		e.SetHotCounters(hot)
		if allocs := testing.AllocsPerRun(1000, func() {
			e.Load(0x9000, 4)
			e.Store(0x9000, 4)
		}); allocs != 0 {
			t.Fatalf("%s hot counters: Load+Store allocate %v/op, want 0", name, allocs)
		}
	}
	e.SetHotCounters(nil)
}
