package march

// Multi-tenant execution: two victims time-sharing one simulated core.
// The deployment scenario the streaming monitor audits is a victim
// model co-located with another tenant on the same physical core —
// cross-tenant contention (shared caches, predictor, TLB) then shows up
// in the victim's own measured counters, exactly the leakage channel
// the paper's co-residency threat model worries about.
//
// Ring serializes the two tenants in strict quantum turns using the
// engine's SetQuantumYield hook: the victim runs on the caller's
// goroutine (inside the PMU's measured interval), the co-tenant on its
// own goroutine, and an unbuffered channel pair passes a single token
// between them. Exactly one goroutine ever drives the engine — the
// token holder — so the interleaving is a pure function of the quantum
// and both tenants' instruction streams: byte-identical on every run,
// race-clean by happens-before on the channel handoffs.

// Ring interleaves a victim (the caller) with one co-tenant workload on
// a shared engine, quantum-by-quantum. The co-tenant goroutine starts
// lazily at the victim's first yield and is always drained before
// Drain returns, so no goroutine outlives a measured interval.
type Ring struct {
	eng *Engine
	// coWork runs one unit of co-tenant work (one classification). It
	// is called repeatedly, back to back, while the co-tenant holds the
	// core; the engine's quantum hook suspends it mid-unit.
	coWork func()

	toCo     chan struct{}
	toVictim chan struct{}
	done     chan struct{}
	// onCo routes yields: true while the co-tenant holds the token. It
	// is only ever written by the current token holder, immediately
	// before a handoff, so the channel send orders every write.
	onCo bool
	// draining makes co-tenant yields no-ops so the in-flight coWork
	// unit runs to completion; its tail lands inside the victim's
	// measured interval at a deterministic point (the drain).
	draining bool
	started  bool
}

// NewRing wires a two-tenant ring onto eng: every quantum retired
// instructions, control passes to the other tenant. The victim simply
// keeps using the engine from the calling goroutine; coWork supplies
// the co-tenant's workload. Call Drain at the end of each victim
// classification to park the co-tenant deterministically.
func NewRing(eng *Engine, quantum uint64, coWork func()) *Ring {
	r := &Ring{
		eng:      eng,
		coWork:   coWork,
		toCo:     make(chan struct{}),
		toVictim: make(chan struct{}),
	}
	eng.SetQuantumYield(quantum, r.yield)
	return r
}

// yield is the engine's quantum hook. It runs on whichever goroutine
// currently drives the engine and hands the token to the other tenant,
// blocking until it comes back.
func (r *Ring) yield() {
	if r.draining {
		return // drain: the co-tenant keeps the core until its unit completes
	}
	if r.onCo {
		r.onCo = false
		r.toVictim <- struct{}{}
		<-r.toCo
		r.onCo = true
		return
	}
	if !r.started {
		r.started = true
		r.done = make(chan struct{})
		go r.coMain()
	}
	r.onCo = true
	r.toCo <- struct{}{}
	<-r.toVictim
}

// coMain is the co-tenant goroutine: it waits for its first quantum,
// then runs coWork units back to back — the engine's hook suspends and
// resumes it between quanta — until a drain lets the current unit
// finish and exits.
func (r *Ring) coMain() {
	<-r.toCo
	for {
		r.coWork()
		if r.draining {
			close(r.done)
			return
		}
	}
}

// Drain parks the co-tenant at a deterministic point: the in-flight
// coWork unit (if any) runs to completion with yields disabled, the
// co-tenant goroutine exits, and the ring is ready for the next
// measured interval. A ring whose co-tenant never started is already
// parked. The victim must not be mid-operation when calling Drain.
func (r *Ring) Drain() {
	if !r.started {
		return
	}
	r.draining = true
	r.toCo <- struct{}{}
	<-r.done
	r.started = false
	r.draining = false
	r.onCo = false
}

// Detach removes the ring's hook from the engine. The ring must be
// drained first.
func (r *Ring) Detach() {
	r.eng.SetQuantumYield(0, nil)
}
