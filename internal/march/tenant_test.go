package march

import (
	"testing"

	"repro/internal/march/mem"
)

// tenantVictim simulates one victim classification: a mix of loads,
// branches and arithmetic over a private working set.
func tenantVictim(e *Engine, base mem.Addr) {
	for i := 0; i < 200; i++ {
		e.Load(base+mem.Addr(uint64(i%32)*64), 4)
		e.Branch(0x400+uint64(i%7)*4, i%3 == 0)
		e.Ops(5)
	}
}

// tenantCo is the co-tenant's workload: a cache-hostile sweep over a
// disjoint region that evicts the victim's lines from the shared
// hierarchy.
func tenantCo(e *Engine, base mem.Addr) func() {
	return func() {
		for i := 0; i < 64; i++ {
			e.Load(base+mem.Addr(uint64(i)*4096), 4)
			e.Ops(2)
		}
	}
}

// runTenantInterval runs one measured victim interval with a co-tenant
// ring at the given quantum (0 = no ring) and returns the counters.
func runTenantInterval(t *testing.T, quantum uint64) Counts {
	t.Helper()
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	victimBase, coBase := mem.Addr(mem.DefaultBase), mem.Addr(mem.DefaultBase+1<<20)
	var ring *Ring
	if quantum > 0 {
		ring = NewRing(e, quantum, tenantCo(e, coBase))
	}
	e.ColdReset()
	tenantVictim(e, victimBase)
	if ring != nil {
		ring.Drain()
		ring.Detach()
	}
	return e.Counts()
}

// TestRingDeterministicInterleaving: the two-tenant interleaving must
// be a pure function of the quantum and the tenants' instruction
// streams — repeated runs produce bit-identical counters.
func TestRingDeterministicInterleaving(t *testing.T) {
	for _, quantum := range []uint64{64, 257, 1000} {
		ref := runTenantInterval(t, quantum)
		for rep := 0; rep < 3; rep++ {
			if got := runTenantInterval(t, quantum); got != ref {
				t.Fatalf("quantum=%d rep=%d: counters diverge across identical runs\n%v\nvs\n%v", quantum, rep, got, ref)
			}
		}
	}
}

// TestRingContentionVisible: co-tenant activity on the shared core must
// change the victim interval's counters — both the shared instruction
// clock and the contention-driven cache misses — or the monitored
// scenario has no channel to detect.
func TestRingContentionVisible(t *testing.T) {
	solo := runTenantInterval(t, 0)
	shared := runTenantInterval(t, 128)
	if shared[EvInstructions] <= solo[EvInstructions] {
		t.Fatalf("co-tenant retired no instructions on the shared core: solo %d, shared %d",
			solo[EvInstructions], shared[EvInstructions])
	}
	if shared[EvCacheReferences] <= solo[EvCacheReferences] {
		t.Fatalf("co-tenant sweep missing from shared LLC references: solo %d, shared %d",
			solo[EvCacheReferences], shared[EvCacheReferences])
	}
}

// TestRingQuantumChangesInterleaving: different quanta slice the same
// workloads differently, so the contended counters must differ — the
// quantum is a real knob, not a no-op.
func TestRingQuantumChangesInterleaving(t *testing.T) {
	a := runTenantInterval(t, 64)
	b := runTenantInterval(t, 1000)
	if a == b {
		t.Fatal("quantum 64 and 1000 produced identical counters; interleaving is not quantum-driven")
	}
}

// TestRingDrainWithoutStart: a ring whose co-tenant never ran (victim
// shorter than one quantum) drains as a no-op.
func TestRingDrainWithoutStart(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(e, 1<<20, func() { t.Fatal("co-tenant ran before a quantum expired") })
	e.ColdReset()
	e.Ops(10)
	ring.Drain()
	ring.Detach()
	if got := e.Counts()[EvInstructions]; got != 10 {
		t.Fatalf("instructions = %d, want 10", got)
	}
}

// TestRingRepeatedIntervals: a ring drained and reused across several
// measured intervals (the per-run discipline of a monitored campaign)
// stays deterministic interval by interval.
func TestRingRepeatedIntervals(t *testing.T) {
	run := func() []Counts {
		e, err := NewEngine(Config{})
		if err != nil {
			t.Fatal(err)
		}
		ring := NewRing(e, 128, tenantCo(e, mem.Addr(mem.DefaultBase+1<<20)))
		var out []Counts
		for interval := 0; interval < 3; interval++ {
			e.ResetCounters()
			tenantVictim(e, mem.Addr(mem.DefaultBase))
			ring.Drain()
			out = append(out, e.Counts())
		}
		ring.Detach()
		return out
	}
	ref := run()
	got := run()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("interval %d diverges across identical campaigns", i)
		}
	}
}
