package cache

// Allocation gate for the simulator's innermost loop: Hierarchy.Access
// must not allocate, hit or miss. A regression here multiplies GC work by
// the millions of accesses per simulated classification.

import (
	"testing"

	"repro/internal/march/mem"
	"repro/internal/raceinfo"
)

func TestHierarchyAccessZeroAlloc(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	h, err := NewHierarchy(
		Config{Name: "L1D", Size: 4 << 10, LineSize: 64, Assoc: 4, Policy: TreePLRU},
		Config{Name: "L2", Size: 16 << 10, LineSize: 64, Assoc: 4, Policy: TreePLRU},
		Config{Name: "LLC", Size: 32 << 10, LineSize: 64, Assoc: 8, Policy: LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Hit path (hot line).
	h.Access(0x1000, false)
	if allocs := testing.AllocsPerRun(1000, func() { h.Access(0x1000, false) }); allocs != 0 {
		t.Fatalf("Hierarchy.Access hit allocates %v/op, want 0", allocs)
	}
	// Miss/evict path (strided sweep larger than the LLC).
	i := 0
	if allocs := testing.AllocsPerRun(2000, func() {
		h.Access(mem.Addr(i*64), i%5 == 0)
		i++
	}); allocs != 0 {
		t.Fatalf("Hierarchy.Access miss allocates %v/op, want 0", allocs)
	}
}
