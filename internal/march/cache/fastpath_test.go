package cache

// Equivalence guard for the optimized access path: a reference model that
// keeps the original per-access semantics (recomputed shift amounts,
// per-access policy switch, no memo) is replayed against the optimized
// Cache on random traces. Every hit/miss decision and every counter must
// agree — the optimization is allowed to change wall-clock only.

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/march/mem"
)

// refCache is the pre-optimization implementation, kept verbatim in spirit:
// index recomputes bits.TrailingZeros64(sets) per access, replacement is a
// per-access switch, and there is no hot-line memo.
type refCache struct {
	cfg      Config
	sets     uint64
	lineBits uint
	setMask  uint64
	tags     []uint64
	valid    []bool
	dirty    []bool
	age      []uint32
	clock    uint32
	plruTree []uint64
	rng      uint64
	stats    Stats
}

func newRef(cfg Config) *refCache {
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Assoc))
	return &refCache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros64(cfg.LineSize)),
		setMask:  sets - 1,
		tags:     make([]uint64, sets*uint64(cfg.Assoc)),
		valid:    make([]bool, sets*uint64(cfg.Assoc)),
		dirty:    make([]bool, sets*uint64(cfg.Assoc)),
		age:      make([]uint32, sets*uint64(cfg.Assoc)),
		plruTree: make([]uint64, sets),
		rng:      0x9e3779b97f4a7c15,
	}
}

func (c *refCache) index(addr mem.Addr) (set, tag uint64) {
	line := uint64(addr) >> c.lineBits
	return line & c.setMask, line >> bits.TrailingZeros64(c.sets)
}

func (c *refCache) access(addr mem.Addr, write bool) bool {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	}
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			c.onHit(set, w)
			if write {
				c.dirty[i] = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.install(addr, write)
	c.stats.Misses++
	if c.cfg.NextLinePrefetch {
		next := addr + mem.Addr(c.cfg.LineSize)
		if !c.present(next) {
			c.install(next, false)
		}
	}
	return false
}

func (c *refCache) present(addr mem.Addr) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+uint64(w)] && c.tags[base+uint64(w)] == tag {
			return true
		}
	}
	return false
}

func (c *refCache) install(addr mem.Addr, write bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	victim := -1
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.valid[base+uint64(w)] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.victim(set)
		c.stats.Evictions++
	}
	i := base + uint64(victim)
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = write
	c.onFill(set, victim)
}

func (c *refCache) onHit(set uint64, way int) {
	switch c.cfg.Policy {
	case LRU:
		c.clock++
		c.age[set*uint64(c.cfg.Assoc)+uint64(way)] = c.clock
	case TreePLRU:
		c.plruPoint(set, way)
	}
}

func (c *refCache) onFill(set uint64, way int) {
	switch c.cfg.Policy {
	case LRU, FIFO:
		c.clock++
		c.age[set*uint64(c.cfg.Assoc)+uint64(way)] = c.clock
	case TreePLRU:
		c.plruPoint(set, way)
	}
}

func (c *refCache) victim(set uint64) int {
	switch c.cfg.Policy {
	case LRU, FIFO:
		base := set * uint64(c.cfg.Assoc)
		best, bestAge := 0, c.age[base]
		for w := 1; w < c.cfg.Assoc; w++ {
			if a := c.age[base+uint64(w)]; a < bestAge {
				best, bestAge = w, a
			}
		}
		return best
	case TreePLRU:
		return c.plruVictim(set)
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(c.cfg.Assoc))
	default:
		return 0
	}
}

func (c *refCache) plruPoint(set uint64, way int) {
	node, lo, hi := 0, 0, c.cfg.Assoc
	tree := c.plruTree[set]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			tree |= 1 << uint(node)
			node = 2*node + 1
			hi = mid
		} else {
			tree &^= 1 << uint(node)
			node = 2*node + 2
			lo = mid
		}
	}
	c.plruTree[set] = tree
}

func (c *refCache) plruVictim(set uint64) int {
	node, lo, hi := 0, 0, c.cfg.Assoc
	tree := c.plruTree[set]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if tree&(1<<uint(node)) != 0 {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// TestTagShiftDecomposition pins the satellite fix: index must produce the
// same set/tag decomposition as the original per-access
// bits.TrailingZeros64 computation, across the address space and across
// geometries.
func TestTagShiftDecomposition(t *testing.T) {
	cfgs := []Config{
		{Name: "tiny", Size: 256, LineSize: 64, Assoc: 2, Policy: LRU},
		{Name: "l1", Size: 4 << 10, LineSize: 64, Assoc: 4, Policy: TreePLRU},
		{Name: "llc", Size: 2 << 20, LineSize: 64, Assoc: 16, Policy: LRU},
		{Name: "tlb", Size: 64 * 4096, LineSize: 4096, Assoc: 4, Policy: LRU},
		{Name: "oneSet", Size: 64 * 4, LineSize: 64, Assoc: 4, Policy: TreePLRU},
	}
	for _, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := c.tagShift, c.lineBits+uint(bits.TrailingZeros64(c.sets)); got != want {
			t.Fatalf("%s: tagShift = %d, want %d", cfg.Name, got, want)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			addr := mem.Addr(rng.Uint64())
			set, tag := c.index(addr)
			line := uint64(addr) >> c.lineBits
			wantSet := line & (c.sets - 1)
			wantTag := line >> bits.TrailingZeros64(c.sets)
			if set != wantSet || tag != wantTag {
				t.Fatalf("%s: index(%#x) = (%d, %#x), want (%d, %#x)",
					cfg.Name, uint64(addr), set, tag, wantSet, wantTag)
			}
			if altTag := uint64(addr) >> c.tagShift; altTag != wantTag {
				t.Fatalf("%s: addr>>tagShift = %#x, want %#x", cfg.Name, altTag, wantTag)
			}
		}
	}
}

// TestAccessMatchesReferenceModel replays random traces through the
// optimized Cache and the reference model for every policy, asserting
// identical hit/miss decisions and counters — the counter-invariance
// contract of the fast path.
func TestAccessMatchesReferenceModel(t *testing.T) {
	cfgs := []Config{
		{Name: "lru", Size: 2048, LineSize: 64, Assoc: 4, Policy: LRU},
		{Name: "plru", Size: 2048, LineSize: 64, Assoc: 4, Policy: TreePLRU},
		{Name: "fifo", Size: 2048, LineSize: 64, Assoc: 4, Policy: FIFO},
		{Name: "rand", Size: 2048, LineSize: 64, Assoc: 4, Policy: Random},
		{Name: "pf", Size: 1024, LineSize: 64, Assoc: 2, Policy: LRU, NextLinePrefetch: true},
		{Name: "oneSet", Size: 64 * 4, LineSize: 64, Assoc: 4, Policy: TreePLRU},
		{Name: "altmemo", Size: 2048, LineSize: 64, Assoc: 4, Policy: LRU, AltLineMemo: true},
		{Name: "altplru", Size: 2048, LineSize: 64, Assoc: 4, Policy: TreePLRU, AltLineMemo: true},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.Name, func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRef(cfg)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 40000; i++ {
				var addr mem.Addr
				switch rng.Intn(4) {
				case 0: // random far address
					addr = mem.Addr(rng.Intn(1 << 14))
				case 1: // sequential-ish walk: exercises the memo
					addr = mem.Addr((i % 512) * 4)
				case 2: // repeat last-ish address: exercises the memo hard
					addr = mem.Addr((i / 8) * 4 % (1 << 13))
				default: // strict two-line alternation: exercises memo entry 1
					addr = mem.Addr((i%2)*2048 + (i/200%4)*64)
				}
				write := rng.Intn(4) == 0
				got := c.Access(addr, write)
				want := ref.access(addr, write)
				if got != want {
					t.Fatalf("access %d (%#x, write=%v): hit=%v, reference=%v", i, uint64(addr), write, got, want)
				}
				if rng.Intn(997) == 0 {
					c.Invalidate()
					ref2 := newRef(cfg)
					ref2.clock, ref2.rng, ref2.stats = 0, ref.rng, ref.stats
					ref = ref2
				}
			}
			if c.Stats() != ref.stats {
				t.Fatalf("stats diverged: %+v vs reference %+v", c.Stats(), ref.stats)
			}
			// Full state comparison: tags, validity, dirty bits, replacement
			// metadata. The optimized cache sentinel-encodes validity as
			// tag+1 in the tags array.
			for i := range c.tags {
				valid := c.tags[i] != 0
				if valid != ref.valid[i] || (valid && c.tags[i]-1 != ref.tags[i]) || c.dirty[i] != ref.dirty[i] {
					t.Fatalf("way state %d diverged", i)
				}
			}
		})
	}
}

// TestHitLastNMatchesIndividualHits asserts that the batched replay leaves
// counters and replacement state exactly as n individual hitting Access
// calls would, for every policy.
func TestHitLastNMatchesIndividualHits(t *testing.T) {
	for _, pol := range []Policy{LRU, TreePLRU, FIFO, Random} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Name: "h", Size: 1024, LineSize: 64, Assoc: 4, Policy: pol}
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 2000; i++ {
				addr := mem.Addr(rng.Intn(1 << 12))
				write := rng.Intn(5) == 0
				a.Access(addr, write)
				b.Access(addr, write)
				if rng.Intn(2) == 0 {
					n := uint64(1 + rng.Intn(15))
					hw := rng.Intn(3) == 0
					a.HitLastN(n, hw)
					for j := uint64(0); j < n; j++ {
						if !b.Access(addr, hw) {
							t.Fatalf("replayed access missed")
						}
					}
				}
			}
			if a.Stats() != b.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
			}
			if a.clock != b.clock {
				t.Fatalf("clock diverged: %d vs %d", a.clock, b.clock)
			}
			for i := range a.tags {
				if a.tags[i] != b.tags[i] || a.age[i] != b.age[i] || a.dirty[i] != b.dirty[i] {
					t.Fatalf("way state %d diverged", i)
				}
			}
			for i := range a.plruTree {
				if a.plruTree[i] != b.plruTree[i] {
					t.Fatalf("plru tree %d diverged", i)
				}
			}
		})
	}
}

// TestMemoInvalidation: the memo must not survive Invalidate/Flush, and
// MemoIs must only report the genuinely last-touched line.
func TestMemoInvalidation(t *testing.T) {
	c := smallLRUT(t, 1024, 2)
	c.Access(0x1000, false)
	if !c.MemoIs(0x1010) {
		t.Fatal("MemoIs false for just-touched line")
	}
	if c.MemoIs(0x2000) {
		t.Fatal("MemoIs true for a different line")
	}
	c.Invalidate()
	if c.MemoIs(0x1010) {
		t.Fatal("memo survived Invalidate")
	}
	if c.Access(0x1000, false) {
		t.Fatal("access after Invalidate hit")
	}
	c.Flush()
	if c.MemoIs(0x1000) {
		t.Fatal("memo survived Flush")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HitLastN after Flush did not panic")
		}
	}()
	c.HitLastN(1, false)
}

func smallLRUT(t *testing.T, size uint64, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Size: size, LineSize: 64, Assoc: assoc, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
