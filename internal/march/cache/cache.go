// Package cache implements the set-associative cache simulator that turns
// the instrumented CNN's memory accesses into cache-references and
// cache-misses — the central HPC events of the paper under reproduction.
//
// The simulator is trace-driven: callers feed it addresses and it tracks
// tags per set under a configurable replacement policy. A Hierarchy chains
// levels (L1D → L2 → LLC) the way the perf events are defined on Intel:
// cache-references and cache-misses count last-level-cache activity.
//
// # Hot path
//
// One classification issues millions of accesses, so Access is built for
// throughput without changing a single counter:
//
//   - set/tag decomposition uses shifts precomputed at construction
//     (tagShift) instead of recomputing log2(sets) per access;
//   - replacement policies are bound as a method table at construction, so
//     there is no per-access policy switch;
//   - a one-line memo remembers the last-touched (line, way): consecutive
//     accesses to the same line skip the way scan entirely. The memo is
//     maintained on every hit and install and invalidated by
//     Invalidate/Flush, so it can never go stale.
//
// HitLastN batches the memo path further: it replays n additional hits on
// the last-touched line in O(1), with replacement metadata updated exactly
// as n individual hits would have (see the per-policy hitN functions).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/march/mem"
)

// Policy selects the replacement policy for a cache level.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	TreePLRU
	FIFO
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "tree-plru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line, power of two
	Assoc    int    // ways per set
	Policy   Policy
	// NextLinePrefetch enables a simple sequential prefetcher: on a miss,
	// the following line is installed as well (without counting as a
	// reference).
	NextLinePrefetch bool
	// AltLineMemo enables the second touched-line memo entry. It pays for
	// access streams that strictly alternate between two lines — the dTLB
	// under the conv kernels' weight-page/output-page ping-pong — and
	// costs a little on streams that do not, so it is off by default.
	AltLineMemo bool
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	switch {
	case c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: %s line size %d not a power of two", c.Name, c.LineSize)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: %s associativity %d must be positive", c.Name, c.Assoc)
	case c.Size == 0 || c.Size%(c.LineSize*uint64(c.Assoc)) != 0:
		return fmt.Errorf("cache: %s size %d not divisible by line*assoc", c.Name, c.Size)
	}
	sets := c.Size / (c.LineSize * uint64(c.Assoc))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates per-level counters.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writes    uint64
}

// MissRate returns misses/accesses (0 for no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	sets     uint64
	lineBits uint
	setMask  uint64
	setBits  uint // log2(sets), precomputed (tag = line >> setBits)
	tagShift uint // lineBits + setBits (tag = addr >> tagShift)
	assoc    uint64

	// tags holds, per way, the line tag + 1; 0 marks an invalid way. The
	// sentinel encoding lets the hit scan touch one word per way instead
	// of a tag word plus a validity byte.
	tags  []uint64 // sets × assoc
	dirty []bool
	// LRU: age counters; FIFO: insertion order; PLRU: tree bits per set.
	age      []uint32
	clock    uint32
	plruTree []uint64 // one bit-tree word per set (supports assoc ≤ 64)
	rng      uint64   // xorshift state for Random policy
	// Precomputed PLRU updates: pointing the tree away from way w is
	// tree = (tree &^ plruClr[w]) | plruSet[w] — the walk depends only on
	// the way, so it is folded into masks at construction. For assoc ≤ 8
	// the victim walk is likewise folded into a table indexed by the
	// tree's node bits.
	plruSet   []uint64
	plruClr   []uint64
	plruVict  []uint8
	plruVMask uint64
	// fill counts valid ways per set; once a set is full the install path
	// skips the empty-way scan forever (Invalidate resets it).
	fill []uint8
	// mru records the most-recently-touched way per set: the scan probes
	// it first, which catches workloads that cycle through a few sets
	// (pool windows, row walks) without any semantic change — it is only
	// a probe order.
	mru []uint8

	// Replacement policy method table, bound once at construction so the
	// access path carries no per-access policy switch.
	hitFn    func(set uint64, way int)
	fillFn   func(set uint64, way int)
	victimFn func(set uint64) int
	// memoTouch is true when a repeat hit on the last-touched way must
	// restamp recency state (LRU's global clock). TreePLRU hits instead
	// take the mask-folded repoint (idempotent when the way was already the
	// set's last touch); FIFO and Random never update on hits.
	memoTouch bool

	// Two-entry touched-line memo (most recent + previous). Invariant: when
	// memoOK/memo2OK, the line is resident at its ways index. Hits and
	// installs refresh entry 0 (shifting the old entry 0 to entry 1);
	// installs invalidate entry 1 when the eviction lands on its way;
	// Invalidate/Flush clear both. The second entry is what catches the
	// conv kernels' strict weight-row/output-row alternation.
	memoLine uint64
	memoIdx  uint64
	memoSet  uint64
	memoWay  int
	memoOK   bool

	memo2On   bool
	memo2Line uint64
	memo2Idx  uint64
	memo2Set  uint64
	memo2Way  int
	memo2OK   bool

	stats Stats
}

// New constructs a level. The configuration is validated.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Assoc))
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros64(cfg.LineSize)),
		setMask:  sets - 1,
		setBits:  uint(bits.TrailingZeros64(sets)),
		assoc:    uint64(cfg.Assoc),
		tags:     make([]uint64, sets*uint64(cfg.Assoc)),
		dirty:    make([]bool, sets*uint64(cfg.Assoc)),
		age:      make([]uint32, sets*uint64(cfg.Assoc)),
		plruTree: make([]uint64, sets),
		fill:     make([]uint8, sets),
		mru:      make([]uint8, sets),
		rng:      0x9e3779b97f4a7c15,
	}
	c.tagShift = c.lineBits + c.setBits
	c.memo2On = cfg.AltLineMemo
	if cfg.Policy == TreePLRU {
		c.buildPLRUTables()
	}
	switch cfg.Policy {
	case LRU:
		c.hitFn, c.fillFn, c.victimFn = c.ageTouch, c.ageTouch, c.ageVictim
		c.memoTouch = true
	case TreePLRU:
		c.hitFn, c.fillFn, c.victimFn = c.plruPoint, c.plruPoint, c.plruVictim
	case FIFO:
		// FIFO ignores recency: hits do not refresh, fills set the order.
		c.hitFn, c.fillFn, c.victimFn = c.nopTouch, c.ageTouch, c.ageVictim
	case Random:
		c.hitFn, c.fillFn, c.victimFn = c.nopTouch, c.nopTouch, c.randVictim
	default:
		return nil, fmt.Errorf("cache: %s has unknown policy %d", cfg.Name, int(cfg.Policy))
	}
	return c, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters. Hits are derived on read
// (accesses − misses): every access either hits or misses, so the hot
// paths only maintain the access and miss counts and the hit count never
// needs a third read-modify-write per event.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Hits = s.Accesses - s.Misses
	return s
}

// ResetStats clears the counters but keeps cache contents (used between a
// warm-up pass and a measured pass).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AddExternal accounts traffic produced by co-resident activity that is
// modeled statistically rather than simulated line-by-line (e.g. the ML
// framework runtime around the instrumented kernels). misses is clamped
// to refs.
func (c *Cache) AddExternal(refs, misses uint64) {
	if misses > refs {
		misses = refs
	}
	c.stats.Accesses += refs
	c.stats.Misses += misses
}

// Flush invalidates all lines and clears stats.
func (c *Cache) Flush() {
	c.Invalidate()
	c.stats = Stats{}
}

// Invalidate drops all cached lines but keeps the counters — the state a
// fresh process sees while an attached PMU keeps counting.
func (c *Cache) Invalidate() {
	clear(c.tags)
	clear(c.dirty)
	clear(c.age)
	clear(c.plruTree)
	clear(c.fill)
	clear(c.mru)
	c.clock = 0
	c.memoOK = false
	c.memo2OK = false
}

func (c *Cache) index(addr mem.Addr) (set uint64, tag uint64) {
	line := uint64(addr) >> c.lineBits
	return line & c.setMask, line >> c.setBits
}

// Access simulates one access. write marks the line dirty. It returns true
// on hit. Misses install the line, evicting per the policy.
//
//detlint:allocpath
func (c *Cache) Access(addr mem.Addr, write bool) bool {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	}
	line := uint64(addr) >> c.lineBits
	if c.memoOK && line == c.memoLine {
		// Same line as the previous Access: guaranteed resident, skip the
		// way scan. Replacement state takes the inlined hit update; the
		// tree-PLRU repoint is idempotent when this way was also the set's
		// last touch, and corrective when a resolved touch (TouchResolved)
		// moved the tree in between.
		if c.memoTouch { // LRU: bump the global clock and restamp the way
			c.clock++
			c.age[c.memoIdx] = c.clock
		} else if c.plruSet != nil {
			w := c.memoWay
			c.plruTree[c.memoSet] = (c.plruTree[c.memoSet] &^ c.plruClr[w]) | c.plruSet[w]
		}
		if write {
			c.dirty[c.memoIdx] = true
		}
		return true
	}
	if c.memo2On && c.memo2OK && line == c.memo2Line {
		// Two-line alternation: promote the previous entry and take the
		// full hit update (the way differs from the last touch, so PLRU is
		// not idempotent here).
		c.memoLine, c.memo2Line = c.memo2Line, c.memoLine
		c.memoIdx, c.memo2Idx = c.memo2Idx, c.memoIdx
		c.memoSet, c.memo2Set = c.memo2Set, c.memoSet
		c.memoWay, c.memo2Way = c.memo2Way, c.memoWay
		c.memo2OK = c.memoOK
		c.memoOK = true
		set, w, i := c.memoSet, c.memoWay, c.memoIdx
		c.mru[set] = uint8(w)
		// hitUpdate, manually inlined (see hitUpdate).
		if c.memoTouch {
			c.clock++
			c.age[i] = c.clock
		} else if c.plruSet != nil {
			c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[w]) | c.plruSet[w]
		} else {
			c.hitFn(set, w)
		}
		if write {
			c.dirty[i] = true
		}
		return true
	}
	set := line & c.setMask
	probe := (line >> c.setBits) + 1
	base := set * c.assoc
	// MRU-way fast hit check: probe the set's most-recently-touched way
	// before scanning.
	if m := uint64(c.mru[set]); c.tags[base+m] == probe {
		i := base + m
		c.hitUpdate(set, int(m), i, write)
		c.noteTouch(line, set, int(m), i)
		return true
	}
	ways := c.tags[base : base+c.assoc]
	for w := range ways {
		if ways[w] == probe {
			i := base + uint64(w)
			// hitUpdate, manually inlined (measured: the call is not
			// inlined and this is the hottest hit path).
			if c.memoTouch {
				c.clock++
				c.age[i] = c.clock
			} else if c.plruSet != nil {
				c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[w]) | c.plruSet[w]
			} else {
				c.hitFn(set, w)
			}
			if write {
				c.dirty[i] = true
			}
			c.noteTouch(line, set, w, i)
			return true
		}
	}
	c.stats.Misses++
	c.installLine(line, set, probe, write)
	if c.cfg.NextLinePrefetch {
		next := addr + mem.Addr(c.cfg.LineSize)
		if !c.present(next) {
			nl := uint64(next) >> c.lineBits
			c.installLine(nl, nl&c.setMask, (nl>>c.setBits)+1, false)
		}
	}
	return false
}

// hitUpdate applies replacement metadata and the dirty bit for a hit at
// (set, way); the caller accounts the hit itself. Hot policies are handled
// inline (LRU clock stamp, PLRU mask fold); everything else goes through
// the bound method table. The same ladder is manually inlined in Access's
// memo-promote and way-scan hit paths — the call is not inlined by the
// compiler and is measurable there; keep the copies in sync.
func (c *Cache) hitUpdate(set uint64, w int, i uint64, write bool) {
	if c.memoTouch {
		c.clock++
		c.age[i] = c.clock
	} else if c.plruSet != nil {
		c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[w]) | c.plruSet[w]
	} else {
		c.hitFn(set, w)
	}
	if write {
		c.dirty[i] = true
	}
}

// noteTouch refreshes the per-set MRU hint and the touched-line memo.
func (c *Cache) noteTouch(line, set uint64, w int, i uint64) {
	c.mru[set] = uint8(w)
	c.shiftMemo(line, set, w, i)
}

// shiftMemo records a newly touched resident line in entry 0, demoting the
// previous entry 0 to entry 1 when the second entry is enabled.
func (c *Cache) shiftMemo(line, set uint64, w int, i uint64) {
	if c.memo2On && c.memoOK {
		c.memo2Line, c.memo2Set, c.memo2Way, c.memo2Idx, c.memo2OK =
			c.memoLine, c.memoSet, c.memoWay, c.memoIdx, true
	}
	c.memoLine, c.memoSet, c.memoWay, c.memoIdx, c.memoOK = line, set, w, i, true
}

// MemoIs reports whether addr falls in the line most recently touched by
// Access — i.e. whether a repeat access is guaranteed to hit via the memo
// fast path. Used by the engine's same-line short-circuit.
func (c *Cache) MemoIs(addr mem.Addr) bool {
	return c.memoOK && uint64(addr)>>c.lineBits == c.memoLine
}

// HitLastN replays n additional hits on the line most recently touched by
// Access, in O(1) instead of n lookups. Counters and replacement metadata
// end up exactly as n individual hitting Access calls would leave them:
// LRU advances the clock n times and restamps the way (uint32 wraparound
// matches n increments); tree-PLRU repoints away from the way once (n
// identical repoints fold into one — the mask update is idempotent); FIFO
// and Random never update on hits. The caller must have touched the line
// via Access since the last Invalidate/Flush (checked: panics on a
// cleared memo).
func (c *Cache) HitLastN(n uint64, write bool) {
	if n == 0 {
		return
	}
	if !c.memoOK {
		panic("cache: HitLastN without a preceding Access")
	}
	c.stats.Accesses += n
	if write {
		c.stats.Writes += n
		c.dirty[c.memoIdx] = true
	}
	if c.memoTouch { // LRU: n clock bumps, final stamp on the way
		c.clock += uint32(n)
		c.age[c.memoIdx] = c.clock
	} else if c.plruSet != nil {
		w := c.memoWay
		c.plruTree[c.memoSet] = (c.plruTree[c.memoSet] &^ c.plruClr[w]) | c.plruSet[w]
	}
}

// present reports whether the line holding addr is cached, without
// updating any replacement or stats state.
func (c *Cache) present(addr mem.Addr) bool {
	set, tag := c.index(addr)
	probe := tag + 1
	base := set * c.assoc
	for w := uint64(0); w < c.assoc; w++ {
		if c.tags[base+w] == probe {
			return true
		}
	}
	return false
}

// installLine places a line into its set, evicting a victim per the
// policy. probe is the sentinel-encoded tag (tag + 1).
func (c *Cache) installLine(line, set, probe uint64, write bool) {
	base := set * c.assoc
	victim := -1
	if uint64(c.fill[set]) < c.assoc {
		for w := uint64(0); w < c.assoc; w++ {
			if c.tags[base+w] == 0 {
				victim = int(w)
				c.fill[set]++
				break
			}
		}
	}
	if victim < 0 {
		if c.plruVict != nil {
			victim = int(c.plruVict[c.plruTree[set]&c.plruVMask])
		} else {
			victim = c.victimFn(set)
		}
		c.stats.Evictions++
	}
	i := base + uint64(victim)
	c.tags[i] = probe
	c.dirty[i] = write
	if c.memoTouch {
		c.clock++
		c.age[i] = c.clock
	} else if c.plruSet != nil {
		c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[victim]) | c.plruSet[victim]
	} else {
		c.fillFn(set, victim)
	}
	c.mru[set] = uint8(victim)
	c.shiftMemo(line, set, victim, i)
	if c.memo2OK && c.memo2Idx == i {
		// The eviction landed on the previous memo entry's way: its line
		// is gone.
		c.memo2OK = false
	}
}

// ageTouch bumps the global clock and stamps the way — the LRU hit/fill
// update and the FIFO fill update.
func (c *Cache) ageTouch(set uint64, way int) {
	c.clock++
	c.age[set*c.assoc+uint64(way)] = c.clock
}

func (c *Cache) nopTouch(set uint64, way int) {}

// ageVictim selects the way with the smallest stamp (LRU and FIFO share
// the mechanism; they differ in when ageTouch runs).
func (c *Cache) ageVictim(set uint64) int {
	base := set * c.assoc
	best, bestAge := 0, c.age[base]
	for w := uint64(1); w < c.assoc; w++ {
		if a := c.age[base+w]; a < bestAge {
			best, bestAge = int(w), a
		}
	}
	return best
}

// randVictim draws from the xorshift stream.
func (c *Cache) randVictim(set uint64) int {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return int(c.rng % c.assoc)
}

// buildPLRUTables folds the per-way tree walks into masks (and, for small
// associativities, the victim walk into a lookup table). The folded forms
// compute exactly what the reference walks compute; the equivalence tests
// in fastpath_test.go replay both against each other.
func (c *Cache) buildPLRUTables() {
	assoc := int(c.assoc)
	c.plruSet = make([]uint64, assoc)
	c.plruClr = make([]uint64, assoc)
	for way := 0; way < assoc; way++ {
		node, lo, hi := 0, 0, assoc
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if way < mid {
				c.plruSet[way] |= 1 << uint(node) // point right (away from the left half)
				node = 2*node + 1
				hi = mid
			} else {
				c.plruClr[way] |= 1 << uint(node) // point left
				node = 2*node + 2
				lo = mid
			}
		}
	}
	if assoc <= 8 {
		// Node bits used by an assoc-way tree fit in assoc-1 bits.
		c.plruVMask = (1 << uint(assoc-1)) - 1
		c.plruVict = make([]uint8, 1<<uint(assoc-1))
		for tree := range c.plruVict {
			node, lo, hi := 0, 0, assoc
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if uint64(tree)&(1<<uint(node)) != 0 { // points right
					node = 2*node + 2
					lo = mid
				} else {
					node = 2*node + 1
					hi = mid
				}
			}
			c.plruVict[tree] = uint8(lo)
		}
	}
}

// plruPoint makes every tree node point away from way (mask-folded walk).
func (c *Cache) plruPoint(set uint64, way int) {
	c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[way]) | c.plruSet[way]
}

// plruVictim follows the pointer bits to the pseudo-LRU way.
func (c *Cache) plruVictim(set uint64) int {
	tree := c.plruTree[set]
	if c.plruVict != nil {
		return int(c.plruVict[tree&c.plruVMask])
	}
	assoc := int(c.assoc)
	node := 0
	lo, hi := 0, assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if tree&(1<<uint(node)) != 0 { // points right
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Hierarchy chains levels; an access that misses level i is retried at
// level i+1. Stats accumulate independently per level.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level configs, first (index 0)
// being closest to the core.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		lv, err := New(cfg)
		if err != nil {
			return nil, err
		}
		h.Levels = append(h.Levels, lv)
	}
	return h, nil
}

// Access walks the hierarchy. It returns the deepest level index that
// missed +1; 0 means an L1 hit, len(Levels) means the access went to
// memory (a last-level miss).
//
//detlint:allocpath
func (h *Hierarchy) Access(addr mem.Addr, write bool) int {
	for i, lv := range h.Levels {
		if lv.Access(addr, write) {
			return i
		}
	}
	return len(h.Levels)
}

// Last returns the last (largest) level.
func (h *Hierarchy) Last() *Cache { return h.Levels[len(h.Levels)-1] }

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	for _, lv := range h.Levels {
		lv.Flush()
	}
}

// Invalidate drops contents at every level, keeping counters.
func (h *Hierarchy) Invalidate() {
	for _, lv := range h.Levels {
		lv.Invalidate()
	}
}

// ResetStats clears counters on every level, keeping contents.
func (h *Hierarchy) ResetStats() {
	for _, lv := range h.Levels {
		lv.ResetStats()
	}
}

// DefaultHierarchy models a small Xeon-class core: 32 KiB 8-way L1D,
// 256 KiB 8-way L2, 2 MiB 16-way LLC, 64-byte lines. The LLC is sized well
// below a real server part so the working set of the small CNNs exercises
// it; what matters for the reproduction is the *relative* class-dependent
// behaviour, not absolute capacities.
func DefaultHierarchy() *Hierarchy {
	h, err := NewHierarchy(
		Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, Policy: TreePLRU},
		Config{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, Policy: TreePLRU},
		Config{Name: "LLC", Size: 2 << 20, LineSize: 64, Assoc: 16, Policy: LRU},
	)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return h
}
