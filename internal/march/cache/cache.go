// Package cache implements the set-associative cache simulator that turns
// the instrumented CNN's memory accesses into cache-references and
// cache-misses — the central HPC events of the paper under reproduction.
//
// The simulator is trace-driven: callers feed it addresses and it tracks
// tags per set under a configurable replacement policy. A Hierarchy chains
// levels (L1D → L2 → LLC) the way the perf events are defined on Intel:
// cache-references and cache-misses count last-level-cache activity.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/march/mem"
)

// Policy selects the replacement policy for a cache level.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	TreePLRU
	FIFO
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "tree-plru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line, power of two
	Assoc    int    // ways per set
	Policy   Policy
	// NextLinePrefetch enables a simple sequential prefetcher: on a miss,
	// the following line is installed as well (without counting as a
	// reference).
	NextLinePrefetch bool
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	switch {
	case c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: %s line size %d not a power of two", c.Name, c.LineSize)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: %s associativity %d must be positive", c.Name, c.Assoc)
	case c.Size == 0 || c.Size%(c.LineSize*uint64(c.Assoc)) != 0:
		return fmt.Errorf("cache: %s size %d not divisible by line*assoc", c.Name, c.Size)
	}
	sets := c.Size / (c.LineSize * uint64(c.Assoc))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates per-level counters.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writes    uint64
}

// MissRate returns misses/accesses (0 for no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	sets     uint64
	lineBits uint
	setMask  uint64

	tags  []uint64 // sets × assoc
	valid []bool
	dirty []bool
	// LRU: age counters; FIFO: insertion order; PLRU: tree bits per set.
	age      []uint32
	clock    uint32
	plruTree []uint64 // one bit-tree word per set (supports assoc ≤ 64)
	rng      uint64   // xorshift state for Random policy

	stats Stats
}

// New constructs a level. The configuration is validated.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Assoc))
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros64(cfg.LineSize)),
		setMask:  sets - 1,
		tags:     make([]uint64, sets*uint64(cfg.Assoc)),
		valid:    make([]bool, sets*uint64(cfg.Assoc)),
		dirty:    make([]bool, sets*uint64(cfg.Assoc)),
		age:      make([]uint32, sets*uint64(cfg.Assoc)),
		plruTree: make([]uint64, sets),
		rng:      0x9e3779b97f4a7c15,
	}
	return c, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters but keeps cache contents (used between a
// warm-up pass and a measured pass).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AddExternal accounts traffic produced by co-resident activity that is
// modeled statistically rather than simulated line-by-line (e.g. the ML
// framework runtime around the instrumented kernels). misses is clamped
// to refs.
func (c *Cache) AddExternal(refs, misses uint64) {
	if misses > refs {
		misses = refs
	}
	c.stats.Accesses += refs
	c.stats.Misses += misses
	c.stats.Hits += refs - misses
}

// Flush invalidates all lines and clears stats.
func (c *Cache) Flush() {
	c.Invalidate()
	c.stats = Stats{}
}

// Invalidate drops all cached lines but keeps the counters — the state a
// fresh process sees while an attached PMU keeps counting.
func (c *Cache) Invalidate() {
	clear(c.valid)
	clear(c.dirty)
	clear(c.age)
	clear(c.plruTree)
	c.clock = 0
}

func (c *Cache) index(addr mem.Addr) (set uint64, tag uint64) {
	line := uint64(addr) >> c.lineBits
	return line & c.setMask, line >> bits.TrailingZeros64(c.sets)
}

// Access simulates one access. write marks the line dirty. It returns true
// on hit. Misses install the line, evicting per the policy.
func (c *Cache) Access(addr mem.Addr, write bool) bool {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	}
	hit := c.touch(addr, write)
	if hit {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	if c.cfg.NextLinePrefetch {
		next := addr + mem.Addr(c.cfg.LineSize)
		if !c.present(next) {
			c.install(next, false)
		}
	}
	return false
}

// present reports whether the line holding addr is cached, without
// updating any replacement or stats state.
func (c *Cache) present(addr mem.Addr) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+uint64(w)] && c.tags[base+uint64(w)] == tag {
			return true
		}
	}
	return false
}

// touch performs the lookup + fill without stats accounting.
func (c *Cache) touch(addr mem.Addr, write bool) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			c.onHit(set, w)
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}
	c.install(addr, write)
	return false
}

// install places the line for addr into its set, evicting a victim.
func (c *Cache) install(addr mem.Addr, write bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Assoc)
	victim := -1
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.valid[base+uint64(w)] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.victim(set)
		c.stats.Evictions++
	}
	i := base + uint64(victim)
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = write
	c.onFill(set, victim)
}

// onHit updates replacement metadata after a hit.
func (c *Cache) onHit(set uint64, way int) {
	switch c.cfg.Policy {
	case LRU:
		c.clock++
		c.age[set*uint64(c.cfg.Assoc)+uint64(way)] = c.clock
	case TreePLRU:
		c.plruPoint(set, way)
	case FIFO, Random:
		// No hit update: FIFO ignores recency; Random is stateless.
	}
}

// onFill updates replacement metadata after installing into way.
func (c *Cache) onFill(set uint64, way int) {
	switch c.cfg.Policy {
	case LRU, FIFO:
		c.clock++
		c.age[set*uint64(c.cfg.Assoc)+uint64(way)] = c.clock
	case TreePLRU:
		c.plruPoint(set, way)
	case Random:
	}
}

// victim selects a way to evict from a full set.
func (c *Cache) victim(set uint64) int {
	switch c.cfg.Policy {
	case LRU, FIFO:
		base := set * uint64(c.cfg.Assoc)
		best, bestAge := 0, c.age[base]
		for w := 1; w < c.cfg.Assoc; w++ {
			if a := c.age[base+uint64(w)]; a < bestAge {
				best, bestAge = w, a
			}
		}
		return best
	case TreePLRU:
		return c.plruVictim(set)
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(c.cfg.Assoc))
	default:
		return 0
	}
}

// plruPoint walks the tree making every node point away from way.
func (c *Cache) plruPoint(set uint64, way int) {
	assoc := c.cfg.Assoc
	node := 0
	lo, hi := 0, assoc
	tree := c.plruTree[set]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			tree |= 1 << uint(node) // point right (away from the left half)
			node = 2*node + 1
			hi = mid
		} else {
			tree &^= 1 << uint(node) // point left
			node = 2*node + 2
			lo = mid
		}
	}
	c.plruTree[set] = tree
}

// plruVictim follows the pointer bits to the pseudo-LRU way.
func (c *Cache) plruVictim(set uint64) int {
	assoc := c.cfg.Assoc
	node := 0
	lo, hi := 0, assoc
	tree := c.plruTree[set]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if tree&(1<<uint(node)) != 0 { // points right
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Hierarchy chains levels; an access that misses level i is retried at
// level i+1. Stats accumulate independently per level.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level configs, first (index 0)
// being closest to the core.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		lv, err := New(cfg)
		if err != nil {
			return nil, err
		}
		h.Levels = append(h.Levels, lv)
	}
	return h, nil
}

// Access walks the hierarchy. It returns the deepest level index that
// missed +1; 0 means an L1 hit, len(Levels) means the access went to
// memory (a last-level miss).
func (h *Hierarchy) Access(addr mem.Addr, write bool) int {
	for i, lv := range h.Levels {
		if lv.Access(addr, write) {
			return i
		}
	}
	return len(h.Levels)
}

// Last returns the last (largest) level.
func (h *Hierarchy) Last() *Cache { return h.Levels[len(h.Levels)-1] }

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	for _, lv := range h.Levels {
		lv.Flush()
	}
}

// Invalidate drops contents at every level, keeping counters.
func (h *Hierarchy) Invalidate() {
	for _, lv := range h.Levels {
		lv.Invalidate()
	}
}

// ResetStats clears counters on every level, keeping contents.
func (h *Hierarchy) ResetStats() {
	for _, lv := range h.Levels {
		lv.ResetStats()
	}
}

// DefaultHierarchy models a small Xeon-class core: 32 KiB 8-way L1D,
// 256 KiB 8-way L2, 2 MiB 16-way LLC, 64-byte lines. The LLC is sized well
// below a real server part so the working set of the small CNNs exercises
// it; what matters for the reproduction is the *relative* class-dependent
// behaviour, not absolute capacities.
func DefaultHierarchy() *Hierarchy {
	h, err := NewHierarchy(
		Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, Policy: TreePLRU},
		Config{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, Policy: TreePLRU},
		Config{Name: "LLC", Size: 2 << 20, LineSize: 64, Assoc: 16, Policy: LRU},
	)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return h
}
