// Resolved-touch replay: the engine's hottest access shape is a repeat
// touch of a recently-used line — guaranteed TLB hit plus guaranteed data
// cache hit. A Placement captures where such a line lives (set, way, ways
// slot, sentinel tag) in both the data cache and the TLB; a Pair replays
// later touches directly at those coordinates, skipping both lookup walks
// and fusing the counter arithmetic of multi-event groups (same-line
// bulks, the convolution scatter's load/load/store triple) into O(1)
// updates.
//
// Exactness: a replayed touch performs precisely the state transitions of
// the hitting Access it stands in for — access/write counts are pure sums,
// LRU stamps are written in last-touch order with the clock advanced by
// the exact event count, tree-PLRU repoints are applied in event order
// (consecutive repoints of the same way fold into one: the mask update is
// idempotent), and FIFO/Random never mutate on hits. Validity is checked
// against the live tags arrays, so an install or Invalidate anywhere
// self-invalidates stale placements with zero bookkeeping.
package cache

// Placement is one line's resolved location in a data cache + TLB pair.
// The zero value is invalid (a sentinel probe is always ≥ 1).
type Placement struct {
	// Lo is the 64-byte-aligned base address; the placement covers
	// [Lo, Lo+64) — the engine's access granularity, which is what makes
	// one (data line, page) pair cover every touch in the block.
	Lo     uint64
	dIdx   uint64 // ways-slot index in the data cache
	dProbe uint64 // sentinel tag expected at dIdx (tag+1, never 0)
	dSet   uint64
	tIdx   uint64 // ways-slot index in the TLB
	tProbe uint64
	tSet   uint64
	dWay   int32
	tWay   int32
}

// Valid reports whether the placement has been resolved at all (it may
// still be stale; Touch re-checks residency on every use).
func (pl *Placement) Valid() bool { return pl.dProbe != 0 }

// Covers reports whether addr falls inside the placement's 64-byte block.
func (pl *Placement) Covers(addr uint64) bool { return addr-pl.Lo < 64 }

// Pair binds a data cache and a TLB for fused resolved-touch replay.
type Pair struct {
	Data *Cache
	TLB  *Cache
}

// Resolve captures addr's placement after a full Access walked both
// levels, i.e. while both touched-line memos point at addr's line/page.
// When they do not (a prefetching level moved the memo), the placement is
// left untouched and the block simply stays on the slow path.
//
//detlint:allocpath
func (p Pair) Resolve(pl *Placement, addr uint64) {
	d, t := p.Data, p.TLB
	if !d.memoOK || addr>>d.lineBits != d.memoLine ||
		!t.memoOK || addr>>t.lineBits != t.memoLine {
		return
	}
	pl.Lo = addr &^ 63
	pl.dSet, pl.dWay, pl.dIdx = d.memoSet, int32(d.memoWay), d.memoIdx
	pl.dProbe = d.tags[d.memoIdx]
	pl.tSet, pl.tWay, pl.tIdx = t.memoSet, int32(t.memoWay), t.memoIdx
	pl.tProbe = t.tags[t.memoIdx]
}

// live reports whether the placement still describes resident entries in
// both levels.
//
//detlint:allocpath
func (p Pair) live(pl *Placement) bool {
	return p.Data.tags[pl.dIdx] == pl.dProbe && p.TLB.tags[pl.tIdx] == pl.tProbe
}

// hitTouchN applies n same-placement hits' replacement updates in O(1):
// LRU advances the clock n times and stamps once (the final value is the
// only observable one), a tree-PLRU repoint is idempotent across identical
// repeats, FIFO/Random hits never mutate.
//
//detlint:allocpath
func (c *Cache) hitTouchN(n uint64, set uint64, way int32, idx uint64) {
	if c.memoTouch {
		c.clock += uint32(n)
		c.age[idx] = c.clock
	} else if c.plruSet != nil {
		c.plruTree[set] = (c.plruTree[set] &^ c.plruClr[way]) | c.plruSet[way]
	} else {
		c.hitFn(set, int(way))
	}
}

// Touch replays one access event (one TLB hit + one data hit) at pl.
// It returns false — leaving all state untouched — when pl does not cover
// addr or is no longer resident.
//
//detlint:allocpath
func (p Pair) Touch(pl *Placement, addr uint64, write bool) bool {
	if addr-pl.Lo >= 64 || pl.dProbe == 0 || !p.live(pl) {
		return false
	}
	d, t := p.Data, p.TLB
	t.stats.Accesses++
	if t.memoTouch {
		t.clock++
		t.age[pl.tIdx] = t.clock
	} else if t.plruSet != nil {
		t.plruTree[pl.tSet] = (t.plruTree[pl.tSet] &^ t.plruClr[pl.tWay]) | t.plruSet[pl.tWay]
	} else {
		t.hitFn(pl.tSet, int(pl.tWay))
	}
	d.stats.Accesses++
	if write {
		d.stats.Writes++
		d.dirty[pl.dIdx] = true
	}
	if d.memoTouch {
		d.clock++
		d.age[pl.dIdx] = d.clock
	} else if d.plruSet != nil {
		d.plruTree[pl.dSet] = (d.plruTree[pl.dSet] &^ d.plruClr[pl.dWay]) | d.plruSet[pl.dWay]
	} else {
		d.hitFn(pl.dSet, int(pl.dWay))
	}
	return true
}

// TouchRun replays n same-block access events of which `writes` are
// stores, in O(1) — the resolved form of the kernels' blocked element
// walks (all-load runs, all-store runs, and interleaved load/store walks
// over one line all reduce to the same sums and final stamps). Returns
// false, with no state change, when the placement is stale.
//
//detlint:allocpath
func (p Pair) TouchRun(pl *Placement, addr uint64, n, writes uint64) bool {
	if addr-pl.Lo >= 64 || pl.dProbe == 0 || !p.live(pl) {
		return false
	}
	d, t := p.Data, p.TLB
	t.stats.Accesses += n
	t.hitTouchN(n, pl.tSet, pl.tWay, pl.tIdx)
	d.stats.Accesses += n
	if writes > 0 {
		d.stats.Writes += writes
		d.dirty[pl.dIdx] = true
	}
	d.hitTouchN(n, pl.dSet, pl.dWay, pl.dIdx)
	return true
}

// MacSpan replays up to n consecutive MacRow triples — weight row advancing
// by wStep bytes, output row receding by size bytes per position, the
// convolution scatter's per-(ky) inner walk — through the resolved-touch
// cache in one call. touch is the engine's placement array (mask = len-1,
// a power of two). It returns the number of leading positions fused;
// the caller replays the remainder (a stale placement, a line-crossing
// row, or a slot collision) through the ordinary per-position path, which
// re-resolves and lets the next span fuse again. Each position performs
// exactly the MacRow state transitions, in position order.
//
//detlint:allocpath
func (p Pair) MacSpan(touch []Placement, mask, w, o, wStep, size uint64, n int) int {
	d, t := p.Data, p.TLB
	i := 0
	for ; i < n; i++ {
		if (w&63)+size > 64 || (o&63)+size > 64 {
			break
		}
		pw := &touch[(w>>6)&mask]
		po := &touch[(o>>6)&mask]
		if w-pw.Lo >= 64 || o-po.Lo >= 64 || pw.dProbe == 0 || po.dProbe == 0 {
			break
		}
		if d.tags[pw.dIdx] != pw.dProbe || t.tags[pw.tIdx] != pw.tProbe ||
			d.tags[po.dIdx] != po.dProbe || t.tags[po.tIdx] != po.tProbe {
			break
		}
		// TLB: three translation hits (weight page, output page twice).
		t.stats.Accesses += 3
		if t.memoTouch {
			t.clock += 3
			t.age[pw.tIdx] = t.clock - 2
			t.age[po.tIdx] = t.clock
		} else if t.plruSet != nil {
			t.plruTree[pw.tSet] = (t.plruTree[pw.tSet] &^ t.plruClr[pw.tWay]) | t.plruSet[pw.tWay]
			t.plruTree[po.tSet] = (t.plruTree[po.tSet] &^ t.plruClr[po.tWay]) | t.plruSet[po.tWay]
		} else {
			t.hitFn(pw.tSet, int(pw.tWay))
			t.hitFn(po.tSet, int(po.tWay))
			t.hitFn(po.tSet, int(po.tWay))
		}
		// Data cache: weight load hit, output load hit, output store hit.
		d.stats.Accesses += 3
		d.stats.Writes++
		d.dirty[po.dIdx] = true
		if d.memoTouch {
			d.clock += 3
			d.age[pw.dIdx] = d.clock - 2
			d.age[po.dIdx] = d.clock
		} else if d.plruSet != nil {
			d.plruTree[pw.dSet] = (d.plruTree[pw.dSet] &^ d.plruClr[pw.dWay]) | d.plruSet[pw.dWay]
			d.plruTree[po.dSet] = (d.plruTree[po.dSet] &^ d.plruClr[po.dWay]) | d.plruSet[po.dWay]
		} else {
			d.hitFn(pw.dSet, int(pw.dWay))
			d.hitFn(po.dSet, int(po.dWay))
			d.hitFn(po.dSet, int(po.dWay))
		}
		w += wStep
		o -= size
	}
	return i
}

// Solo is a resolved placement in a single cache level — the L2 analogue
// of Placement, used by the engine's miss walk to replay the L2 hit of a
// recurring L1-missing line without the full lookup. The zero value is
// invalid.
type Solo struct {
	Lo    uint64 // 64-byte-aligned base; covers [Lo, Lo+64)
	idx   uint64
	probe uint64
	set   uint64
	way   int32
}

// ResolveSolo captures addr's placement in c while c's touched-line memo
// points at addr's line (i.e. right after an Access of addr).
//
//detlint:allocpath
func (c *Cache) ResolveSolo(pl *Solo, addr uint64) {
	if !c.memoOK || addr>>c.lineBits != c.memoLine {
		return
	}
	pl.Lo = addr &^ 63
	pl.set, pl.way, pl.idx = c.memoSet, int32(c.memoWay), c.memoIdx
	pl.probe = c.tags[c.memoIdx]
}

// TouchSolo replays one guaranteed-hit access at pl — exactly the state
// transitions of a hitting Access. Returns false, with no state change,
// when pl does not cover addr or the entry is no longer resident.
//
//detlint:allocpath
func (c *Cache) TouchSolo(pl *Solo, addr uint64, write bool) bool {
	if addr-pl.Lo >= 64 || pl.probe == 0 || c.tags[pl.idx] != pl.probe {
		return false
	}
	c.stats.Accesses++
	if write {
		c.stats.Writes++
		c.dirty[pl.idx] = true
	}
	if c.memoTouch {
		c.clock++
		c.age[pl.idx] = c.clock
	} else if c.plruSet != nil {
		c.plruTree[pl.set] = (c.plruTree[pl.set] &^ c.plruClr[pl.way]) | c.plruSet[pl.way]
	} else {
		c.hitFn(pl.set, int(pl.way))
	}
	return true
}

// MacRow replays the convolution scatter's per-position event triple —
// weight-row load, output-row load, output-row store — when both rows'
// placements are current, fusing the three events' counter arithmetic.
// LRU stamps are written in last-touch order with exact clock values
// (weight at clock-2, output at clock — if both map to the same TLB entry
// the later store's stamp wins, exactly as sequentially); PLRU repoints
// run in event order with the duplicate output repoint folded. Returns
// false, with no state change, when either placement is stale.
//
//detlint:allocpath
func (p Pair) MacRow(w, o *Placement, wa, oa uint64) bool {
	if wa-w.Lo >= 64 || oa-o.Lo >= 64 || w.dProbe == 0 || o.dProbe == 0 {
		return false
	}
	d, t := p.Data, p.TLB
	if d.tags[w.dIdx] != w.dProbe || t.tags[w.tIdx] != w.tProbe ||
		d.tags[o.dIdx] != o.dProbe || t.tags[o.tIdx] != o.tProbe {
		return false
	}
	// TLB: three translation hits (weight page, output page twice).
	t.stats.Accesses += 3
	if t.memoTouch {
		t.clock += 3
		t.age[w.tIdx] = t.clock - 2
		t.age[o.tIdx] = t.clock
	} else if t.plruSet != nil {
		t.plruTree[w.tSet] = (t.plruTree[w.tSet] &^ t.plruClr[w.tWay]) | t.plruSet[w.tWay]
		t.plruTree[o.tSet] = (t.plruTree[o.tSet] &^ t.plruClr[o.tWay]) | t.plruSet[o.tWay]
	} else {
		t.hitFn(w.tSet, int(w.tWay))
		t.hitFn(o.tSet, int(o.tWay))
		t.hitFn(o.tSet, int(o.tWay))
	}
	// Data cache: weight load hit, output load hit, output store hit.
	d.stats.Accesses += 3
	d.stats.Writes++
	d.dirty[o.dIdx] = true
	if d.memoTouch {
		d.clock += 3
		d.age[w.dIdx] = d.clock - 2
		d.age[o.dIdx] = d.clock
	} else if d.plruSet != nil {
		d.plruTree[w.dSet] = (d.plruTree[w.dSet] &^ d.plruClr[w.dWay]) | d.plruSet[w.dWay]
		d.plruTree[o.dSet] = (d.plruTree[o.dSet] &^ d.plruClr[o.dWay]) | d.plruSet[o.dWay]
	} else {
		d.hitFn(w.dSet, int(w.dWay))
		d.hitFn(o.dSet, int(o.dWay))
		d.hitFn(o.dSet, int(o.dWay))
	}
	return true
}
