package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/march/mem"
)

func smallLRU(t *testing.T, size uint64, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Size: size, LineSize: 64, Assoc: assoc, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", Size: 1024, LineSize: 64, Assoc: 2, Policy: LRU}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Name: "badline", Size: 1024, LineSize: 48, Assoc: 2},
		{Name: "zeroline", Size: 1024, LineSize: 0, Assoc: 2},
		{Name: "badassoc", Size: 1024, LineSize: 64, Assoc: 0},
		{Name: "badsize", Size: 1000, LineSize: 64, Assoc: 2},
		{Name: "badsets", Size: 64 * 3 * 2, LineSize: 64, Assoc: 2}, // 3 sets
	}
	for _, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{LRU: "lru", TreePLRU: "tree-plru", FIFO: "fifo", Random: "random", Policy(9): "policy(9)"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallLRU(t, 1024, 2)
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038, false) {
		t.Fatal("same-line access missed") // 0x1038 is in the same 64B line
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3/2/1", st)
	}
}

func TestStatsInvariantHitsPlusMisses(t *testing.T) {
	c := smallLRU(t, 2048, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		c.Access(mem.Addr(rng.Intn(1<<14)), rng.Intn(4) == 0)
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits+misses = %d, accesses = %d", st.Hits+st.Misses, st.Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish scenario: 2-way set; three conflicting lines.
	// Cache: 2 sets × 2 ways × 64B = 256B.
	c := smallLRU(t, 256, 2)
	// Lines mapping to set 0: stride = 2 sets * 64 = 128.
	a, b, d := mem.Addr(0), mem.Addr(128), mem.Addr(256)
	c.Access(a, false) // miss
	c.Access(b, false) // miss
	c.Access(a, false) // hit; a is MRU
	c.Access(d, false) // miss; evicts b (LRU)
	if !c.Access(a, false) {
		t.Fatal("a should still be resident")
	}
	if c.Access(b, false) {
		t.Fatal("b should have been evicted")
	}
}

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	c, err := New(Config{Name: "f", Size: 256, LineSize: 64, Assoc: 2, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := mem.Addr(0), mem.Addr(128), mem.Addr(256)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // hit must NOT refresh FIFO order
	c.Access(d, false) // evicts a (first in)
	if c.Access(a, false) {
		t.Fatal("FIFO should have evicted a despite its recent hit")
	}
}

func TestTreePLRUSingleSetCyclesThroughWays(t *testing.T) {
	c, err := New(Config{Name: "p", Size: 64 * 4, LineSize: 64, Assoc: 4, Policy: TreePLRU})
	if err != nil {
		t.Fatal(err)
	}
	// One set, 4 ways; fill then alternate — PLRU must not evict the most
	// recently touched line.
	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i*64*1), false) // one set: set index bits are zero for stride 64? No: 1 set → mask 0.
	}
	// Touch way holding addr 0, then force an eviction.
	c.Access(0, false)
	c.Access(mem.Addr(4*64), false) // new line, evicts someone
	if !c.Access(0, false) {
		t.Fatal("tree-PLRU evicted the most recently used line")
	}
}

func TestRandomPolicyStillCorrectSet(t *testing.T) {
	c, err := New(Config{Name: "r", Size: 512, LineSize: 64, Assoc: 2, Policy: Random})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		c.Access(mem.Addr(rng.Intn(4096)), false)
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatal("random policy broke the accounting invariant")
	}
	if st.Hits == 0 {
		t.Fatal("random policy produced no hits on a reused working set")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to cache size must only cold-miss.
	c := smallLRU(t, 4096, 4)
	lines := int(4096 / 64)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(mem.Addr(i*64), false)
		}
	}
	st := c.Stats()
	if st.Misses != uint64(lines) {
		t.Fatalf("misses = %d, want %d (cold only)", st.Misses, lines)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Working set 2× the cache with LRU and a sequential scan thrashes:
	// every access misses after warm-up.
	c := smallLRU(t, 1024, 2)
	lines := int(2 * 1024 / 64)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(mem.Addr(i*64), false)
		}
	}
	st := c.Stats()
	if st.MissRate() < 0.99 {
		t.Fatalf("miss rate = %.3f, want ~1.0 under LRU thrash", st.MissRate())
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := smallLRU(t, 1024, 2)
	c.Access(0, false)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if !c.Access(0, false) {
		t.Fatal("ResetStats must keep contents")
	}
	c.Flush()
	if c.Access(0, false) {
		t.Fatal("Flush must drop contents")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	c, err := New(Config{Name: "pf", Size: 4096, LineSize: 64, Assoc: 4, Policy: LRU, NextLinePrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false) // miss, prefetches line 1
	if !c.Access(64, false) {
		t.Fatal("next line was not prefetched")
	}
	// Prefetch must not inflate the access count.
	if c.Stats().Accesses != 2 {
		t.Fatalf("accesses = %d, want 2", c.Stats().Accesses)
	}
}

func TestDirtyWriteTracking(t *testing.T) {
	c := smallLRU(t, 256, 2)
	c.Access(0, true)
	st := c.Stats()
	if st.Writes != 1 {
		t.Fatalf("writes = %d, want 1", st.Writes)
	}
}

func TestHierarchyMissPath(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "L1", Size: 256, LineSize: 64, Assoc: 2, Policy: LRU},
		Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Policy: LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0, false); lvl != 2 {
		t.Fatalf("cold access resolved at level %d, want 2 (memory)", lvl)
	}
	if lvl := h.Access(0, false); lvl != 0 {
		t.Fatalf("hot access resolved at level %d, want 0 (L1)", lvl)
	}
	// Evict from L1 only (working set > L1, < L2): expect L2 hits.
	for i := 0; i < 8; i++ {
		h.Access(mem.Addr(i*128), false)
	}
	if lvl := h.Access(0, false); lvl != 1 {
		t.Fatalf("L1-evicted line resolved at level %d, want 1 (L2 hit)", lvl)
	}
	if h.Last().Config().Name != "L2" {
		t.Fatal("Last() returned wrong level")
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(Config{Name: "bad", Size: 100, LineSize: 64, Assoc: 2}); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestDefaultHierarchyShape(t *testing.T) {
	h := DefaultHierarchy()
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(h.Levels))
	}
	names := []string{"L1D", "L2", "LLC"}
	for i, lv := range h.Levels {
		if lv.Config().Name != names[i] {
			t.Fatalf("level %d = %s, want %s", i, lv.Config().Name, names[i])
		}
	}
}

// TestQuickLRUInclusionProperty: for LRU with identical set count, a cache
// with higher associativity never misses more on the same trace (the stack
// inclusion property of LRU).
func TestQuickLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// 16 sets fixed; assoc 2 vs 4.
		small, _ := New(Config{Name: "s", Size: 16 * 2 * 64, LineSize: 64, Assoc: 2, Policy: LRU})
		big, _ := New(Config{Name: "b", Size: 16 * 4 * 64, LineSize: 64, Assoc: 4, Policy: LRU})
		for i := 0; i < 3000; i++ {
			addr := mem.Addr(rng.Intn(1 << 13))
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Stats().Misses <= small.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: identical traces yield identical stats.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() Stats {
			c, _ := New(Config{Name: "d", Size: 2048, LineSize: 64, Assoc: 4, Policy: TreePLRU})
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				c.Access(mem.Addr(rng.Intn(1<<14)), rng.Intn(3) == 0)
			}
			return c.Stats()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllPoliciesAccounting(t *testing.T) {
	f := func(seed int64, policyRaw uint8) bool {
		pol := Policy(int(policyRaw) % 4)
		c, err := New(Config{Name: "q", Size: 1024, LineSize: 64, Assoc: 4, Policy: pol})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			c.Access(mem.Addr(rng.Intn(1<<12)), false)
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses && st.Misses >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
