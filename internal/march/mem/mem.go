// Package mem provides the simulated 64-bit address space used by the
// micro-architecture simulator.
//
// The instrumented CNN inference (package instrument) allocates its weights
// and activations here instead of relying on Go runtime addresses, so the
// cache simulation is deterministic, stable across runs, and independent of
// the host allocator.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a simulated virtual address.
type Addr uint64

// Region is a named allocation inside the address space.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Arena is a bump allocator over the simulated address space. Allocations
// are aligned to cache-line boundaries so a tensor's footprint in the cache
// simulator matches what an aligned malloc would produce.
type Arena struct {
	base    Addr
	next    Addr
	align   uint64
	regions []Region
}

// DefaultBase mirrors a typical Linux mmap region base so printed addresses
// look like real pointers.
const DefaultBase Addr = 0x7f0000000000

// NewArena creates an arena starting at base with the given alignment
// (typically the cache line size). align must be a power of two.
func NewArena(base Addr, align uint64) (*Arena, error) {
	if align == 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("mem: alignment %d is not a power of two", align)
	}
	return &Arena{base: base, next: base, align: align}, nil
}

// Alloc reserves size bytes and returns the region. Zero-size allocations
// are rejected: a tensor with no elements has no footprint to simulate.
func (a *Arena) Alloc(name string, size uint64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("mem: zero-size allocation %q", name)
	}
	aligned := (uint64(a.next) + a.align - 1) &^ (a.align - 1)
	r := Region{Name: name, Base: Addr(aligned), Size: size}
	a.next = Addr(aligned + size)
	a.regions = append(a.regions, r)
	return r, nil
}

// Reset releases every allocation at or above the given region's base,
// rewinding the bump pointer to it. The argument may be a real region or a
// pseudo-region from Mark. Used to recycle per-inference activation
// buffers while keeping weights resident at stable addresses.
func (a *Arena) Reset(to Region) {
	keep := a.regions[:0]
	for _, r := range a.regions {
		if r.Base < to.Base {
			keep = append(keep, r)
		}
	}
	a.regions = keep
	if to.Base < a.base {
		a.next = a.base
		return
	}
	a.next = to.Base
}

// Mark returns a pseudo-region representing the current bump pointer, for
// later Reset.
func (a *Arena) Mark() Region { return Region{Name: "<mark>", Base: a.next} }

// ResetAll rewinds the arena to empty.
func (a *Arena) ResetAll() {
	a.regions = a.regions[:0]
	a.next = a.base
}

// Used returns the number of bytes between the arena base and the bump
// pointer (including alignment padding).
func (a *Arena) Used() uint64 { return uint64(a.next - a.base) }

// Align returns the arena's allocation alignment.
func (a *Arena) Align() uint64 { return a.align }

// Regions returns a copy of the live allocations in address order.
func (a *Arena) Regions() []Region {
	out := append([]Region(nil), a.regions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Find returns the region containing addr, if any.
func (a *Arena) Find(addr Addr) (Region, bool) {
	for _, r := range a.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}
