package mem

import (
	"testing"
	"testing/quick"
)

func TestNewArenaValidation(t *testing.T) {
	if _, err := NewArena(0, 0); err == nil {
		t.Fatal("zero alignment accepted")
	}
	if _, err := NewArena(0, 48); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := NewArena(DefaultBase, 64); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignment(t *testing.T) {
	a, _ := NewArena(0x1000, 64)
	r1, err := a.Alloc("weights", 100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(r1.Base)%64 != 0 {
		t.Fatalf("region base %#x not 64-aligned", r1.Base)
	}
	r2, _ := a.Alloc("bias", 10)
	if uint64(r2.Base)%64 != 0 {
		t.Fatalf("second region base %#x not aligned", r2.Base)
	}
	if r2.Base < r1.End() {
		t.Fatal("regions overlap")
	}
}

func TestAllocZeroSizeRejected(t *testing.T) {
	a, _ := NewArena(0, 64)
	if _, err := a.Alloc("empty", 0); err == nil {
		t.Fatal("zero-size allocation accepted")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "r", Base: 0x100, Size: 0x40}
	if !r.Contains(0x100) || !r.Contains(0x13f) {
		t.Fatal("Contains false inside region")
	}
	if r.Contains(0xff) || r.Contains(0x140) {
		t.Fatal("Contains true outside region")
	}
	if r.End() != 0x140 {
		t.Fatalf("End = %#x, want 0x140", r.End())
	}
}

func TestMarkReset(t *testing.T) {
	a, _ := NewArena(0, 64)
	w, _ := a.Alloc("weights", 256)
	mark := a.Mark()
	a1, _ := a.Alloc("act1", 128)
	if _, ok := a.Find(a1.Base); !ok {
		t.Fatal("act1 not found before reset")
	}
	a.Reset(mark)
	// Weights survive, activations are gone; next alloc reuses the space.
	if _, ok := a.Find(w.Base); !ok {
		t.Fatal("weights lost by Reset")
	}
	a2, _ := a.Alloc("act2", 128)
	if a2.Base != a1.Base {
		t.Fatalf("Reset did not rewind bump pointer: %#x vs %#x", a2.Base, a1.Base)
	}
}

// TestMarkResetMidStream: Reset(mark) with the mark pointing at an aligned
// allocation drops that allocation and everything after it.
func TestResetAtRegion(t *testing.T) {
	a, _ := NewArena(0, 64)
	a.Alloc("keep", 64)
	r2, _ := a.Alloc("drop", 64)
	a.Alloc("drop2", 64)
	a.Reset(r2)
	regions := a.Regions()
	if len(regions) != 1 || regions[0].Name != "keep" {
		t.Fatalf("regions after reset = %v", regions)
	}
}

func TestResetAllAndUsed(t *testing.T) {
	a, _ := NewArena(0x1000, 64)
	if a.Used() != 0 {
		t.Fatalf("fresh arena Used = %d", a.Used())
	}
	a.Alloc("x", 100)
	if a.Used() == 0 {
		t.Fatal("Used = 0 after allocation")
	}
	a.ResetAll()
	if a.Used() != 0 || len(a.Regions()) != 0 {
		t.Fatal("ResetAll did not empty the arena")
	}
}

func TestFind(t *testing.T) {
	a, _ := NewArena(0, 64)
	r, _ := a.Alloc("w", 64)
	got, ok := a.Find(r.Base + 10)
	if !ok || got.Name != "w" {
		t.Fatalf("Find = %v,%v", got, ok)
	}
	if _, ok := a.Find(0xdeadbeef); ok {
		t.Fatal("Find matched unmapped address")
	}
}

func TestQuickAllocationsNeverOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		a, _ := NewArena(0, 64)
		var regions []Region
		for i, s := range sizes {
			if s == 0 {
				continue
			}
			if i >= 64 {
				break
			}
			r, err := a.Alloc("r", uint64(s))
			if err != nil {
				return false
			}
			regions = append(regions, r)
		}
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				ri, rj := regions[i], regions[j]
				if ri.Base < rj.End() && rj.Base < ri.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
