// Package obs is the repo's determinism-safe observability layer: spans,
// monotonic counters and progress state for campaign telemetry, with a
// JSONL event log and a Chrome trace_event exporter (export.go).
//
// The entire package is built around one invariant: telemetry is
// observational *output*, never an input. No campaign byte may ever
// derive from a Recorder — reports with obs on are byte-identical to
// reports with obs off. Three design rules enforce that:
//
//   - every Recorder method is nil-receiver-safe and a no-op on nil, so
//     instrumented packages hook unconditionally and the hooks cost one
//     predictable branch (and zero allocations) when telemetry is off;
//   - wall-clock reads live only here, behind the injectable Clock — the
//     deterministic packages never import "time" for clocks, and detlint's
//     seedpurity analyzer treats this package as the sole sanctioned
//     clock owner;
//   - recorded values (timestamps, durations, byte counts) flow out to
//     exporters and HTTP endpoints, never back into collection, merging
//     or testing.
//
// Granularity: stages (plan → collect → merge → test, fabric dispatch,
// monitor stream) are spans; per-shard execution is a span per shard
// with the worker index as the trace TID, so shard-level parallelism
// across goroutines and OS processes is visible in one timeline; hot
// paths (engine loads/stores, window emission) are counters only — a
// counter add is one atomic instruction, cheap enough for paths the
// allocgate pins at 0 allocs/op.
package obs

import (
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the injectable time source. Production recorders use
// SystemClock; tests inject fakes so exported telemetry is reproducible.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the wall clock.
func SystemClock() Clock { return systemClock{} }

// Counter identifies one monotonic campaign counter. The fixed enum (not
// arbitrary strings) is what makes counter adds allocation-free and the
// /metrics export order deterministic.
type Counter int

// The campaign counters, in export order.
const (
	// CShardsPlanned / CShardsDone track campaign progress.
	CShardsPlanned Counter = iota
	CShardsDone
	// CShardsDispatched counts shards handed to fabric workers (journal
	// skips excluded); CJournalSkips / CJournalAppends track the
	// completion journal.
	CShardsDispatched
	CJournalSkips
	CJournalAppends
	// Wire traffic of the fabric coordinator, both directions.
	CFramesSent
	CFramesReceived
	CBytesSent
	CBytesReceived
	// Stream/collection volume.
	CWindowsEmitted
	CProfilesCollected
	// Simulated-engine hot-path volume (see HotCounters).
	CEngineLoads
	CEngineStores
	// CWorkerExits counts fabric worker processes that have exited.
	CWorkerExits

	numCounters
)

// counterNames are the /metrics and JSONL identifiers, indexed by Counter.
var counterNames = [numCounters]string{
	"shards_planned",
	"shards_done",
	"shards_dispatched",
	"journal_skips",
	"journal_appends",
	"frames_sent",
	"frames_received",
	"bytes_sent",
	"bytes_received",
	"windows_emitted",
	"profiles_collected",
	"engine_loads",
	"engine_stores",
	"worker_exits",
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "counter(" + strconv.Itoa(int(c)) + ")"
	}
	return counterNames[c]
}

// AllCounters returns every counter in export order.
func AllCounters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Event is one recorded telemetry event: a completed span (Ph "X", with
// a duration) or an instant mark (Ph "i"). Timestamps are microseconds
// since the Unix epoch, the trace_event convention, so spans recorded by
// different OS processes land on one consistent timeline.
type Event struct {
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Ph   string `json:"ph"`
	Cat  string `json:"cat,omitempty"`
	Name string `json:"name"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	// Shard and Class carry shard-span identity (0 values are omitted —
	// shard spans always set Shard+1 via the exporter-facing helpers, so
	// "shard 0" survives the round trip).
	Shard int `json:"shard,omitempty"`
	Class int `json:"class,omitempty"`
	// Extra is free-form annotation (worker exit status, truncation
	// notices).
	Extra string `json:"extra,omitempty"`
}

// Config configures a Recorder.
type Config struct {
	// Clock is the time source; nil uses SystemClock.
	Clock Clock
	// Label names the recording process/campaign in exports.
	Label string
	// JSONL, when non-nil, additionally receives every event as one JSON
	// line the moment it is recorded (the streaming event log). Writes
	// are serialized by the recorder.
	JSONL io.Writer
}

// Recorder accumulates spans, marks and counters for one campaign. The
// nil *Recorder is the valid, allocation-free no-op recorder every
// instrumented package defaults to.
type Recorder struct {
	clock Clock
	pid   int
	label string
	start time.Time

	counters [numCounters]int64 // atomic

	mu       sync.Mutex
	phase    string
	events   []Event
	jsonl    io.Writer
	jsonlErr error
}

// New builds a recorder. The process id is read here — the one sanctioned
// place — so fabric worker spans keep their own PID on the shared
// timeline.
func New(cfg Config) *Recorder {
	clock := cfg.Clock
	if clock == nil {
		clock = SystemClock()
	}
	return &Recorder{
		clock: clock,
		pid:   os.Getpid(),
		label: cfg.Label,
		start: clock.Now(),
		jsonl: cfg.JSONL,
	}
}

// Label returns the recorder's label ("" for nil).
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Clock returns the recorder's time source; a nil recorder returns the
// system clock, so display-only timestamps (sweep WallMS, audit-server
// submission times) route through obs whether or not telemetry is armed.
func (r *Recorder) Clock() Clock {
	if r == nil || r.clock == nil {
		return SystemClock()
	}
	return r.clock
}

// Add increments a counter. One atomic add; safe on the allocgate-pinned
// hot paths at any recorder state.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || c < 0 || c >= numCounters {
		return
	}
	atomic.AddInt64(&r.counters[c], n)
}

// Get reads a counter (0 for nil recorders).
func (r *Recorder) Get(c Counter) int64 {
	if r == nil || c < 0 || c >= numCounters {
		return 0
	}
	return atomic.LoadInt64(&r.counters[c])
}

// SetPhase records the campaign's current stage for progress reporting.
func (r *Recorder) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phase = phase
	r.mu.Unlock()
}

// Phase returns the current stage ("" for nil).
func (r *Recorder) Phase() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// ElapsedMS is the wall-clock age of the recorder in milliseconds.
func (r *Recorder) ElapsedMS() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Now().Sub(r.start).Milliseconds()
}

// Span opens a span on TID 0. End records it.
func (r *Recorder) Span(cat, name string) *Span { return r.SpanT(0, cat, name) }

// SpanT opens a span on an explicit TID (worker index, fabric process
// slot). A nil recorder returns a nil span whose End is a no-op.
func (r *Recorder) SpanT(tid int, cat, name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, e: Event{Ph: "X", Cat: cat, Name: name, TID: tid}, start: r.clock.Now()}
}

// ShardSpan opens a span for one shard's execution, carrying the shard
// identity into the trace without formatting costs at nil recorders.
func (r *Recorder) ShardSpan(tid, shard, class int) *Span {
	if r == nil {
		return nil
	}
	s := r.SpanT(tid, "shard", "shard "+strconv.Itoa(shard))
	s.e.Shard = shard + 1
	s.e.Class = class
	return s
}

// Mark records an instant event on TID 0.
func (r *Recorder) Mark(cat, name string) { r.MarkExtra(0, cat, name, "") }

// MarkExtra records an instant event with a TID and free-form annotation.
func (r *Recorder) MarkExtra(tid int, cat, name, extra string) {
	if r == nil {
		return
	}
	r.emit(Event{TS: r.clock.Now().UnixMicro(), Ph: "i", Cat: cat, Name: name, TID: tid, Extra: extra})
}

// emit stamps the recorder's PID, appends the event, and streams it to
// the JSONL log when configured.
func (r *Recorder) emit(e Event) {
	e.PID = r.pid
	r.mu.Lock()
	r.events = append(r.events, e)
	if r.jsonl != nil && r.jsonlErr == nil {
		r.jsonlErr = writeJSONLine(r.jsonl, e)
	}
	r.mu.Unlock()
}

// ingest appends foreign events (fabric worker telemetry) verbatim,
// preserving their PIDs.
func (r *Recorder) ingest(events []Event) {
	if r == nil || len(events) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, events...)
	if r.jsonl != nil && r.jsonlErr == nil {
		for _, e := range events {
			if r.jsonlErr = writeJSONLine(r.jsonl, e); r.jsonlErr != nil {
				break
			}
		}
	}
	r.mu.Unlock()
}

// Events returns a copy of every recorded event.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Span is an open span; End closes and records it. The nil *Span (from a
// nil recorder) is valid and End on it is a no-op.
type Span struct {
	r     *Recorder
	e     Event
	start time.Time
}

// End records the span with its measured duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.r.clock.Now()
	s.e.TS = s.start.UnixMicro()
	s.e.Dur = now.Sub(s.start).Microseconds()
	if s.e.Dur < 0 {
		s.e.Dur = 0
	}
	s.r.emit(s.e)
}

// HotCounters is the engine-attachable hot-path tally: plain (non-atomic)
// fields, because a simulated engine is single-goroutine by contract and
// an atomic add per simulated load would be measurable. Each shard owns
// its engine, so each shard flushes its own HotCounters into the shared
// recorder exactly once, at shard end.
type HotCounters struct {
	Loads  int64
	Stores int64
}

// FlushHot folds an engine's hot tallies into the recorder's counters and
// resets them.
func (r *Recorder) FlushHot(h *HotCounters) {
	if h == nil {
		return
	}
	r.Add(CEngineLoads, h.Loads)
	r.Add(CEngineStores, h.Stores)
	h.Loads, h.Stores = 0, 0
}

// CounterValue is one counter's exported value.
type CounterValue struct {
	C Counter `json:"c"`
	N int64   `json:"n"`
}

// Telemetry is the wire form of a recorder's pending state — what a
// fabric worker ships back after each shard. It is telemetry-frame
// payload only: never digested, never merged into campaign bytes.
type Telemetry struct {
	Events   []Event        `json:"events,omitempty"`
	Counters []CounterValue `json:"counters,omitempty"`
}

// Drain takes and clears the recorder's pending events and counter
// deltas. Repeated drains ship increments, so merging every drain
// reconstructs the recorder's totals.
func (r *Recorder) Drain() Telemetry {
	if r == nil {
		return Telemetry{}
	}
	var t Telemetry
	r.mu.Lock()
	if len(r.events) > 0 {
		t.Events = r.events
		r.events = nil
	}
	r.mu.Unlock()
	for c := Counter(0); c < numCounters; c++ {
		if n := atomic.SwapInt64(&r.counters[c], 0); n != 0 {
			t.Counters = append(t.Counters, CounterValue{C: c, N: n})
		}
	}
	return t
}

// Merge folds drained telemetry (typically from a worker process) into
// this recorder: events keep their original PIDs, counters accumulate.
func (r *Recorder) Merge(t Telemetry) {
	if r == nil {
		return
	}
	r.ingest(t.Events)
	for _, cv := range t.Counters {
		r.Add(cv.C, cv.N)
	}
}
