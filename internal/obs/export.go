package obs

// The exporters: a JSONL event log (one Event per line, streamed as
// events are recorded or dumped at once), a Chrome trace_event timeline
// (load chrome://tracing or https://ui.perfetto.dev and open the file),
// and the text counter dump behind the audit server's /metrics endpoint.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// writeJSONLine encodes one event as a single JSON line.
func writeJSONLine(w io.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteJSONL dumps every recorded event as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		if err := writeJSONLine(w, e); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is the Chrome trace_event wire form of one Event. The
// "args" of shard spans carry the shard identity; a named struct keeps
// the schema explicit (and the repo's wiredigest analyzer quiet).
type traceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	TS   int64      `json:"ts"`
	Dur  int64      `json:"dur,omitempty"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	S    string     `json:"s,omitempty"` // instant-event scope
	Args *traceArgs `json:"args,omitempty"`
}

// traceArgs annotates a trace event.
type traceArgs struct {
	Shard *int   `json:"shard,omitempty"`
	Class *int   `json:"class,omitempty"`
	Extra string `json:"extra,omitempty"`
	Name  string `json:"name,omitempty"` // process_name metadata payload
}

// traceFile is the top-level trace_event JSON object.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteTrace exports the recorded events as a Chrome trace_event JSON
// object. Spans recorded by worker processes keep their own PID rows, so
// one file shows the whole fabric's shard parallelism.
func (r *Recorder) WriteTrace(w io.Writer) error {
	events := r.Events()
	// Stable presentation order: by timestamp, then by recording order
	// (spans are recorded at End, so they arrive out of start order).
	sort.SliceStable(events, func(a, b int) bool { return events[a].TS < events[b].TS })
	tf := traceFile{TraceEvents: make([]traceEvent, 0, len(events)+1)}
	if r != nil {
		label := r.label
		if label == "" {
			label = "repro"
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: r.pid,
			Args: &traceArgs{Name: label},
		})
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Name, Cat: e.Cat, Ph: e.Ph, TS: e.TS, Dur: e.Dur,
			PID: e.PID, TID: e.TID,
		}
		if te.Ph == "i" {
			te.S = "p" // process-scoped instant
		}
		if e.Shard != 0 || e.Class != 0 || e.Extra != "" {
			args := &traceArgs{Extra: e.Extra}
			if e.Shard != 0 {
				shard := e.Shard - 1
				args.Shard = &shard
				class := e.Class
				args.Class = &class
			}
			te.Args = args
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteMetrics dumps every counter as "obs_<name> <value>" lines in the
// fixed Counter order, followed by the elapsed-time gauge — the text
// format the audit server's /metrics endpoint serves.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	for c := Counter(0); c < numCounters; c++ {
		if _, err := fmt.Fprintf(w, "obs_%s %d\n", c, r.Get(c)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "obs_elapsed_ms %d\n", r.ElapsedMS())
	return err
}

// FileRecorder builds a system-clock recorder exporting to the given
// paths — the shared -trace/-obs CLI wiring. tracePath receives the
// Chrome trace_event timeline when finish is called; jsonlPath streams
// the JSONL event log as events are recorded. Both empty returns a nil
// recorder and a no-op finish: campaign code passes the result through
// unconditionally.
func FileRecorder(tracePath, jsonlPath, label string) (*Recorder, func() error, error) {
	if tracePath == "" && jsonlPath == "" {
		return nil, func() error { return nil }, nil
	}
	var jsonl *os.File
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: creating event log: %w", err)
		}
		jsonl = f
	}
	rec := New(Config{Label: label, JSONL: jsonl})
	finish := func() error {
		var firstErr error
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				firstErr = fmt.Errorf("obs: creating trace: %w", err)
			} else {
				if err := rec.WriteTrace(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if jsonl != nil {
			if err := jsonl.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return rec, finish, nil
}
