package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step per Now call, so spans get
// deterministic, positive durations.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (f *fakeClock) Now() time.Time {
	now := f.t
	f.t = f.t.Add(f.step)
	return now
}

func newFake() *fakeClock {
	return &fakeClock{t: time.UnixMicro(1_000_000), step: 250 * time.Microsecond}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(CShardsDone, 1)
	r.SetPhase("collect")
	r.Mark("x", "y")
	r.MarkExtra(3, "x", "y", "z")
	r.FlushHot(&HotCounters{Loads: 5})
	r.Merge(Telemetry{Events: []Event{{Name: "e"}}})
	sp := r.Span("cat", "name")
	sp.End()
	r.ShardSpan(1, 2, 3).End()
	if got := r.Get(CShardsDone); got != 0 {
		t.Fatalf("nil recorder counter = %d", got)
	}
	if r.Phase() != "" || r.Events() != nil || r.ElapsedMS() != 0 {
		t.Fatalf("nil recorder leaked state")
	}
	if r.Clock() == nil {
		t.Fatalf("nil recorder must still serve a clock")
	}
	if d := r.Drain(); len(d.Events) != 0 || len(d.Counters) != 0 {
		t.Fatalf("nil recorder drained %+v", d)
	}
}

func TestSpansAndCounters(t *testing.T) {
	r := New(Config{Clock: newFake(), Label: "test"})
	sp := r.Span("pipeline", "collect")
	inner := r.ShardSpan(2, 7, 3)
	inner.End()
	sp.End()
	r.Add(CShardsDone, 2)
	r.Add(CShardsDone, 1)
	if got := r.Get(CShardsDone); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	shard := events[0]
	if shard.Name != "shard 7" || shard.TID != 2 || shard.Shard != 8 || shard.Class != 3 {
		t.Fatalf("shard span = %+v", shard)
	}
	for _, e := range events {
		if e.Ph != "X" || e.Dur <= 0 || e.PID == 0 {
			t.Fatalf("bad span event %+v", e)
		}
	}
}

func TestDrainMergeRoundTrip(t *testing.T) {
	worker := New(Config{Clock: newFake(), Label: "worker"})
	worker.ShardSpan(0, 4, 1).End()
	worker.Add(CProfilesCollected, 50)
	first := worker.Drain()
	if len(first.Events) != 1 || len(first.Counters) != 1 {
		t.Fatalf("drain = %+v", first)
	}
	if d := worker.Drain(); len(d.Events) != 0 || len(d.Counters) != 0 {
		t.Fatalf("second drain not empty: %+v", d)
	}
	worker.Add(CProfilesCollected, 25)
	second := worker.Drain()

	// Telemetry must round-trip through JSON (the fabric frame payload).
	data, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Telemetry
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	coord := New(Config{Clock: newFake(), Label: "coord"})
	coord.Merge(decoded)
	coord.Merge(second)
	if got := coord.Get(CProfilesCollected); got != 75 {
		t.Fatalf("merged counter = %d, want 75", got)
	}
	evs := coord.Events()
	if len(evs) != 1 || evs[0].Name != "shard 4" {
		t.Fatalf("merged events = %+v", evs)
	}
	if evs[0].PID == 0 {
		t.Fatalf("merged event lost its PID")
	}
}

func TestFlushHot(t *testing.T) {
	r := New(Config{Clock: newFake()})
	h := HotCounters{Loads: 10, Stores: 4}
	r.FlushHot(&h)
	if h.Loads != 0 || h.Stores != 0 {
		t.Fatalf("FlushHot did not reset: %+v", h)
	}
	if r.Get(CEngineLoads) != 10 || r.Get(CEngineStores) != 4 {
		t.Fatalf("FlushHot lost counts: loads=%d stores=%d", r.Get(CEngineLoads), r.Get(CEngineStores))
	}
}

func TestWriteTraceShape(t *testing.T) {
	r := New(Config{Clock: newFake(), Label: "trace-test"})
	r.Span("pipeline", "collect").End()
	r.MarkExtra(1, "fabric", "worker-exit", "exited cleanly")
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// process_name metadata + span + mark.
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("first trace event is %v, want process_name metadata", tf.TraceEvents[0])
	}
	for _, te := range tf.TraceEvents[1:] {
		ph, _ := te["ph"].(string)
		if ph != "X" && ph != "i" {
			t.Fatalf("unexpected phase %q", ph)
		}
		if _, ok := te["ts"].(float64); !ok {
			t.Fatalf("trace event without ts: %v", te)
		}
	}
}

func TestJSONLStreaming(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Clock: newFake(), JSONL: &buf})
	r.Mark("a", "one")
	r.Span("b", "two").End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}
}

func TestWriteMetricsOrderAndPhase(t *testing.T) {
	r := New(Config{Clock: newFake()})
	r.Add(CShardsPlanned, 8)
	r.Add(CShardsDone, 3)
	r.SetPhase("collect")
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "obs_shards_planned 8\n") || !strings.Contains(out, "obs_shards_done 3\n") {
		t.Fatalf("metrics missing counters:\n%s", out)
	}
	// Fixed order: planned before done, every counter present.
	if strings.Index(out, "obs_shards_planned") > strings.Index(out, "obs_shards_done") {
		t.Fatalf("metrics out of order:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != len(AllCounters())+1 {
		t.Fatalf("metrics has %d lines, want %d", got, len(AllCounters())+1)
	}
	if r.Phase() != "collect" {
		t.Fatalf("phase = %q", r.Phase())
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range AllCounters() {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "counter(") {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}
