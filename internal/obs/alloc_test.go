package obs

// Allocation gate for the nil-recorder hooks. Instrumented packages call
// these unconditionally on hot paths — core.CollectShardEmit arms hot
// counters and emits spans per shard, emitWindows counts every emitted
// window — so with telemetry off (nil *Recorder) the whole hook surface
// must cost one branch and zero allocations.

import (
	"testing"

	"repro/internal/raceinfo"
)

func TestNilRecorderHooksZeroAlloc(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	var r *Recorder
	hooks := map[string]func(){
		// The counter adds emitWindows performs per emitted window.
		"Add": func() { r.Add(CWindowsEmitted, 1); r.Add(CProfilesCollected, 8) },
		// The span pair wrapping each pipeline stage and shard.
		"Span":      func() { r.Span("pipeline", "collect").End() },
		"ShardSpan": func() { r.ShardSpan(3, 7, 2).End() },
		// Phase/mark updates on stage transitions.
		"SetPhase": func() { r.SetPhase("collect") },
		"Mark":     func() { r.Mark("fabric", "tick") },
		// The per-shard hot-counter flush CollectShardEmit defers.
		"FlushHot": func() { r.FlushHot(&HotCounters{Loads: 10, Stores: 4}) },
	}
	for name, fn := range hooks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("nil-Recorder %s hook allocates %v/op, want 0", name, allocs)
		}
	}
}
