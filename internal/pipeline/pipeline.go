// Package pipeline is the concurrent, sharded execution engine for the
// paper's Evaluator. Profiling every (event, class) pair over hundreds of
// traces dominates evaluation wall-clock; this package fans that
// collection out over a pool of workers while keeping results bit-for-bit
// identical to a sequential run.
//
// # Architecture
//
//	shards ── collect (N workers, one engine per shard) ── merge ── test (batched) ── report
//
// The campaign is split into deterministic shard units (core.PlanShards):
// contiguous run ranges of a single category. Each shard is executed on a
// *fresh* target built by the TargetFactory from the shard's derived seed
// — simulated march.Engines are stateful and must never be shared, so no
// engine is ever visible to two goroutines. Because every shard's noise
// and jitter streams are seeded from (rootSeed, class, start) alone,
// scheduling cannot influence observations: workers=1 and workers=N
// produce the same Distributions, the same PairTests and the same Report.
//
// After the merge, the pairwise hypothesis-test stage batches the
// event×pair work items (core.TestJobs) across the same worker pool;
// results are written back by job index and finalized in deterministic
// order.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TargetFactory builds a fresh, self-contained target — with its own
// simulated engine — for one shard. seed is the shard's derived RNG seed
// and must drive every source of randomness in the target (measurement
// noise, runtime jitter, defense dummy traffic) so that a shard's
// observations depend only on its seed, never on which worker runs it.
type TargetFactory func(seed int64) (core.Target, error)

// DefaultShardRuns is the default maximum number of measured runs per
// shard. It balances scheduling granularity (more shards → better load
// balance across workers) against per-shard overhead (each shard pays a
// cold reset plus warm-up). It must stay fixed across worker counts: the
// shard plan, not the pool size, defines the observations.
const DefaultShardRuns = 50

// Config controls the pool.
type Config struct {
	// Workers is the number of concurrent collection goroutines;
	// 0 → runtime.GOMAXPROCS(0). Workers=1 is the sequential reference
	// execution of the same plan.
	Workers int
	// RootSeed derives every per-shard seed (default 1).
	RootSeed int64
	// ShardRuns bounds measured runs per shard (default DefaultShardRuns).
	// Changing it changes the shard plan and therefore the observations;
	// keep it fixed when comparing runs.
	ShardRuns int
	// TestBatch is the number of pair-test jobs per batch in the test
	// stage; 0 sizes batches automatically from the job count and worker
	// count.
	TestBatch int
	// Obs receives stage and shard spans plus progress counters. It is
	// observational output only: a nil recorder (the default) and an
	// armed one execute the identical shard plan and produce
	// byte-identical reports.
	Obs *obs.Recorder `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RootSeed == 0 {
		c.RootSeed = 1
	}
	if c.ShardRuns <= 0 {
		c.ShardRuns = DefaultShardRuns
	}
	return c
}

// Pipeline executes evaluation campaigns concurrently.
type Pipeline struct {
	ev  *core.Evaluator
	cfg Config
}

// New builds a pipeline around an evaluator.
func New(ev *core.Evaluator, cfg Config) (*Pipeline, error) {
	if ev == nil {
		return nil, fmt.Errorf("pipeline: nil evaluator")
	}
	return &Pipeline{ev: ev, cfg: cfg.withDefaults()}, nil
}

// Config returns the pipeline's (defaults-applied) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// planShards is the single planning call every stage goes through —
// Collect, CollectProfilesByClass, Stream and WirePlans all shard one
// campaign identically because they cannot plan any other way.
func (p *Pipeline) planShards(perClass map[int][]*tensor.Tensor) ([]core.Shard, error) {
	return p.ev.PlanShards(perClass, p.cfg.RootSeed, p.cfg.ShardRuns)
}

// Collect fans the campaign's shard plan out over the worker pool and
// merges the per-shard distributions. Each worker drains shards from a
// shared queue, building a fresh target per shard via factory; the merge
// places samples by (class, run) offset, so the result is independent of
// completion order. The first error (or ctx cancellation) stops all
// workers and is returned.
func (p *Pipeline) Collect(ctx context.Context, factory TargetFactory, perClass map[int][]*tensor.Tensor) (*core.Distributions, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil target factory")
	}
	rec := p.cfg.Obs
	rec.SetPhase("plan")
	plan := rec.Span("pipeline", "plan")
	shards, err := p.planShards(perClass)
	plan.End()
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CShardsPlanned, int64(len(shards)))
	rec.SetPhase("collect")
	collect := rec.Span("pipeline", "collect")
	parts := make([]*core.Distributions, len(shards))
	err = p.forEach(ctx, len(shards), func(ctx context.Context, w, i int) error {
		sh := shards[i]
		sp := rec.ShardSpan(w, sh.Index, sh.Class)
		target, err := factory(sh.Seed)
		if err != nil {
			sp.End()
			return fmt.Errorf("pipeline: shard %d target: %w", sh.Index, err)
		}
		part, err := p.ev.CollectShard(ctx, target, sh)
		sp.End()
		if err != nil {
			return err
		}
		parts[i] = part
		rec.Add(obs.CShardsDone, 1)
		return nil
	})
	collect.End()
	if err != nil {
		return nil, err
	}
	rec.SetPhase("merge")
	merge := rec.Span("pipeline", "merge")
	d, err := p.ev.MergeShards(shards, parts)
	merge.End()
	return d, err
}

// Test batches the pairwise hypothesis tests of collected distributions
// across the worker pool. Results are written back by job index and
// finalized (Holm correction per event) in the same deterministic order
// the sequential core.Evaluator.Test uses.
func (p *Pipeline) Test(ctx context.Context, d *core.Distributions) ([]core.PairTest, error) {
	jobs, err := core.TestJobs(d)
	if err != nil {
		return nil, err
	}
	batch := p.cfg.TestBatch
	if batch <= 0 {
		// Aim for a few batches per worker so a slow batch cannot serialize
		// the stage, without paying per-job scheduling costs.
		batch = (len(jobs) + 4*p.cfg.Workers - 1) / (4 * p.cfg.Workers)
		if batch < 1 {
			batch = 1
		}
	}
	batches := (len(jobs) + batch - 1) / batch
	tests := make([]core.PairTest, len(jobs))
	p.cfg.Obs.SetPhase("test")
	stage := p.cfg.Obs.Span("pipeline", "test")
	defer stage.End()
	err = p.forEach(ctx, batches, func(ctx context.Context, w, b int) error {
		lo := b * batch
		hi := lo + batch
		if hi > len(jobs) {
			hi = len(jobs)
		}
		for _, j := range jobs[lo:hi] {
			if err := ctx.Err(); err != nil {
				return err
			}
			t, err := p.ev.RunTestJob(d, j)
			if err != nil {
				return err
			}
			tests[j.Index] = t
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.ev.FinalizeTests(tests), nil
}

// Evaluate runs the full campaign — sharded collection, merge, batched
// pairwise tests — and assembles the report.
func (p *Pipeline) Evaluate(ctx context.Context, name string, factory TargetFactory, perClass map[int][]*tensor.Tensor) (*core.Report, error) {
	d, err := p.Collect(ctx, factory, perClass)
	if err != nil {
		return nil, err
	}
	tests, err := p.Test(ctx, d)
	if err != nil {
		return nil, err
	}
	p.cfg.Obs.SetPhase("report")
	sp := p.cfg.Obs.Span("pipeline", "report")
	defer sp.End()
	return p.ev.BuildReport(name, d, tests), nil
}

// forEach runs fn(0..n-1) over the worker pool, stopping on the first
// error or context cancellation and returning that first error. fn
// additionally receives the worker index w (0..workers-1) running it —
// telemetry uses it as the span's thread lane; nothing else may, since
// which worker runs which job is scheduling-dependent.
func (p *Pipeline) forEach(ctx context.Context, n int, fn func(ctx context.Context, w, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := p.cfg.Workers
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(ctx, w, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			i = n // stop feeding; workers drain and exit
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
