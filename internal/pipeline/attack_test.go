package pipeline

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/cache"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestAttackDeterminismAcrossWorkerCounts is the attack stage's core
// guarantee: workers=1 and workers=8 must produce byte-identical confusion
// matrices and accuracies for the same root seed. Run with -race to verify
// no attacker or profile state is shared between workers.
func TestAttackDeterminismAcrossWorkerCounts(t *testing.T) {
	net := testNet(t)
	pools := testPools(3, 4)
	evCfg := core.Config{RunsPerClass: 18, WarmupRuns: 1}

	run := func(workers int) []byte {
		p := newPipeline(t, evCfg, Config{Workers: workers, RootSeed: 7, ShardRuns: 5})
		res, err := p.Attack(context.Background(), "attack-determinism", testFactory(t, net), pools, 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProfileRuns != 12 || res.AttackRuns != 6 {
			t.Fatalf("split = %d/%d, want 12/6", res.ProfileRuns, res.AttackRuns)
		}
		if res.Template.Total != 18 || res.KNN.Total != 18 { // 3 classes × 6 runs
			t.Fatalf("matrix totals = %d/%d, want 18", res.Template.Total, res.KNN.Total)
		}
		// Serialize the whole result so any divergence — matrix cell,
		// accuracy, template mean — fails the comparison.
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("attack results differ across worker counts:\n  workers=1: %s\n  workers=8: %s", seq, par)
	}
}

// TestAttackRepeatedRun guards against hidden global state: two identical
// pooled attack runs must agree with each other.
func TestAttackRepeatedRun(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	run := func() []byte {
		p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 1}, Config{Workers: 4, RootSeed: 3, ShardRuns: 4})
		res, err := p.Attack(context.Background(), "attack-repeat", testFactory(t, net), pools, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated attack runs diverged:\n  %s\n  %s", a, b)
	}
}

// TestAttackRootSeedChangesObservations: -seed must reseed the attack
// campaign's noise streams.
func TestAttackRootSeedChangesObservations(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	collect := func(seed int64) map[int][]float64 {
		p := newPipeline(t, core.Config{RunsPerClass: 8, WarmupRuns: 1}, Config{Workers: 2, RootSeed: seed})
		byClass, err := p.CollectProfiles(context.Background(), testFactory(t, net), pools)
		if err != nil {
			t.Fatal(err)
		}
		flat := map[int][]float64{}
		for cls, profs := range byClass {
			for _, prof := range profs {
				for _, e := range prof.Events() {
					flat[cls] = append(flat[cls], prof.Get(e))
				}
			}
		}
		return flat
	}
	if reflect.DeepEqual(collect(1), collect(2)) {
		t.Fatal("root seed had no effect on attack observations")
	}
}

func TestAttackValidation(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 0}, Config{Workers: 2, RootSeed: 1})
	if _, err := p.Attack(context.Background(), "bad", testFactory(t, net), pools, 1, 3); err == nil {
		t.Fatal("profileRuns < 2 accepted")
	}
	if _, err := p.Attack(context.Background(), "bad", testFactory(t, net), pools, 10, 3); err == nil {
		t.Fatal("profileRuns == RunsPerClass accepted (no held-out attack runs)")
	}
	if _, err := p.CollectProfiles(context.Background(), nil, pools); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// TestCollectProfilesMatchesCollect: the labelled profiles the attack
// stage consumes must carry exactly the same observations as the
// distributions the hypothesis-test stage consumes — one collection
// discipline, two views.
func TestCollectProfilesMatchesCollect(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	evCfg := core.Config{RunsPerClass: 8, WarmupRuns: 1}
	cfg := Config{Workers: 2, RootSeed: 9, ShardRuns: 4}

	p := newPipeline(t, evCfg, cfg)
	d, err := p.Collect(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	byClass, err := p.CollectProfiles(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Events {
		for _, cls := range d.Classes {
			xs := d.Get(e, cls)
			if len(byClass[cls]) != len(xs) {
				t.Fatalf("class %d: %d profiles vs %d samples", cls, len(byClass[cls]), len(xs))
			}
			for r, v := range xs {
				if got := byClass[cls][r].Get(e); got != v {
					t.Fatalf("%s class %d run %d: profile %v vs distribution %v", e, cls, r, got, v)
				}
			}
		}
	}
}

// TestCollectProfilesByClass deploys a *different* victim per class — the
// architecture-fingerprinting shape, where the class label selects the
// model — and checks that every class's observations come from its own
// victim and that the result is worker-invariant.
func TestCollectProfilesByClass(t *testing.T) {
	// Three networks of clearly different size: per-class instruction
	// counts must order accordingly.
	nets := make([]*nn.Network, 3)
	for i, conv := range []int{2, 4, 8} {
		net, err := nn.Build(nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1,
			Conv1: conv, Conv2: conv, Kernel: 3, Classes: 3}, rand.New(rand.NewSource(int64(2+i))))
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = net
	}
	factory := func(class int, seed int64) (core.Target, error) {
		h, err := cache.NewHierarchy(
			cache.Config{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
			cache.Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
			cache.Config{Name: "LLC", Size: 2048, LineSize: 64, Assoc: 4, Policy: cache.LRU},
		)
		if err != nil {
			return nil, err
		}
		eng, err := march.NewEngine(march.Config{Hierarchy: h, Noise: march.DefaultNoise(seed)})
		if err != nil {
			return nil, err
		}
		return instrument.New(nets[class], eng, instrument.Options{SparsitySkip: true, Seed: seed})
	}
	// Every class observes the *same* input pool: the only difference
	// between classes is the deployed architecture.
	shared := classImages(1, 4, 100)
	pools := map[int][]*tensor.Tensor{0: shared, 1: shared, 2: shared}
	evCfg := core.Config{Events: []march.Event{march.EvInstructions}, RunsPerClass: 10, WarmupRuns: 1}

	run := func(workers int) map[int][]float64 {
		p := newPipeline(t, evCfg, Config{Workers: workers, RootSeed: 11, ShardRuns: 4})
		byClass, err := p.CollectProfilesByClass(context.Background(), factory, pools)
		if err != nil {
			t.Fatal(err)
		}
		out := map[int][]float64{}
		for cls, profs := range byClass {
			for _, prof := range profs {
				out[cls] = append(out[cls], prof.Get(march.EvInstructions))
			}
		}
		return out
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("class-aware collection differs across worker counts:\n  workers=1: %v\n  workers=8: %v", seq, par)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	m0, m1, m2 := mean(seq[0]), mean(seq[1]), mean(seq[2])
	if !(m0 < m1 && m1 < m2) {
		t.Fatalf("per-class instruction means not ordered by architecture size: %v %v %v", m0, m1, m2)
	}
	if _, err := newPipeline(t, evCfg, Config{}).CollectProfilesByClass(context.Background(), nil, pools); err == nil {
		t.Fatal("nil class factory accepted")
	}
}
