package pipeline

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestAttackDeterminismAcrossWorkerCounts is the attack stage's core
// guarantee: workers=1 and workers=8 must produce byte-identical confusion
// matrices and accuracies for the same root seed. Run with -race to verify
// no attacker or profile state is shared between workers.
func TestAttackDeterminismAcrossWorkerCounts(t *testing.T) {
	net := testNet(t)
	pools := testPools(3, 4)
	evCfg := core.Config{RunsPerClass: 18, WarmupRuns: 1}

	run := func(workers int) []byte {
		p := newPipeline(t, evCfg, Config{Workers: workers, RootSeed: 7, ShardRuns: 5})
		res, err := p.Attack(context.Background(), "attack-determinism", testFactory(t, net), pools, 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProfileRuns != 12 || res.AttackRuns != 6 {
			t.Fatalf("split = %d/%d, want 12/6", res.ProfileRuns, res.AttackRuns)
		}
		if res.Template.Total != 18 || res.KNN.Total != 18 { // 3 classes × 6 runs
			t.Fatalf("matrix totals = %d/%d, want 18", res.Template.Total, res.KNN.Total)
		}
		// Serialize the whole result so any divergence — matrix cell,
		// accuracy, template mean — fails the comparison.
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("attack results differ across worker counts:\n  workers=1: %s\n  workers=8: %s", seq, par)
	}
}

// TestAttackRepeatedRun guards against hidden global state: two identical
// pooled attack runs must agree with each other.
func TestAttackRepeatedRun(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	run := func() []byte {
		p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 1}, Config{Workers: 4, RootSeed: 3, ShardRuns: 4})
		res, err := p.Attack(context.Background(), "attack-repeat", testFactory(t, net), pools, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated attack runs diverged:\n  %s\n  %s", a, b)
	}
}

// TestAttackRootSeedChangesObservations: -seed must reseed the attack
// campaign's noise streams.
func TestAttackRootSeedChangesObservations(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	collect := func(seed int64) map[int][]float64 {
		p := newPipeline(t, core.Config{RunsPerClass: 8, WarmupRuns: 1}, Config{Workers: 2, RootSeed: seed})
		byClass, err := p.CollectProfiles(context.Background(), testFactory(t, net), pools)
		if err != nil {
			t.Fatal(err)
		}
		flat := map[int][]float64{}
		for cls, profs := range byClass {
			for _, prof := range profs {
				for _, e := range prof.Events() {
					flat[cls] = append(flat[cls], prof.Get(e))
				}
			}
		}
		return flat
	}
	if reflect.DeepEqual(collect(1), collect(2)) {
		t.Fatal("root seed had no effect on attack observations")
	}
}

func TestAttackValidation(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 0}, Config{Workers: 2, RootSeed: 1})
	if _, err := p.Attack(context.Background(), "bad", testFactory(t, net), pools, 1, 3); err == nil {
		t.Fatal("profileRuns < 2 accepted")
	}
	if _, err := p.Attack(context.Background(), "bad", testFactory(t, net), pools, 10, 3); err == nil {
		t.Fatal("profileRuns == RunsPerClass accepted (no held-out attack runs)")
	}
	if _, err := p.CollectProfiles(context.Background(), nil, pools); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// TestCollectProfilesMatchesCollect: the labelled profiles the attack
// stage consumes must carry exactly the same observations as the
// distributions the hypothesis-test stage consumes — one collection
// discipline, two views.
func TestCollectProfilesMatchesCollect(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	evCfg := core.Config{RunsPerClass: 8, WarmupRuns: 1}
	cfg := Config{Workers: 2, RootSeed: 9, ShardRuns: 4}

	p := newPipeline(t, evCfg, cfg)
	d, err := p.Collect(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	byClass, err := p.CollectProfiles(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Events {
		for _, cls := range d.Classes {
			xs := d.Get(e, cls)
			if len(byClass[cls]) != len(xs) {
				t.Fatalf("class %d: %d profiles vs %d samples", cls, len(byClass[cls]), len(xs))
			}
			for r, v := range xs {
				if got := byClass[cls][r].Get(e); got != v {
					t.Fatalf("%s class %d run %d: profile %v vs distribution %v", e, cls, r, got, v)
				}
			}
		}
	}
}
