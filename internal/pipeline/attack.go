package pipeline

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// CollectProfiles fans the campaign's shard plan out over the worker pool
// and returns the labelled per-run HPC profiles, byClass[class][run]. It is
// the attack stage's counterpart of Collect: the same shard units, fresh
// per-shard targets and derived seeds, merged by (class, run) offset — so
// the observation for run r of class c is identical at any worker count.
func (p *Pipeline) CollectProfiles(ctx context.Context, factory TargetFactory, perClass map[int][]*tensor.Tensor) (map[int][]hpc.Profile, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil target factory")
	}
	return p.CollectProfilesByClass(ctx, func(_ int, seed int64) (core.Target, error) {
		return factory(seed)
	}, perClass)
}

// ClassTargetFactory builds a fresh, self-contained target for one shard
// of the given class. It is the class-aware generalization of
// TargetFactory for campaigns where the class label selects *which victim
// is deployed* rather than which input it classifies — the architecture-
// fingerprinting scenario, where class c is model architecture c. The
// same contract applies: every source of randomness in the target must
// derive from seed alone.
type ClassTargetFactory func(class int, seed int64) (core.Target, error)

// CollectProfilesByClass is CollectProfiles with a class-aware factory:
// shard workers deploy factory(shard.Class, shard.Seed), so each class's
// observations can come from a different victim (a different model
// architecture) while riding the exact same shard plan, derived seeds and
// deterministic (class, run) merge.
func (p *Pipeline) CollectProfilesByClass(ctx context.Context, factory ClassTargetFactory, perClass map[int][]*tensor.Tensor) (map[int][]hpc.Profile, error) {
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil target factory")
	}
	rec := p.cfg.Obs
	rec.SetPhase("plan")
	plan := rec.Span("pipeline", "plan")
	shards, err := p.planShards(perClass)
	plan.End()
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CShardsPlanned, int64(len(shards)))
	rec.SetPhase("collect")
	collect := rec.Span("pipeline", "collect")
	parts := make([][]hpc.Profile, len(shards))
	err = p.forEach(ctx, len(shards), func(ctx context.Context, w, i int) error {
		sh := shards[i]
		sp := rec.ShardSpan(w, sh.Index, sh.Class)
		defer sp.End()
		target, err := factory(sh.Class, sh.Seed)
		if err != nil {
			return fmt.Errorf("pipeline: shard %d target: %w", sh.Index, err)
		}
		part, err := p.ev.CollectShardProfiles(ctx, target, sh)
		if err != nil {
			return err
		}
		parts[i] = part
		rec.Add(obs.CShardsDone, 1)
		return nil
	})
	collect.End()
	if err != nil {
		return nil, err
	}
	rec.SetPhase("merge")
	defer rec.Span("pipeline", "merge").End()
	byClass := map[int][]hpc.Profile{}
	for i, sh := range shards {
		if err := p.placeProfiles(byClass, PlanOf(sh), parts[i]); err != nil {
			return nil, err
		}
	}
	return byClass, nil
}

// Attack runs the end-to-end attack stage: sharded collection of
// RunsPerClass labelled observations per class, a deterministic split into
// the first profileRuns (profiling) and the rest (held-out attack runs),
// then both attackers fitted and scored in deterministic (class, run)
// order. Because the split is positional over the deterministic merge, the
// confusion matrices are bit-for-bit identical at any worker count.
func (p *Pipeline) Attack(ctx context.Context, name string, factory TargetFactory, perClass map[int][]*tensor.Tensor, profileRuns, k int) (*attack.Result, error) {
	total := p.ev.Config().RunsPerClass
	if profileRuns < 2 || profileRuns >= total {
		return nil, fmt.Errorf("pipeline: profileRuns %d outside [2, %d); RunsPerClass must cover profiling plus held-out attack runs",
			profileRuns, total)
	}
	byClass, err := p.CollectProfiles(ctx, factory, perClass)
	if err != nil {
		return nil, err
	}
	p.cfg.Obs.SetPhase("attack")
	defer p.cfg.Obs.Span("pipeline", "attack").End()
	profSet, atkSet, err := attack.Split(byClass, profileRuns)
	if err != nil {
		return nil, err
	}
	return attack.Evaluate(name, p.ev.Config().Events, profSet, atkSet, k)
}
