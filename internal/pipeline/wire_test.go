package pipeline

// Property tests for the fabric wire encoding: the shard-plan and
// shard-result serializations must be canonical (encode∘decode∘encode is
// the identity on bytes) and lossless (decoded values bit-equal), over
// randomized inputs from a seeded generator — the foundation the
// processes=1 ≡ processes=N guarantee rests on.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/tensor"
)

// randomPlan draws a plan with adversarial field values (negatives, zero,
// extremes) — the wire form must survive all of them.
func randomPlan(rng *rand.Rand) Plan {
	pick := func(extremes ...int) int {
		switch rng.Intn(4) {
		case 0:
			return extremes[rng.Intn(len(extremes))]
		default:
			return rng.Intn(1 << 20)
		}
	}
	return Plan{
		Index: pick(0, -1, math.MaxInt32),
		Class: pick(0, -7, 255),
		Start: pick(0, 1, math.MaxInt32),
		Count: pick(0, 1, 50),
		Seed:  rng.Int63() - rng.Int63(),
	}
}

func TestPlanWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 500; i++ {
		p := randomPlan(rng)
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var dec Plan
		if err := json.Unmarshal(enc, &dec); err != nil {
			t.Fatal(err)
		}
		if dec != p {
			t.Fatalf("plan round trip lost data: %+v -> %+v", p, dec)
		}
		re, err := json.Marshal(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("plan encoding not canonical:\n%s\n%s", enc, re)
		}
	}
}

// randomProfile draws event subsets and float64 values spanning the
// range real counters produce (large magnitudes, fractions from counter
// scaling, exact zeros) plus denormal-ish extremes.
func randomProfile(rng *rand.Rand) hpc.Profile {
	events := march.ExtendedEvents()
	p := hpc.Profile{}
	n := 1 + rng.Intn(len(events))
	perm := rng.Perm(len(events))
	for _, idx := range perm[:n] {
		var v float64
		switch rng.Intn(5) {
		case 0:
			v = 0
		case 1:
			v = float64(rng.Uint64() >> 11) // large integer-valued counts
		case 2:
			v = rng.Float64() * 1e12 // scaled counts with fractional bits
		case 3:
			v = math.Nextafter(rng.Float64(), 2) // awkward mantissas
		default:
			v = float64(rng.Intn(1e6)) + rng.Float64()
		}
		p[events[idx]] = v
	}
	return p
}

func TestProfilesWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		profs := make([]hpc.Profile, rng.Intn(6))
		for j := range profs {
			profs[j] = randomProfile(rng)
		}
		enc, err := EncodeProfiles(profs)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeProfiles(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, profs) {
			t.Fatalf("profiles round trip lost data:\n%v\n%v", profs, dec)
		}
		re, err := EncodeProfiles(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("profile encoding not canonical:\n%s\n%s", enc, re)
		}
	}
}

func TestEncodeProfilesEmpty(t *testing.T) {
	enc, err := EncodeProfiles(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeProfiles(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty round trip produced %d profiles", len(dec))
	}
}

func TestDecodeProfilesRejectsUnknownEvent(t *testing.T) {
	if _, err := DecodeProfiles([]byte(`[{"no-such-counter": 1}]`)); err == nil {
		t.Fatal("unknown event name decoded silently")
	}
	if _, err := DecodeProfiles([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatal("malformed payload decoded silently")
	}
}

func TestPlanOfShardRoundTrip(t *testing.T) {
	pool := []*tensor.Tensor{tensor.New(1, 2, 2)}
	sh := core.Shard{Index: 3, Class: 7, Pool: pool, Start: 50, Count: 25, Seed: -12345}
	got := PlanOf(sh).Shard(pool)
	if !reflect.DeepEqual(got, sh) {
		t.Fatalf("Plan/Shard round trip: %+v != %+v", got, sh)
	}
}

func TestPayloadDigestStable(t *testing.T) {
	a := PayloadDigest([]byte("payload"))
	b := PayloadDigest([]byte("payload"))
	c := PayloadDigest([]byte("payloae"))
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if a == c {
		t.Fatal("digest ignores content")
	}
	if len(a) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(a))
	}
}
