package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/cache"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testNet builds the shared tiny CNN once; instrumented targets over it
// only read the weights, so it is safe to share across workers.
func testNet(tb testing.TB) *nn.Network {
	tb.Helper()
	net, err := nn.Build(nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 3}, rand.New(rand.NewSource(2)))
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// testFactory builds fresh engine+classifier targets over the shared net.
// Every source of randomness (measurement noise, runtime jitter) is driven
// by the per-shard seed.
func testFactory(tb testing.TB, net *nn.Network) TargetFactory {
	tb.Helper()
	return func(seed int64) (core.Target, error) {
		h, err := cache.NewHierarchy(
			cache.Config{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
			cache.Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
			cache.Config{Name: "LLC", Size: 2048, LineSize: 64, Assoc: 4, Policy: cache.LRU},
		)
		if err != nil {
			return nil, err
		}
		eng, err := march.NewEngine(march.Config{Hierarchy: h, Noise: march.DefaultNoise(seed)})
		if err != nil {
			return nil, err
		}
		return instrument.New(net, eng, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime(), Seed: seed})
	}
}

// classImages makes a pool of jittered images whose sparsity depends on
// the class, mirroring the per-category signal of the paper's datasets.
func classImages(class, n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for k := 0; k < n; k++ {
		img := tensor.New(12, 12, 1)
		density := 0.15 + 0.25*float64(class)
		for i := range img.Data {
			if rng.Float64() < density {
				img.Data[i] = 0.3 + rng.Float32()*0.7
			}
		}
		out[k] = img
	}
	return out
}

func testPools(classes, imgs int) map[int][]*tensor.Tensor {
	pools := map[int][]*tensor.Tensor{}
	for c := 0; c < classes; c++ {
		pools[c] = classImages(c, imgs, int64(100+c))
	}
	return pools
}

func newPipeline(tb testing.TB, evCfg core.Config, cfg Config) *Pipeline {
	tb.Helper()
	ev, err := core.NewEvaluator(evCfg)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := New(ev, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	p := newPipeline(t, core.Config{}, Config{})
	if p.Config().Workers <= 0 || p.Config().ShardRuns != DefaultShardRuns || p.Config().RootSeed != 1 {
		t.Fatalf("defaults = %+v", p.Config())
	}
	if _, err := p.Collect(context.Background(), nil, testPools(2, 3)); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// TestDeterminismAcrossWorkerCounts is the pipeline's core guarantee:
// pooled and sequential executions of the same campaign produce identical
// reports — same alarms, bit-for-bit equal t statistics and p-values.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	net := testNet(t)
	pools := testPools(3, 4)
	evCfg := core.Config{RunsPerClass: 24, WarmupRuns: 1, HolmCorrection: true}

	run := func(workers int) *core.Report {
		p := newPipeline(t, evCfg, Config{Workers: workers, RootSeed: 7, ShardRuns: 8})
		rep, err := p.Evaluate(context.Background(), "determinism", testFactory(t, net), pools)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	par := run(8)

	if len(seq.Tests) != len(par.Tests) {
		t.Fatalf("test counts differ: %d vs %d", len(seq.Tests), len(par.Tests))
	}
	for i := range seq.Tests {
		a, b := seq.Tests[i], par.Tests[i]
		if a.Event != b.Event || a.ClassA != b.ClassA || a.ClassB != b.ClassB {
			t.Fatalf("test %d identity differs: %+v vs %+v", i, a, b)
		}
		if a.Result.T != b.Result.T || a.Result.P != b.Result.P || a.EffectSize != b.EffectSize || a.HolmReject != b.HolmReject {
			t.Fatalf("test %d results differ:\n  workers=1: %+v\n  workers=8: %+v", i, a, b)
		}
	}
	if len(seq.Alarms) != len(par.Alarms) {
		t.Fatalf("alarm counts differ: %d vs %d", len(seq.Alarms), len(par.Alarms))
	}
	for i := range seq.Alarms {
		if seq.Alarms[i] != par.Alarms[i] {
			t.Fatalf("alarm %d differs: %+v vs %+v", i, seq.Alarms[i], par.Alarms[i])
		}
	}
	// The raw distributions must match sample-for-sample too.
	for _, e := range seq.Dists.Events {
		for _, cls := range seq.Dists.Classes {
			sa, sb := seq.Dists.Get(e, cls), par.Dists.Get(e, cls)
			if len(sa) != len(sb) {
				t.Fatalf("%s class %d: %d vs %d samples", e, cls, len(sa), len(sb))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%s class %d run %d: %v vs %v", e, cls, i, sa[i], sb[i])
				}
			}
		}
	}
}

// TestDeterminismRepeatedRun guards against hidden global state: two
// identical pooled runs must agree with each other.
func TestDeterminismRepeatedRun(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	evCfg := core.Config{RunsPerClass: 10, WarmupRuns: 1}
	run := func() *core.Report {
		p := newPipeline(t, evCfg, Config{Workers: 4, RootSeed: 3, ShardRuns: 5})
		rep, err := p.Evaluate(context.Background(), "repeat", testFactory(t, net), pools)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Tests {
		if a.Tests[i].Result != b.Tests[i].Result {
			t.Fatalf("repeated run diverged at test %d: %+v vs %+v", i, a.Tests[i].Result, b.Tests[i].Result)
		}
	}
}

// TestRootSeedChangesObservations: different root seeds must reseed the
// noise streams (otherwise -seed on the CLI would be a no-op).
func TestRootSeedChangesObservations(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	evCfg := core.Config{RunsPerClass: 8, WarmupRuns: 1}
	collect := func(seed int64) *core.Distributions {
		p := newPipeline(t, evCfg, Config{Workers: 2, RootSeed: seed})
		d, err := p.Collect(context.Background(), testFactory(t, net), pools)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := collect(1), collect(2)
	same := true
	for _, e := range a.Events {
		for _, cls := range a.Classes {
			sa, sb := a.Get(e, cls), b.Get(e, cls)
			for i := range sa {
				if sa[i] != sb[i] {
					same = false
				}
			}
		}
	}
	if same {
		t.Fatal("root seed had no effect on observations")
	}
}

// TestConcurrentCollect exercises the pool under contention; run with
// -race to verify no engine or distribution state is shared between
// workers.
func TestConcurrentCollect(t *testing.T) {
	net := testNet(t)
	pools := testPools(4, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 12, WarmupRuns: 1}, Config{Workers: 8, RootSeed: 11, ShardRuns: 3})
	d, err := p.Collect(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Events {
		for _, cls := range d.Classes {
			samples := d.Get(e, cls)
			if len(samples) != 12 {
				t.Fatalf("%s class %d: %d samples, want 12", e, cls, len(samples))
			}
			for i, v := range samples {
				if math.IsNaN(v) {
					t.Fatalf("%s class %d run %d: NaN sample", e, cls, i)
				}
			}
		}
	}
	if _, err := p.Test(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

// TestCancellation: a cancelled context must abort collection promptly
// with the context's error.
func TestCancellation(t *testing.T) {
	net := testNet(t)
	pools := testPools(4, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 400, WarmupRuns: 0}, Config{Workers: 2, RootSeed: 5, ShardRuns: 100})

	// Already-cancelled context: immediate error, no work.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	var built atomic.Int32
	counting := func(seed int64) (core.Target, error) {
		built.Add(1)
		return testFactory(t, net)(seed)
	}
	if _, err := p.Collect(pre, counting, pools); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled collect returned %v, want context.Canceled", err)
	}
	if built.Load() != 0 {
		t.Fatalf("pre-cancelled collect built %d targets", built.Load())
	}

	// Mid-flight cancellation: cancel once the first target exists.
	ctx, cancel := context.WithCancel(context.Background())
	armed := make(chan struct{})
	var once atomic.Bool
	factory := func(seed int64) (core.Target, error) {
		if once.CompareAndSwap(false, true) {
			close(armed)
		}
		return testFactory(t, net)(seed)
	}
	go func() {
		<-armed
		cancel()
	}()
	start := time.Now()
	_, err := p.Collect(ctx, factory, pools)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled collect returned %v, want context.Canceled", err)
	}
	// 4 classes × 400 runs of this model take far longer than a second;
	// returning quickly shows the workers saw the cancellation mid-shard.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestFactoryErrorPropagates: a failing target factory must surface its
// error and stop the pool.
func TestFactoryErrorPropagates(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 0}, Config{Workers: 4, RootSeed: 1, ShardRuns: 2})
	boom := fmt.Errorf("factory exploded")
	var calls atomic.Int32
	factory := func(seed int64) (core.Target, error) {
		if calls.Add(1) == 3 {
			return nil, boom
		}
		return testFactory(t, net)(seed)
	}
	if _, err := p.Collect(context.Background(), factory, pools); !errors.Is(err, boom) {
		t.Fatalf("collect returned %v, want wrapped factory error", err)
	}
}

// TestPipelineTestMatchesSequential: the batched test stage must agree
// with core.Evaluator.Test on the same distributions.
func TestPipelineTestMatchesSequential(t *testing.T) {
	net := testNet(t)
	pools := testPools(3, 4)
	ev, err := core.NewEvaluator(core.Config{RunsPerClass: 16, WarmupRuns: 1, HolmCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(ev, Config{Workers: 4, RootSeed: 9, TestBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Collect(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ev.Test(d)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Test(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("test counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("test %d differs:\n  sequential: %+v\n  batched:    %+v", i, seq[i], par[i])
		}
	}
}

// BenchmarkCollect compares sequential and pooled collection on the
// acceptance workload (4 classes × 200 traces). On a multi-core machine
// workers=GOMAXPROCS should collect ≥2× faster than workers=1 while (see
// TestDeterminismAcrossWorkerCounts) producing an identical report.
func BenchmarkCollect(b *testing.B) {
	net := testNet(b)
	pools := testPools(4, 6)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := newPipeline(b, core.Config{RunsPerClass: 200, WarmupRuns: 2}, Config{Workers: workers, RootSeed: 7})
			factory := testFactory(b, net)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Collect(context.Background(), factory, pools); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
