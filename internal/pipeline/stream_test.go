package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// classFactory adapts the test TargetFactory to the class-aware form
// Stream takes.
func classFactory(tb testing.TB, f TargetFactory) ClassTargetFactory {
	tb.Helper()
	return func(_ int, seed int64) (core.Target, error) { return f(seed) }
}

// streamKey flattens one consumed window into a comparable record.
type streamKey struct {
	Shard, Class, Start int
	Obs                 []float64
}

// collectStream runs Stream over the standard small campaign and
// returns the consumed window sequence.
func collectStream(t *testing.T, workers int) []streamKey {
	t.Helper()
	p := newPipeline(t, core.Config{RunsPerClass: 12, WarmupRuns: 1, Batch: 2}, Config{Workers: workers, ShardRuns: 4})
	pools := testPools(3, 3)
	events := p.ev.Config().Events
	var seq []streamKey
	stopped, err := p.Stream(context.Background(), classFactory(t, testFactory(t, testNet(t))), pools, func(w core.Window) error {
		k := streamKey{Shard: w.Shard, Class: w.Class, Start: w.Start}
		for _, prof := range w.Profiles {
			k.Obs = append(k.Obs, prof.Vector(events)...)
		}
		seq = append(seq, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stopped {
		t.Fatal("run-to-exhaustion stream reported stopped")
	}
	return seq
}

// TestStreamDeterministicOrderAcrossWorkers: the consumed window
// sequence — identity, order and observations — must be bit-identical
// at any worker count, and must follow the (start, class) stream order
// with windows at the measured-batch cadence.
func TestStreamDeterministicOrderAcrossWorkers(t *testing.T) {
	ref := collectStream(t, 1)

	// Shard plan order is (class, start); stream order is (start, class);
	// batch 2 → 2 windows per shard. Recompute the expected window
	// identities from the plan itself.
	var wantID []streamKey
	p := newPipeline(t, core.Config{RunsPerClass: 12, WarmupRuns: 1, Batch: 2}, Config{Workers: 1, ShardRuns: 4})
	shards, err := p.planShards(testPools(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range streamOrder(shards) {
		sh := shards[idx]
		for run := sh.Start; run < sh.Start+sh.Count; run += 2 {
			wantID = append(wantID, streamKey{Shard: sh.Index, Class: sh.Class, Start: run})
		}
	}
	if len(ref) != len(wantID) {
		t.Fatalf("%d windows consumed, want %d", len(ref), len(wantID))
	}
	for i, k := range ref {
		if k.Shard != wantID[i].Shard || k.Class != wantID[i].Class || k.Start != wantID[i].Start {
			t.Fatalf("window %d identity (%d,%d,%d), want (%d,%d,%d)",
				i, k.Shard, k.Class, k.Start, wantID[i].Shard, wantID[i].Class, wantID[i].Start)
		}
	}

	for _, workers := range []int{2, 8} {
		got := collectStream(t, workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: stream diverges from workers=1", workers)
		}
	}
}

// TestStreamMatchesBatchCollection: the streamed observations, placed
// at their (class, run) offsets, must equal CollectProfilesByClass's
// merge exactly — the stream is a re-ordering of the same campaign, not
// a different one.
func TestStreamMatchesBatchCollection(t *testing.T) {
	evCfg := core.Config{RunsPerClass: 12, WarmupRuns: 1, Batch: 2}
	cfg := Config{Workers: 2, ShardRuns: 4}
	pools := testPools(3, 3)
	net := testNet(t)

	p := newPipeline(t, evCfg, cfg)
	events := p.ev.Config().Events
	streamed := map[int][][]float64{}
	_, err := p.Stream(context.Background(), classFactory(t, testFactory(t, net)), pools, func(w core.Window) error {
		if streamed[w.Class] == nil {
			streamed[w.Class] = make([][]float64, p.ev.Config().RunsPerClass)
		}
		for i, prof := range w.Profiles {
			streamed[w.Class][w.Start+i] = prof.Vector(events)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	p2 := newPipeline(t, evCfg, cfg)
	byClass, err := p2.CollectProfiles(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	batch := map[int][][]float64{}
	for cls, profs := range byClass {
		batch[cls] = make([][]float64, len(profs))
		for i, prof := range profs {
			batch[cls][i] = prof.Vector(events)
		}
	}
	if !reflect.DeepEqual(streamed, batch) {
		t.Fatal("streamed observations diverge from batch collection")
	}
}

// TestStreamEarlyStop: ErrStop from the consumer ends the campaign
// without error, reports stopped=true, and does not deliver further
// windows.
func TestStreamEarlyStop(t *testing.T) {
	p := newPipeline(t, core.Config{RunsPerClass: 12, WarmupRuns: 1, Batch: 2}, Config{Workers: 4, ShardRuns: 4})
	consumed := 0
	stopped, err := p.Stream(context.Background(), classFactory(t, testFactory(t, testNet(t))), testPools(3, 3), func(core.Window) error {
		consumed++
		if consumed == 3 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("ErrStop did not report stopped")
	}
	if consumed != 3 {
		t.Fatalf("consumed %d windows after stop, want 3", consumed)
	}
}

// TestStreamConsumerErrorAborts: a non-sentinel consumer error aborts
// the campaign and is returned verbatim.
func TestStreamConsumerErrorAborts(t *testing.T) {
	p := newPipeline(t, core.Config{RunsPerClass: 8, WarmupRuns: 1, Batch: 2}, Config{Workers: 2, ShardRuns: 4})
	boom := fmt.Errorf("scoring failed")
	stopped, err := p.Stream(context.Background(), classFactory(t, testFactory(t, testNet(t))), testPools(2, 3), func(core.Window) error {
		return boom
	})
	if stopped {
		t.Fatal("consumer error reported stopped")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the consumer's error", err)
	}
}

// TestStreamCancellationTyped: an external context cancellation must
// surface as the typed *Cancelled error — distinguishable at the CLI
// layer from a campaign that simply ran out of budget — while still
// satisfying errors.Is(err, context.Canceled).
func TestStreamCancellationTyped(t *testing.T) {
	p := newPipeline(t, core.Config{RunsPerClass: 20, WarmupRuns: 1, Batch: 2}, Config{Workers: 2, ShardRuns: 4})
	ctx, cancel := context.WithCancel(context.Background())
	consumed := 0
	_, err := p.Stream(ctx, classFactory(t, testFactory(t, testNet(t))), testPools(2, 3), func(core.Window) error {
		consumed++
		if consumed == 2 {
			cancel()
		}
		return nil
	})
	var c *Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("err = %v (%T), want *Cancelled", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("typed error does not unwrap to context.Canceled: %v", err)
	}
	if c.Stage == "" {
		t.Fatal("Cancelled.Stage empty")
	}
}
