package pipeline

// Allocation gate for the stream seam: window emission runs once per
// measured batch for the whole campaign, and in steady state — the
// streamDepth buffers allocated in the producer prologue circulating
// through the free ring — it must not allocate.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/raceinfo"
)

// emitFixture builds a shardStream mid-campaign: recycled buffers in
// the free ring and a measured window ready to emit.
func emitFixture(batch int) (*shardStream, []march.Event, core.Window) {
	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	ss := &shardStream{
		win:  make(chan core.Window, streamDepth),
		free: make(chan []hpc.Profile, streamDepth),
	}
	for d := 0; d < streamDepth; d++ {
		buf := make([]hpc.Profile, batch)
		for i := range buf {
			buf[i] = make(hpc.Profile, len(events))
		}
		ss.free <- buf
	}
	scratch := make([]hpc.Profile, batch)
	for i := range scratch {
		scratch[i] = hpc.Profile{march.EvCacheMisses: float64(i), march.EvBranches: float64(2 * i)}
	}
	return ss, events, core.Window{Shard: 0, Class: 1, Start: 0, Profiles: scratch}
}

func TestStreamEmitZeroAllocSteadyState(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	ss, events, w := emitFixture(8)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := ss.emit(ctx, events, w); err != nil {
			t.Fatal(err)
		}
		out := <-ss.win
		ss.free <- out.Profiles[:cap(out.Profiles)]
	}); allocs != 0 {
		t.Fatalf("stream emit steady state allocates %v/op, want 0", allocs)
	}
}

func BenchmarkStreamEmit(b *testing.B) {
	ss, events, w := emitFixture(8)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ss.emit(ctx, events, w); err != nil {
			b.Fatal(err)
		}
		out := <-ss.win
		ss.free <- out.Profiles[:cap(out.Profiles)]
	}
}
