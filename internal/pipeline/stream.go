package pipeline

// The Stream stage: ordered, bounded-memory delivery of profile windows
// to an incremental consumer. Collection still fans out over the worker
// pool — same shard plan, same fresh per-shard targets, same derived
// seeds as Collect — but instead of buffering whole campaigns, each
// shard's measured batches flow through a small per-shard channel ring
// and are handed to the consumer in one deterministic global order:
//
//	shards ── produce (N workers, emit per measured batch)
//	              │ per-shard ring, streamDepth windows
//	              ▼
//	         merge (caller goroutine, stream order) ── consume
//
// The stream order sorts shards by (start, class) — classes interleave
// every ShardRuns runs, so a sequential tester sees both sides of every
// class pair grow together instead of one class's full budget first.
// Window boundaries are the measured batches (Config.Batch runs), so
// the consumed window sequence depends only on the plan and the batch
// size: workers=1 and workers=N deliver bit-identical streams. Memory
// is bounded by workers × streamDepth × Batch profiles, independent of
// the trace budget.
//
// The consumer may end the campaign early by returning ErrStop — that
// cancels the in-flight producers and Stream reports stopped=true — and
// an external context cancellation surfaces as the typed Cancelled
// error, so callers can tell an aborted campaign from a completed one.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrStop is the sentinel a stream consumer returns to end the campaign
// early. Stream cancels the remaining producers, reports stopped=true
// and returns a nil error.
var ErrStop = errors.New("pipeline: stream consumer stopped")

// Cancelled is the typed error for a campaign aborted by context
// cancellation, as opposed to one that ran its budget to exhaustion —
// the CLI layer distinguishes the two when deciding what a missing
// detection means. It wraps the underlying context error, so
// errors.Is(err, context.Canceled) still works.
type Cancelled struct {
	// Stage names the pipeline stage that was interrupted.
	Stage string
	// Err is the underlying context error.
	Err error
}

// Error formats the cancellation with its stage.
func (c *Cancelled) Error() string { return fmt.Sprintf("pipeline: %s cancelled: %v", c.Stage, c.Err) }

// Unwrap exposes the underlying context error to errors.Is/As.
func (c *Cancelled) Unwrap() error { return c.Err }

// wrapCancel converts a context error into the typed Cancelled error
// and passes every other error through.
func wrapCancel(stage string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Cancelled{Stage: stage, Err: err}
	}
	return err
}

// streamDepth is the number of windows buffered per shard stream: the
// producer may run at most this many measured batches ahead of the
// merger. 2 keeps producers busy while the merger consumes without
// growing memory with the budget.
const streamDepth = 2

// shardStream is one shard's window ring: produced windows flow through
// win, consumed window buffers return through free for reuse. Both
// channels hold streamDepth entries, so neither side can run away.
type shardStream struct {
	win  chan core.Window
	free chan []hpc.Profile
}

// emit hands one measured batch to the merger: it takes a recycled
// buffer, copies the window's observations into it (the core scratch
// must not escape the producer), and sends the copy. Cancellation is
// honored on both the buffer wait and the send, so a stopped campaign
// never deadlocks a producer.
//
//detlint:allocpath — the per-window emission hot path recycles the
// streamDepth preallocated buffers; nothing on the steady-state path
// may allocate (BenchmarkStreamEmit pins 0 allocs/op).
func (ss *shardStream) emit(ctx context.Context, events []march.Event, w core.Window) error {
	var buf []hpc.Profile
	select {
	case buf = <-ss.free:
	case <-ctx.Done():
		return ctx.Err()
	}
	for i, p := range w.Profiles {
		dst := buf[i]
		for _, e := range events {
			dst[e] = p.Get(e)
		}
	}
	w.Profiles = buf[:len(w.Profiles)]
	select {
	case ss.win <- w:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// produceShard runs one shard's collection and emits its windows into
// the shard's stream. The win channel is always closed on return, so
// the merger can detect shard completion (or abort) without extra
// signalling.
func (p *Pipeline) produceShard(ctx context.Context, w int, ss *shardStream, factory ClassTargetFactory, sh core.Shard) error {
	defer close(ss.win)
	sp := p.cfg.Obs.ShardSpan(w, sh.Index, sh.Class)
	defer sp.End()
	target, err := factory(sh.Class, sh.Seed)
	if err != nil {
		return fmt.Errorf("pipeline: shard %d target: %w", sh.Index, err)
	}
	cfg := p.ev.Config()
	for d := 0; d < streamDepth; d++ {
		buf := make([]hpc.Profile, cfg.Batch)
		for i := range buf {
			buf[i] = make(hpc.Profile, len(cfg.Events))
		}
		ss.free <- buf
	}
	return p.ev.CollectShardEmit(ctx, target, sh, func(w core.Window) error {
		return ss.emit(ctx, cfg.Events, w)
	})
}

// streamOrder returns shard indices in the global delivery order:
// ascending (start, class). Interleaving classes at every shard
// boundary is what lets an incremental tester compare class pairs long
// before the budget is exhausted.
func streamOrder(shards []core.Shard) []int {
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := shards[order[a]], shards[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.Class < sb.Class
	})
	return order
}

// Stream runs the campaign's collection as an ordered window stream:
// shards execute concurrently over the worker pool while consume is
// called — on the caller's goroutine — once per measured batch, in the
// deterministic stream order. consume may return ErrStop to end the
// campaign early (Stream returns stopped=true, nil) or any other error
// to abort it. The windows passed to consume alias recycled buffers;
// the consumer must copy anything it keeps. An external cancellation
// surfaces as *Cancelled.
func (p *Pipeline) Stream(ctx context.Context, factory ClassTargetFactory, perClass map[int][]*tensor.Tensor, consume func(core.Window) error) (stopped bool, err error) {
	if factory == nil {
		return false, fmt.Errorf("pipeline: nil target factory")
	}
	if consume == nil {
		return false, fmt.Errorf("pipeline: nil stream consumer")
	}
	shards, err := p.planShards(perClass)
	if err != nil {
		return false, err
	}
	p.cfg.Obs.Add(obs.CShardsPlanned, int64(len(shards)))
	p.cfg.Obs.SetPhase("stream")
	stage := p.cfg.Obs.Span("pipeline", "stream")
	defer stage.End()
	order := streamOrder(shards)
	streams := make([]*shardStream, len(shards))
	for i := range streams {
		streams[i] = &shardStream{
			win:  make(chan core.Window, streamDepth),
			free: make(chan []hpc.Profile, streamDepth),
		}
	}

	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Producers are fed to the pool in stream order, so the shards the
	// merger is waiting on are always the ones being executed: the
	// merger drains shard k completely before k+1, and jobs are handed
	// out in exactly that order — no worker can be parked on a shard
	// the merger won't reach.
	collectErr := make(chan error, 1)
	go func() {
		err := p.forEach(streamCtx, len(shards), func(ctx context.Context, w, i int) error {
			idx := order[i]
			if err := p.produceShard(ctx, w, streams[idx], factory, shards[idx]); err != nil {
				return err
			}
			p.cfg.Obs.Add(obs.CShardsDone, 1)
			return nil
		})
		cancel() // wake the merger if producers stopped without closing every stream
		collectErr <- err
	}()

	var consumeErr error
merge:
	for _, idx := range order {
		ss := streams[idx]
		for {
			var w core.Window
			var ok bool
			select {
			case w, ok = <-ss.win:
			case <-streamCtx.Done():
				// The context closes on failure or after every producer
				// returned; completed shards' remaining windows are
				// already buffered, so a non-blocking drain loses
				// nothing — an empty, unclosed stream means its
				// producer never ran.
				select {
				case w, ok = <-ss.win:
				default:
					break merge
				}
			}
			if !ok {
				continue merge
			}
			if cerr := consume(w); cerr != nil {
				if errors.Is(cerr, ErrStop) {
					stopped = true
				} else {
					consumeErr = cerr
				}
				cancel()
				break merge
			}
			ss.free <- w.Profiles[:cap(w.Profiles)]
		}
	}

	cErr := <-collectErr
	switch {
	case consumeErr != nil:
		return false, consumeErr
	case stopped:
		return true, nil
	case cErr != nil:
		return false, wrapCancel("stream collection", cErr)
	default:
		return false, nil
	}
}
