package pipeline

// The dispatcher seam's own guarantee: executing the wire plans through
// Executor/InProcess and merging the encoded payloads must reproduce the
// in-process collection and reports exactly — every byte that will later
// cross a process boundary is pinned here first.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// classAgnostic adapts a TargetFactory for the class-aware executor, the
// same adaptation CollectProfiles applies.
func classAgnostic(f TargetFactory) ClassTargetFactory {
	return func(_ int, seed int64) (core.Target, error) { return f(seed) }
}

func TestExecutorMatchesCollectProfiles(t *testing.T) {
	net := testNet(t)
	pools := testPools(3, 4)
	evCfg := core.Config{RunsPerClass: 18, WarmupRuns: 1}
	p := newPipeline(t, evCfg, Config{Workers: 2, RootSeed: 9, ShardRuns: 6})

	want, err := p.CollectProfiles(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}

	exec, err := p.Executor(classAgnostic(testFactory(t, net)), pools)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := p.WirePlans(pools)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3*3 { // 18 runs / 6 shard runs = 3 shards per class
		t.Fatalf("planned %d shards, want 9", len(plans))
	}
	// Execute in deliberately scrambled order: the merge must be keyed by
	// the plan, never by completion order.
	payloads := make([][]byte, len(plans))
	for i := len(plans) - 1; i >= 0; i-- {
		payloads[i], err = exec.ExecuteEncoded(context.Background(), plans[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.MergeEncoded(plans, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wire-dispatched collection differs from in-process collection")
	}
}

func TestReportFromProfilesMatchesEvaluate(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	evCfg := core.Config{RunsPerClass: 12, WarmupRuns: 1, HolmCorrection: true}

	p := newPipeline(t, evCfg, Config{Workers: 2, RootSeed: 11, ShardRuns: 4})
	want, err := p.Evaluate(context.Background(), "fabric", testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}

	q := newPipeline(t, evCfg, Config{Workers: 2, RootSeed: 11, ShardRuns: 4})
	byClass, err := q.CollectProfiles(context.Background(), testFactory(t, net), pools)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.ReportFromProfiles(context.Background(), "fabric", byClass)
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("profile-transposed report differs from direct evaluation:\n%s\n%s", gotJSON, wantJSON)
	}
}

func TestExecutorValidatesPlans(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 10, WarmupRuns: 1}, Config{Workers: 1, RootSeed: 3})
	exec, err := p.Executor(classAgnostic(testFactory(t, net)), pools)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Plan{
		{Index: 0, Class: 99, Start: 0, Count: 5, Seed: 1}, // unknown class
		{Index: 1, Class: 0, Start: 8, Count: 5, Seed: 1},  // runs out of range
		{Index: 2, Class: 0, Start: -1, Count: 2, Seed: 1}, // negative start
		{Index: 3, Class: 0, Start: 0, Count: 0, Seed: 1},  // empty shard
	}
	for _, plan := range cases {
		if _, err := exec.Execute(context.Background(), plan); err == nil {
			t.Fatalf("invalid plan %+v executed silently", plan)
		}
	}
}

func TestInProcessDispatcher(t *testing.T) {
	net := testNet(t)
	pools := testPools(2, 3)
	p := newPipeline(t, core.Config{RunsPerClass: 8, WarmupRuns: 1}, Config{Workers: 1, RootSeed: 5, ShardRuns: 4})
	exec, err := p.Executor(classAgnostic(testFactory(t, net)), pools)
	if err != nil {
		t.Fatal(err)
	}
	d := InProcess(exec, 0)
	if d.Procs() != 1 {
		t.Fatalf("Procs() = %d, want clamped 1", d.Procs())
	}
	plans, err := p.WirePlans(pools)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Dispatch(context.Background(), plans[0])
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery of the same plan must reproduce identical bytes:
	// shard execution is a pure function of the plan.
	b, err := d.Dispatch(context.Background(), plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("duplicate dispatch of one plan produced different bytes")
	}
	profs, err := DecodeProfiles(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != plans[0].Count {
		t.Fatalf("payload has %d profiles, want %d", len(profs), plans[0].Count)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
