package pipeline

// Wire encoding for the distributed audit fabric: shard plans and shard
// results serialized canonically, so a coordinator can dispatch the
// already-self-contained shard units to worker *processes* and merge the
// returned bytes with the same determinism guarantee the in-process
// pipeline gives. Two properties carry the whole design:
//
//   - a Plan is pool-free: (class, start, count, seed) plus the campaign
//     configuration the worker was initialized with fully determine the
//     shard's observations, so no image data ever crosses the wire;
//   - profiles are encoded canonically (JSON objects keyed by event name —
//     encoding/json sorts map keys — and float64 values printed in Go's
//     shortest round-trip form), so encode∘decode∘encode is the identity
//     on bytes and a result digest is well-defined.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/tensor"
)

// Plan is the wire form of one shard: the self-contained unit of
// distribution. It omits the image pool — workers rebuild pools from the
// campaign spec they were initialized with — and carries everything else
// core.Shard does, so Plan(shard).Shard(pool) round-trips exactly.
type Plan struct {
	// Index is the shard's position in the deterministic plan order; the
	// coordinator merges results by it, never by arrival order.
	Index int `json:"index"`
	// Class is the category label whose runs this shard measures.
	Class int `json:"class"`
	// Start is the first measured run index within the class.
	Start int `json:"start"`
	// Count is the number of measured runs.
	Count int `json:"count"`
	// Seed is the shard's derived RNG seed; the worker builds a fresh
	// target from it, so observations are identical in any process.
	Seed int64 `json:"seed"`
}

// PlanOf strips a planned shard to its wire form.
func PlanOf(sh core.Shard) Plan {
	return Plan{Index: sh.Index, Class: sh.Class, Start: sh.Start, Count: sh.Count, Seed: sh.Seed}
}

// Shard rehydrates the plan with a class pool into an executable shard.
func (p Plan) Shard(pool []*tensor.Tensor) core.Shard {
	return core.Shard{Index: p.Index, Class: p.Class, Pool: pool, Start: p.Start, Count: p.Count, Seed: p.Seed}
}

// EncodeProfiles serializes per-run profiles into the canonical wire
// payload: a JSON array of objects keyed by event name. The encoding is
// byte-deterministic (sorted keys, shortest round-trip floats), so equal
// observations always produce equal payloads and digests.
func EncodeProfiles(profs []hpc.Profile) ([]byte, error) {
	out := make([]map[string]float64, len(profs))
	for i, p := range profs {
		m := make(map[string]float64, len(p))
		for e, v := range p {
			m[e.String()] = v
		}
		out[i] = m
	}
	return json.Marshal(out)
}

// DecodeProfiles parses a wire payload back into per-run profiles.
// Unknown event names fail loudly: silently dropping a counter would
// corrupt the merged feature vectors.
func DecodeProfiles(payload []byte) ([]hpc.Profile, error) {
	var raw []map[string]float64
	if err := json.Unmarshal(payload, &raw); err != nil {
		return nil, fmt.Errorf("pipeline: decoding shard payload: %w", err)
	}
	profs := make([]hpc.Profile, len(raw))
	for i, m := range raw {
		p := make(hpc.Profile, len(m))
		for name, v := range m {
			e, err := march.ParseEvent(name)
			if err != nil {
				return nil, fmt.Errorf("pipeline: shard payload run %d: %w", i, err)
			}
			p[e] = v
		}
		profs[i] = p
	}
	return profs, nil
}

// PayloadDigest is the canonical digest of an encoded shard result
// (sha256 hex) — what the completion journal records and verifies.
func PayloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// WirePlans plans the campaign's shards (exactly as Collect and
// CollectProfilesByClass do — all paths share planShards) and returns
// their wire form, in plan order.
func (p *Pipeline) WirePlans(perClass map[int][]*tensor.Tensor) ([]Plan, error) {
	shards, err := p.planShards(perClass)
	if err != nil {
		return nil, err
	}
	plans := make([]Plan, len(shards))
	for i, sh := range shards {
		plans[i] = PlanOf(sh)
	}
	return plans, nil
}

// placeProfiles is the one profile-placement routine of the package: a
// shard's per-run profiles land at their (class, start) offsets in
// byClass, independent of completion order. Both the in-process merge
// (CollectProfilesByClass) and the fabric merge (MergeEncoded) go
// through it, so the two substrates cannot drift in merge semantics.
func (p *Pipeline) placeProfiles(byClass map[int][]hpc.Profile, pl Plan, profs []hpc.Profile) error {
	runs := p.ev.Config().RunsPerClass
	if len(profs) != pl.Count {
		return fmt.Errorf("pipeline: shard %d has %d profiles, want %d", pl.Index, len(profs), pl.Count)
	}
	if pl.Start+pl.Count > runs {
		return fmt.Errorf("pipeline: shard %d runs [%d,%d) exceed %d runs per class",
			pl.Index, pl.Start, pl.Start+pl.Count, runs)
	}
	if byClass[pl.Class] == nil {
		byClass[pl.Class] = make([]hpc.Profile, runs)
	}
	copy(byClass[pl.Class][pl.Start:pl.Start+pl.Count], profs)
	return nil
}

// MergeEncoded decodes per-shard result payloads (payloads[i] belongs to
// plans[i]) and merges them into the labelled per-run profiles,
// byClass[class][run] — the exact placement CollectProfilesByClass
// performs (both call placeProfiles) and therefore independent of
// completion order.
func (p *Pipeline) MergeEncoded(plans []Plan, payloads [][]byte) (map[int][]hpc.Profile, error) {
	if len(plans) != len(payloads) {
		return nil, fmt.Errorf("pipeline: %d plans but %d payloads", len(plans), len(payloads))
	}
	byClass := map[int][]hpc.Profile{}
	for i, pl := range plans {
		if payloads[i] == nil {
			return nil, fmt.Errorf("pipeline: missing payload for shard %d", pl.Index)
		}
		profs, err := DecodeProfiles(payloads[i])
		if err != nil {
			return nil, fmt.Errorf("pipeline: shard %d: %w", pl.Index, err)
		}
		if err := p.placeProfiles(byClass, pl, profs); err != nil {
			return nil, err
		}
	}
	return byClass, nil
}

// ReportFromProfiles transposes labelled per-run profiles into per-event
// distributions and runs the batched test stage — the report-building
// tail of Evaluate for campaigns whose collection ran on the distributed
// fabric. The transposition is sample-exact (d.Samples[e][class][run] =
// profile[run][e], the same values CollectShard writes directly), so a
// fabric campaign's report is byte-identical to the in-process one.
func (p *Pipeline) ReportFromProfiles(ctx context.Context, name string, byClass map[int][]hpc.Profile) (*core.Report, error) {
	cfg := p.ev.Config()
	classes := make([]int, 0, len(byClass))
	for cls := range byClass {
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	d := &core.Distributions{
		Events:  append([]march.Event(nil), cfg.Events...),
		Classes: classes,
		Samples: map[march.Event]map[int][]float64{},
	}
	for _, e := range cfg.Events {
		d.Samples[e] = map[int][]float64{}
		for _, cls := range classes {
			d.Samples[e][cls] = make([]float64, cfg.RunsPerClass)
		}
	}
	for _, cls := range classes {
		profs := byClass[cls]
		if len(profs) != cfg.RunsPerClass {
			return nil, fmt.Errorf("pipeline: class %d has %d profiles, want %d", cls, len(profs), cfg.RunsPerClass)
		}
		for r, prof := range profs {
			if prof == nil {
				return nil, fmt.Errorf("pipeline: class %d run %d missing", cls, r)
			}
			for _, e := range cfg.Events {
				d.Samples[e][cls][r] = prof.Get(e)
			}
		}
	}
	tests, err := p.Test(ctx, d)
	if err != nil {
		return nil, err
	}
	return p.ev.BuildReport(name, d, tests), nil
}
