package pipeline

// The Dispatcher seam of the distributed audit fabric: a coordinator
// hands wire plans to a Dispatcher and gets back canonical result
// payloads, without caring whether the shard ran on a goroutine in this
// process (InProcess, below) or on a shardworker subprocess
// (internal/fabric.ProcPool). Both implementations execute the exact
// same Executor logic, so swapping one for the other cannot change a
// single observed byte.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Dispatcher executes shard plans — possibly in another process — and
// returns each plan's canonical encoded result payload (EncodeProfiles
// form). Dispatch blocks until the result is available; implementations
// must be safe for concurrent Dispatch calls up to Procs().
type Dispatcher interface {
	Dispatch(ctx context.Context, plan Plan) ([]byte, error)
	// Procs is the dispatcher's concurrency capacity: how many Dispatch
	// calls may usefully be in flight at once.
	Procs() int
	Close() error
}

// Executor runs shard plans locally — the worker side of every
// dispatcher. It owns the campaign-constant state (evaluator
// configuration, class-aware target factory, per-class input pools) and
// rehydrates each pool-free plan into an executable shard.
type Executor struct {
	ev      *core.Evaluator
	factory ClassTargetFactory
	pools   map[int][]*tensor.Tensor
}

// NewExecutor builds a plan executor. The factory and pools must satisfy
// the same contracts as CollectProfilesByClass: every source of
// randomness in a target derives from the shard seed alone, and pools
// are keyed by class label.
func NewExecutor(ev *core.Evaluator, factory ClassTargetFactory, pools map[int][]*tensor.Tensor) (*Executor, error) {
	if ev == nil {
		return nil, fmt.Errorf("pipeline: nil evaluator")
	}
	if factory == nil {
		return nil, fmt.Errorf("pipeline: nil target factory")
	}
	if len(pools) == 0 {
		return nil, fmt.Errorf("pipeline: no class pools")
	}
	return &Executor{ev: ev, factory: factory, pools: pools}, nil
}

// Executor builds a plan executor sharing this pipeline's evaluator.
func (p *Pipeline) Executor(factory ClassTargetFactory, pools map[int][]*tensor.Tensor) (*Executor, error) {
	return NewExecutor(p.ev, factory, pools)
}

// SetObs attaches a telemetry recorder to the executor's evaluator.
// Fabric workers call this through the fabric.obsSettable seam once the
// init frame requests telemetry.
func (e *Executor) SetObs(r *obs.Recorder) { e.ev.SetObs(r) }

// Execute runs one plan and returns its per-run profiles. The plan is
// validated against the executor's campaign configuration first, so a
// coordinator/worker mismatch fails loudly instead of measuring garbage.
func (e *Executor) Execute(ctx context.Context, plan Plan) ([]hpc.Profile, error) {
	pool, ok := e.pools[plan.Class]
	if !ok {
		return nil, fmt.Errorf("pipeline: shard %d names unknown class %d", plan.Index, plan.Class)
	}
	if plan.Count <= 0 || plan.Start < 0 || plan.Start+plan.Count > e.ev.Config().RunsPerClass {
		return nil, fmt.Errorf("pipeline: shard %d runs [%d,%d) outside [0,%d)",
			plan.Index, plan.Start, plan.Start+plan.Count, e.ev.Config().RunsPerClass)
	}
	target, err := e.factory(plan.Class, plan.Seed)
	if err != nil {
		return nil, fmt.Errorf("pipeline: shard %d target: %w", plan.Index, err)
	}
	return e.ev.CollectShardProfiles(ctx, target, plan.Shard(pool))
}

// ExecuteEncoded is Execute followed by the canonical wire encoding —
// what both the in-process dispatcher and the worker protocol send.
func (e *Executor) ExecuteEncoded(ctx context.Context, plan Plan) ([]byte, error) {
	profs, err := e.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	return EncodeProfiles(profs)
}

// inProcess is the Dispatcher that executes plans on the calling
// process. It still round-trips every result through the wire encoding,
// so the in-process and subprocess fabrics exercise identical bytes.
type inProcess struct {
	exec  *Executor
	procs int
}

// InProcess wraps an executor as a Dispatcher with the given concurrency
// capacity (0 → 1). It is the processes=0 reference implementation of
// the fabric and the test double for the subprocess pool.
func InProcess(exec *Executor, procs int) Dispatcher {
	if procs <= 0 {
		procs = 1
	}
	return &inProcess{exec: exec, procs: procs}
}

func (d *inProcess) Dispatch(ctx context.Context, plan Plan) ([]byte, error) {
	return d.exec.ExecuteEncoded(ctx, plan)
}

func (d *inProcess) Procs() int   { return d.procs }
func (d *inProcess) Close() error { return nil }
