package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Shard is one self-contained unit of collection work: a contiguous run
// range of a single category, executed on a cold-reset simulated core.
// Both the sequential Collect path and the concurrent pipeline execute the
// same shard units, so the observation for run r of class c depends only
// on the shard plan — never on which worker (or how many workers) executed
// it.
type Shard struct {
	// Index is the shard's position in the deterministic plan order.
	Index int
	// Class is the category label whose runs this shard measures.
	Class int
	// Pool is the image pool of the class; run r uses Pool[r%len(Pool)].
	Pool []*tensor.Tensor
	// Start is the first measured run index within the class.
	Start int
	// Count is the number of measured runs.
	Count int
	// Seed is the per-shard RNG seed derived from the campaign root seed;
	// concurrent executors build a fresh engine/target from it so noise and
	// jitter streams are reproducible regardless of scheduling.
	Seed int64
}

// splitmix64 is the SplitMix64 finalizer, used to derive well-separated
// per-shard seeds from a root seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps (root seed, class, start run) to a shard seed. The
// derivation is pure, so re-planning the same campaign always reseeds each
// shard identically.
func DeriveSeed(root int64, class, start int) int64 {
	h := splitmix64(uint64(root))
	h = splitmix64(h ^ uint64(int64(class)))
	h = splitmix64(h ^ uint64(int64(start)))
	return int64(h >> 1) // keep it non-negative for rand.NewSource conventions
}

// PlanShards splits a campaign over perClass into deterministic shard
// units in (class, start) order. maxRuns bounds the measured runs per
// shard; 0 puts each class in a single shard. The plan depends only on the
// evaluator configuration, the pools, rootSeed and maxRuns — never on
// worker count — which is what makes parallel runs bit-for-bit
// reproducible.
func (ev *Evaluator) PlanShards(perClass map[int][]*tensor.Tensor, rootSeed int64, maxRuns int) ([]Shard, error) {
	if len(perClass) < 2 {
		return nil, fmt.Errorf("core: need at least 2 categories, got %d", len(perClass))
	}
	classes := make([]int, 0, len(perClass))
	for cls, pool := range perClass {
		if len(pool) == 0 {
			return nil, fmt.Errorf("core: category %d has no images", cls)
		}
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	if maxRuns <= 0 || maxRuns > ev.cfg.RunsPerClass {
		maxRuns = ev.cfg.RunsPerClass
	}
	var shards []Shard
	for _, cls := range classes {
		for start := 0; start < ev.cfg.RunsPerClass; start += maxRuns {
			count := maxRuns
			if start+count > ev.cfg.RunsPerClass {
				count = ev.cfg.RunsPerClass - start
			}
			shards = append(shards, Shard{
				Index: len(shards),
				Class: cls,
				Pool:  perClass[cls],
				Start: start,
				Count: count,
				Seed:  DeriveSeed(rootSeed, cls, start),
			})
		}
	}
	return shards, nil
}

// prepareShard validates the shard, attaches and programs a PMU, and runs
// the cold-reset + warm-up discipline shared by both collection forms.
func (ev *Evaluator) prepareShard(ctx context.Context, target Target, sh Shard) (*hpc.PMU, error) {
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	if len(sh.Pool) == 0 {
		return nil, fmt.Errorf("core: shard %d (category %d) has no images", sh.Index, sh.Class)
	}
	pmu, err := hpc.NewPMU(target.Engine(), ev.cfg.Registers)
	if err != nil {
		return nil, err
	}
	if err := pmu.Program(ev.cfg.Events...); err != nil {
		return nil, err
	}

	// Fresh micro-architectural state per shard, then the standard
	// measure-after-warm-up discipline on this shard's own class.
	target.Engine().ColdReset()
	if bt, ok := target.(BatchTarget); ok && ev.cfg.Batch > 1 && ev.cfg.WarmupRuns > 0 {
		// Batched sessions warm up through the batched entry point: one
		// validated replay session covering all warm-up runs. The batched
		// classifier replays the exact sequential access sequence, so the
		// post-warm-up state is bit-identical to the loop below.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		imgs := make([]*tensor.Tensor, ev.cfg.WarmupRuns)
		preds := make([]int, ev.cfg.WarmupRuns)
		for i := range imgs {
			imgs[i] = sh.Pool[i%len(sh.Pool)]
		}
		if err := bt.ClassifyBatchInto(preds, imgs); err != nil {
			return nil, fmt.Errorf("core: warm-up classification: %w", err)
		}
		return pmu, nil
	}
	for i := 0; i < ev.cfg.WarmupRuns; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := target.Classify(sh.Pool[i%len(sh.Pool)]); err != nil {
			return nil, fmt.Errorf("core: warm-up classification: %w", err)
		}
	}
	return pmu, nil
}

// shardBatch is the per-shard measured-batch scaffolding shared by
// CollectShard and CollectShardProfiles: the image window of the current
// batch plus the per-input classify trampoline handed to
// hpc.MeasureBatchInto.
type shardBatch struct {
	target Target
	imgs   []*tensor.Tensor
	err    error
}

// work classifies batch member i, retaining the first failure. Remaining
// members of a failed batch are skipped — the collector aborts on the
// retained error before reading any of the batch's profiles.
func (b *shardBatch) work(i int) {
	if b.err != nil {
		return
	}
	_, b.err = b.target.Classify(b.imgs[i])
}

// load fills the image window for the batch starting at run (global run
// index), returning the batch length.
func (b *shardBatch) load(sh Shard, run int) int {
	n := sh.Start + sh.Count - run
	if n > len(b.imgs) {
		n = len(b.imgs)
	}
	for i := 0; i < n; i++ {
		b.imgs[i] = sh.Pool[(run+i)%len(sh.Pool)]
	}
	return n
}

// CollectShardProfiles executes one shard on target and returns the raw
// per-run HPC profiles in run order — the labelled observations the attack
// stage fits and scores on. It cold-resets the simulated core (so
// cache/predictor state from other shards cannot bleed in), runs the
// configured warm-up on the shard's own pool, then measures Count
// classifications starting at run index Start. Run index r always maps to
// Pool[r%len(Pool)], so the image sequence is independent of the sharding
// granularity. Runs are measured in batches of Config.Batch — one replay
// session per batch, per-run profiles recovered as counter-snapshot
// deltas — which changes wall-clock only: every batch size yields
// bit-identical profiles. The context is checked between batches.
func (ev *Evaluator) CollectShardProfiles(ctx context.Context, target Target, sh Shard) ([]hpc.Profile, error) {
	profs := make([]hpc.Profile, 0, sh.Count)
	err := ev.CollectShardEmit(ctx, target, sh, func(w Window) error {
		for _, p := range w.Profiles {
			cp := make(hpc.Profile, len(ev.cfg.Events))
			for _, e := range ev.cfg.Events {
				cp[e] = p.Get(e)
			}
			profs = append(profs, cp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return profs, nil
}

// CollectShard executes one shard on target (see CollectShardProfiles for
// the collection discipline) and writes the observations directly into
// per-event distributions — the shape the hypothesis-test stage consumes.
// Unlike CollectShardProfiles it retains no per-run profiles: the shard's
// worker reuses Config.Batch preallocated Profiles and the preallocated
// sample buffers, so the measure loop performs no allocations at any
// batch size.
func (ev *Evaluator) CollectShard(ctx context.Context, target Target, sh Shard) (*Distributions, error) {
	d := &Distributions{
		Events:  append([]march.Event(nil), ev.cfg.Events...),
		Classes: []int{sh.Class},
		Samples: map[march.Event]map[int][]float64{},
	}
	for _, e := range ev.cfg.Events {
		d.Samples[e] = map[int][]float64{sh.Class: make([]float64, sh.Count)}
	}
	err := ev.CollectShardEmit(ctx, target, sh, func(w Window) error {
		for i, p := range w.Profiles {
			for _, e := range ev.cfg.Events {
				d.Samples[e][sh.Class][w.Start+i-sh.Start] = p.Get(e)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// MergeShards combines per-shard distributions into campaign-wide ones.
// parts[i] must be the result of collecting shards[i]; samples are placed
// at their (class, start) offsets, so the merged distributions are
// independent of the order the shards were executed in.
func (ev *Evaluator) MergeShards(shards []Shard, parts []*Distributions) (*Distributions, error) {
	if len(shards) != len(parts) {
		return nil, fmt.Errorf("core: %d shards but %d partial distributions", len(shards), len(parts))
	}
	classSet := map[int]bool{}
	for _, sh := range shards {
		classSet[sh.Class] = true
	}
	classes := make([]int, 0, len(classSet))
	for cls := range classSet {
		classes = append(classes, cls)
	}
	sort.Ints(classes)

	d := &Distributions{
		Events:  append([]march.Event(nil), ev.cfg.Events...),
		Classes: classes,
		Samples: map[march.Event]map[int][]float64{},
	}
	for _, e := range ev.cfg.Events {
		d.Samples[e] = map[int][]float64{}
		for _, cls := range classes {
			d.Samples[e][cls] = make([]float64, ev.cfg.RunsPerClass)
		}
	}
	for i, sh := range shards {
		part := parts[i]
		if part == nil {
			return nil, fmt.Errorf("core: missing distributions for shard %d", sh.Index)
		}
		if sh.Start+sh.Count > ev.cfg.RunsPerClass {
			return nil, fmt.Errorf("core: shard %d runs [%d,%d) exceed %d runs per class",
				sh.Index, sh.Start, sh.Start+sh.Count, ev.cfg.RunsPerClass)
		}
		for _, e := range ev.cfg.Events {
			src := part.Get(e, sh.Class)
			if len(src) != sh.Count {
				return nil, fmt.Errorf("core: shard %d has %d samples of %s, want %d", sh.Index, len(src), e, sh.Count)
			}
			copy(d.Samples[e][sh.Class][sh.Start:sh.Start+sh.Count], src)
		}
	}
	return d, nil
}

// TestJob identifies one pairwise hypothesis test of a campaign.
type TestJob struct {
	// Index is the job's position in the deterministic TestJobs order.
	Index int
	Event march.Event
	// ClassA < ClassB in Distributions.Classes order.
	ClassA, ClassB int
}

// TestJobs enumerates the pairwise tests of collected distributions in
// deterministic (event, classA, classB) order — the exact order the
// sequential Test path evaluates and Reports list them in.
func TestJobs(d *Distributions) ([]TestJob, error) {
	if d == nil || len(d.Classes) < 2 {
		return nil, fmt.Errorf("core: need distributions over at least 2 categories")
	}
	var jobs []TestJob
	for _, e := range d.Events {
		for i := 0; i < len(d.Classes); i++ {
			for j := i + 1; j < len(d.Classes); j++ {
				jobs = append(jobs, TestJob{
					Index:  len(jobs),
					Event:  e,
					ClassA: d.Classes[i],
					ClassB: d.Classes[j],
				})
			}
		}
	}
	return jobs, nil
}

// RunTestJob executes one pairwise test against collected distributions.
func (ev *Evaluator) RunTestJob(d *Distributions, j TestJob) (PairTest, error) {
	a, b := d.Get(j.Event, j.ClassA), d.Get(j.Event, j.ClassB)
	res, err := ev.runTest(a, b)
	if err != nil {
		return PairTest{}, fmt.Errorf("core: %s test %s t%d,%d: %w", ev.cfg.Method, j.Event, j.ClassA, j.ClassB, err)
	}
	return PairTest{
		Event:      j.Event,
		ClassA:     j.ClassA,
		ClassB:     j.ClassB,
		Result:     res,
		EffectSize: stats.CohensD(a, b),
	}, nil
}

// FinalizeTests applies the per-event Holm correction (when configured) to
// tests already in TestJobs order and returns the same slice.
func (ev *Evaluator) FinalizeTests(tests []PairTest) []PairTest {
	if !ev.cfg.HolmCorrection {
		return tests
	}
	for lo := 0; lo < len(tests); {
		hi := lo
		for hi < len(tests) && tests[hi].Event == tests[lo].Event {
			hi++
		}
		ps := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			ps[i-lo] = tests[i].Result.P
		}
		rej := stats.HolmBonferroni(ps, ev.cfg.Alpha)
		for i := lo; i < hi; i++ {
			tests[i].HolmReject = rej[i-lo]
		}
		lo = hi
	}
	return tests
}

// BuildReport assembles the campaign report, deriving alarms from the
// finalized tests in order — shared by the sequential Evaluate path and
// the concurrent pipeline so both produce identical reports.
func (ev *Evaluator) BuildReport(name string, d *Distributions, tests []PairTest) *Report {
	r := &Report{Name: name, Config: ev.cfg, Dists: d, Tests: tests}
	for _, t := range tests {
		if t.Distinguishable(ev.cfg.Alpha) {
			r.Alarms = append(r.Alarms, Alarm{
				Event: t.Event, ClassA: t.ClassA, ClassB: t.ClassB,
				T: t.Result.T, P: t.Result.P,
			})
		}
	}
	return r
}

// Config returns the evaluator's (defaults-applied) configuration.
func (ev *Evaluator) Config() Config { return ev.cfg }

// SetObs attaches (or detaches, with nil) a telemetry recorder after
// construction. Fabric workers use this: the recorder is only created
// once the init frame arrives, after the runner's evaluator is built.
func (ev *Evaluator) SetObs(r *obs.Recorder) { ev.cfg.Obs = r }
