package core

// The emitting collection seam: CollectShardEmit is the primitive both
// batch collectors (CollectShard, CollectShardProfiles) are built on,
// and the one the streaming pipeline taps directly. It yields each
// measured batch as a profile *window* the moment the batch's counters
// are recovered, instead of only filling sample buffers — which is what
// lets an online consumer score observations (and stop a campaign)
// mid-shard with bounded memory.

import (
	"context"
	"fmt"

	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Window is one measured batch of a single shard's observations, in run
// order: Profiles[i] is the profile of global run index Start+i of
// class Class. Windows of one shard are emitted in ascending Start
// order; window boundaries are the shard's measured batches
// (Config.Batch runs each, shorter on the shard's tail), so the window
// sequence depends only on the shard plan and the batch size — never on
// who executes the shard.
type Window struct {
	// Shard is the emitting shard's plan index.
	Shard int
	// Class is the shard's category label.
	Class int
	// Start is the global run index (within Class) of Profiles[0].
	Start int
	// Profiles are the window's per-run observations. The slice and its
	// maps are scratch reused across emissions: consumers must copy any
	// values they keep beyond the emit call.
	Profiles []hpc.Profile
}

// CollectShardEmit executes one shard on target with the standard
// collection discipline (cold reset, warm-up on the shard's own pool,
// batched measurement — see CollectShardProfiles) and calls emit once
// per measured batch, in run order. The emitted Window aliases
// per-shard scratch; emit must copy what it keeps. A non-nil error from
// emit aborts the shard and is returned verbatim, so a consumer can
// stop a campaign mid-shard with a sentinel. The context is checked
// between batches.
func (ev *Evaluator) CollectShardEmit(ctx context.Context, target Target, sh Shard, emit func(Window) error) error {
	pmu, err := ev.prepareShard(ctx, target, sh)
	if err != nil {
		return err
	}
	if rec := ev.cfg.Obs; rec != nil {
		// Per-shard engine tally, flushed into the recorder when the
		// shard finishes. Attached after warm-up so only measured
		// operations count; detached before return so a pooled engine
		// never tallies into a stale shard.
		hot := &obs.HotCounters{}
		eng := target.Engine()
		eng.SetHotCounters(hot)
		defer func() {
			eng.SetHotCounters(nil)
			rec.FlushHot(hot)
		}()
	}
	batch := ev.cfg.Batch
	scratch := make([]hpc.Profile, batch)
	for i := range scratch {
		scratch[i] = make(hpc.Profile, len(ev.cfg.Events))
	}
	b := shardBatch{target: target, imgs: make([]*tensor.Tensor, batch)}
	return ev.emitWindows(ctx, pmu, &b, sh, scratch, emit)
}

// emitWindows is the measured emission loop of CollectShardEmit: one
// replay session per batch, per-run profiles recovered as
// counter-snapshot deltas into the reused scratch, one emit per window.
//
//detlint:allocpath — the per-window emission hot path reuses the
// preallocated scratch profiles and image window; nothing on the
// steady-state path may allocate (the stream allocgate pins it).
func (ev *Evaluator) emitWindows(ctx context.Context, pmu *hpc.PMU, b *shardBatch, sh Shard, scratch []hpc.Profile, emit func(Window) error) error {
	batch := len(scratch)
	for run := sh.Start; run < sh.Start+sh.Count; run += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := b.load(sh, run)
		if err := pmu.MeasureBatchInto(scratch[:n], b.work); err != nil {
			return err
		}
		if b.err != nil {
			return fmt.Errorf("core: classification failed: %w", b.err)
		}
		if err := emit(Window{Shard: sh.Index, Class: sh.Class, Start: run, Profiles: scratch[:n]}); err != nil {
			return err
		}
		// Nil-safe telemetry tallies: atomic adds, no allocation, no
		// effect on the emitted observations.
		ev.cfg.Obs.Add(obs.CWindowsEmitted, 1)
		ev.cfg.Obs.Add(obs.CProfilesCollected, int64(n))
	}
	return nil
}
