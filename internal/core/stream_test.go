package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/instrument"
)

// TestCollectShardEmitMatchesBatchCollectors: the emitting seam must
// reproduce the batch collectors' observations exactly — same values,
// same run order — and emit windows at exactly the measured-batch
// cadence (Config.Batch runs per window, shorter tail).
func TestCollectShardEmitMatchesBatchCollectors(t *testing.T) {
	const runs = 7
	for _, batch := range []int{1, 3, 16} {
		ev, err := NewEvaluator(Config{RunsPerClass: runs, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		pool := classImages(0, 3, 11)
		sh := Shard{Index: 0, Class: 0, Pool: pool, Start: 0, Count: runs, Seed: 1}

		target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 5)
		var starts []int
		var vecs [][]float64
		err = ev.CollectShardEmit(context.Background(), target, sh, func(w Window) error {
			if w.Shard != sh.Index || w.Class != sh.Class {
				t.Fatalf("batch=%d: window identity (%d,%d), want (%d,%d)", batch, w.Shard, w.Class, sh.Index, sh.Class)
			}
			starts = append(starts, w.Start)
			for _, p := range w.Profiles {
				vecs = append(vecs, p.Vector(ev.Config().Events))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		wantStarts := []int(nil)
		for run := 0; run < runs; run += batch {
			wantStarts = append(wantStarts, run)
		}
		if !reflect.DeepEqual(starts, wantStarts) {
			t.Errorf("batch=%d: window starts %v, want %v", batch, starts, wantStarts)
		}

		target2 := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 5)
		profs, err := ev.CollectShardProfiles(context.Background(), target2, sh)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]float64, len(profs))
		for i, p := range profs {
			want[i] = p.Vector(ev.Config().Events)
		}
		if !reflect.DeepEqual(vecs, want) {
			t.Errorf("batch=%d: emitted observations diverge from CollectShardProfiles", batch)
		}
	}
}

// TestCollectShardEmitConsumerError: a consumer error aborts the shard
// and is returned verbatim, so sentinel-based early stopping works.
func TestCollectShardEmitConsumerError(t *testing.T) {
	ev, err := NewEvaluator(Config{RunsPerClass: 6, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 5)
	sh := Shard{Index: 0, Class: 0, Pool: classImages(0, 3, 11), Start: 0, Count: 6, Seed: 1}
	sentinel := errors.New("stop now")
	emits := 0
	err = ev.CollectShardEmit(context.Background(), target, sh, func(Window) error {
		emits++
		if emits == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the consumer's sentinel", err)
	}
	if emits != 2 {
		t.Fatalf("emit called %d times after sentinel, want 2", emits)
	}
}
