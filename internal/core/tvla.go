package core

import (
	"fmt"
	"math/rand"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// TVLAResult is the outcome of a fixed-vs-random leakage assessment for
// one event.
type TVLAResult struct {
	Event  march.Event
	Result stats.TTestResult
	// Leaky at the conventional TVLA threshold |t| > 4.5.
	Leaky bool
}

// TVLAThreshold is the conventional |t| pass/fail bound used by the
// Test Vector Leakage Assessment methodology.
const TVLAThreshold = 4.5

// TVLA runs the fixed-vs-random leakage assessment adapted from the
// hardware side-channel testing literature (Goodwill et al.) to the
// paper's setting: set A observes classifications of one *fixed* image
// repeatedly, set B observes classifications of images drawn at random
// from a pool spanning all categories. If any monitored event separates
// the two sets with |t| > 4.5, the implementation leaks input-dependent
// information — a single-number verdict that complements the paper's
// pairwise category tests.
func (ev *Evaluator) TVLA(target Target, fixed *tensor.Tensor, pool []*tensor.Tensor, runs int, seed int64) ([]TVLAResult, error) {
	if target == nil || fixed == nil || len(pool) == 0 {
		return nil, fmt.Errorf("core: TVLA needs a target, a fixed image and a non-empty random pool")
	}
	if runs <= 1 {
		runs = ev.cfg.RunsPerClass
	}
	pmu, err := hpc.NewPMU(target.Engine(), ev.cfg.Registers)
	if err != nil {
		return nil, err
	}
	if err := pmu.Program(ev.cfg.Events...); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	fixedObs := map[march.Event][]float64{}
	randObs := map[march.Event][]float64{}
	// Interleave fixed and random runs so drifting micro-architectural
	// state (cache warm-up) does not masquerade as leakage — the standard
	// TVLA acquisition discipline.
	for i := 0; i < 2*runs; i++ {
		useFixed := i%2 == 0
		img := fixed
		if !useFixed {
			img = pool[rng.Intn(len(pool))]
		}
		var classifyErr error
		prof, err := pmu.MeasureOnce(func() {
			if _, err := target.Classify(img); err != nil {
				classifyErr = err
			}
		})
		if err != nil {
			return nil, err
		}
		if classifyErr != nil {
			return nil, classifyErr
		}
		for _, e := range ev.cfg.Events {
			if useFixed {
				fixedObs[e] = append(fixedObs[e], prof.Get(e))
			} else {
				randObs[e] = append(randObs[e], prof.Get(e))
			}
		}
	}

	var out []TVLAResult
	for _, e := range ev.cfg.Events {
		res, err := stats.WelchTTest(fixedObs[e], randObs[e])
		if err != nil {
			return nil, fmt.Errorf("core: TVLA %s: %w", e, err)
		}
		leaky := res.T > TVLAThreshold || res.T < -TVLAThreshold
		out = append(out, TVLAResult{Event: e, Result: res, Leaky: leaky})
	}
	return out, nil
}
