package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/instrument"
)

// collectWithBatch runs one 7-run shard at the given batch size on a
// fresh target (identical seed) and returns both collection forms.
func collectWithBatch(t *testing.T, batch int) (*Distributions, [][]float64) {
	t.Helper()
	const runs = 7
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 5)
	ev, err := NewEvaluator(Config{RunsPerClass: runs, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	pool := classImages(0, 3, 11)
	sh := Shard{Index: 0, Class: 0, Pool: pool, Start: 0, Count: runs, Seed: 1}
	d, err := ev.CollectShard(context.Background(), target, sh)
	if err != nil {
		t.Fatal(err)
	}

	// Profiles path on its own fresh target, same discipline.
	target2 := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 5)
	profs, err := ev.CollectShardProfiles(context.Background(), target2, sh)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != runs {
		t.Fatalf("batch=%d: %d profiles, want %d", batch, len(profs), runs)
	}
	vecs := make([][]float64, len(profs))
	for i, p := range profs {
		vecs[i] = p.Vector(ev.Config().Events)
	}
	return d, vecs
}

// TestCollectShardBatchInvariance: the shard collectors must produce
// bit-identical observations at every batch size, including a tail batch
// (7 runs at batch 3 → 3+3+1) and a batch larger than the shard.
func TestCollectShardBatchInvariance(t *testing.T) {
	refD, refV := collectWithBatch(t, 1)
	for _, batch := range []int{3, 4, 16} {
		d, v := collectWithBatch(t, batch)
		if !reflect.DeepEqual(d.Samples, refD.Samples) {
			t.Errorf("batch=%d: CollectShard samples diverge from batch=1:\n%v\nvs\n%v", batch, d.Samples, refD.Samples)
		}
		if !reflect.DeepEqual(v, refV) {
			t.Errorf("batch=%d: CollectShardProfiles diverge from batch=1", batch)
		}
	}
}
