package core

import (
	"math/rand"
	"testing"

	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/cache"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildTarget constructs a tiny instrumented classifier with a given noise
// seed and options (a negative seed disables measurement noise so tests
// assert on the structural signal alone). The hierarchy is scaled to the
// tiny test network the same way instrument.SimHierarchy is scaled to the
// paper's CNNs: small enough that the per-inference working set exceeds
// the LLC.
func buildTarget(t *testing.T, opts instrument.Options, noiseSeed int64) *instrument.Classifier {
	t.Helper()
	net, err := nn.Build(nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 3}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(
		cache.Config{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
		cache.Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
		cache.Config{Name: "LLC", Size: 2048, LineSize: 64, Assoc: 4, Policy: cache.LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	var noise *march.NoiseModel
	if noiseSeed >= 0 {
		noise = march.DefaultNoise(noiseSeed)
	}
	eng, err := march.NewEngine(march.Config{
		Hierarchy: h,
		Noise:     noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := instrument.New(net, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// classImages makes a pool of jittered images whose sparsity depends on
// the class: class 0 sparse strokes, class 1 dense texture.
func classImages(class, n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for k := 0; k < n; k++ {
		img := tensor.New(12, 12, 1)
		density := 0.1
		if class == 1 {
			density = 0.9
		}
		for i := range img.Data {
			if rng.Float64() < density {
				img.Data[i] = 0.3 + rng.Float32()*0.7
			}
		}
		out[k] = img
	}
	return out
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.Events) != 2 || c.Events[0] != march.EvCacheMisses || c.Events[1] != march.EvBranches {
		t.Fatalf("default events = %v", c.Events)
	}
	if c.Alpha != 0.05 || c.RunsPerClass != 100 || c.WarmupRuns != 3 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{WarmupRuns: -1}.withDefaults()
	if c.WarmupRuns != 0 {
		t.Fatalf("negative warmup not clamped: %d", c.WarmupRuns)
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(Config{Events: march.AllEvents()}); err == nil {
		t.Fatal("8 events on 6 registers accepted")
	}
	if _, err := NewEvaluator(Config{Events: []march.Event{march.EvCycles, march.EvCycles}}); err == nil {
		t.Fatal("duplicate events accepted")
	}
	if _, err := NewEvaluator(Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectValidation(t *testing.T) {
	ev, _ := NewEvaluator(Config{RunsPerClass: 2, WarmupRuns: -1})
	target := buildTarget(t, instrument.Options{SparsitySkip: true}, 1)
	if _, err := ev.Collect(nil, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := ev.Collect(target, map[int][]*tensor.Tensor{0: classImages(0, 1, 1)}); err == nil {
		t.Fatal("single category accepted")
	}
	if _, err := ev.Collect(target, map[int][]*tensor.Tensor{0: classImages(0, 1, 1), 1: nil}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestCollectShapes(t *testing.T) {
	ev, err := NewEvaluator(Config{RunsPerClass: 6, WarmupRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true}, 3)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 3, 10),
		1: classImages(1, 3, 20),
	}
	d, err := ev.Collect(target, pools)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Classes) != 2 || d.Classes[0] != 0 || d.Classes[1] != 1 {
		t.Fatalf("classes = %v", d.Classes)
	}
	for _, e := range d.Events {
		for _, cls := range d.Classes {
			if got := len(d.Get(e, cls)); got != 6 {
				t.Fatalf("%s class %d has %d samples, want 6", e, cls, got)
			}
		}
	}
	if d.Get(march.EvCycles, 0) != nil {
		t.Fatal("unprogrammed event has samples")
	}
	s := d.Summary(march.EvCacheMisses, 0)
	if s.N != 6 || s.Mean <= 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEvaluateRaisesAlarmForLeakyTarget(t *testing.T) {
	// Sparse vs dense inputs through sparsity-skipping kernels must be
	// distinguishable via cache-misses: the Evaluator must raise an alarm.
	ev, err := NewEvaluator(Config{RunsPerClass: 25, WarmupRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.NoRuntime()}, -1)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 12, 100),
		1: classImages(1, 12, 200),
	}
	r, err := ev.Evaluate("leaky", target, pools)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Leaky() {
		t.Fatal("no alarm for a clearly leaky target")
	}
	cm := r.AlarmsFor(march.EvCacheMisses)
	if len(cm) == 0 {
		t.Fatal("cache-misses raised no alarm for sparse-vs-dense inputs")
	}
	if len(r.TestsFor(march.EvCacheMisses)) != 1 {
		t.Fatalf("expected 1 pair test, got %d", len(r.TestsFor(march.EvCacheMisses)))
	}
	if a := cm[0]; a.String() == "" || a.P >= 0.05 {
		t.Fatalf("alarm malformed: %+v", a)
	}
}

func TestEvaluateSameDistributionNoSystematicAlarm(t *testing.T) {
	// Two pools drawn from the same class distribution: the cache-miss
	// t-test must not reject (any rejection would be a ~5% false
	// positive; the fixed seeds make this deterministic and it passes).
	ev, err := NewEvaluator(Config{RunsPerClass: 20, WarmupRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.DefaultRuntime()}, 8)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 10, 300),
		1: classImages(0, 10, 400), // same class, different draws
	}
	r, err := ev.Evaluate("null", target, pools)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range r.TestsFor(march.EvCacheMisses) {
		if tt.Result.P < 0.01 {
			t.Fatalf("same-distribution pools strongly rejected: %+v", tt.Result)
		}
	}
}

func TestEvaluateConstantTimeDefenseQuietsCacheAlarms(t *testing.T) {
	// The countermeasure direction from the paper's conclusion: with
	// constant-footprint kernels the class signal disappears and the
	// cache-miss alarms must go quiet.
	ev, err := NewEvaluator(Config{RunsPerClass: 25, WarmupRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{ConstantTime: true, Runtime: instrument.DefaultRuntime()}, 9)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 12, 500),
		1: classImages(1, 12, 600),
	}
	r, err := ev.Evaluate("hardened", target, pools)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.AlarmsFor(march.EvCacheMisses)); n != 0 {
		for _, a := range r.AlarmsFor(march.EvCacheMisses) {
			t.Logf("unexpected: %s", a)
		}
		t.Fatalf("constant-time target still raised %d cache-miss alarms", n)
	}
}

func TestTestValidation(t *testing.T) {
	ev, _ := NewEvaluator(Config{})
	if _, err := ev.Test(nil); err == nil {
		t.Fatal("nil distributions accepted")
	}
	d := &Distributions{Classes: []int{0}}
	if _, err := ev.Test(d); err == nil {
		t.Fatal("single-class distributions accepted")
	}
}

func TestHolmCorrectionPopulated(t *testing.T) {
	ev, err := NewEvaluator(Config{RunsPerClass: 30, WarmupRuns: 1, HolmCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.NoRuntime()}, -1)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 8, 700),
		1: classImages(1, 8, 800),
	}
	r, err := ev.Evaluate("holm", target, pools)
	if err != nil {
		t.Fatal(err)
	}
	anyHolm := false
	for _, tt := range r.TestsFor(march.EvCacheMisses) {
		if tt.HolmReject {
			anyHolm = true
		}
	}
	if !anyHolm {
		t.Fatal("Holm correction rejected nothing for a strongly leaky pair")
	}
}

func TestPairTestDistinguishable(t *testing.T) {
	pt := PairTest{}
	pt.Result.P = 0.03
	if !pt.Distinguishable(0.05) || pt.Distinguishable(0.01) {
		t.Fatal("Distinguishable thresholds wrong")
	}
}

func TestMethodString(t *testing.T) {
	if MethodWelch.String() != "welch-t" || MethodMannWhitney.String() != "mann-whitney-u" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() != "method(9)" {
		t.Fatal("unknown method name wrong")
	}
}

func TestMannWhitneyMethodAgreesOnLeakyTarget(t *testing.T) {
	// The nonparametric extension must also flag the strongly leaky
	// sparse-vs-dense scenario.
	ev, err := NewEvaluator(Config{RunsPerClass: 25, WarmupRuns: 2, Method: MethodMannWhitney})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.NoRuntime()}, -1)
	pools := map[int][]*tensor.Tensor{
		0: classImages(0, 12, 100),
		1: classImages(1, 12, 200),
	}
	r, err := ev.Evaluate("mw", target, pools)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AlarmsFor(march.EvCacheMisses)) == 0 {
		t.Fatal("Mann-Whitney raised no cache-miss alarm on a leaky target")
	}
	// DF is zero under the rank-sum test (no t distribution involved).
	for _, tt := range r.TestsFor(march.EvCacheMisses) {
		if tt.Result.DF != 0 {
			t.Fatalf("rank-sum test reported df %v", tt.Result.DF)
		}
	}
}

func TestTVLAFlagsLeakyTarget(t *testing.T) {
	ev, err := NewEvaluator(Config{RunsPerClass: 30})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{SparsitySkip: true, Runtime: instrument.NoRuntime()}, -1)
	fixed := classImages(0, 1, 900)[0]
	pool := append(classImages(0, 6, 901), classImages(1, 6, 902)...)
	results, err := ev.TVLA(target, fixed, pool, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 events", len(results))
	}
	anyLeaky := false
	for _, r := range results {
		if r.Leaky {
			anyLeaky = true
			if r.Result.T < TVLAThreshold && r.Result.T > -TVLAThreshold {
				t.Fatalf("leaky verdict with |t| below threshold: %+v", r)
			}
		}
	}
	if !anyLeaky {
		t.Fatal("TVLA missed a strongly leaky target")
	}
}

func TestTVLAQuietForConstantTime(t *testing.T) {
	ev, err := NewEvaluator(Config{RunsPerClass: 30})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t, instrument.Options{ConstantTime: true, Runtime: instrument.DefaultRuntime()}, 13)
	fixed := classImages(0, 1, 910)[0]
	pool := append(classImages(0, 6, 911), classImages(1, 6, 912)...)
	results, err := ev.TVLA(target, fixed, pool, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Event == march.EvCacheMisses && r.Leaky {
			t.Fatalf("constant-time target failed TVLA on cache-misses: t=%v", r.Result.T)
		}
	}
}

func TestTVLAValidation(t *testing.T) {
	ev, _ := NewEvaluator(Config{})
	if _, err := ev.TVLA(nil, nil, nil, 10, 1); err == nil {
		t.Fatal("nil args accepted")
	}
}
