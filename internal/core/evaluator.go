// Package core implements the paper's primary contribution: the Evaluator
// that decides whether a deployed CNN classifier leaks its input category
// through Hardware Performance Counters.
//
// The Evaluator (paper §4) operates with administrative privilege but no
// knowledge of the model internals:
//
//  1. It monitors HPC events during classifications of each input
//     category individually, producing per-category distributions of each
//     event.
//  2. It runs a Welch t-test on every pair of category distributions per
//     event at 95% confidence.
//  3. It raises an alarm when a null hypothesis is rejected — the event
//     distinguishes the categories, so an adversary could recover the
//     input category from the side channel.
package core

import (
	"context"
	"fmt"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Target is the classifier under evaluation: the Evaluator can trigger
// classifications and observe the hardware they run on, nothing else.
type Target interface {
	// Classify runs one inference on the target's simulated core.
	Classify(img *tensor.Tensor) (int, error)
	// Engine exposes the simulated core the PMU attaches to.
	Engine() *march.Engine
}

// BatchTarget is a Target that can classify several inputs back-to-back
// in one replay session. Batched collection (Config.Batch > 1) uses it
// when available; the contract is that a batch replays the exact access
// sequence of the equivalent sequential Classify calls, so per-run
// counter attribution stays exact.
type BatchTarget interface {
	Target
	// ClassifyBatchInto classifies imgs[i] into preds[i]; the slices must
	// have equal length.
	ClassifyBatchInto(preds []int, imgs []*tensor.Tensor) error
}

// Method selects the hypothesis test the Evaluator applies.
type Method int

// Hypothesis-testing methods.
const (
	// MethodWelch is the paper's test: Welch's unequal-variance t-test.
	MethodWelch Method = iota
	// MethodMannWhitney is a nonparametric extension: the rank-sum test,
	// robust to the non-Gaussian tails HPC counts can have.
	MethodMannWhitney
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodWelch:
		return "welch-t"
	case MethodMannWhitney:
		return "mann-whitney-u"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config controls an evaluation campaign.
type Config struct {
	// Events to monitor; default cache-misses and branches (the paper's
	// Tables 1 and 2).
	Events []march.Event
	// Method selects the hypothesis test; default MethodWelch (the
	// paper's choice).
	Method Method
	// Alpha is the significance level; default 0.05 (95% confidence).
	Alpha float64
	// RunsPerClass is how many classifications are observed per category;
	// default 100.
	RunsPerClass int
	// WarmupRuns are unmeasured classifications before collection so the
	// simulated caches and predictors reach steady state; default 3.
	WarmupRuns int
	// Registers bounds simultaneously-counted events (PMU constraint);
	// default hpc.DefaultCounters.
	Registers int
	// Batch groups a shard's measured runs into batches of this size: one
	// replay session classifies Batch inputs back-to-back and the per-run
	// profiles are recovered as counter-snapshot deltas
	// (hpc.MeasureBatchInto). Per-run attribution is exact — every batch
	// size produces bit-identical observations — so Batch trades nothing
	// but wall-clock. Default 1 (unbatched).
	Batch int
	// HolmCorrection additionally reports family-wise-corrected decisions
	// across all pairs of one event (an extension beyond the paper).
	HolmCorrection bool
	// Obs receives collection telemetry (windows emitted, profiles
	// collected, engine load/store tallies). Telemetry is observational
	// output only — it never influences collection — and the field is
	// excluded from JSON so Report.Config round-trips unchanged whether
	// or not a recorder was attached.
	Obs *obs.Recorder `json:"-"`
}

func (c Config) withDefaults() Config {
	if len(c.Events) == 0 {
		c.Events = []march.Event{march.EvCacheMisses, march.EvBranches}
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	if c.RunsPerClass <= 0 {
		c.RunsPerClass = 100
	}
	if c.WarmupRuns < 0 {
		c.WarmupRuns = 0
	} else if c.WarmupRuns == 0 {
		c.WarmupRuns = 3
	}
	if c.Registers <= 0 {
		c.Registers = hpc.DefaultCounters
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	return c
}

// Distributions holds the per-event, per-category observations collected
// in step 1 of the paper's methodology.
type Distributions struct {
	Events  []march.Event
	Classes []int
	// Samples[event][class] is the observed event-count series.
	Samples map[march.Event]map[int][]float64
}

// Get returns one distribution (nil if absent).
func (d *Distributions) Get(e march.Event, class int) []float64 {
	if m, ok := d.Samples[e]; ok {
		return m[class]
	}
	return nil
}

// Summary returns descriptive statistics for one distribution.
func (d *Distributions) Summary(e march.Event, class int) stats.Summary {
	return stats.Summarize(d.Get(e, class))
}

// PairTest is one t-test between two category distributions of one event.
type PairTest struct {
	Event          march.Event
	ClassA, ClassB int
	Result         stats.TTestResult
	EffectSize     float64 // Cohen's d
	// HolmReject is the family-wise-corrected decision (only meaningful
	// when Config.HolmCorrection was set).
	HolmReject bool
}

// Distinguishable reports rejection at the configured alpha.
func (p PairTest) Distinguishable(alpha float64) bool { return p.Result.Significant(alpha) }

// Alarm is raised for every distinguishable pair — the Evaluator's output.
type Alarm struct {
	Event          march.Event
	ClassA, ClassB int
	T, P           float64
}

// String renders the alarm message.
func (a Alarm) String() string {
	return fmt.Sprintf("ALARM: event %s distinguishes category %d from category %d (t=%.4f, p=%.4g)",
		a.Event, a.ClassA, a.ClassB, a.T, a.P)
}

// Report is the complete result of an evaluation campaign.
type Report struct {
	Name   string
	Config Config
	Dists  *Distributions
	Tests  []PairTest
	Alarms []Alarm
}

// Leaky reports whether any alarm was raised.
func (r *Report) Leaky() bool { return len(r.Alarms) > 0 }

// TestsFor returns the pair tests of one event in (ClassA, ClassB) order.
func (r *Report) TestsFor(e march.Event) []PairTest {
	var out []PairTest
	for _, t := range r.Tests {
		if t.Event == e {
			out = append(out, t)
		}
	}
	return out
}

// AlarmsFor returns the alarms of one event.
func (r *Report) AlarmsFor(e march.Event) []Alarm {
	var out []Alarm
	for _, a := range r.Alarms {
		if a.Event == e {
			out = append(out, a)
		}
	}
	return out
}

// Evaluator runs the paper's methodology against a target.
type Evaluator struct {
	cfg Config
}

// NewEvaluator validates the configuration and builds an evaluator.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Events) > cfg.Registers {
		return nil, fmt.Errorf("core: %d events exceed the %d available HPC registers; monitor fewer events per campaign",
			len(cfg.Events), cfg.Registers)
	}
	seen := map[march.Event]bool{}
	for _, e := range cfg.Events {
		if seen[e] {
			return nil, fmt.Errorf("core: duplicate event %s", e)
		}
		seen[e] = true
	}
	return &Evaluator{cfg: cfg}, nil
}

// Collect performs step 1: it observes RunsPerClass classifications for
// every category in perClass and returns the distributions. perClass maps
// category label → pool of images of that category; images are cycled when
// the pool is smaller than RunsPerClass.
//
// Collect is the sequential execution of the campaign's shard plan (see
// PlanShards): one shard per class, executed in class order on the single
// provided target. Each shard cold-resets the simulated core before its
// warm-up, so cache and predictor state from one class cannot bleed into
// the next class's traces. The concurrent pipeline executes the same shard
// units on per-worker engines.
func (ev *Evaluator) Collect(target Target, perClass map[int][]*tensor.Tensor) (*Distributions, error) {
	return ev.CollectCtx(context.Background(), target, perClass)
}

// CollectCtx is Collect with cancellation between classifications.
func (ev *Evaluator) CollectCtx(ctx context.Context, target Target, perClass map[int][]*tensor.Tensor) (*Distributions, error) {
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	shards, err := ev.PlanShards(perClass, 0, 0)
	if err != nil {
		return nil, err
	}
	parts := make([]*Distributions, len(shards))
	for i, sh := range shards {
		part, err := ev.CollectShard(ctx, target, sh)
		if err != nil {
			return nil, err
		}
		parts[i] = part
	}
	return ev.MergeShards(shards, parts)
}

// Test performs step 2 on collected distributions: Welch t-tests for every
// category pair of every event. It is the sequential execution of the
// campaign's TestJobs; the concurrent pipeline batches the same jobs
// across workers and finalizes them identically.
func (ev *Evaluator) Test(d *Distributions) ([]PairTest, error) {
	jobs, err := TestJobs(d)
	if err != nil {
		return nil, err
	}
	tests := make([]PairTest, len(jobs))
	for i, j := range jobs {
		t, err := ev.RunTestJob(d, j)
		if err != nil {
			return nil, err
		}
		tests[i] = t
	}
	return ev.FinalizeTests(tests), nil
}

// runTest applies the configured hypothesis test, normalizing the result
// into the TTestResult shape (for Mann-Whitney, T carries the z-score and
// DF is zero).
func (ev *Evaluator) runTest(a, b []float64) (stats.TTestResult, error) {
	switch ev.cfg.Method {
	case MethodMannWhitney:
		r, err := stats.MannWhitneyU(a, b)
		if err != nil {
			return stats.TTestResult{}, err
		}
		return stats.TTestResult{T: r.Z, DF: 0, P: r.P}, nil
	default:
		return stats.WelchTTest(a, b)
	}
}

// Evaluate runs the full campaign (steps 1–3) and returns the report with
// any alarms raised.
func (ev *Evaluator) Evaluate(name string, target Target, perClass map[int][]*tensor.Tensor) (*Report, error) {
	d, err := ev.Collect(target, perClass)
	if err != nil {
		return nil, err
	}
	tests, err := ev.Test(d)
	if err != nil {
		return nil, err
	}
	return ev.BuildReport(name, d, tests), nil
}
