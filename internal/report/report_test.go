package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/archid"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fakeReport builds a Report by hand so rendering is tested without
// running a full evaluation.
func fakeReport() *core.Report {
	d := &core.Distributions{
		Events:  []march.Event{march.EvCacheMisses, march.EvBranches},
		Classes: []int{1, 2},
		Samples: map[march.Event]map[int][]float64{
			march.EvCacheMisses: {
				1: {100, 102, 98, 101, 99},
				2: {150, 148, 152, 149, 151},
			},
			march.EvBranches: {
				1: {5000, 5010, 4990, 5002, 4998},
				2: {5001, 5011, 4989, 5003, 4997},
			},
		},
	}
	var tests []core.PairTest
	for _, e := range d.Events {
		res, _ := stats.WelchTTest(d.Get(e, 1), d.Get(e, 2))
		tests = append(tests, core.PairTest{Event: e, ClassA: 1, ClassB: 2, Result: res})
	}
	r := &core.Report{
		Name:   "fake",
		Config: core.Config{Alpha: 0.05},
		Dists:  d,
		Tests:  tests,
	}
	for _, t := range tests {
		if t.Distinguishable(0.05) {
			r.Alarms = append(r.Alarms, core.Alarm{Event: t.Event, ClassA: 1, ClassB: 2, T: t.Result.T, P: t.Result.P})
		}
	}
	return r
}

func TestTTableLayout(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	if err := TTable(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cache-misses") || !strings.Contains(out, "branches") {
		t.Fatalf("missing event headers:\n%s", out)
	}
	if !strings.Contains(out, "t1,2") {
		t.Fatalf("missing pair row:\n%s", out)
	}
	// The separated cache-miss pair must be starred, and p printed as ≈0.
	if !strings.Contains(out, "≈0") {
		t.Fatalf("tiny p not rendered as ≈0:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no distinguishable marker:\n%s", out)
	}
}

func TestTTableEventSubset(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	if err := TTable(&b, r, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "cache-misses") {
		t.Fatal("subset rendering leaked other events")
	}
}

func TestAlarmsOutput(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	Alarms(&b, r)
	if !strings.Contains(b.String(), "ALARM") {
		t.Fatalf("no alarm line:\n%s", b.String())
	}
	quiet := &core.Report{Name: "quiet", Dists: r.Dists}
	b.Reset()
	Alarms(&b, quiet)
	if !strings.Contains(b.String(), "no alarms") {
		t.Fatalf("missing all-clear:\n%s", b.String())
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	err := BarChart(&b, "Figure 1(a)", []string{"cat 1", "cat 2"}, []float64{80, 100}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 1(a)") || !strings.Contains(out, "cat 1") {
		t.Fatalf("chart malformed:\n%s", out)
	}
	// The larger value must have the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	if err := BarChart(&b, "bad", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if err := BarChart(&b, "bad", nil, nil, 10); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var b strings.Builder
	if err := BarChart(&b, "zeros", []string{"a", "b"}, []float64{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestBarChartNegativeValues is the regression test for the negative-count
// panic: a negative value (legal for derived metrics like deltas) must
// render an empty bar, not crash strings.Repeat.
func TestBarChartNegativeValues(t *testing.T) {
	var b strings.Builder
	if err := BarChart(&b, "deltas", []string{"a", "b", "c"}, []float64{-5, 10, math.NaN()}, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if strings.Count(lines[1], "█") != 0 || strings.Count(lines[3], "█") != 0 {
		t.Fatalf("negative/NaN values drew bars:\n%s", b.String())
	}
	if strings.Count(lines[2], "█") == 0 {
		t.Fatalf("positive value lost its bar:\n%s", b.String())
	}
	// All-negative charts exercise the maxV <= 0 fallback.
	b.Reset()
	if err := BarChart(&b, "all-negative", []string{"a", "b"}, []float64{-3, -1}, 20); err != nil {
		t.Fatal(err)
	}
	// A NaN in the FIRST slot must not poison the max scan: the positive
	// value still gets a proportional bar.
	b.Reset()
	if err := BarChart(&b, "nan-first", []string{"a", "b"}, []float64{math.NaN(), 10}, 20); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(b.String()), "\n")
	if strings.Count(lines[2], "█") == 0 {
		t.Fatalf("NaN in values[0] erased the positive bar:\n%s", b.String())
	}
	// All-NaN values fall back to empty bars without panicking.
	b.Reset()
	if err := BarChart(&b, "all-nan", []string{"a"}, []float64{math.NaN()}, 20); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionRendering(t *testing.T) {
	cm := attack.NewConfusionMatrix([]int{1, 2})
	cm.Record(1, 1)
	cm.Record(1, 2)
	cm.Record(2, 2)
	cm.Record(2, 2)
	var b strings.Builder
	if err := Confusion(&b, "template attack:", cm); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"template attack:", "true\\pred", "accuracy 75.0% over 4 attack runs", "chance 50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("confusion output missing %q:\n%s", want, out)
		}
	}
	if err := Confusion(&b, "empty", attack.NewConfusionMatrix(nil)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestAttackSummaryRendering(t *testing.T) {
	res := &attack.Result{
		Name:        "mnist/baseline",
		Events:      []march.Event{march.EvCacheMisses, march.EvBranches},
		Classes:     []int{1, 2},
		ProfileRuns: 10,
		AttackRuns:  4,
		K:           3,
		Template:    attack.NewConfusionMatrix([]int{1, 2}),
		KNN:         attack.NewConfusionMatrix([]int{1, 2}),
	}
	for _, cm := range []*attack.ConfusionMatrix{res.Template, res.KNN} {
		cm.Record(1, 1)
		cm.Record(2, 2)
	}
	var b strings.Builder
	if err := AttackSummary(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"mnist/baseline", "cache-misses,branches", "10 profiling + 4 attack runs", "gaussian template attack:", "3-NN attack:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attack summary missing %q:\n%s", want, out)
		}
	}
}

func TestArchIDSummaryRendering(t *testing.T) {
	res := &archid.Result{
		Attack: &attack.Result{
			Name:        "mnist-archid/constant-time",
			Events:      []march.Event{march.EvCacheMisses, march.EvBranches},
			Classes:     []int{0, 1},
			ProfileRuns: 8,
			AttackRuns:  4,
			K:           5,
			Template:    attack.NewConfusionMatrix([]int{0, 1}),
			KNN:         attack.NewConfusionMatrix([]int{0, 1}),
		},
		Specs: []archid.SpecInfo{
			{ID: 0, Name: "mlp-64", Family: "mlp", Depth: 2, Width: 64, Layers: 4},
			{ID: 1, Name: "cnn-8-16", Family: "cnn", Depth: 3, Width: 16, Pool: true, Layers: 8},
		},
		Evidence: []archid.LayerEvidence{
			{ArchID: 0, Name: "mlp-64", Layers: 4, Kinds: map[string]int{"dense": 2, "relu": 1, "flatten": 1}},
			{ArchID: 1, Name: "cnn-8-16", Layers: 8, Kinds: map[string]int{"conv": 2, "relu": 2, "pool": 2, "flatten": 1, "dense": 1}},
		},
		Level:  defense.ConstantTime,
		Padded: true,
	}
	for _, cm := range []*attack.ConfusionMatrix{res.Attack.Template, res.Attack.KNN} {
		cm.Record(0, 0)
		cm.Record(1, 1)
	}
	var b strings.Builder
	if err := ArchIDSummary(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mnist-archid/constant-time", "envelope-padded", "candidate zoo:",
		"mlp-64", "cnn-8-16", "architecture recovery", "layer evidence",
		"conv×2", "dense×2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("archid summary missing %q:\n%s", want, out)
		}
	}
	if err := ZooTable(&b, nil); err == nil {
		t.Fatal("empty zoo accepted")
	}
	if err := LayerEvidenceTable(&b, nil); err == nil {
		t.Fatal("empty evidence accepted")
	}
}

func TestHistogramPanel(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	if err := HistogramPanel(&b, "Figure 3(a)", r, march.EvCacheMisses, 20, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "category 1") || !strings.Contains(out, "category 2") {
		t.Fatalf("panel missing categories:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Fatalf("panel has no bars:\n%s", out)
	}
	if err := HistogramPanel(&b, "x", r, march.EvCycles, 10, 5); err == nil {
		t.Fatal("missing event accepted")
	}
}

func TestHistogramPanelDefaults(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	if err := HistogramPanel(&b, "defaults", r, march.EvBranches, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	if err := CSV(&b, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header + 2 events × 2 classes × 5 runs = 21 lines.
	if len(lines) != 21 {
		t.Fatalf("CSV has %d lines, want 21", len(lines))
	}
	if lines[0] != "event,class,run,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "cache-misses,1,0,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestSummaryTable(t *testing.T) {
	r := fakeReport()
	var b strings.Builder
	SummaryTable(&b, r)
	out := b.String()
	if !strings.Contains(out, "mean") || !strings.Contains(out, "cache-misses:") {
		t.Fatalf("summary malformed:\n%s", out)
	}
}

func TestTopoSummaryRendering(t *testing.T) {
	res := &topo.Result{
		Name:    "mnist-topo/baseline",
		Events:  []march.Event{march.EvInstructions, march.EvL1DLoads},
		Quantum: 5000,
		TrainSpecs: []nn.SpecInfo{
			{ID: 0, Name: "cnn-r-k3-8-pool", Family: "cnn", Depth: 2, Width: 8, Pool: true, Layers: 6},
		},
		HoldoutSpecs: []nn.SpecInfo{
			{ID: 0, Name: "mlp-r-64-48", Family: "mlp", Depth: 3, Width: 64, Layers: 6},
		},
		Kinds:      []string{"conv", "dense", "pool", "relu"},
		ChanceKind: 0.25,
		Victims: []topo.VictimResult{
			{
				ArchID: 0, Name: "mlp-r-64-48",
				True: []topo.LayerTruth{
					{Kind: "dense", Param: 64}, {Kind: "relu"}, {Kind: "dense", Param: 48},
				},
				Recovered: []topo.LayerGuess{
					{Kind: "dense", Param: 64}, {Kind: "relu"}, {Kind: "dense", Param: 46},
				},
				ExactCount: true, BoundaryMatch: true,
				KindAccuracy: 1, ParamRelErr: 0.02, FootprintRelErr: 0.01,
			},
			{
				ArchID: 1, Name: "cnn-r-k5-12-pool",
				True:         []topo.LayerTruth{{Kind: "conv", Param: 12, Kernel: 5}, {Kind: "relu"}},
				Recovered:    []topo.LayerGuess{{Kind: "conv", Param: 108, Kernel: 3}},
				KindAccuracy: 0.5, ParamRelErr: -1, FootprintRelErr: -1,
			},
		},
		ExactCountRate:      0.5,
		MeanKindAccuracy:    0.75,
		MeanParamRelErr:     0.02,
		MeanFootprintRelErr: 0.01,
	}
	var b strings.Builder
	if err := TopoSummary(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mnist-topo/baseline", "instructions,L1-dcache-loads",
		"training zoo (attacker-profiled):", "held-out victims (never profiled):",
		"cnn-r-k3-8-pool", "mlp-r-64-48",
		"exact layer-count rate 50%", "kind accuracy 75%", "chance 25%",
		"dense(64)", "dense(48)", "* dense(46)", "conv(12,k5)", "conv(108,k3)",
		"unverifiable",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("topo summary missing %q:\n%s", want, out)
		}
	}
	// Matching positions must not carry a mismatch mark.
	if strings.Contains(out, "* relu") {
		t.Fatalf("matching layer marked as mismatch:\n%s", out)
	}
	if err := ReconstructionTable(&b, nil); err == nil {
		t.Fatal("empty victim list accepted")
	}
}
