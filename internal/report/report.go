// Package report renders the evaluation results in the forms the paper
// presents them: the t/p tables (Tables 1 and 2), per-category event
// distributions as ASCII histograms (Figures 3 and 4), per-category bar
// charts of mean counts (Figure 1), CSV export for external plotting, and
// confusion matrices for the attack stage's recovery results.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/archid"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TTable renders the paper's Table 1/2 layout: one row per category pair,
// t and p columns per event.
func TTable(w io.Writer, r *core.Report, events ...march.Event) error {
	if len(events) == 0 {
		events = r.Dists.Events
	}
	byPair := map[[2]int]map[march.Event]core.PairTest{}
	var pairs [][2]int
	for _, t := range r.Tests {
		key := [2]int{t.ClassA, t.ClassB}
		if _, ok := byPair[key]; !ok {
			byPair[key] = map[march.Event]core.PairTest{}
			pairs = append(pairs, key)
		}
		byPair[key][t.Event] = t
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})

	header := fmt.Sprintf("%-8s", "")
	for _, e := range events {
		header += fmt.Sprintf("  %24s", e.String())
	}
	sub := fmt.Sprintf("%-8s", "pair")
	for range events {
		sub += fmt.Sprintf("  %12s%12s", "t-value", "p-value")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	fmt.Fprintln(w, sub)
	alpha := r.Config.Alpha
	for _, p := range pairs {
		row := fmt.Sprintf("t%d,%d    ", p[0], p[1])
		for _, e := range events {
			t, ok := byPair[p][e]
			if !ok {
				row += fmt.Sprintf("  %12s%12s", "-", "-")
				continue
			}
			mark := " "
			if t.Distinguishable(alpha) {
				mark = "*" // the paper bold-faces distinguishable pairs
			}
			row += fmt.Sprintf("  %11.4f%s%12s", t.Result.T, mark, formatP(t.Result.P))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "(* = distinguishable at %g%% confidence)\n", 100*(1-alpha))
	return nil
}

// formatP renders p-values the way the paper does: "≈0" below 1e-4.
func formatP(p float64) string {
	if p < 1e-4 {
		return "≈0"
	}
	return fmt.Sprintf("%.4f", p)
}

// Alarms prints every raised alarm, or an all-clear line.
func Alarms(w io.Writer, r *core.Report) {
	if !r.Leaky() {
		fmt.Fprintf(w, "no alarms: distributions indistinguishable for all monitored events (%s)\n", r.Name)
		return
	}
	for _, a := range r.Alarms {
		fmt.Fprintln(w, a.String())
	}
	fmt.Fprintf(w, "%d alarm(s) raised for %s\n", len(r.Alarms), r.Name)
}

// BarChart renders per-class mean values of one event as an ASCII bar
// chart — the Figure 1 layout.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if len(values) == 0 {
		return fmt.Errorf("report: empty bar chart")
	}
	if width <= 0 {
		width = 50
	}
	maxV := math.NaN()
	for _, v := range values {
		// NaN never wins a comparison, so it must not seed the scan either
		// (a NaN maxV would poison every division below).
		if !math.IsNaN(v) && (math.IsNaN(maxV) || v > maxV) {
			maxV = v
		}
	}
	if math.IsNaN(maxV) || maxV <= 0 {
		maxV = 1
	}
	fmt.Fprintln(w, title)
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, v := range values {
		// Clamp at zero: a negative (or NaN) value must render an empty bar,
		// not panic strings.Repeat with a negative count.
		n := 0
		if frac := v / maxV; frac > 0 {
			n = int(frac * float64(width))
		}
		fmt.Fprintf(w, "  %-*s  %s %.1f\n", labW, labels[i], strings.Repeat("█", n), v)
	}
	return nil
}

// Confusion renders one attacker's confusion matrix — rows are true
// categories, columns recovered ones — with an accuracy-vs-chance line.
func Confusion(w io.Writer, title string, cm *attack.ConfusionMatrix) error {
	if cm == nil || len(cm.Classes) == 0 {
		return fmt.Errorf("report: empty confusion matrix")
	}
	fmt.Fprintln(w, title)
	header := fmt.Sprintf("  %-10s", "true\\pred")
	for _, pred := range cm.Classes {
		header += fmt.Sprintf("%8d", pred)
	}
	fmt.Fprintln(w, header)
	for _, truth := range cm.Classes {
		row := fmt.Sprintf("  %-10d", truth)
		for _, pred := range cm.Classes {
			row += fmt.Sprintf("%8d", cm.Matrix[truth][pred])
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "  accuracy %.1f%% over %d attack runs (chance %.1f%%)\n",
		100*cm.Accuracy(), cm.Total, 100*cm.ChanceLevel())
	return nil
}

// AttackSummary renders a full attack-stage result: campaign metadata and
// the confusion matrices of both attackers.
func AttackSummary(w io.Writer, r *attack.Result) error {
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	fmt.Fprintf(w, "attack campaign %s: events %s, %d profiling + %d attack runs per category, kNN k=%d\n",
		r.Name, strings.Join(names, ","), r.ProfileRuns, r.AttackRuns, r.K)
	if err := Confusion(w, "gaussian template attack:", r.Template); err != nil {
		return err
	}
	return Confusion(w, fmt.Sprintf("%d-NN attack:", r.K), r.KNN)
}

// nameColumn sizes an architecture-name column to its longest entry plus
// a separating space (random spec names are unbounded, so a fixed width
// would eventually merge columns).
func nameColumn(names func(i int) string, n int) int {
	w := 18
	for i := 0; i < n; i++ {
		if l := len(names(i)) + 2; l > w {
			w = l
		}
	}
	return w
}

// ZooTable renders the fingerprinting hypothesis space: one row per
// candidate architecture with its class label and hyper-parameters.
func ZooTable(w io.Writer, specs []archid.SpecInfo) error {
	if len(specs) == 0 {
		return fmt.Errorf("report: empty zoo")
	}
	nameW := nameColumn(func(i int) string { return specs[i].Name }, len(specs))
	fmt.Fprintf(w, "  %-4s%-*s%-8s%8s%8s%8s%8s\n", "id", nameW, "architecture", "family", "depth", "width", "pool", "layers")
	for _, s := range specs {
		pool := "-"
		if s.Pool {
			pool = "yes"
		}
		fmt.Fprintf(w, "  %-4d%-*s%-8s%8d%8d%8s%8d\n", s.ID, nameW, s.Name, s.Family, s.Depth, s.Width, pool, s.Layers)
	}
	return nil
}

// LayerEvidenceTable renders the per-architecture layer evidence: the
// CSI-NN-style layer counts and kind histograms an instrumenting analyst
// recovers alongside the counter-level fingerprint.
func LayerEvidenceTable(w io.Writer, evidence []archid.LayerEvidence) error {
	if len(evidence) == 0 {
		return fmt.Errorf("report: empty layer evidence")
	}
	nameW := nameColumn(func(i int) string { return evidence[i].Name }, len(evidence))
	fmt.Fprintf(w, "  %-4s%-*s%8s  %s\n", "id", nameW, "architecture", "layers", "kinds")
	for _, ev := range evidence {
		kinds := make([]string, 0, len(ev.Kinds))
		for k := range ev.Kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s×%d", k, ev.Kinds[k])
		}
		fmt.Fprintf(w, "  %-4d%-*s%8d  %s\n", ev.ArchID, nameW, ev.Name, ev.Layers, strings.Join(parts, " "))
	}
	return nil
}

// ArchIDSummary renders a full fingerprinting result: the zoo, both
// attackers' confusion matrices over architecture labels, and the layer
// evidence.
func ArchIDSummary(w io.Writer, r *archid.Result) error {
	names := make([]string, len(r.Attack.Events))
	for i, e := range r.Attack.Events {
		names[i] = e.String()
	}
	pad := ""
	if r.Padded {
		pad = ", envelope-padded"
	}
	fmt.Fprintf(w, "archid campaign %s: events %s, %d profiling + %d attack runs per architecture, kNN k=%d (defense %s%s)\n",
		r.Attack.Name, strings.Join(names, ","), r.Attack.ProfileRuns, r.Attack.AttackRuns, r.Attack.K, r.Level, pad)
	fmt.Fprintln(w, "candidate zoo:")
	if err := ZooTable(w, r.Specs); err != nil {
		return err
	}
	if err := Confusion(w, "gaussian template attack (architecture recovery):", r.Attack.Template); err != nil {
		return err
	}
	if err := Confusion(w, fmt.Sprintf("%d-NN attack (architecture recovery):", r.Attack.K), r.Attack.KNN); err != nil {
		return err
	}
	fmt.Fprintln(w, "layer evidence (instrumented attribution):")
	return LayerEvidenceTable(w, r.Evidence)
}

// SpecTable renders a hypothesis space: one row per architecture with its
// class label and hyper-parameters (the generic form of ZooTable, shared
// by the archid zoo and the topo train/holdout zoos).
func SpecTable(w io.Writer, specs []nn.SpecInfo) error {
	return ZooTable(w, specs)
}

// describeLayer renders one (true or recovered) layer compactly.
func describeLayer(kind string, param, kernel int) string {
	switch kind {
	case "conv":
		return fmt.Sprintf("conv(%d,k%d)", param, kernel)
	case "dense":
		return fmt.Sprintf("dense(%d)", param)
	default:
		return kind
	}
}

// ReconstructionTable renders the recovered-vs-true spec diff of every
// victim: one block per victim with the two layer stacks aligned
// position-by-position, mismatches marked with '*', plus the per-victim
// scores.
func ReconstructionTable(w io.Writer, victims []topo.VictimResult) error {
	if len(victims) == 0 {
		return fmt.Errorf("report: no victims to render")
	}
	for _, v := range victims {
		count := "exact"
		if !v.ExactCount {
			count = fmt.Sprintf("%d/%d layers", len(v.Recovered), len(v.True))
		}
		fmt.Fprintf(w, "  victim %d %s (%s, kind %.0f%%", v.ArchID, v.Name, count, 100*v.KindAccuracy)
		if v.ParamRelErr >= 0 {
			fmt.Fprintf(w, ", param err %.0f%%", 100*v.ParamRelErr)
		}
		if v.FootprintRelErr >= 0 {
			fmt.Fprintf(w, ", footprint err %.1f%%", 100*v.FootprintRelErr)
		} else {
			fmt.Fprint(w, ", unverifiable")
		}
		fmt.Fprintln(w, "):")
		n := len(v.True)
		if len(v.Recovered) > n {
			n = len(v.Recovered)
		}
		for i := 0; i < n; i++ {
			truth, rec := "-", "-"
			if i < len(v.True) {
				truth = describeLayer(v.True[i].Kind, v.True[i].Param, v.True[i].Kernel)
			}
			if i < len(v.Recovered) {
				rec = describeLayer(v.Recovered[i].Kind, v.Recovered[i].Param, v.Recovered[i].Kernel)
			}
			mark := " "
			if truth != rec {
				mark = "*"
			}
			fmt.Fprintf(w, "    %2d  %-16s %s %-16s\n", i, truth, mark, rec)
		}
	}
	return nil
}

// TopoSummary renders a full topology-recovery result: the two hypothesis
// spaces, the aggregates, and the per-victim reconstruction diffs.
func TopoSummary(w io.Writer, r *topo.Result) error {
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	pad := ""
	if r.Padded {
		pad = ", envelope-padded"
	}
	fmt.Fprintf(w, "topology-recovery campaign %s: events %s, %d training architectures, %d held-out victims, quantum %d (defense %s%s)\n",
		r.Name, strings.Join(names, ","), len(r.TrainSpecs), len(r.HoldoutSpecs), r.Quantum, r.Level, pad)
	fmt.Fprintln(w, "training zoo (attacker-profiled):")
	if err := SpecTable(w, r.TrainSpecs); err != nil {
		return err
	}
	fmt.Fprintln(w, "held-out victims (never profiled):")
	if err := SpecTable(w, r.HoldoutSpecs); err != nil {
		return err
	}
	fmt.Fprintf(w, "exact layer-count rate %.0f%%, kind accuracy %.0f%% (chance %.0f%% over %s)",
		100*r.ExactCountRate, 100*r.MeanKindAccuracy, 100*r.ChanceKind, strings.Join(r.Kinds, "/"))
	if r.MeanParamRelErr >= 0 {
		fmt.Fprintf(w, ", hyper-parameter err %.0f%%", 100*r.MeanParamRelErr)
	}
	if r.MeanFootprintRelErr >= 0 {
		fmt.Fprintf(w, ", footprint err %.1f%%", 100*r.MeanFootprintRelErr)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "reconstructions (true | recovered):")
	return ReconstructionTable(w, r.Victims)
}

// HistogramPanel renders the per-class distributions of one event as
// side-by-side ASCII histograms — the Figure 3/4 layout.
func HistogramPanel(w io.Writer, title string, r *core.Report, e march.Event, bins, height int) error {
	if bins <= 0 {
		bins = 30
	}
	if height <= 0 {
		height = 8
	}
	// Common range across classes so the separation is visible.
	lo, hi := 0.0, 0.0
	first := true
	for _, cls := range r.Dists.Classes {
		xs := r.Dists.Get(e, cls)
		if len(xs) == 0 {
			continue
		}
		l, h := stats.MinMax(xs)
		if first {
			lo, hi, first = l, h, false
		} else {
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
	}
	if first {
		return fmt.Errorf("report: no samples for event %s", e)
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s — %s (range %.0f … %.0f)\n", title, e, lo, hi)
	for _, cls := range r.Dists.Classes {
		xs := r.Dists.Get(e, cls)
		h, err := stats.NewHistogram(xs, lo, hi, bins)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  category %d (n=%d, mean %.1f, sd %.1f):\n", cls, len(xs),
			stats.Mean(xs), stats.StdDev(xs))
		renderHistogram(w, h, height)
	}
	return nil
}

// renderHistogram draws one histogram as `height` rows of block glyphs.
func renderHistogram(w io.Writer, h *stats.Histogram, height int) {
	maxC := h.MaxCount()
	if maxC == 0 {
		fmt.Fprintln(w, "    (empty)")
		return
	}
	for row := height; row >= 1; row-- {
		var b strings.Builder
		b.WriteString("    ")
		threshold := float64(row-1) / float64(height)
		for _, c := range h.Counts {
			frac := float64(c) / float64(maxC)
			if frac > threshold {
				b.WriteString("█")
			} else {
				b.WriteString(" ")
			}
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintf(w, "    %s\n", strings.Repeat("─", len(h.Counts)))
}

// CSV writes the raw distributions as event,class,run,value rows for
// external plotting.
func CSV(w io.Writer, r *core.Report) error {
	if _, err := fmt.Fprintln(w, "event,class,run,value"); err != nil {
		return err
	}
	for _, e := range r.Dists.Events {
		for _, cls := range r.Dists.Classes {
			for i, v := range r.Dists.Get(e, cls) {
				if _, err := fmt.Fprintf(w, "%s,%d,%d,%.0f\n", e, cls, i, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SummaryTable prints per-class descriptive statistics for every event.
func SummaryTable(w io.Writer, r *core.Report) {
	for _, e := range r.Dists.Events {
		fmt.Fprintf(w, "%s:\n", e)
		fmt.Fprintf(w, "  %-10s%10s%12s%12s%12s%12s\n", "class", "n", "mean", "sd", "min", "max")
		for _, cls := range r.Dists.Classes {
			s := r.Dists.Summary(e, cls)
			fmt.Fprintf(w, "  %-10d%10d%12.1f%12.1f%12.0f%12.0f\n", cls, s.N, s.Mean, s.StdDev, s.Min, s.Max)
		}
	}
}
