package lint

// nanconv: int(x) where x is a float is platform-defined when x is NaN or
// out of the integer's range (the PR 2 histogram bug: int(NaN) differs
// across architectures, which broke cross-platform byte identity). In the
// numeric packages that feed reports (dataset, report, stats), every
// float→int conversion must either be guarded (math.IsNaN / explicit
// clamping visibly dominating the conversion) or annotated with the
// reason it cannot see a NaN.
//
// A conversion is considered guarded when the enclosing function calls
// math.IsNaN or math.IsInf before it (the early-return guard idiom) —
// Floor/Ceil/Round/Trunc do NOT count, they preserve NaN. Compile-time
// constant operands are exempt.

import (
	"go/ast"
	"go/types"
)

// Nanconv is the float→int conversion analyzer.
var Nanconv = &Analyzer{
	Name: "nanconv",
	Doc:  "flags int(float) conversions of possibly-NaN values in the report-feeding numeric packages",
	Run:  runNanconv,
}

// nanconvPkgs are the numeric packages whose values reach serialized
// reports.
var nanconvPkgs = []string{
	"repro/internal/dataset",
	"repro/internal/report",
	"repro/internal/stats",
}

func runNanconv(pass *Pass) {
	if !pass.ExplicitDir {
		in := false
		for _, p := range nanconvPkgs {
			if pathIn(pass.Path, p) {
				in = true
				break
			}
		}
		if !in {
			return
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || !isConversion(pass.Info, call) {
				return true
			}
			to := pass.Info.TypeOf(call.Fun)
			from := pass.Info.TypeOf(call.Args[0])
			if to == nil || from == nil || !isInteger(to) || !isFloat(from) {
				return true
			}
			if constantOperand(pass.Info, call.Args[0]) {
				return true
			}
			if nanGuarded(pass, file, call) {
				return true
			}
			pass.Reportf(call.Pos(), "int conversion of float %s: int(NaN) and out-of-range values are platform-defined (guard with math.IsNaN/IsInf or clamp first)",
				exprString(pass.Fset, call.Args[0]))
			return true
		})
	}
}

// constantOperand reports whether the converted expression is a
// compile-time constant (cannot be NaN at runtime).
func constantOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// nanGuarded reports whether the enclosing function visibly tests for
// NaN/Inf before the conversion: a call to math.IsNaN or math.IsInf
// anywhere in the same function at an earlier position (the early-return
// guard idiom) or in an enclosing if condition. The match is syntactic,
// not dataflow — it exists to make the protection reviewable at the
// conversion site; a guard on the wrong variable still reads as intent
// and the allow directive covers genuinely unguardable sites.
func nanGuarded(pass *Pass, file *ast.File, call *ast.CallExpr) bool {
	body := enclosingFuncBody(file, call.Pos())
	if body == nil {
		return false
	}
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CallExpr)
		if !ok || cc.Pos() >= call.Pos() {
			return !guarded
		}
		if isPkgFunc(pass.Info, cc, "math", "IsNaN") || isPkgFunc(pass.Info, cc, "math", "IsInf") {
			guarded = true
		}
		return !guarded
	})
	return guarded
}
