package lint

// The analyzer fixture harness: each analyzer owns a fixture package
// under testdata/src/<name>/ whose flagged lines carry analysistest-style
// `// want "substring"` comments. The harness loads the directory the way
// `detlint -dir` does and demands an exact match — every want satisfied
// by a diagnostic on its line, every diagnostic claimed by a want.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted substrings of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantKey locates one expectation: fixture file base name and line.
type wantKey struct {
	file string
	line int
}

// parseWants scans a fixture directory's Go files for want comments.
func parseWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[wantKey][]string{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := wantKey{file: e.Name(), line: i + 1}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				wants[key] = append(wants[key], q[1])
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", dir)
	}
	return wants
}

// TestAnalyzerFixtures runs every analyzer over its fixture package and
// matches the diagnostics against the want comments.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			wants := parseWants(t, dir)

			for _, d := range diags {
				if d.Analyzer != a.Name && d.Analyzer != "detlint" {
					t.Errorf("diagnostic from foreign analyzer %s: %s", d.Analyzer, d)
					continue
				}
				key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
				matched := false
				for i, w := range wants[key] {
					if strings.Contains(d.Message, w) {
						wants[key] = append(wants[key][:i], wants[key][i+1:]...)
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, ws := range wants {
				for _, w := range ws {
					t.Errorf("%s:%d: expected diagnostic containing %q, got none", key.file, key.line, w)
				}
			}
		})
	}
}

// TestEveryAnalyzerHasFixtures fails when an analyzer is added to All()
// without a fixture package of pass/fail cases.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name)
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("analyzer %s has no fixture package: %v", a.Name, err)
		}
	}
}

// TestRunOrdersDiagnostics pins Run's stable diagnostic order, which the
// dirty-fixture meta-test and editor integrations rely on.
func TestRunOrdersDiagnostics(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "maporder"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Maporder})
	if len(diags) < 2 {
		t.Fatalf("want ≥2 diagnostics from the maporder fixture, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	for _, d := range diags {
		want := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if d.String() != want {
			t.Errorf("Diagnostic.String() = %q, want %q", d.String(), want)
		}
	}
}
