package lint

// Unit tests for the //detlint:allow directive grammar: both separators,
// the mandatory reason, unknown-analyzer rejection, and the two-line
// suppression window (own line + the line below).

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirectives runs parseAllows over one source string and returns the
// index plus any malformed-directive diagnostics.
func parseDirectives(t *testing.T, src string, known map[string]bool) (allowIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	idx := parseAllows(fset, f, known, func(d Diagnostic) { diags = append(diags, d) })
	return idx, diags
}

var knownAnalyzers = map[string]bool{"maporder": true, "seedpurity": true}

func TestAllowDirectiveSeparators(t *testing.T) {
	for _, sep := range []string{"—", "--"} {
		src := "package p\n\n//detlint:allow maporder " + sep + " keys feed an order-insensitive set\nvar x int\n"
		idx, diags := parseDirectives(t, src, knownAnalyzers)
		if len(diags) != 0 {
			t.Fatalf("separator %q: unexpected diagnostics %v", sep, diags)
		}
		// The directive sits on line 3 and governs lines 3 and 4.
		for _, line := range []int{3, 4} {
			if !idx.suppressed(token.Position{Filename: "fixture.go", Line: line}, "maporder") {
				t.Errorf("separator %q: line %d not suppressed", sep, line)
			}
		}
		if idx.suppressed(token.Position{Filename: "fixture.go", Line: 5}, "maporder") {
			t.Errorf("separator %q: directive leaked past its two-line window", sep)
		}
	}
}

func TestAllowDirectiveIsAnalyzerScoped(t *testing.T) {
	src := "package p\n\n//detlint:allow maporder — only maporder is waived here\nvar x int\n"
	idx, diags := parseDirectives(t, src, knownAnalyzers)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics %v", diags)
	}
	if idx.suppressed(token.Position{Filename: "fixture.go", Line: 4}, "seedpurity") {
		t.Error("a maporder allow must not suppress seedpurity findings")
	}
}

func TestAllowDirectiveRequiresReason(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//detlint:allow maporder\nvar x int\n",
		"package p\n\n//detlint:allow maporder —\nvar x int\n",
		"package p\n\n//detlint:allow maporder --   \nvar x int\n",
	} {
		idx, diags := parseDirectives(t, src, knownAnalyzers)
		if len(diags) != 1 {
			t.Fatalf("want exactly 1 missing-reason diagnostic, got %v", diags)
		}
		if d := diags[0]; d.Analyzer != "detlint" || !strings.Contains(d.Message, "missing its reason") {
			t.Errorf("wrong diagnostic for reasonless allow: %s", d)
		}
		if idx.suppressed(token.Position{Filename: "fixture.go", Line: 4}, "maporder") {
			t.Error("a reasonless allow must not suppress anything")
		}
	}
}

func TestAllowDirectiveUnknownAnalyzer(t *testing.T) {
	src := "package p\n\n//detlint:allow sortorder — typo for maporder\nvar x int\n"
	idx, diags := parseDirectives(t, src, knownAnalyzers)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "sortorder"`) {
		t.Fatalf("want unknown-analyzer diagnostic, got %v", diags)
	}
	if idx.suppressed(token.Position{Filename: "fixture.go", Line: 4}, "maporder") {
		t.Error("an unknown-analyzer allow must not suppress anything")
	}
}

func TestAllowDirectiveMalformed(t *testing.T) {
	// No analyzer name at all: the directive is rejected outright.
	src := "package p\n\n//detlint:allow — just a reason, no analyzer\nvar x int\n"
	_, diags := parseDirectives(t, src, knownAnalyzers)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "unknown analyzer") && !strings.Contains(diags[0].Message, "malformed allow directive") {
		t.Errorf("wrong diagnostic for malformed allow: %s", diags[0])
	}
}

func TestAllowDirectiveTrailing(t *testing.T) {
	src := "package p\n\nvar x = 0 //detlint:allow seedpurity — trailing form governs its own line\n"
	idx, diags := parseDirectives(t, src, knownAnalyzers)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics %v", diags)
	}
	if !idx.suppressed(token.Position{Filename: "fixture.go", Line: 3}, "seedpurity") {
		t.Error("trailing allow must suppress findings on its own line")
	}
}
