package lint

// Package loading for the analyzers. detlint cannot depend on
// golang.org/x/tools (this module is dependency-free by policy), so the
// load path is built on the stdlib alone: `go list -export -deps -json`
// enumerates the packages matching the requested patterns together with
// the compiled export data of every dependency, and go/types re-checks
// each target package's syntax against that export data. The result is
// the same (Files, Pkg, TypesInfo) triple golang.org/x/tools/go/analysis
// passes hand to analyzers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/march"). For
	// LoadDir packages it is synthetic ("detlintdir/<base>").
	Path string
	// Fset positions every file in the load (shared across packages).
	Fset *token.FileSet
	// Files is the package's parsed syntax, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// ExplicitDir marks packages loaded by LoadDir (detlint -dir): the
	// caller pointed at the directory deliberately, so analyzers that
	// normally restrict themselves to configured repo paths run
	// unconditionally.
	ExplicitDir bool
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function resolving import paths
// to compiled export data produced by `go list -export`.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load enumerates, parses and type-checks the module packages matching
// patterns (e.g. "./..."), rooted at dir. Test files are excluded: the
// determinism invariants detlint enforces are about shipped campaign
// code, and tests legitimately use wall clocks and ad-hoc seeds.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error", "--"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		pkg, info, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files that is
// not necessarily visible to `go list` (fixture trees under testdata/,
// scratch dirs). Imports are resolved by asking `go list -export` for
// exactly the packages the files mention.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Collect the import paths the fixture mentions and fetch their
	// export data in one go list run.
	paths := map[string]bool{}
	for _, f := range files {
		for _, im := range f.Imports {
			if p, err := strconv.Unquote(im.Path.Value); err == nil && p != "C" {
				paths[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		sorted := make([]string, 0, len(paths))
		for p := range paths {
			sorted = append(sorted, p)
		}
		sort.Strings(sorted)
		args := append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export,Error", "--"}, sorted...)
		listed, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	path := "detlintdir/" + filepath.Base(dir)
	pkg, info, err := check(fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info, ExplicitDir: true}, nil
}

// CheckUnit type-checks one already-parsed package against dependency
// export data resolved by exportFile (import path → export file), and
// wraps it for analysis. It is the load path of the `go vet -vettool`
// protocol, where the vet config supplies what `go list -export` supplies
// standalone.
func CheckUnit(fset *token.FileSet, importPath string, files []*ast.File, exportFile func(string) (string, bool)) (*Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFile(path)
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, info, err := check(fset, importPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// check type-checks one package's files, returning the full Info tables
// the analyzers consume.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}
