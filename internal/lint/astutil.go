package lint

// Shared AST/type helpers for the analyzers.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprString renders an expression as source text for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// calleeFunc resolves a call's callee to its types.Func (package-level
// function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether a call invokes the package-level function
// pkgPath.name (not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= lo && obj.Pos() <= hi
}

// objectOf resolves an identifier (possibly parenthesized) to its object.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in file containing pos, or nil.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos > n.End() {
			return n == nil
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}

// pathIn reports whether path is pkg or a package under pkg/.
func pathIn(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// isFloat reports whether t's underlying basic type is floating point.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t's underlying basic type is an integer.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
