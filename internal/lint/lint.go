// Package lint is detlint: a suite of static analyzers encoding this
// repository's determinism and hot-path invariants. Every headline result
// here rests on campaigns being byte-identical at workers=1≡N and
// processes=1≡N; the analyzers close the classes of bug that silently
// break that property (unsorted map iteration reaching output, impure
// seeds in deterministic packages, ad-hoc JSON of bare maps outside the
// canonical wire layer, allocations creeping into the 0-alloc hot paths,
// and int(float) conversions of possibly-NaN values).
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the stdlib alone, because this module takes
// no dependencies. See cmd/detlint for the standalone and go vet -vettool
// entry points.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check. Run inspects the Pass's package and reports
// findings through Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (package, analyzer) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path analyzers use for scope decisions.
	Path string
	// ExplicitDir is true when the package was loaded from an explicit
	// directory (detlint -dir, fixture suites): path-scoped analyzers
	// then run unconditionally.
	ExplicitDir bool

	allows allowIndex
	out    *[]Diagnostic
}

// Reportf records a finding at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.out = append(*p.out, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Maporder, Seedpurity, Wiredigest, Allocpath, Nanconv}
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics sorted by position. Malformed allow directives
// surface as analyzer "detlint" findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// Directives are validated against the full registry, not the subset
	// being run: an allow naming a real analyzer stays valid under
	// `-run`, and one naming a typo is flagged no matter the subset.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := allowIndex{}
		for _, f := range pkg.Files {
			for file, byLine := range parseAllows(pkg.Fset, f, known, func(d Diagnostic) { diags = append(diags, d) }) {
				if allows[file] == nil {
					allows[file] = byLine
					continue
				}
				for line, as := range byLine {
					allows[file][line] = append(allows[file][line], as...)
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, Info: pkg.Info,
				Path: pkg.Path, ExplicitDir: pkg.ExplicitDir,
				allows: allows, out: &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
