package lint

// allocpath: the simulator's hot paths (cache Hierarchy.Access, the
// Engine load/store path, the PMU steady-state measure path) are pinned
// at 0 allocs/op by the runtime allocgate (`make allocgate`). That gate
// catches a regression only after the allocation ships; this analyzer
// catches it at review time. A function opts in with the marker
//
//	//detlint:allocpath
//
// in its doc comment (the functions named by the allocgate carry it), and
// every heap-allocating construct inside is flagged: make/new, append
// (growth allocates), composite literals of reference types, closures
// (captured variables escape), string concatenation and string↔[]byte
// conversions. Constructs that are provably compile-time-stack-allocated
// in context still count — the gate's contract is "no allocating
// constructs on this path", which is what keeps it reviewable.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocpathMarker opts a function into the analyzer.
const allocpathMarker = "detlint:allocpath"

// Allocpath is the 0-alloc hot-path analyzer.
var Allocpath = &Analyzer{
	Name: "allocpath",
	Doc:  "flags heap-allocating constructs inside functions marked //detlint:allocpath (the allocgate's 0-alloc hot paths)",
	Run:  runAllocpath,
}

func runAllocpath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAllocpathMarker(fd) {
				continue
			}
			checkAllocs(pass, fd)
		}
	}
}

// hasAllocpathMarker reports whether the function's doc comment carries
// the //detlint:allocpath marker.
func hasAllocpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), allocpathMarker) {
			return true
		}
	}
	return false
}

func checkAllocs(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass.Info, n, "make"):
				pass.Reportf(n.Pos(), "make on 0-alloc path %s: allocates", name)
			case isBuiltin(pass.Info, n, "new"):
				pass.Reportf(n.Pos(), "new on 0-alloc path %s: allocates", name)
			case isBuiltin(pass.Info, n, "append"):
				pass.Reportf(n.Pos(), "append on 0-alloc path %s: growth allocates (preallocate capacity outside the hot path)", name)
			case isConversion(pass.Info, n) && stringBytesConversion(pass.Info, n):
				pass.Reportf(n.Pos(), "string/[]byte conversion on 0-alloc path %s: copies and allocates", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure on 0-alloc path %s: captured variables escape to the heap", name)
			return false
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(n.Pos(), "%s literal on 0-alloc path %s: allocates", typeKind(t), name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "address of composite literal on 0-alloc path %s: escapes to the heap", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation on 0-alloc path %s: allocates", name)
					}
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch on 0-alloc path %s", name)
		}
		return true
	})
}

// stringBytesConversion matches string([]byte) and []byte(string).
func stringBytesConversion(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}
