package lint

// wiredigest: the distributed audit fabric's PayloadDigest is only
// well-defined because every byte that crosses the wire goes through the
// canonical encode helpers in internal/pipeline (JSON objects keyed by
// event name; encode∘decode∘encode is the identity on bytes). JSON
// encoding of a *bare* (unnamed) map anywhere else is how a second,
// uncanonical wire format sneaks in: the literal relies implicitly on
// encoding/json's key sorting, carries no schema, and a later switch to
// another encoder (gob, a streaming writer) silently breaks byte
// identity. Flagged:
//
//   - json.Marshal / json.MarshalIndent / (*json.Encoder).Encode of a
//     value whose type is, or contains at the top level (behind
//     pointers/slices/arrays), an unnamed map type;
//   - the same bare-map values passed to a local helper that forwards its
//     parameter into one of those encoders (one level of indirection —
//     the writeJSON(w, code, v) pattern).
//
// Named map types (hpc.Profile) and structs are fine: they are schema.
// The canonical wire layer itself (repro/internal/pipeline) is exempt.

import (
	"go/ast"
	"go/types"
)

// Wiredigest is the ad-hoc JSON wire-format analyzer.
var Wiredigest = &Analyzer{
	Name: "wiredigest",
	Doc:  "flags JSON encoding of bare map types outside the canonical pipeline wire layer",
	Run:  runWiredigest,
}

// wireLayerPkg is the canonical encode/decode layer, exempt by design.
const wireLayerPkg = "repro/internal/pipeline"

func runWiredigest(pass *Pass) {
	if !pass.ExplicitDir && pass.Path == wireLayerPkg {
		return
	}
	sinks := encodeSinks(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, idx := range encodeArgIndices(pass, call, sinks) {
				if idx >= len(call.Args) {
					continue
				}
				arg := call.Args[idx]
				if t := pass.Info.TypeOf(arg); t != nil && bareMap(t) {
					pass.Reportf(arg.Pos(), "bare map %s encoded as JSON outside the canonical wire layer: give it a named type or struct schema (or route it through the pipeline encode helpers)",
						exprString(pass.Fset, arg))
				}
			}
			return true
		})
	}
}

// encodeArgIndices returns the argument positions of call that are JSON
// encoded: arg 0 for the json entry points, and the sink parameter
// positions for local forwarding helpers.
func encodeArgIndices(pass *Pass, call *ast.CallExpr, sinks map[types.Object][]int) []int {
	if isJSONEncodeCall(pass.Info, call) {
		return []int{0}
	}
	if f := calleeFunc(pass.Info, call); f != nil {
		if idxs, ok := sinks[f]; ok {
			return idxs
		}
	}
	return nil
}

// isJSONEncodeCall matches json.Marshal, json.MarshalIndent and
// (*json.Encoder).Encode.
func isJSONEncodeCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "encoding/json" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return f.Name() == "Marshal" || f.Name() == "MarshalIndent"
	}
	return f.Name() == "Encode"
}

// encodeSinks finds package-level functions that forward a parameter into
// a JSON encoder (one level deep), mapping the function object to the
// forwarded parameter indices.
func encodeSinks(pass *Pass) map[types.Object][]int {
	sinks := map[types.Object][]int{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			params := map[types.Object]int{}
			i := 0
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if p := pass.Info.Defs[name]; p != nil {
							params[p] = i
						}
						i++
					}
					if len(field.Names) == 0 {
						i++
					}
				}
			}
			var idxs []int
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isJSONEncodeCall(pass.Info, call) || len(call.Args) == 0 {
					return true
				}
				if p := objectOf(pass.Info, call.Args[0]); p != nil {
					if idx, isParam := params[p]; isParam {
						idxs = append(idxs, idx)
					}
				}
				return true
			})
			if len(idxs) > 0 {
				sinks[obj] = idxs
			}
		}
	}
	return sinks
}

// bareMap reports whether t is an unnamed map type, possibly behind
// pointers, slices or arrays. Named map types are schema and pass.
func bareMap(t types.Type) bool {
	for range 8 {
		switch u := t.(type) {
		case *types.Map:
			return true
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return false
		}
	}
	return false
}
