// Package fixture exercises the allocpath analyzer: heap-allocating
// constructs inside functions marked //detlint:allocpath fail; unmarked
// functions, allocation-free bodies and reasoned allows pass.
package fixture

type point struct{ x, y int }

//detlint:allocpath
func failMake(n int) []int {
	return make([]int, n) // want "make on 0-alloc path failMake"
}

//detlint:allocpath
func failNew() *point {
	return new(point) // want "new on 0-alloc path failNew"
}

//detlint:allocpath
func failAppend(xs []int, x int) []int {
	return append(xs, x) // want "append on 0-alloc path failAppend"
}

//detlint:allocpath
func failConvert(s string) []byte {
	return []byte(s) // want "conversion on 0-alloc path failConvert"
}

//detlint:allocpath
func failClosure(xs []int) func() int {
	return func() int { return len(xs) } // want "closure on 0-alloc path failClosure"
}

//detlint:allocpath
func failMapLit() map[string]int {
	return map[string]int{} // want "map literal on 0-alloc path failMapLit"
}

//detlint:allocpath
func failAddrLit() *point {
	return &point{x: 1} // want "address of composite literal on 0-alloc path failAddrLit"
}

//detlint:allocpath
func failConcat(a, b string) string {
	return a + b // want "string concatenation on 0-alloc path failConcat"
}

//detlint:allocpath
func failGo(f func()) {
	go f() // want "goroutine launch on 0-alloc path failGo"
}

// passUnmarked allocates freely: it never opted into the gate.
func passUnmarked(n int) []int {
	return make([]int, n)
}

// passHot is a marked body that stays allocation-free.
//
//detlint:allocpath
func passHot(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// passAllowed allocates on a marked path with its reason on record.
//
//detlint:allocpath
func passAllowed(n int) []int {
	//detlint:allow allocpath — fixture: cold-start slab, runs once per campaign
	return make([]int, n)
}
