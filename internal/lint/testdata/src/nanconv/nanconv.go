// Package fixture exercises the nanconv analyzer: unguarded int(float)
// conversions fail; constant operands, IsNaN/IsInf-guarded functions and
// reasoned allows pass. The directory is loaded explicitly, so the
// analyzer treats it as a report-feeding numeric package.
package fixture

import "math"

// failPlain converts an arbitrary float with no guard in sight.
func failPlain(x float64) int {
	return int(x) // want "int conversion of float x"
}

// failExpr converts a ratio that can be NaN (0/0).
func failExpr(a, b float64) int64 {
	return int64(a / b) // want "int conversion of float"
}

// failRounded: Floor preserves NaN, so rounding is not a guard.
func failRounded(x float64) int {
	return int(math.Floor(x)) // want "int conversion of float"
}

// passConst: compile-time constants cannot be NaN.
func passConst() int {
	return int(2.0)
}

// passGuarded rejects NaN/Inf before converting.
func passGuarded(x float64) int {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return int(x)
}

// passAllowed documents why the value cannot be NaN.
func passAllowed(x float64) int {
	//detlint:allow nanconv — fixture: x is a bounded ratio by construction
	return int(x)
}

// passIntToInt: integer-to-integer conversions are out of scope.
func passIntToInt(x int32) int { return int(x) }

// passFloatToFloat: float-to-float conversions are out of scope.
func passFloatToFloat(x float64) float32 { return float32(x) }
