// Package fixture exercises the maporder analyzer: order-dependent
// reductions inside range-over-map loops fail; the sorted-keys idiom,
// commuting reductions and reasoned allows pass.
package fixture

import (
	"fmt"
	"os"
	"sort"
)

// failAppend collects map keys without ever sorting them.
func failAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys depends on map iteration order"
	}
	return keys
}

// failPrint emits formatted output inside the range.
func failPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf output depends on map iteration order"
	}
}

// failWrite writes through an io.Writer method inside the range.
func failWrite(m map[string]int, w *os.File) {
	for k := range m {
		w.WriteString(k) // want "WriteString output depends on map iteration order"
	}
}

// failFloatAccum accumulates a float sum across iterations.
func failFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum depends on map iteration order"
	}
	return sum
}

// failFloatAssign spells the same accumulation as x = x + v.
func failFloatAssign(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "floating-point accumulation into sum depends on map iteration order"
	}
	return sum
}

// passSorted is the sorted-keys idiom: the collected slice is sorted
// before anything observes its order.
func passSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// passSortSlice sorts via sort.Slice instead of sort.Strings.
func passSortSlice(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// passIntSum: integer accumulation commutes exactly.
func passIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// passKeyedStore: stores keyed by the range variable commute.
func passKeyedStore(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// passLocalAppend: the appended slice is per-iteration local, so order
// cannot outlive the loop.
func passLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// passAllowed carries a reasoned allow for deliberate order dependence.
func passAllowed(m map[string]int) {
	for k := range m {
		//detlint:allow maporder — fixture: order dependence is deliberate here
		fmt.Println(k)
	}
}
