// Package fixture exercises the wiredigest analyzer: JSON encoding of
// bare (unnamed) map types fails, directly or through a local forwarding
// helper; named map types and structs are schema and pass.
package fixture

import (
	"encoding/json"
	"net/http"
)

// Profile is a named map type: schema, passes.
type Profile map[string]float64

// result is a struct schema, passes.
type result struct {
	Name string `json:"name"`
}

// failMarshal encodes a bare map directly.
func failMarshal(m map[string]int) ([]byte, error) {
	return json.Marshal(m) // want "bare map m encoded as JSON"
}

// failIndent encodes a bare map literal.
func failIndent() ([]byte, error) {
	return json.MarshalIndent(map[string]any{"k": 1}, "", "  ") // want "encoded as JSON outside the canonical wire layer"
}

// failEncoder streams a bare map through a json.Encoder.
func failEncoder(enc *json.Encoder, m map[string][]int) error {
	return enc.Encode(m) // want "bare map m encoded as JSON"
}

// failViaSink forwards a bare map through the local writeJSON helper.
func failViaSink(w http.ResponseWriter, m map[string]string) {
	writeJSON(w, 200, m) // want "bare map m encoded as JSON"
}

// passNamed: named map types carry their schema in the type name.
func passNamed(p Profile) ([]byte, error) {
	return json.Marshal(p)
}

// passStruct: structs are schema.
func passStruct(r result) ([]byte, error) {
	return json.Marshal(r)
}

// passSinkStruct: structs pass through sinks too.
func passSinkStruct(w http.ResponseWriter, r result) {
	writeJSON(w, 200, r)
}

// writeJSON forwards v into a JSON encoder — the one-level indirection
// the analyzer resolves as an encode sink.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
