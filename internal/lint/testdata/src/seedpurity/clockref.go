// The clock-ownership half of the seedpurity fixture: bare references
// to the wall-clock functions fail — assigning time.Now to a variable
// smuggles the clock past a call-site-only check — while time injected
// behind a clock interface (the internal/obs pattern) passes.
package fixture

import "time"

// failClockValue captures the wall-clock function itself.
var failClockValue = time.Now // want "taken as a value"

// failSinceValue hands the elapsed-time function to a caller.
func failSinceValue() func(time.Time) time.Duration {
	return time.Since // want "taken as a value"
}

// clock mirrors obs.Clock: the injectable time source instrumented
// packages use instead of reading the time package directly.
type clock interface {
	Now() time.Time
}

// passInjectedClock reads time through an injected clock — the
// sanctioned pattern. The interface method call never names the time
// package, so determinism reviews see exactly where wall time enters.
func passInjectedClock(c clock) time.Time {
	return c.Now()
}

// passTimeValues: time.Time values and arithmetic over them are fine —
// only the ambient clock sources are banned, not the time package.
func passTimeValues(a, b time.Time) time.Duration {
	return b.Sub(a)
}
