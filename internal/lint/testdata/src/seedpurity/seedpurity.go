// Package fixture exercises the seedpurity analyzer: wall clocks, pids
// and non-seed-derived randomness fail; seed-traceable sources and
// reasoned allows pass. The directory is loaded explicitly, so the
// analyzer treats it as a deterministic package.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

const baseSeed = 42

// failClock reads the wall clock.
func failClock() int64 {
	return time.Now().UnixNano() // want "wall clock in deterministic package"
}

// failSince measures elapsed wall time.
func failSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock in deterministic package"
}

// failPid reads process identity.
func failPid() int {
	return os.Getpid() // want "os.Getpid in deterministic package"
}

// failGlobalRand draws from the process-global source.
func failGlobalRand() int {
	return rand.Intn(10) // want "global math/rand source in deterministic package"
}

// failUntraceable seeds a source from a value with no seed lineage.
func failUntraceable(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x)) // want "not traceable to a campaign seed"
}

// passSeeded: the argument names a seed.
func passSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// passDerived: arithmetic over seed-named values stays traceable.
func passDerived(shardSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(shardSeed ^ baseSeed))
}

// passConst: a literal seed is deterministic by definition.
func passConst() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// passAllowed carries a reasoned allow for a display-only timestamp.
func passAllowed() time.Time {
	//detlint:allow seedpurity — fixture: display-only timestamp, never reaches campaign bytes
	return time.Now()
}
