// Package dirty is detlint's end-to-end failure fixture: one finding per
// analyzer plus one malformed allow directive. cmd/detlint's meta-test
// runs the real binary over this directory and pins the exact
// diagnostics against expected.txt.
package dirty

import (
	"encoding/json"
	"math/rand"
)

// Keys returns m's keys in raw iteration order.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6)
}

// Wire JSON-encodes a bare map.
func Wire(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}

// Sum is a marked hot path that allocates.
//
//detlint:allocpath
func Sum(xs []int) []int {
	return append(xs[:0:0], xs...)
}

// Bucket converts an unguarded float, under an allow that is missing its
// mandatory reason (itself a diagnostic, and suppressing nothing).
func Bucket(x float64) int {
	//detlint:allow nanconv
	return int(x)
}
