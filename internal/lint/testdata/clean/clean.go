// Package clean is detlint's end-to-end pass fixture: the near-miss
// idiom for every analyzer, all diagnostic-free. cmd/detlint's meta-test
// runs the real binary over this directory and demands zero findings.
package clean

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Profile is a named map type: schema for the wire.
type Profile map[string]float64

// Keys returns m's keys deterministically via the sorted-keys idiom.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Roll draws from a seed-derived source.
func Roll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// Wire encodes a named map type, not a bare one.
func Wire(p Profile) ([]byte, error) {
	return json.Marshal(p)
}

// Sum is a marked hot path that stays allocation-free.
//
//detlint:allocpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Bucket guards the float→int conversion against NaN and Inf.
func Bucket(x float64) int {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return int(x)
}

// Stamp is display-only telemetry, with its reason on record.
func Stamp() time.Time {
	//detlint:allow seedpurity — display-only operator telemetry, never reaches campaign bytes
	return time.Now()
}
