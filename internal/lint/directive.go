package lint

// Suppression directives. A finding that is deliberate is annotated in
// source:
//
//	//detlint:allow <analyzer> — <reason>
//
// The separator may be an em-dash or "--"; the reason is mandatory — an
// allow without one is itself a diagnostic (and cannot be suppressed), so
// every silenced finding carries its justification in the code. The
// directive silences matching diagnostics reported on its own line or on
// the line directly below it (i.e. it may trail the statement or sit on
// its own line above it).

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// directivePrefix introduces an allow directive comment.
const directivePrefix = "detlint:allow"

// allow is one parsed //detlint:allow directive.
type allow struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// allowIndex maps file name → line → directives governing that line.
type allowIndex map[string]map[int][]*allow

// parseAllows scans a file's comments for allow directives. Malformed
// directives (unknown analyzer, missing reason) are reported through
// report as analyzer "detlint"; those diagnostics are not suppressible.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Diagnostic)) allowIndex {
	idx := allowIndex{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			name := rest
			reason := ""
			for _, sep := range []string{"—", "--"} {
				if i := strings.Index(rest, sep); i >= 0 {
					name = strings.TrimSpace(rest[:i])
					reason = strings.TrimSpace(rest[i+len(sep):])
					break
				}
			}
			pos := fset.Position(c.Pos())
			if name == "" || strings.ContainsAny(name, " \t") {
				report(Diagnostic{Pos: pos, Analyzer: "detlint",
					Message: "malformed allow directive: want //detlint:allow <analyzer> — <reason>"})
				continue
			}
			if known != nil && !known[name] {
				report(Diagnostic{Pos: pos, Analyzer: "detlint",
					Message: "allow directive names unknown analyzer " + strconv.Quote(name)})
				continue
			}
			if reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "detlint",
					Message: "allow directive for " + name + " is missing its reason (//detlint:allow " + name + " — <reason>)"})
				continue
			}
			byLine := idx[pos.Filename]
			if byLine == nil {
				byLine = map[int][]*allow{}
				idx[pos.Filename] = byLine
			}
			// The directive governs its own line (trailing comment) and the
			// next line (comment above the statement).
			a := &allow{analyzer: name, reason: reason, pos: c.Pos()}
			byLine[pos.Line] = append(byLine[pos.Line], a)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], a)
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from analyzer at pos is covered
// by an allow directive, marking the directive used.
func (idx allowIndex) suppressed(pos token.Position, analyzer string) bool {
	for _, a := range idx[pos.Filename][pos.Line] {
		if a.analyzer == analyzer {
			a.used = true
			return true
		}
	}
	return false
}
