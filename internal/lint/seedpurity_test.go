package lint

import (
	"path/filepath"
	"testing"
)

// TestSeedpurityExemptsObsClockOwner: internal/obs is the repo's one
// sanctioned wall-clock owner — it reads time.Now directly to implement
// obs.Clock — and must stay finding-free without allow directives even
// when loaded explicitly (detlint -dir), which normally runs the
// path-scoped analyzers unconditionally.
func TestSeedpurityExemptsObsClockOwner(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("..", "obs"))
	if err != nil {
		t.Fatal(err)
	}
	if !pkg.ExplicitDir {
		t.Fatal("LoadDir package not marked ExplicitDir; the exemption would not be exercised")
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{Seedpurity}) {
		t.Errorf("seedpurity flagged the sanctioned clock owner: %s", d)
	}
}
