package lint

// seedpurity: in the deterministic packages — the ones whose outputs must
// be byte-identical for any worker/process count — every source of
// randomness or ambient process state is banned unless it is derived from
// a campaign seed. Flagged:
//
//   - time.Now / time.Since (wall clock), called or taken as a value,
//   - os.Getpid (process identity),
//   - the global math/rand functions (process-global, cross-goroutine
//     nondeterministic source),
//   - rand.NewSource(x) where x is not traceable to a seed: the argument
//     must be built from literals, constants, identifiers or fields whose
//     name mentions "seed", or calls into the seed-derivation helpers
//     (core.DeriveSeed / SplitMix64) — the repo's seed-domain idiom.
//
// internal/obs is the one sanctioned clock owner: all wall-clock reads
// live there behind the injectable obs.Clock, so the analyzer exempts it
// entirely (even under -dir) and everything else routes clocks through
// an obs.Recorder or obs.Clock. Remaining display-only uses that cannot
// (IO deadlines) carry //detlint:allow seedpurity — <reason>.

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seedpurity is the deterministic-package purity analyzer.
var Seedpurity = &Analyzer{
	Name: "seedpurity",
	Doc:  "flags wall clocks, pids and non-seed-derived randomness inside the deterministic packages",
	Run:  runSeedpurity,
}

// deterministicPkgs are the packages whose outputs feed golden reports
// and fabric digests. internal/march covers its subpackages (cache,
// branch, mem); the two cmd entries are the fabric's OS-process surface,
// where stray ambient state would corrupt digested bytes.
var deterministicPkgs = []string{
	"repro",
	"repro/internal/march",
	"repro/internal/core",
	"repro/internal/pipeline",
	"repro/internal/fabric",
	"repro/internal/nn",
	"repro/internal/attack",
	"repro/internal/archid",
	"repro/internal/topo",
	"repro/cmd/audit-server",
	"repro/cmd/shardworker",
}

// inDeterministicScope reports whether the pass's package is covered.
func inDeterministicScope(pass *Pass) bool {
	if pass.ExplicitDir {
		return true
	}
	for _, p := range deterministicPkgs {
		if pathIn(pass.Path, p) {
			return true
		}
	}
	return false
}

func runSeedpurity(pass *Pass) {
	// internal/obs is the sole sanctioned clock owner: its whole purpose
	// is wrapping the wall clock behind the injectable obs.Clock, so it
	// is exempt even when pointed at explicitly. The suffix match covers
	// both the module path and the synthetic detlintdir/obs path a
	// `detlint -dir internal/obs` load produces.
	if pathIn(pass.Path, "repro/internal/obs") || strings.HasSuffix(pass.Path, "/obs") {
		return
	}
	if !inDeterministicScope(pass) {
		return
	}
	for _, file := range pass.Files {
		// Selector expressions that are a call's operator are diagnosed as
		// calls; the second walk flags the remaining *value* references
		// (e.g. `clock := time.Now`), which smuggle the wall clock past a
		// call-site-only check.
		asCallee := map[ast.Expr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				asCallee[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				call := n
				switch {
				case isPkgFunc(pass.Info, call, "time", "Now"), isPkgFunc(pass.Info, call, "time", "Since"):
					pass.Reportf(call.Pos(), "wall clock in deterministic package %s: campaign bytes must not depend on time (route clocks through internal/obs)", pass.Path)
				case isPkgFunc(pass.Info, call, "os", "Getpid"):
					pass.Reportf(call.Pos(), "os.Getpid in deterministic package %s: campaign bytes must not depend on process identity", pass.Path)
				case globalRandCall(pass.Info, call):
					pass.Reportf(call.Pos(), "global math/rand source in deterministic package %s: use rand.New(rand.NewSource(seed)) with a campaign-derived seed", pass.Path)
				case isPkgFunc(pass.Info, call, "math/rand", "NewSource") || isPkgFunc(pass.Info, call, "math/rand/v2", "NewPCG"):
					if len(call.Args) > 0 && !allTraceable(pass.Info, call.Args) {
						pass.Reportf(call.Pos(), "rand source seeded by %s, which is not traceable to a campaign seed (only literals, *seed* identifiers and seed-derivation calls pass)",
							exprString(pass.Fset, call.Args[0]))
					}
				}
			case *ast.SelectorExpr:
				if asCallee[ast.Expr(n)] {
					return true
				}
				if isTimeClockRef(pass.Info, n) {
					pass.Reportf(n.Pos(), "wall-clock function time.%s taken as a value in deterministic package %s: inject an obs.Clock instead", n.Sel.Name, pass.Path)
				}
			}
			return true
		})
	}
}

// isTimeClockRef reports whether sel references the time.Now or
// time.Since function itself (not as a call).
func isTimeClockRef(info *types.Info, sel *ast.SelectorExpr) bool {
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
		return false
	}
	return f.Name() == "Now" || f.Name() == "Since"
}

// globalRandCall reports whether the call uses math/rand's process-global
// source (any package-level function other than the constructors).
func globalRandCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	switch f.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false // constructors; their seed arguments are checked separately
	}
	return true
}

// allTraceable reports whether every expression derives from seeds.
func allTraceable(info *types.Info, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !traceableSeed(info, e) {
			return false
		}
	}
	return true
}

// traceableSeed reports whether e is plausibly derived from a seed: a
// constant, a *seed*-named identifier/field, a call into a seed
// derivation helper, or arithmetic over such values.
func traceableSeed(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if _, isConst := info.Uses[e].(*types.Const); isConst {
			return true
		}
		return seedName(e.Name)
	case *ast.SelectorExpr:
		if _, isConst := info.Uses[e.Sel].(*types.Const); isConst {
			return true
		}
		return seedName(e.Sel.Name)
	case *ast.UnaryExpr:
		return traceableSeed(info, e.X)
	case *ast.BinaryExpr:
		return traceableSeed(info, e.X) && traceableSeed(info, e.Y)
	case *ast.CallExpr:
		if isConversion(info, e) {
			return allTraceable(info, e.Args)
		}
		if f := calleeFunc(info, e); f != nil {
			n := strings.ToLower(f.Name())
			if strings.Contains(n, "seed") || strings.Contains(n, "splitmix") {
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		return traceableSeed(info, e.X)
	}
	return false
}

// seedName reports whether an identifier names a seed-carrying value.
func seedName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "seed") || strings.Contains(n, "domain")
}
