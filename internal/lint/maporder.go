package lint

// maporder: flag `for … range` over a map whose body performs an
// order-dependent reduction — appending to a slice that outlives the
// loop, writing through an io.Writer/encoder, formatting output, or
// accumulating floating-point sums. Go randomizes map iteration order, so
// any of these makes the function's output depend on the run, which is
// exactly the class of bug the workers=1≡N / processes=1≡N guarantee
// cannot survive.
//
// Two idioms pass without annotation:
//
//   - writes keyed by the range variable (m2[k] = v): map/slice indexed
//     stores commute, so iteration order cannot be observed;
//   - the sorted-keys idiom: a loop that only collects keys/values into a
//     slice which is subsequently passed to a sort call in the same
//     function (sort.Strings(keys), sort.Ints, sort.Slice, slices.Sort…)
//     — the sort erases the iteration order before anything observes it.
//
// Anything else needs //detlint:allow maporder — <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder is the order-dependent map-iteration analyzer.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops whose body is an order-dependent reduction (slice append, writer/encoder output, float accumulation)",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, file, rs)
			return true
		})
	}
}

// checkMapRange inspects one range-over-map body for order-dependent
// reductions.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	mapText := exprString(pass.Fset, rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges report on their own.
			if n != rs {
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rs, n, mapText)
		case *ast.CallExpr:
			if name, ok := outputCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(), "range over map %s: %s output depends on map iteration order (iterate sorted keys instead)", mapText, name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags order-dependent assignments inside a map
// range: appends to slices that outlive the loop (unless the sorted-keys
// idiom) and floating-point accumulation into variables that outlive the
// loop.
func checkMapRangeAssign(pass *Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt, mapText string) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass.Info, call, "append") || i >= len(as.Lhs) {
				continue
			}
			target := objectOf(pass.Info, as.Lhs[i])
			if target == nil || declaredWithin(target, rs.Body.Pos(), rs.Body.End()) {
				continue // per-iteration local; order cannot outlive the loop
			}
			if sortedLater(pass, file, rs, target) {
				continue // sorted-keys idiom
			}
			pass.Reportf(as.Pos(), "range over map %s: append to %s depends on map iteration order (collect and sort keys first, or sort %s before use)", mapText, target.Name(), target.Name())
		}
		// Float re-accumulation spelled x = x + v.
		if as.Tok == token.ASSIGN && len(as.Lhs) == 1 {
			if target := objectOf(pass.Info, as.Lhs[0]); target != nil && isFloat(target.Type()) &&
				!declaredWithin(target, rs.Body.Pos(), rs.Body.End()) &&
				selfReferential(pass.Info, as.Lhs[0], as.Rhs[0]) {
				pass.Reportf(as.Pos(), "range over map %s: floating-point accumulation into %s depends on map iteration order (sum over sorted keys)", mapText, target.Name())
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		target := objectOf(pass.Info, as.Lhs[0])
		if target == nil {
			// Indexed stores (m[k] += v) keyed by the range variable are
			// handled conservatively: only flat identifiers are checked.
			return
		}
		if isFloat(target.Type()) && !declaredWithin(target, rs.Body.Pos(), rs.Body.End()) {
			pass.Reportf(as.Pos(), "range over map %s: floating-point accumulation into %s depends on map iteration order (sum over sorted keys)", mapText, target.Name())
		}
	}
}

// selfReferential reports whether rhs mentions the same object lhs names
// (the x = x + v accumulation shape).
func selfReferential(info *types.Info, lhs, rhs ast.Expr) bool {
	target := objectOf(info, lhs)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// sortedLater reports whether target is passed to a sort call after the
// range statement in the same function — the collect-then-sort idiom.
func sortedLater(pass *Pass, file *ast.File, rs *ast.RangeStmt, target types.Object) bool {
	body := enclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || !isSortFunc(f.Pkg().Path(), f.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if objectOf(pass.Info, arg) == target {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// isSortFunc matches the sort/slices calls that erase collection order:
// sort.Ints/Strings/Float64s/Slice/SliceStable/Sort/Stable and the
// slices.Sort* family.
func isSortFunc(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// outputCall reports whether a call writes or formats output: io.Writer /
// encoder methods and fmt print functions. These make map iteration order
// directly observable in the produced bytes.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	name := f.Name()
	if sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteRecord", "Encode", "EncodeToken", "Printf", "Print", "Println", "Fprintf":
			return name, true
		}
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		// Sprint*/Append* are purely functional — their results are only
		// order-visible where they flow, which the append/write checks
		// catch — so only direct emission is flagged here.
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			return "fmt." + name, true
		}
	}
	return "", false
}
