package instrument

import (
	"strings"
	"testing"

	"repro/internal/march"
)

func TestAttributionMatchesPlainClassify(t *testing.T) {
	a, net := buildClassifier(t, Options{SparsitySkip: true})
	b, _ := buildClassifier(t, Options{SparsitySkip: true})
	_ = net
	img := randImage(21)
	plain, err := a.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	attributed, layers, err := b.ClassifyWithAttribution(img)
	if err != nil {
		t.Fatal(err)
	}
	if plain != attributed {
		t.Fatalf("attributed classify predicted %d, plain %d", attributed, plain)
	}
	// One entry per layer plus the runtime pseudo-layer.
	// tiny arch: conv relu pool conv relu pool flatten dense = 8 layers.
	if len(layers) != 9 {
		t.Fatalf("attribution has %d entries, want 9", len(layers))
	}
	if layers[len(layers)-1].Kind != "runtime" || layers[len(layers)-1].Index != -1 {
		t.Fatal("runtime pseudo-layer missing or misplaced")
	}
}

func TestAttributionSumsToTotal(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: 4})
	img := randImage(22)
	before := c.Engine().Counts()
	_, layers, err := c.ClassifyWithAttribution(img)
	if err != nil {
		t.Fatal(err)
	}
	total := c.Engine().Counts().Sub(before)
	var sum march.Counts
	for _, lc := range layers {
		for i := range sum {
			sum[i] += lc.Counts[i]
		}
	}
	// The attribution misses only the input streaming store and the argmax
	// scan (tiny); instructions must agree within 1%.
	si := sum.Get(march.EvInstructions)
	ti := total.Get(march.EvInstructions)
	diff := float64(int64(ti) - int64(si))
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(ti) > 0.01 {
		t.Fatalf("attributed instructions %d vs total %d", si, ti)
	}
}

func TestAttributionConvDominatesForConvNet(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	_, layers, err := c.ClassifyWithAttribution(randImage(23))
	if err != nil {
		t.Fatal(err)
	}
	var convInstr, otherInstr uint64
	for _, lc := range layers {
		if lc.Kind == "conv" {
			convInstr += lc.Counts.Get(march.EvInstructions)
		} else if lc.Kind != "runtime" {
			otherInstr += lc.Counts.Get(march.EvInstructions)
		}
	}
	if convInstr <= otherInstr {
		t.Fatalf("conv layers (%d instr) not dominant over others (%d)", convInstr, otherInstr)
	}
}

func TestAttributionRejectsWrongShape(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	if _, _, err := c.ClassifyWithAttribution(randImage(1).Clone()); err != nil {
		t.Fatal(err) // correct shape must pass
	}
	bad := randImage(1)
	bad.Shape = []int{4, 4, 1}
	bad.Data = bad.Data[:16]
	if _, _, err := c.ClassifyWithAttribution(bad); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestRenderAttribution(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	_, layers, err := c.ClassifyWithAttribution(randImage(24))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderAttribution(&b, layers)
	out := b.String()
	if !strings.Contains(out, "conv") || !strings.Contains(out, "runtime") {
		t.Fatalf("attribution table malformed:\n%s", out)
	}
	if !strings.Contains(out, "cache-misses") {
		t.Fatalf("default events missing:\n%s", out)
	}
	b.Reset()
	RenderAttribution(&b, layers, march.EvCycles)
	if !strings.Contains(b.String(), "cycles") {
		t.Fatal("custom event column missing")
	}
}
