package instrument

import (
	"strings"
	"testing"

	"repro/internal/march"
)

func TestAttributionMatchesPlainClassify(t *testing.T) {
	a, net := buildClassifier(t, Options{SparsitySkip: true})
	b, _ := buildClassifier(t, Options{SparsitySkip: true})
	_ = net
	img := randImage(21)
	plain, err := a.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	attributed, layers, err := b.ClassifyWithAttribution(img)
	if err != nil {
		t.Fatal(err)
	}
	if plain != attributed {
		t.Fatalf("attributed classify predicted %d, plain %d", attributed, plain)
	}
	// One entry per layer plus the runtime pseudo-layer.
	// tiny arch: conv relu pool conv relu pool flatten dense = 8 layers.
	if len(layers) != 9 {
		t.Fatalf("attribution has %d entries, want 9", len(layers))
	}
	if layers[len(layers)-1].Kind != "runtime" || layers[len(layers)-1].Index != -1 {
		t.Fatal("runtime pseudo-layer missing or misplaced")
	}
}

func TestAttributionSumsToTotal(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: 4})
	img := randImage(22)
	before := c.Engine().Counts()
	_, layers, err := c.ClassifyWithAttribution(img)
	if err != nil {
		t.Fatal(err)
	}
	total := c.Engine().Counts().Sub(before)
	var sum march.Counts
	for _, lc := range layers {
		for i := range sum {
			sum[i] += lc.Counts[i]
		}
	}
	// The attribution misses only the input streaming store and the argmax
	// scan (tiny); instructions must agree within 1%.
	si := sum.Get(march.EvInstructions)
	ti := total.Get(march.EvInstructions)
	diff := float64(int64(ti) - int64(si))
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(ti) > 0.01 {
		t.Fatalf("attributed instructions %d vs total %d", si, ti)
	}
}

func TestAttributionConvDominatesForConvNet(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	_, layers, err := c.ClassifyWithAttribution(randImage(23))
	if err != nil {
		t.Fatal(err)
	}
	var convInstr, otherInstr uint64
	for _, lc := range layers {
		if lc.Kind == "conv" {
			convInstr += lc.Counts.Get(march.EvInstructions)
		} else if lc.Kind != "runtime" {
			otherInstr += lc.Counts.Get(march.EvInstructions)
		}
	}
	if convInstr <= otherInstr {
		t.Fatalf("conv layers (%d instr) not dominant over others (%d)", convInstr, otherInstr)
	}
}

func TestAttributionRejectsWrongShape(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	if _, _, err := c.ClassifyWithAttribution(randImage(1).Clone()); err != nil {
		t.Fatal(err) // correct shape must pass
	}
	bad := randImage(1)
	bad.Shape = []int{4, 4, 1}
	bad.Data = bad.Data[:16]
	if _, _, err := c.ClassifyWithAttribution(bad); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

// TestSummarizeAttributionDegenerate is the table-driven hardening suite
// for the attribution consumers: the topology-recovery segmenter feeds on
// these summaries, so empty traces, single layers, runtime-only traces and
// unknown kind strings must all reduce cleanly (non-nil histogram, no
// "" bucket, runtime excluded).
func TestSummarizeAttributionDegenerate(t *testing.T) {
	mk := func(index int, kind string) LayerCounts {
		return LayerCounts{Index: index, Kind: kind}
	}
	cases := []struct {
		name      string
		attr      []LayerCounts
		layers    int
		kinds     map[string]int
		rendered  []string // substrings RenderAttribution must emit
		forbidden []string // substrings it must not emit
	}{
		{
			name:     "empty",
			attr:     nil,
			layers:   0,
			kinds:    map[string]int{},
			rendered: []string{"layer", "(empty attribution)"},
		},
		{
			name:     "single layer",
			attr:     []LayerCounts{mk(0, "dense")},
			layers:   1,
			kinds:    map[string]int{"dense": 1},
			rendered: []string{"dense"},
		},
		{
			name:      "runtime only",
			attr:      []LayerCounts{mk(-1, "runtime")},
			layers:    0,
			kinds:     map[string]int{},
			rendered:  []string{"runtime"},
			forbidden: []string{"(empty attribution)"},
		},
		{
			name:     "unknown kind string",
			attr:     []LayerCounts{mk(0, "conv"), mk(1, "")},
			layers:   2,
			kinds:    map[string]int{"conv": 1, UnknownKind: 1},
			rendered: []string{"conv", UnknownKind},
		},
		{
			name:   "mixed with runtime",
			attr:   []LayerCounts{mk(0, "conv"), mk(1, "relu"), mk(-1, "runtime")},
			layers: 2,
			kinds:  map[string]int{"conv": 1, "relu": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			layers, kinds := SummarizeAttribution(tc.attr)
			if layers != tc.layers {
				t.Fatalf("layers = %d, want %d", layers, tc.layers)
			}
			if kinds == nil {
				t.Fatal("kind histogram is nil")
			}
			if len(kinds) != len(tc.kinds) {
				t.Fatalf("kinds = %v, want %v", kinds, tc.kinds)
			}
			for k, n := range tc.kinds {
				if kinds[k] != n {
					t.Fatalf("kinds[%q] = %d, want %d (full: %v)", k, kinds[k], n, kinds)
				}
			}
			var b strings.Builder
			RenderAttribution(&b, tc.attr)
			out := b.String()
			for _, want := range tc.rendered {
				if !strings.Contains(out, want) {
					t.Fatalf("rendered table missing %q:\n%s", want, out)
				}
			}
			for _, bad := range tc.forbidden {
				if strings.Contains(out, bad) {
					t.Fatalf("rendered table contains %q:\n%s", bad, out)
				}
			}
		})
	}
}

func TestRenderAttribution(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	_, layers, err := c.ClassifyWithAttribution(randImage(24))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderAttribution(&b, layers)
	out := b.String()
	if !strings.Contains(out, "conv") || !strings.Contains(out, "runtime") {
		t.Fatalf("attribution table malformed:\n%s", out)
	}
	if !strings.Contains(out, "cache-misses") {
		t.Fatalf("default events missing:\n%s", out)
	}
	b.Reset()
	RenderAttribution(&b, layers, march.EvCycles)
	if !strings.Contains(b.String(), "cycles") {
		t.Fatal("custom event column missing")
	}
}
