package instrument

import (
	"math/rand"
	"testing"

	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tinyArch keeps instrumented tests fast.
func tinyArch() nn.Arch {
	return nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 3}
}

func buildClassifier(t *testing.T, opts Options) (*Classifier, *nn.Network) {
	t.Helper()
	net, err := nn.Build(tinyArch(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := march.NewEngine(march.Config{Hierarchy: SimHierarchy()})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(net, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, net
}

func randImage(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := tensor.New(12, 12, 1)
	for i := range img.Data {
		// Half the pixels zero: gives the sparsity path real coverage.
		if rng.Float64() < 0.5 {
			img.Data[i] = rng.Float32()
		}
	}
	return img
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestClassifyMatchesReferenceNetwork(t *testing.T) {
	// The instrumented forward pass must compute exactly the same
	// prediction as the reference nn implementation.
	c, net := buildClassifier(t, Options{SparsitySkip: true})
	for seed := int64(0); seed < 12; seed++ {
		img := randImage(seed)
		want, _, err := net.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: instrumented class %d, reference %d", seed, got, want)
		}
	}
}

func TestClassifyAllVariantsAgree(t *testing.T) {
	// Sparsity skip, dense mode and constant-time mode change the hardware
	// footprint, never the arithmetic result.
	variants := []Options{
		{SparsitySkip: true},
		{SparsitySkip: false},
		{ConstantTime: true},
		{SparsitySkip: true, ColdStart: true},
	}
	img := randImage(99)
	var ref int
	for i, opts := range variants {
		c, net := buildClassifier(t, opts)
		got, err := c.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, _, err := net.Predict(img)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("variant 0 disagrees with reference")
			}
			ref = got
		} else if got != ref {
			t.Fatalf("variant %d predicted %d, want %d", i, got, ref)
		}
	}
}

func TestClassifyRejectsWrongShape(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	if _, err := c.Classify(tensor.New(5, 5, 1)); err == nil {
		t.Fatal("wrong input shape accepted")
	}
}

func TestSparsityChangesFootprint(t *testing.T) {
	// A sparser input must retire fewer instructions under SparsitySkip.
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	dense := tensor.New(12, 12, 1)
	for i := range dense.Data {
		dense.Data[i] = 0.5
	}
	sparse := tensor.New(12, 12, 1)
	for i := 0; i < len(sparse.Data); i += 7 {
		sparse.Data[i] = 0.5
	}
	before := c.Engine().Counts()
	if _, err := c.Classify(dense); err != nil {
		t.Fatal(err)
	}
	mid := c.Engine().Counts()
	if _, err := c.Classify(sparse); err != nil {
		t.Fatal(err)
	}
	after := c.Engine().Counts()
	denseInstr := mid.Sub(before).Get(march.EvInstructions)
	sparseInstr := after.Sub(mid).Get(march.EvInstructions)
	if sparseInstr >= denseInstr {
		t.Fatalf("sparse input (%d instr) not cheaper than dense (%d)", sparseInstr, denseInstr)
	}
}

func TestNoSkipEqualizesWork(t *testing.T) {
	// Without the skip (and without ConstantTime), instruction counts for
	// different inputs of the same shape must be identical: the only
	// data-dependent part left is which branches are taken, not how many
	// instructions run. (ReLU's conditional store still differs, so allow
	// a tiny relative gap.)
	c, _ := buildClassifier(t, Options{SparsitySkip: false})
	a := randImage(1)
	b := randImage(2)
	before := c.Engine().Counts()
	if _, err := c.Classify(a); err != nil {
		t.Fatal(err)
	}
	mid := c.Engine().Counts()
	if _, err := c.Classify(b); err != nil {
		t.Fatal(err)
	}
	after := c.Engine().Counts()
	ia := mid.Sub(before).Get(march.EvInstructions)
	ib := after.Sub(mid).Get(march.EvInstructions)
	diff := float64(int64(ia)-int64(ib)) / float64(ia)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Fatalf("no-skip instruction counts differ by %.3f%% (%d vs %d)", diff*100, ia, ib)
	}
}

func TestConstantTimeRemovesDataBranches(t *testing.T) {
	// ConstantTime mode: branch count must be identical across inputs.
	c, _ := buildClassifier(t, Options{ConstantTime: true})
	a := randImage(3)
	b := randImage(4)
	before := c.Engine().Counts()
	if _, err := c.Classify(a); err != nil {
		t.Fatal(err)
	}
	mid := c.Engine().Counts()
	if _, err := c.Classify(b); err != nil {
		t.Fatal(err)
	}
	after := c.Engine().Counts()
	ba := mid.Sub(before).Get(march.EvBranches)
	bb := after.Sub(mid).Get(march.EvBranches)
	if ba != bb {
		t.Fatalf("constant-time branch counts differ: %d vs %d", ba, bb)
	}
	ma := mid.Sub(before).Get(march.EvBranchMisses)
	mb := after.Sub(mid).Get(march.EvBranchMisses)
	if ma != 0 || mb != 0 {
		t.Fatalf("constant-time mode mispredicted (%d, %d)", ma, mb)
	}
}

func TestBranchCountNearlyInputIndependent(t *testing.T) {
	// With the skip enabled, the *number* of data-dependent branches is
	// fixed by the architecture; only loop-overhead branches vary. Total
	// branches across different inputs must agree within a few percent —
	// the property behind the paper's mostly-insignificant Table 1
	// branches column.
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	counts := make([]uint64, 0, 4)
	prev := c.Engine().Counts()
	for seed := int64(10); seed < 14; seed++ {
		if _, err := c.Classify(randImage(seed)); err != nil {
			t.Fatal(err)
		}
		cur := c.Engine().Counts()
		counts = append(counts, cur.Sub(prev).Get(march.EvBranches))
		prev = cur
	}
	lo, hi := counts[0], counts[0]
	for _, v := range counts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if spread := float64(hi-lo) / float64(hi); spread > 0.05 {
		t.Fatalf("branch counts vary by %.1f%% across inputs: %v", spread*100, counts)
	}
}

func TestColdStartIncreasesMisses(t *testing.T) {
	warm, _ := buildClassifier(t, Options{SparsitySkip: true})
	cold, _ := buildClassifier(t, Options{SparsitySkip: true, ColdStart: true})
	img := randImage(7)
	// Warm both with two classifications, then measure the third.
	for i := 0; i < 2; i++ {
		if _, err := warm.Classify(img); err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Classify(img); err != nil {
			t.Fatal(err)
		}
	}
	wBefore := warm.Engine().Counts()
	cBefore := cold.Engine().Counts()
	warm.Classify(img)
	cold.Classify(img)
	wMiss := warm.Engine().Counts().Sub(wBefore).Get(march.EvCacheMisses)
	cMiss := cold.Engine().Counts().Sub(cBefore).Get(march.EvCacheMisses)
	if cMiss <= wMiss {
		t.Fatalf("cold start misses (%d) not above warm (%d)", cMiss, wMiss)
	}
}

func TestRuntimeModelInflatesCounts(t *testing.T) {
	quiet, _ := buildClassifier(t, Options{SparsitySkip: true, Runtime: NoRuntime()})
	loud, _ := buildClassifier(t, Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: 3})
	img := randImage(5)
	qb := quiet.Engine().Counts()
	quiet.Classify(img)
	qd := quiet.Engine().Counts().Sub(qb)
	lb := loud.Engine().Counts()
	loud.Classify(img)
	ld := loud.Engine().Counts().Sub(lb)
	if ld.Get(march.EvInstructions) < 10*qd.Get(march.EvInstructions) {
		t.Fatalf("runtime model did not dominate instructions: %d vs %d",
			ld.Get(march.EvInstructions), qd.Get(march.EvInstructions))
	}
	if ld.Get(march.EvCacheMisses) <= qd.Get(march.EvCacheMisses) {
		t.Fatal("runtime model added no cache misses")
	}
}

func TestRuntimeJitterVariesAcrossRuns(t *testing.T) {
	c, _ := buildClassifier(t, Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: 11})
	img := randImage(6)
	var deltas []uint64
	prev := c.Engine().Counts()
	for i := 0; i < 3; i++ {
		c.Classify(img)
		cur := c.Engine().Counts()
		deltas = append(deltas, cur.Sub(prev).Get(march.EvInstructions))
		prev = cur
	}
	if deltas[0] == deltas[1] && deltas[1] == deltas[2] {
		t.Fatal("runtime jitter produced identical counts for identical inputs")
	}
}

func TestActivationAddressesStableAcrossRuns(t *testing.T) {
	// The arena must be rewound after every classification so a serving
	// process reuses activation buffers (no unbounded growth).
	c, _ := buildClassifier(t, Options{SparsitySkip: true})
	used := c.Engine().Arena().Used()
	for i := 0; i < 5; i++ {
		if _, err := c.Classify(randImage(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Engine().Arena().Used(); got != used {
		t.Fatalf("arena grew across classifications: %d -> %d bytes", used, got)
	}
}

func TestDefaultOptionsAreLeaky(t *testing.T) {
	o := DefaultOptions()
	if !o.SparsitySkip || o.ConstantTime {
		t.Fatalf("DefaultOptions = %+v, want leaky baseline", o)
	}
	if o.Runtime.Ops == 0 {
		t.Fatal("DefaultOptions lacks a runtime model")
	}
}

func TestSimHierarchyGeometry(t *testing.T) {
	h := SimHierarchy()
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d", len(h.Levels))
	}
	if h.Last().Config().Size != 32<<10 {
		t.Fatalf("LLC size = %d, want 32KiB", h.Last().Config().Size)
	}
}

func TestNewEngineHasNoise(t *testing.T) {
	e, err := NewEngine(42)
	if err != nil {
		t.Fatal(err)
	}
	if e.Noise() == nil {
		t.Fatal("NewEngine engine has no noise model")
	}
}
