package instrument

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func batchClassifier(t *testing.T, seed int64) *Classifier {
	t.Helper()
	net, err := nn.Build(nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 3}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := march.NewEngine(march.Config{Hierarchy: SimHierarchy()})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(net, eng, Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func batchImages(n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]*tensor.Tensor, n)
	for k := range imgs {
		img := tensor.New(12, 12, 1)
		for i := range img.Data {
			if rng.Float64() < 0.4 {
				img.Data[i] = 0.3 + rng.Float32()*0.7
			}
		}
		imgs[k] = img
	}
	return imgs
}

// TestClassifyBatchMatchesSequential: a batch must replay the exact
// sequential access sequence — same predictions and the same final
// counter state as calling Classify input by input.
func TestClassifyBatchMatchesSequential(t *testing.T) {
	imgs := batchImages(5, 3)

	seq := batchClassifier(t, 9)
	want := make([]int, len(imgs))
	for i, img := range imgs {
		cls, err := seq.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = cls
	}
	wantCounts := seq.Engine().Counts()

	bat := batchClassifier(t, 9)
	got, err := bat.ClassifyBatch(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch predictions %v, sequential %v", got, want)
	}
	if gotCounts := bat.Engine().Counts(); !reflect.DeepEqual(gotCounts, wantCounts) {
		t.Fatalf("batch final counts diverge from sequential:\nbatch      %+v\nsequential %+v", gotCounts, wantCounts)
	}
}

// TestClassifyBatchWarmStateAttribution: after classifying the same
// inputs via batch or sequentially, a subsequent ClassifyWithAttribution
// must observe byte-identical warm micro-architectural state — same
// prediction and same per-layer counter deltas.
func TestClassifyBatchWarmStateAttribution(t *testing.T) {
	imgs := batchImages(4, 5)
	probe := batchImages(1, 17)[0]

	seq := batchClassifier(t, 21)
	for _, img := range imgs {
		if _, err := seq.Classify(img); err != nil {
			t.Fatal(err)
		}
	}
	wantCls, wantLayers, err := seq.ClassifyWithAttribution(probe)
	if err != nil {
		t.Fatal(err)
	}

	bat := batchClassifier(t, 21)
	if _, err := bat.ClassifyBatch(imgs); err != nil {
		t.Fatal(err)
	}
	gotCls, gotLayers, err := bat.ClassifyWithAttribution(probe)
	if err != nil {
		t.Fatal(err)
	}
	if gotCls != wantCls {
		t.Fatalf("attribution prediction after batch %d, after sequential %d", gotCls, wantCls)
	}
	if !reflect.DeepEqual(gotLayers, wantLayers) {
		t.Fatalf("per-layer attribution diverges after batch:\nbatch      %+v\nsequential %+v", gotLayers, wantLayers)
	}
}

// TestClassifyBatchRejectsBadBatches: validation happens before any
// simulated access, with actionable errors.
func TestClassifyBatchRejectsBadBatches(t *testing.T) {
	c := batchClassifier(t, 1)
	before := c.Engine().Counts()

	if _, err := c.ClassifyBatch(nil); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch error = %v", err)
	}
	if _, err := c.ClassifyBatch([]*tensor.Tensor{}); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("zero-length batch error = %v", err)
	}

	mixed := batchImages(3, 2)
	mixed[1] = tensor.New(28, 28, 1)
	_, err := c.ClassifyBatch(mixed)
	if err == nil || !strings.Contains(err.Error(), "mixed-shape") || !strings.Contains(err.Error(), "input 1") {
		t.Fatalf("mixed-shape batch error = %v", err)
	}

	withNil := batchImages(2, 2)
	withNil[1] = nil
	if _, err := c.ClassifyBatch(withNil); err == nil || !strings.Contains(err.Error(), "input 1 is nil") {
		t.Fatalf("nil input error = %v", err)
	}

	if err := c.ClassifyBatchInto(make([]int, 1), batchImages(2, 2)); err == nil || !strings.Contains(err.Error(), "prediction slots") {
		t.Fatalf("length mismatch error = %v", err)
	}

	// None of the rejected batches may have touched the engine.
	if after := c.Engine().Counts(); !reflect.DeepEqual(after, before) {
		t.Fatalf("rejected batches perturbed counters:\nbefore %+v\nafter  %+v", before, after)
	}
}
