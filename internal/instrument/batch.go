package instrument

import (
	"fmt"

	"repro/internal/tensor"
)

// ValidateBatch checks a batch of inputs before any simulated activity:
// the batch must be non-empty and every input must be non-nil with the
// network's input volume. Mixed-shape batches are rejected with the index
// of the first offending input, so a bad batch never leaves a partially
// executed replay in the counters.
func (c *Classifier) ValidateBatch(imgs []*tensor.Tensor) error {
	if len(imgs) == 0 {
		return fmt.Errorf("instrument: empty batch")
	}
	want := tensor.Volume(c.net.InShape)
	for i, img := range imgs {
		if img == nil {
			return fmt.Errorf("instrument: batch input %d is nil", i)
		}
		if img.Len() != want {
			return fmt.Errorf("instrument: batch input %d has volume %d, want %d (mixed-shape batches are rejected)", i, img.Len(), want)
		}
	}
	return nil
}

// ClassifyBatchInto classifies len(imgs) inputs back-to-back in one
// replay session, writing the predicted class of imgs[i] into preds[i].
// The engine, layer plans, preallocated scratch regions and the runtime
// jitter model are set up once (at construction) and reused across the
// whole batch, and the blocked conv/dense inner loops keep their memoized
// replay state warm from input to input. The whole batch is validated up
// front, before the first simulated access. Each input then replays
// exactly the sequential Classify body, so the simulated access sequence
// — and every counter derived from it — is bit-identical to calling
// Classify len(imgs) times; per-input PMU attribution stays exact (see
// hpc.MeasureBatchInto).
//
//detlint:allocpath
func (c *Classifier) ClassifyBatchInto(preds []int, imgs []*tensor.Tensor) error {
	if len(preds) != len(imgs) {
		return fmt.Errorf("instrument: %d prediction slots for %d batch inputs", len(preds), len(imgs))
	}
	if err := c.ValidateBatch(imgs); err != nil {
		return err
	}
	for i, img := range imgs {
		pred, err := c.Classify(img)
		if err != nil {
			return fmt.Errorf("instrument: batch input %d: %w", i, err)
		}
		preds[i] = pred
	}
	return nil
}

// ClassifyBatch is ClassifyBatchInto allocating the prediction slice.
func (c *Classifier) ClassifyBatch(imgs []*tensor.Tensor) ([]int, error) {
	preds := make([]int, len(imgs))
	if err := c.ClassifyBatchInto(preds, imgs); err != nil {
		return nil, err
	}
	return preds, nil
}
