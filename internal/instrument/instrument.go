// Package instrument executes a trained CNN's forward pass on the
// micro-architecture simulator, element by element, issuing every data
// load/store and every data-dependent branch — this is where the paper's
// side channel comes from.
//
// # Leakage mechanism
//
// The kernels use the sparsity-aware optimization common in CNN inference
// code: the input-stationary convolution tests every input activation and
// skips the whole weight-row walk when the activation is zero. ReLU makes
// post-activation sparsity strongly class-dependent, so both the number of
// cache accesses and their interleaving vary with the input category,
// which the small simulated cache hierarchy turns into class-dependent
// cache-miss counts. Branch *counts* are dominated by architecture-fixed
// tests (one zero-test per activation, one sign-test per ReLU element), so
// the `branches` event varies only weakly with the category — exactly the
// asymmetry of the paper's Tables 1 and 2.
//
// # Runtime model
//
// The paper measures a whole TensorFlow process, whose framework overhead
// (session dispatch, allocator, thread pool) dwarfs the arithmetic: Figure
// 2(b) reports 12×10⁹ instructions for a single 28×28 classification. The
// RuntimeModel injects that surrounding activity statistically (with
// per-run jitter) so absolute magnitudes and within-class spread behave
// like the paper's, while the class-dependent signal comes from the truly
// simulated kernels.
//
// # Hot path
//
// One evaluation campaign replays thousands of classifications, so the
// instrumented kernels are built for throughput without changing a single
// simulated counter:
//
//   - layer dispatch is a closure bound at construction (no per-layer
//     string switch in Classify);
//   - activation regions and output buffers are computed once at
//     construction and reused — Classify performs no arena allocation, no
//     arena reset and no Go heap allocation;
//   - contiguous element walks (conv/dense zero-runs, the ReLU sweep) are
//     emitted through the engine's line-granular batched range API
//     (Engine.LoadRange/StoreRange), and the convolution scatter defers its
//     pure-counter ops (ALU work, loop back-edges) to one flush per element.
//
// Reordering only ever happens between accesses to the *same* cache line
// (plus branch events, which touch no cache state), so cache, TLB,
// predictor and counter state stay bit-identical to the element-by-element
// emission; the golden end-to-end reports pin this.
package instrument

import (
	"fmt"
	"math/rand"

	"repro/internal/march"
	"repro/internal/march/cache"
	"repro/internal/march/mem"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// RuntimeModel is the statistically-modeled framework overhead added per
// classification.
type RuntimeModel struct {
	Ops          uint64  // mean non-branch instructions
	Branches     uint64  // mean branch instructions
	BranchMisses uint64  // mean branch mispredicts
	CacheRefs    uint64  // mean LLC references
	CacheMisses  uint64  // mean LLC misses
	Jitter       float64 // relative per-run sigma on every component
}

// DefaultRuntime approximates a lean single-threaded ML serving loop
// around the kernels (dispatch, allocator, input decode). The component
// means set the perf-stat magnitudes; the jitter is calibrated so the
// runtime's branch-count spread (σ ≈ Branches×Jitter ≈ 5.5k) drowns the
// kernels' small class-dependent branch deltas, while its cache-miss
// spread (σ ≈ 3) stays far below the kernels' class-dependent cache-miss
// deltas — reproducing the asymmetry between the cache-misses and
// branches columns of the paper's Tables 1 and 2.
func DefaultRuntime() RuntimeModel {
	return RuntimeModel{
		Ops:          180_000_000,
		Branches:     2_400_000,
		BranchMisses: 30_000,
		CacheRefs:    150_000,
		CacheMisses:  1_200,
		Jitter:       0.0023,
	}
}

// NoRuntime disables the overhead model (pure-kernel measurements).
func NoRuntime() RuntimeModel { return RuntimeModel{} }

// Options configures the instrumented classifier.
type Options struct {
	// SparsitySkip enables the zero-skipping kernels (the leakage source).
	// The defense package builds classifiers with this disabled.
	SparsitySkip bool
	// ConstantTime removes all data-dependent branches (branchless ReLU /
	// max) in addition to disabling the skip — the paper's "CNN with
	// indistinguishable CPU footprint" countermeasure direction.
	ConstantTime bool
	// ColdStart flushes the simulated caches and predictors before every
	// classification (process-per-query deployment).
	ColdStart bool
	// Runtime is the framework overhead model.
	Runtime RuntimeModel
	// Seed drives the runtime jitter.
	Seed int64
}

// DefaultOptions returns the leaky baseline configuration the paper
// evaluates.
func DefaultOptions() Options {
	return Options{SparsitySkip: true, Runtime: DefaultRuntime(), Seed: 1}
}

// SimHierarchy returns the cache hierarchy used for the reproduction: an
// embedded-class core (4 KiB L1D, 16 KiB L2, 32 KiB LLC). The paper's Xeon
// ran a TensorFlow working set far larger than its LLC; scaling the cache
// down preserves that working-set-to-cache ratio for our small CNNs, which
// is what makes capacity misses (and hence the leak) observable.
func SimHierarchy() *cache.Hierarchy {
	h, err := cache.NewHierarchy(
		cache.Config{Name: "L1D", Size: 4 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
		cache.Config{Name: "L2", Size: 16 << 10, LineSize: 64, Assoc: 4, Policy: cache.TreePLRU},
		cache.Config{Name: "LLC", Size: 32 << 10, LineSize: 64, Assoc: 8, Policy: cache.LRU},
	)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return h
}

// NewEngine builds a march.Engine configured for leakage evaluation
// (SimHierarchy plus the calibrated default noise model).
func NewEngine(noiseSeed int64) (*march.Engine, error) {
	return march.NewEngine(march.Config{
		Hierarchy: SimHierarchy(),
		Noise:     march.DefaultNoise(noiseSeed),
	})
}

// layerRun executes one layer: it consumes the current activation tensor
// and region and produces the next pair. Bound per plan at construction —
// the typed replacement for the old per-Classify string switch.
type layerRun func(p *layerPlan, cur *tensor.Tensor, curRegion mem.Region) (*tensor.Tensor, mem.Region, error)

// layerPlan caches per-layer instrumentation state.
type layerPlan struct {
	kind    string // "conv", "relu", "pool", "flatten", "dense" (reporting)
	run     layerRun
	conv    *nn.Conv2D
	dense   *nn.Dense
	inShape []int
	pc      uint64 // base simulated PC for this layer's branches
	wRegion mem.Region
	bRegion mem.Region
	// Preallocated per-classification scratch, reused across runs: the
	// simulated activation region (stable addresses, exactly where the old
	// per-Classify arena allocations landed) and the Go-side output buffer.
	outRegion mem.Region
	out       *tensor.Tensor
}

// Classifier runs instrumented inference for one network on one engine.
type Classifier struct {
	engine *march.Engine
	net    *nn.Network
	opts   Options
	plans  []layerPlan
	mark   mem.Region
	input  mem.Region // preallocated simulated input region
	top    mem.Addr   // end of the activation scratch layout (see ScratchTop)
	rng    *rand.Rand
}

// New builds a Classifier, allocating all weight tensors in the engine's
// simulated address space.
func New(net *nn.Network, engine *march.Engine, opts Options) (*Classifier, error) {
	if net == nil || engine == nil {
		return nil, fmt.Errorf("instrument: nil network or engine")
	}
	c := &Classifier{engine: engine, net: net, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	arena := engine.Arena()
	inShape := net.InShape
	for i, l := range net.Layers {
		p := layerPlan{inShape: append([]int(nil), inShape...), pc: uint64(0x401000 + i*0x1000)}
		switch lt := l.(type) {
		case *nn.Conv2D:
			p.kind, p.run = "conv", c.convLayer
			p.conv = lt
			w, err := arena.Alloc(lt.Name()+".filter", uint64(lt.Filter.Len())*4)
			if err != nil {
				return nil, err
			}
			b, err := arena.Alloc(lt.Name()+".bias", uint64(lt.Bias.Len())*4)
			if err != nil {
				return nil, err
			}
			p.wRegion, p.bRegion = w, b
		case *nn.Dense:
			p.kind, p.run = "dense", c.denseLayer
			p.dense = lt
			w, err := arena.Alloc(lt.Name()+".w", uint64(lt.W.Len())*4)
			if err != nil {
				return nil, err
			}
			b, err := arena.Alloc(lt.Name()+".b", uint64(lt.B.Len())*4)
			if err != nil {
				return nil, err
			}
			p.wRegion, p.bRegion = w, b
		case *nn.ReLU:
			p.kind, p.run = "relu", c.reluLayer
		case *nn.MaxPool2:
			p.kind, p.run = "pool", c.poolLayer
		case *nn.Flatten:
			p.kind, p.run = "flatten", flattenLayer
		default:
			return nil, fmt.Errorf("instrument: unsupported layer %s", l.Name())
		}
		c.plans = append(c.plans, p)
		inShape = l.OutShape()
	}
	c.mark = arena.Mark()
	c.planScratch()
	return c, nil
}

// planScratch lays out the per-classification activation regions above the
// weight mark — byte-for-byte where the per-Classify arena alloc/reset
// cycle used to place them — and allocates the reusable Go-side output
// buffers. Classify itself then runs allocation-free.
//
// The scratch regions are deliberately NOT registered in the arena: the
// arena's bump pointer stays at the weight mark, so anything a caller
// allocates after construction (e.g. the defense package's noise-sweep
// buffer) lands at the mark and shares simulated addresses with the
// activation scratch. That aliasing is the historical steady-state
// behavior of the alloc/reset cycle (every post-reset classification
// reused those addresses) and is deterministic; registering the scratch
// would shift later allocations upward and change simulated cache set
// mappings — i.e. counters — for such targets.
func (c *Classifier) planScratch() {
	align := c.engine.Arena().Align()
	next := c.mark.Base
	scratch := func(name string, size uint64) mem.Region {
		base := mem.Addr((uint64(next) + align - 1) &^ (align - 1))
		next = base + mem.Addr(size)
		return mem.Region{Name: name, Base: base, Size: size}
	}
	c.input = scratch("input", uint64(tensor.Volume(c.net.InShape))*4)
	var prev *tensor.Tensor // previous layer's reused buffer (nil = raw input)
	for i := range c.plans {
		p := &c.plans[i]
		switch p.kind {
		case "conv":
			g := p.conv.Geom
			p.out = tensor.New(g.OutH(), g.OutW(), g.OutC)
			p.outRegion = scratch(p.conv.Name()+".out", uint64(p.out.Len())*4)
		case "relu":
			p.out = tensor.New(p.inShape...)
		case "pool":
			h, w, ch := p.inShape[0], p.inShape[1], p.inShape[2]
			p.out = tensor.New(h/2, w/2, ch)
			p.outRegion = scratch("pool.out", uint64(p.out.Len())*4)
		case "dense":
			p.out = tensor.New(p.dense.Out)
			p.outRegion = scratch(p.dense.Name()+".out", uint64(p.dense.Out)*4)
		case "flatten":
			// When the input buffer is fixed (any non-first position), the
			// reshaped header can be built once here; flattenLayer then
			// returns it without allocating.
			if prev != nil {
				if r, err := prev.Reshape(prev.Len()); err == nil {
					p.out = r
				}
			}
		}
		prev = p.out
	}
	c.top = next
}

// ScratchTop returns the first simulated address above the classifier's
// activation scratch layout. The scratch is not registered in the arena
// (see planScratch), so a caller co-locating *another* classifier on the
// same engine must first bump the arena past this address — otherwise
// the second tenant's weights would alias this tenant's activations.
func (c *Classifier) ScratchTop() mem.Addr { return c.top }

// flattenLayer reshapes without touching simulated memory. The reshaped
// header is precomputed when the input buffer is fixed (see planScratch).
func flattenLayer(p *layerPlan, cur *tensor.Tensor, curRegion mem.Region) (*tensor.Tensor, mem.Region, error) {
	if p.out != nil {
		return p.out, curRegion, nil
	}
	out, err := cur.Reshape(cur.Len())
	return out, curRegion, err
}

// Engine returns the underlying simulated core.
func (c *Classifier) Engine() *march.Engine { return c.engine }

// Options returns the classifier's configuration.
func (c *Classifier) Options() Options { return c.opts }

// Classify runs one instrumented classification and returns the predicted
// class. Hardware activity lands on the classifier's engine; observe it
// with an hpc.PMU attached to that engine.
func (c *Classifier) Classify(img *tensor.Tensor) (int, error) {
	cur, curRegion, err := c.begin(img)
	if err != nil {
		return 0, err
	}
	for i := range c.plans {
		p := &c.plans[i]
		cur, curRegion, err = p.run(p, cur, curRegion)
		if err != nil {
			return 0, fmt.Errorf("instrument: layer %d (%s): %w", i, p.kind, err)
		}
	}
	pred := c.argmax(cur, curRegion)
	c.applyRuntime()
	return pred, nil
}

// begin validates the input, applies cold-start semantics and streams the
// input image into its (preallocated) simulated region.
func (c *Classifier) begin(img *tensor.Tensor) (*tensor.Tensor, mem.Region, error) {
	if img.Len() != tensor.Volume(c.net.InShape) {
		return nil, mem.Region{}, fmt.Errorf("instrument: input volume %d, want %d", img.Len(), tensor.Volume(c.net.InShape))
	}
	if c.opts.ColdStart {
		// Drop micro-architectural state but preserve event counters: a
		// fresh process has cold caches, yet the observing PMU keeps
		// counting across the measurement interval.
		c.engine.Hierarchy().Invalidate()
		c.engine.Predictor().Reset()
	}
	// The input arrives from the user: stream it into simulated memory.
	c.engine.Store(c.input.Base, c.input.Size)
	return img, c.input, nil
}

// applyRuntime injects the per-classification framework overhead.
func (c *Classifier) applyRuntime() {
	rt := c.opts.Runtime
	if rt.Ops == 0 && rt.Branches == 0 && rt.CacheRefs == 0 {
		return
	}
	j := func(mean uint64) uint64 {
		if mean == 0 {
			return 0
		}
		v := float64(mean) * (1 + rt.Jitter*c.rng.NormFloat64())
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	c.engine.Background(j(rt.Ops), j(rt.Branches), j(rt.BranchMisses), j(rt.CacheRefs), j(rt.CacheMisses))
}

// convLayer runs the input-stationary sparsity-skipping convolution. The
// input walk is flat-sequential; runs of zero activations (the skipped
// elements) are emitted as line-granular batched loads, and each scattered
// element's weight/output row walk goes out as one trace batch.
func (c *Classifier) convLayer(p *layerPlan, in *tensor.Tensor, inRegion mem.Region) (*tensor.Tensor, mem.Region, error) {
	g := p.conv.Geom
	oh, ow, oc := g.OutH(), g.OutW(), g.OutC
	out := p.out
	clear(out.Data)
	outRegion := p.outRegion
	eng := c.engine
	filt := p.conv.Filter.Data
	inData := in.Data
	rowBytes := uint64(oc) * 4
	skip := c.opts.SparsitySkip && !c.opts.ConstantTime
	ct := c.opts.ConstantTime

	// Loop-overhead branches: one back-edge per input element (fixed).
	total := g.InH * g.InW * g.InC
	eng.PredictableBranches(uint64(total))

	// Zero-test branches at p.pc accumulate into same-direction runs and
	// flush on a direction flip (or at layer end): branches commute with
	// memory events, and a direction run replays through the predictor
	// exactly as the individual records, so long nonzero stretches reach
	// the predictor's fixpoint instead of paying per-element cost.
	var brN uint64
	brTaken := false

	// (iy, ix, ic) track inIdx incrementally; zero-runs re-derive them once
	// at the run end instead of dividing per element.
	iy, ix, ic := 0, 0, 0
	for inIdx := 0; inIdx < total; {
		v := inData[inIdx]
		if v == 0 && skip {
			// Zero run: the skipped elements issue only their activation
			// load and zero-test branch, so the loads batch line-granularly
			// and the (all-taken) branches replay in element order.
			runEnd := inIdx + 1
			for runEnd < total && inData[runEnd] == 0 {
				runEnd++
			}
			n := runEnd - inIdx
			eng.LoadRange(inRegion.Base+mem.Addr(inIdx*4), 4, n)
			if brN > 0 && !brTaken {
				eng.BranchRun(p.pc, false, brN)
				brN = 0
			}
			brTaken = true
			brN += uint64(n)
			inIdx = runEnd
			if inIdx < total {
				ic = inIdx % g.InC
				rest := inIdx / g.InC
				ix = rest % g.InW
				iy = rest / g.InW
			}
			continue
		}
		eng.Load(inRegion.Base+mem.Addr(inIdx*4), 4)
		if !ct {
			if brN > 0 && brTaken != (v == 0) {
				eng.BranchRun(p.pc, brTaken, brN)
				brN = 0
			}
			brTaken = v == 0
			brN++
		}
		// Scatter this input into every output it feeds. The row accesses
		// stay in exact emission order (cache state depends on it); the
		// pure-counter ops (ALU work, loop back-edges) commute with
		// everything and are flushed once per element.
		positions := uint64(0)
		if g.Stride == 1 {
			// Unit stride: the valid (ky, kx) windows are the contiguous
			// ranges with oy = iy+Pad-ky ∈ [0, oh) and ox = ix+Pad-kx ∈
			// [0, ow), so the bounds tests hoist out of the position loops.
			kyLo, kyHi := iy+g.Pad-oh+1, iy+g.Pad
			if kyLo < 0 {
				kyLo = 0
			}
			if kyHi > g.K-1 {
				kyHi = g.K - 1
			}
			kxLo, kxHi := ix+g.Pad-ow+1, ix+g.Pad
			if kxLo < 0 {
				kxLo = 0
			}
			if kxHi > g.K-1 {
				kxHi = g.K - 1
			}
			for ky := kyLo; ky <= kyHi; ky++ {
				oy := iy + g.Pad - ky
				wRow := ((ky*g.K+kxLo)*g.InC + ic) * oc
				oRow := (oy*ow + ix + g.Pad - kxLo) * oc
				eng.MacSpan(p.wRegion.Base+mem.Addr(wRow*4), outRegion.Base+mem.Addr(oRow*4),
					uint64(g.InC*oc)*4, rowBytes, kxHi-kxLo+1)
				for kx := kxLo; kx <= kxHi; kx++ {
					orow := out.Data[oRow : oRow+oc]
					frow := filt[wRow : wRow+oc]
					_ = orow[len(frow)-1]
					for j, f := range frow {
						orow[j] += v * f
					}
					wRow += g.InC * oc
					oRow -= oc
				}
			}
			if kyHi >= kyLo && kxHi >= kxLo {
				positions = uint64(kyHi-kyLo+1) * uint64(kxHi-kxLo+1)
			}
		} else {
			for ky := 0; ky < g.K; ky++ {
				oy := iy + g.Pad - ky
				if oy < 0 || oy%g.Stride != 0 {
					continue
				}
				oy /= g.Stride
				if oy >= oh {
					continue
				}
				for kx := 0; kx < g.K; kx++ {
					ox := ix + g.Pad - kx
					if ox < 0 || ox%g.Stride != 0 {
						continue
					}
					ox /= g.Stride
					if ox >= ow {
						continue
					}
					wRow := ((ky*g.K+kx)*g.InC + ic) * oc
					oRow := (oy*ow + ox) * oc
					eng.MacRow(p.wRegion.Base+mem.Addr(wRow*4), outRegion.Base+mem.Addr(oRow*4), rowBytes)
					positions++
					orow := out.Data[oRow : oRow+oc]
					frow := filt[wRow : wRow+oc]
					for j, f := range frow {
						orow[j] += v * f
					}
				}
			}
		}
		eng.Ops(positions * uint64(2*oc)) // mul + add per output channel
		eng.PredictableBranches(positions)
		inIdx++
		ic++
		if ic == g.InC {
			ic = 0
			ix++
			if ix == g.InW {
				ix = 0
				iy++
			}
		}
	}
	if brN > 0 {
		eng.BranchRun(p.pc, brTaken, brN)
	}
	// Bias pass: one streaming read-modify-write walk over the output. The
	// per-pixel Ops commute with memory events and flush as one sum.
	bias := p.conv.Bias.Data
	eng.Load(p.bRegion.Base, p.bRegion.Size)
	eng.LoadStoreRange(outRegion.Base, rowBytes, oh*ow)
	eng.Ops(uint64(oh * ow * oc))
	for i := 0; i < oh*ow; i++ {
		row := out.Data[i*oc : (i+1)*oc]
		for j := range row {
			row[j] += bias[j]
		}
	}
	eng.PredictableBranches(uint64(oh * ow))
	return out, outRegion, nil
}

// reluLayer applies ReLU in place over the activation region. The element
// walk is contiguous, so loads (and, in constant-time mode, stores) are
// emitted as line-granular batched ranges; sign-test branches and the
// conditional stores replay in element order within each line.
func (c *Classifier) reluLayer(p *layerPlan, in *tensor.Tensor, region mem.Region) (*tensor.Tensor, mem.Region, error) {
	eng := c.engine
	out := p.out
	copy(out.Data, in.Data)
	n := len(out.Data)
	eng.PredictableBranches(uint64(n))
	// Sign-test branches accumulate into direction runs that may span
	// lines (branches commute with memory events; the direction sequence
	// is preserved exactly).
	var brN uint64
	brTaken := false
	for start := 0; start < n; {
		a := region.Base + mem.Addr(start*4)
		run := int((64 - uint64(a)%64) / 4)
		if run > n-start {
			run = n - start
		}
		eng.LoadRange(a, 4, run)
		if c.opts.ConstantTime {
			// Branchless clamp: unconditional arithmetic + store per element.
			eng.Ops(uint64(2 * run))
			eng.StoreRange(a, 4, run)
			for i := start; i < start+run; i++ {
				if out.Data[i] < 0 {
					out.Data[i] = 0
				}
			}
		} else {
			// Each line's clamping stores collapse into one same-line range:
			// cache, TLB and counter effects of a store depend only on its
			// line and count, so emitting the line's negative-element stores
			// as one walk from the line base is bit-identical to the
			// per-element emission (same line, same access count).
			negs := 0
			for i := start; i < start+run; {
				neg := out.Data[i] < 0
				j := i + 1
				for j < start+run && (out.Data[j] < 0) == neg {
					j++
				}
				if brN > 0 && brTaken != neg {
					eng.BranchRun(p.pc, brTaken, brN)
					brN = 0
				}
				brTaken = neg
				brN += uint64(j - i)
				if neg {
					negs += j - i
					for k := i; k < j; k++ {
						out.Data[k] = 0
					}
				}
				i = j
			}
			if negs > 0 {
				eng.StoreRange(a, 4, negs)
			}
		}
		start += run
	}
	if brN > 0 {
		eng.BranchRun(p.pc, brTaken, brN)
	}
	return out, region, nil
}

// poolLayer is the 2×2 max pool with data-dependent compare branches. The
// per-channel window walk is emitted cell-grouped: for one (oy, ox)
// window the four input cells' channel strips go out as line-granular
// batched loads, the compare branches replay per channel in their
// original order, and the output strip goes out as one batched store.
// Grouping reorders only cross-line memory events whose lines all stay
// resident for the whole window and whose last-touch order (and total
// event count) is unchanged, so every future replacement decision — and
// therefore every counter — matches the element-interleaved emission.
func (c *Classifier) poolLayer(p *layerPlan, in *tensor.Tensor, inRegion mem.Region) (*tensor.Tensor, mem.Region, error) {
	h, w, ch := p.inShape[0], p.inShape[1], p.inShape[2]
	oh, ow := h/2, w/2
	out := p.out
	outRegion := p.outRegion
	eng := c.engine
	ct := c.opts.ConstantTime
	eng.PredictableBranches(uint64(oh * ow * ch))
	// Compare branches replay in per-channel emission order; consecutive
	// same-outcome branches compress into direction runs that carry across
	// window and channel boundaries (branch order is preserved and branches
	// commute with memory events, so predictor state stays exact).
	runTaken, runN := false, uint64(0)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := ((2*oy)*w + 2*ox) * ch
			// The top two cells' strips are contiguous (base, base+ch), as
			// are the bottom two: each pair concatenates into one range
			// with an identical element walk.
			eng.LoadRange(inRegion.Base+mem.Addr(base*4), 4, 2*ch)
			eng.LoadRange(inRegion.Base+mem.Addr((base+w*ch)*4), 4, 2*ch)
			oBase := (oy*ow + ox) * ch
			if ct {
				eng.Ops(uint64(8 * ch)) // branchless max, 2 per window cell
			}
			for cc := 0; cc < ch; cc++ {
				tl := in.Data[base+cc]
				tr := in.Data[base+ch+cc]
				bl := in.Data[base+w*ch+cc]
				br := in.Data[base+w*ch+ch+cc]
				best := tl
				if tr > best {
					best = tr
				}
				b2 := bl > best
				if b2 {
					best = bl
				}
				b3 := br > best
				if b3 {
					best = br
				}
				if !ct {
					b1 := tr > tl
					if b1 == runTaken {
						runN++
					} else {
						eng.BranchRun(p.pc, runTaken, runN)
						runTaken, runN = b1, 1
					}
					if b2 == runTaken {
						runN++
					} else {
						eng.BranchRun(p.pc, runTaken, runN)
						runTaken, runN = b2, 1
					}
					if b3 == runTaken {
						runN++
					} else {
						eng.BranchRun(p.pc, runTaken, runN)
						runTaken, runN = b3, 1
					}
				}
				out.Data[oBase+cc] = best
			}
			eng.StoreRange(outRegion.Base+mem.Addr(oBase*4), 4, ch)
		}
	}
	if runN > 0 {
		eng.BranchRun(p.pc, runTaken, runN)
	}
	return out, outRegion, nil
}

// denseLayer is the input-stationary fully connected kernel with row skip.
// Like the convolution, runs of zero inputs batch their loads
// line-granularly; non-zero inputs walk their weight row as before.
func (c *Classifier) denseLayer(p *layerPlan, in *tensor.Tensor, inRegion mem.Region) (*tensor.Tensor, mem.Region, error) {
	d := p.dense
	out := p.out
	clear(out.Data)
	outRegion := p.outRegion
	eng := c.engine
	rowBytes := uint64(d.Out) * 4
	skip := c.opts.SparsitySkip && !c.opts.ConstantTime
	ct := c.opts.ConstantTime
	eng.PredictableBranches(uint64(d.In))
	// Same direction-run batching of the zero-test branches as convLayer.
	var brN uint64
	brTaken := false
	for i := 0; i < d.In; {
		v := in.Data[i]
		if v == 0 && skip {
			runEnd := i + 1
			for runEnd < d.In && in.Data[runEnd] == 0 {
				runEnd++
			}
			n := runEnd - i
			eng.LoadRange(inRegion.Base+mem.Addr(i*4), 4, n)
			if brN > 0 && !brTaken {
				eng.BranchRun(p.pc, false, brN)
				brN = 0
			}
			brTaken = true
			brN += uint64(n)
			i = runEnd
			continue
		}
		eng.Load(inRegion.Base+mem.Addr(i*4), 4)
		if !ct {
			if brN > 0 && brTaken != (v == 0) {
				eng.BranchRun(p.pc, brTaken, brN)
				brN = 0
			}
			brTaken = v == 0
			brN++
		}
		eng.Load(p.wRegion.Base+mem.Addr(i*d.Out*4), rowBytes)
		eng.Ops(uint64(2 * d.Out))
		row := d.W.Data[i*d.Out : (i+1)*d.Out]
		for j, wv := range row {
			out.Data[j] += v * wv
		}
		i++
	}
	if brN > 0 {
		eng.BranchRun(p.pc, brTaken, brN)
	}
	eng.Load(p.bRegion.Base, p.bRegion.Size)
	eng.Store(outRegion.Base, outRegion.Size)
	eng.Ops(uint64(d.Out))
	for j := range out.Data {
		out.Data[j] += d.B.Data[j]
	}
	return out, outRegion, nil
}

// argmax scans the logits with data-dependent compare branches, returning
// the predicted class.
func (c *Classifier) argmax(logits *tensor.Tensor, region mem.Region) int {
	eng := c.engine
	best, bi := logits.Data[0], 0
	eng.Load(region.Base, 4)
	for i := 1; i < logits.Len(); i++ {
		eng.Load(region.Base+mem.Addr(i*4), 4)
		bigger := logits.Data[i] > best
		if c.opts.ConstantTime {
			eng.Ops(2)
		} else {
			eng.Branch(0x40f000, bigger)
		}
		if bigger {
			best, bi = logits.Data[i], i
		}
	}
	return bi
}
