package instrument

import (
	"fmt"
	"io"

	"repro/internal/march"
	"repro/internal/tensor"
)

// LayerCounts attributes hardware events to one layer of a classification.
type LayerCounts struct {
	Index  int
	Kind   string
	Counts march.Counts
}

// ClassifyWithAttribution runs one instrumented classification and
// additionally returns the per-layer event deltas. It is the localization
// tool for the Evaluator's findings: once an alarm fires, per-layer
// attribution shows which stage of the network produces the
// distinguishable footprint (the sparsity-dependent convolutions, in the
// paper's setting).
//
// The runtime-overhead model is attributed to a pseudo-layer with index
// -1 and kind "runtime".
func (c *Classifier) ClassifyWithAttribution(img *tensor.Tensor) (int, []LayerCounts, error) {
	cur, curRegion, err := c.begin(img)
	if err != nil {
		return 0, nil, err
	}
	var attribution []LayerCounts
	before := c.engine.Counts()
	for i := range c.plans {
		p := &c.plans[i]
		cur, curRegion, err = p.run(p, cur, curRegion)
		if err != nil {
			return 0, nil, fmt.Errorf("instrument: layer %d (%s): %w", i, p.kind, err)
		}
		after := c.engine.Counts()
		attribution = append(attribution, LayerCounts{Index: i, Kind: p.kind, Counts: after.Sub(before)})
		before = after
	}
	pred := c.argmax(cur, curRegion)
	c.applyRuntime()
	after := c.engine.Counts()
	attribution = append(attribution, LayerCounts{Index: -1, Kind: "runtime", Counts: after.Sub(before)})
	return pred, attribution, nil
}

// UnknownKind is the label degenerate attribution entries (an empty kind
// string) are normalized to by the attribution consumers. The topology-
// recovery segmenter and the archid evidence tables both key on kind
// strings, so an unnamed layer must not vanish into the "" bucket.
const UnknownKind = "unknown"

// NormalizeKind maps a raw attribution kind string to its reporting form:
// the kind itself, or UnknownKind when empty.
func NormalizeKind(kind string) string {
	if kind == "" {
		return UnknownKind
	}
	return kind
}

// SummarizeAttribution reduces an attribution to the layer-count evidence
// an architecture-fingerprinting analyst extracts (CSI-NN's observation:
// layer boundaries and kinds are visible in the side-channel trace): the
// number of instrumented layers and the layer-kind histogram. The runtime
// pseudo-layer (index -1) is excluded; empty kind strings are counted
// under UnknownKind. The returned map is non-nil even for an empty (or
// runtime-only) attribution, so downstream consumers — the topology
// segmenter in particular — can index it unconditionally.
func SummarizeAttribution(attribution []LayerCounts) (layers int, kinds map[string]int) {
	kinds = map[string]int{}
	for _, lc := range attribution {
		if lc.Index < 0 {
			continue
		}
		layers++
		kinds[NormalizeKind(lc.Kind)]++
	}
	return layers, kinds
}

// RenderAttribution prints a per-layer table of selected events. Degenerate
// traces render defensively: an empty attribution prints a placeholder row
// instead of a bare header, and unnamed kinds render as UnknownKind.
func RenderAttribution(w io.Writer, attribution []LayerCounts, events ...march.Event) {
	if len(events) == 0 {
		events = []march.Event{march.EvInstructions, march.EvCacheMisses, march.EvBranches}
	}
	fmt.Fprintf(w, "%-8s%-10s", "layer", "kind")
	for _, e := range events {
		fmt.Fprintf(w, "%18s", e)
	}
	fmt.Fprintln(w)
	if len(attribution) == 0 {
		fmt.Fprintln(w, "(empty attribution)")
		return
	}
	for _, lc := range attribution {
		idx := fmt.Sprintf("%d", lc.Index)
		if lc.Index < 0 {
			idx = "-"
		}
		fmt.Fprintf(w, "%-8s%-10s", idx, NormalizeKind(lc.Kind))
		for _, e := range events {
			fmt.Fprintf(w, "%18d", lc.Counts.Get(e))
		}
		fmt.Fprintln(w)
	}
}
