package topo

// The attacker-side models, fitted on the training zoo only:
//
//   - KindModel classifies a segment's per-instruction rate signature into
//     a layer kind, riding the existing attack.Model interface (the
//     Gaussian template attacker, with kind ids as class labels and rate
//     features packed into an hpc.Profile).
//   - estimator regresses a hyper-parameter from segment footprint
//     magnitudes: a ridge-regularized log-log linear model over segment
//     instructions, L1 loads and the (shape-propagated) input volume.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/attack"
	"repro/internal/hpc"
	"repro/internal/march"
)

// trainSegment is one labelled training observation: a layer's summed
// footprint, its kind, and its hyper-parameter ground truth.
type trainSegment struct {
	kind   string
	counts march.Counts
	param  int
	kernel int
	inVol  int
}

// kindEvents are the rate features the kind classifier uses: the
// kind-*intrinsic* instruction-mix rates — loads and branches per
// instruction (fixed by the kernel's loop structure), plus the
// LLC-reference rate that separates the streaming dense weight walk from
// the cache-resident conv reuse. The miss-type features of the segmenter
// signature (L1/LLC miss rates, mispredict density) are deliberately
// absent: they depend on layer size, activation sparsity and cache state
// rather than on the kernel kind, so a held-out layer in a different
// miss regime than every training exemplar of its kind would be pulled
// toward the wrong class.
var kindEvents = []march.Event{
	march.EvL1DLoads,
	march.EvBranches,
	march.EvCacheReferences,
}

// segmentProfile packs a segment's per-instruction rate signature into an
// hpc.Profile (keyed by the rate's numerator event) so the attack-stage
// models can consume it unchanged.
func segmentProfile(c march.Counts) hpc.Profile {
	instr := float64(c.Get(march.EvInstructions))
	if instr < 1 {
		instr = 1
	}
	p := make(hpc.Profile, len(kindEvents))
	for _, e := range kindEvents {
		p[e] = float64(c.Get(e)) / instr
	}
	return p
}

// KindModel recovers a segment's layer kind from its rate signature.
type KindModel struct {
	kinds []string // class-id order
	model attack.Model
}

// trainKindModel fits the kNN attacker (k = 1: nearest training segment
// in standardized rate space) over the training segments' rate
// signatures, one class per kind. Per-kind signature distributions are
// multi-modal — a first-block pool and a last-block pool sit in different
// miss-rate regimes — which nearest-neighbour handles and a single
// Gaussian template does not. Kinds observed only once have their sample
// doubled so the attacker's per-class requirements hold.
func trainKindModel(segs []trainSegment) (*KindModel, error) {
	byKind := map[string][]hpc.Profile{}
	for _, s := range segs {
		byKind[s.kind] = append(byKind[s.kind], segmentProfile(s.counts))
	}
	if len(byKind) < 2 {
		return nil, fmt.Errorf("topo: training zoo exposes %d layer kinds, need at least 2", len(byKind))
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	profSet := make(map[int][]hpc.Profile, len(kinds))
	for id, kind := range kinds {
		obs := byKind[kind]
		if len(obs) == 1 {
			obs = append(obs, obs[0])
		}
		profSet[id] = obs
	}
	model, err := attack.NewKNN(1, kindEvents, profSet)
	if err != nil {
		return nil, err
	}
	return &KindModel{kinds: kinds, model: model}, nil
}

// Kinds returns the kinds the model can predict, in class-id order.
func (m *KindModel) Kinds() []string { return m.kinds }

// Predict recovers the layer kind of one segment footprint.
func (m *KindModel) Predict(c march.Counts) string {
	id := m.model.Predict(segmentProfile(c))
	if id < 0 || id >= len(m.kinds) {
		return m.kinds[0]
	}
	return m.kinds[id]
}

// estimator is one log-log linear hyper-parameter regressor:
//
//	log(param) ≈ w0 + w1·log(instr) + w2·log(l1loads) + w3·log(inVol)
//
// fitted by ridge-regularized least squares over the training segments of
// its kind.
type estimator struct {
	w  [4]float64
	ok bool
}

// estFeatures computes the regression features of one segment.
func estFeatures(counts march.Counts, inVol int) [4]float64 {
	logp := func(v float64) float64 { return math.Log(v + 1) }
	return [4]float64{
		1,
		logp(float64(counts.Get(march.EvInstructions))),
		logp(float64(counts.Get(march.EvL1DLoads))),
		logp(float64(inVol)),
	}
}

// fitEstimator solves the ridge normal equations over the labelled rows.
func fitEstimator(feats [][4]float64, targets []float64) estimator {
	if len(feats) == 0 || len(feats) != len(targets) {
		return estimator{}
	}
	const lambda = 1e-6
	var a [4][4]float64
	var b [4]float64
	for r, f := range feats {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a[i][j] += f[i] * f[j]
			}
			b[i] += f[i] * targets[r]
		}
	}
	for i := 0; i < 4; i++ {
		a[i][i] += lambda
	}
	w, ok := solve4(a, b)
	return estimator{w: w, ok: ok}
}

// solve4 is Gaussian elimination with partial pivoting on a 4×4 system.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, bool) {
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [4]float64{}, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var w [4]float64
	for r := 3; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < 4; c++ {
			sum -= a[r][c] * w[c]
		}
		w[r] = sum / a[r][r]
	}
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [4]float64{}, false
		}
	}
	return w, true
}

// predict returns the regressed hyper-parameter, clamped to [1, 4096].
func (e estimator) predict(counts march.Counts, inVol int) int {
	if !e.ok {
		return 1
	}
	f := estFeatures(counts, inVol)
	sum := 0.0
	for i := range f {
		sum += e.w[i] * f[i]
	}
	v := int(math.Round(math.Exp(sum)))
	if v < 1 {
		v = 1
	}
	if v > 4096 {
		v = 4096
	}
	return v
}

// estimators bundles the per-kind regressors the reconstruction uses,
// plus the element-throughput calibration of the relu kernel:
// reluVolPerInstr is the mean elements-per-instruction of the training
// relu segments, which turns a victim relu segment's instruction count
// into an estimate of its element volume — i.e. the *output volume* of
// the preceding conv or dense layer, the shape-propagation cross-check
// CSI-NN reads layer dimensions from.
type estimators struct {
	convChannels    estimator
	convKernel      estimator
	denseWidth      estimator
	reluVolPerInstr float64
	// convBeta calibrates the structural channel estimator: a conv
	// segment's arithmetic work is ops ≈ 2·outC·positions, and its
	// position count hides in the branch counter as
	// positions ≈ branches − β·inVol, where β absorbs the level-dependent
	// per-element branch overhead (zero tests, loop back-edges, bias
	// rows). β is learned from the training convs, so the estimator
	// adapts to whichever kernels the hardening level deploys.
	convBeta   float64
	convBetaOK bool
}

// convOps extracts a conv segment's arithmetic instruction count: total
// instructions minus the load/store instructions (one per L1 access) and
// the branch instructions.
func convOps(counts march.Counts) float64 {
	return float64(counts.Get(march.EvInstructions)) -
		float64(counts.Get(march.EvL1DLoads)) -
		float64(counts.Get(march.EvBranches))
}

// convFromStructure inverts the structural model for the channel count:
// positions = branches − β·inVol, outC = ops / (2·positions). ok is false
// when the segment is too degenerate to invert (the caller falls back to
// the log-log regression).
func (e estimators) convFromStructure(counts march.Counts, inVol int) (int, bool) {
	if !e.convBetaOK {
		return 0, false
	}
	ops := convOps(counts)
	pos := float64(counts.Get(march.EvBranches)) - e.convBeta*float64(inVol)
	if ops <= 0 || pos < 1 {
		return 0, false
	}
	oc := int(math.Round(ops / (2 * pos)))
	if oc < 1 {
		return 0, false
	}
	return oc, true
}

// fitEstimators fits every hyper-parameter regressor from the training
// segments.
func fitEstimators(segs []trainSegment) estimators {
	var convF, denseF [][4]float64
	var convC, convK, denseW []float64
	reluRatio, reluN := 0.0, 0
	betaSum, betaN := 0.0, 0
	for _, s := range segs {
		switch s.kind {
		case "conv":
			convF = append(convF, estFeatures(s.counts, s.inVol))
			convC = append(convC, math.Log(float64(s.param)))
			convK = append(convK, math.Log(float64(s.kernel)))
			if pos := convOps(s.counts) / (2 * float64(s.param)); pos >= 1 && s.inVol > 0 {
				betaSum += (float64(s.counts.Get(march.EvBranches)) - pos) / float64(s.inVol)
				betaN++
			}
		case "dense":
			denseF = append(denseF, estFeatures(s.counts, s.inVol))
			denseW = append(denseW, math.Log(float64(s.param)))
		case "relu":
			if instr := s.counts.Get(march.EvInstructions); instr > 0 && s.inVol > 0 {
				reluRatio += float64(s.inVol) / float64(instr)
				reluN++
			}
		}
	}
	est := estimators{
		convChannels: fitEstimator(convF, convC),
		convKernel:   fitEstimator(convF, convK),
		denseWidth:   fitEstimator(denseF, denseW),
	}
	if reluN > 0 {
		est.reluVolPerInstr = reluRatio / float64(reluN)
	}
	if betaN > 0 {
		est.convBeta = betaSum / float64(betaN)
		est.convBetaOK = true
	}
	return est
}

// snapOddKernel rounds a kernel estimate to the nearest odd size ≥ 1.
func snapOddKernel(k int) int {
	if k < 1 {
		return 1
	}
	if k%2 == 0 {
		return k - 1
	}
	return k
}
