// Package topo is the topology-recovery subsystem: the full CSI-NN-style
// reverse engineering the archid stage stops short of. Where archid asks
// "which zoo member is deployed?", topo reconstructs the architecture of a
// victim the attacker has *never profiled* — layer count, per-layer kinds
// and hyper-parameters — from the per-layer side-channel evidence stream
// (instrument.ClassifyWithAttribution).
//
// The pipeline has three attacker-side stages, each fitted on a *training*
// zoo of random architectures that is provably disjoint from the held-out
// victim zoo (nn.GenerateZoo with an Avoid set):
//
//  1. a segmenter that finds layer boundaries in the flat event trace —
//     change-point detection over per-quantum instruction/L1-load
//     signatures, validated against the known-boundary attribution;
//  2. a per-segment layer-kind classifier (conv / relu / pool / dense)
//     riding the existing attack.Model interface (the Gaussian template
//     attacker over per-op rate features);
//  3. per-kind hyper-parameter estimators that regress width /
//     channel-count / kernel-size from segment footprint magnitudes.
//
// Recovered specs are rebuilt and verified against measured victim
// profiles collected through the concurrent sharded pipeline
// (pipeline.CollectProfilesByClass, class = victim id), closing the
// reconstruct-then-validate loop. Everything derives from the campaign
// root seed, so results are bit-identical at any worker count.
package topo

import (
	"fmt"

	"repro/internal/defense"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// traceWarmup matches the envelope/pad steady-state discipline: unmeasured
// classifications before the attributed one, so the trace reflects the
// warm periodic footprint rather than cold-cache transients.
const traceWarmup = 4

// DefaultQuantum is the default trace-sampling quantum: the (approximate)
// number of retired instructions per trace sample. It is coarse enough
// that a sample's counter deltas are far above quantization wobble, and
// fine enough that even the smallest observable layer contributes at
// least one sample.
const DefaultQuantum = 5000

// Trace is the flat side-channel trace of one classification, as an
// interval-sampling observer records it: per-quantum counter deltas with
// no layer boundaries marked. Boundaries and Kinds carry the ground truth
// (the sample index where each observable layer ends, and its kind) —
// they are used to validate the segmenter and to label training segments,
// never by the victim-side reconstruction.
type Trace struct {
	Samples    []march.Counts
	Boundaries []int
	Kinds      []string
}

// extractTrace runs one attributed classification of input on a fresh
// noise-free engine (runtime disabled — the trace covers the kernel
// region) with the kernels the hardening level implies, then subdivides
// each observable layer's attribution into fixed-quantum samples. Layers
// with zero retired instructions (flatten) are invisible to the side
// channel and contribute no samples — exactly as CSI-NN's observer sees
// them. Counter totals are preserved exactly: per-sample integer division
// pushes each remainder onto the leading samples.
func extractTrace(net *nn.Network, level defense.Level, input *tensor.Tensor, quantum uint64) (*Trace, error) {
	opts, err := defense.KernelOptions(level)
	if err != nil {
		return nil, err
	}
	opts.Runtime = instrument.NoRuntime()
	engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		return nil, err
	}
	cl, err := instrument.New(net, engine, opts)
	if err != nil {
		return nil, fmt.Errorf("topo: instrumenting victim: %w", err)
	}
	engine.ColdReset()
	for i := 0; i < traceWarmup; i++ {
		if _, err := cl.Classify(input); err != nil {
			return nil, fmt.Errorf("topo: trace warm-up: %w", err)
		}
	}
	_, attribution, err := cl.ClassifyWithAttribution(input)
	if err != nil {
		return nil, fmt.Errorf("topo: attributed classification: %w", err)
	}
	t := &Trace{}
	for _, lc := range attribution {
		if lc.Index < 0 {
			continue // runtime pseudo-layer: outside the kernel region
		}
		instr := lc.Counts.Get(march.EvInstructions)
		if instr == 0 {
			continue // invisible layer (flatten): no retired work to sample
		}
		m := int(instr / quantum)
		if m < 1 {
			m = 1
		}
		appendQuantized(t, lc.Counts, m)
		t.Boundaries = append(t.Boundaries, len(t.Samples))
		t.Kinds = append(t.Kinds, instrument.NormalizeKind(lc.Kind))
	}
	return t, nil
}

// appendQuantized splits one layer's counter totals into m samples whose
// sums reproduce the totals exactly.
func appendQuantized(t *Trace, totals march.Counts, m int) {
	for k := 0; k < m; k++ {
		var s march.Counts
		for e := range totals {
			base := totals[e] / uint64(m)
			if uint64(k) < totals[e]%uint64(m) {
				base++
			}
			s[e] = base
		}
		t.Samples = append(t.Samples, s)
	}
}

// paddedTrace is the trace an interval-sampling observer records from an
// envelope-padded deployment. The PaddedEnvelope serving loop schedules
// real and dummy work in fixed-size quanta so that *every* interval
// presents the same envelope-rate mix — the time-resolved extension of
// the counter-level equalization march.Engine.PadExtended performs per
// classification. The observable is therefore a homogeneous stream whose
// totals equal the envelope for every victim: no change points, no layer
// boundaries, no per-segment signatures. Ground-truth boundaries are
// deliberately absent (the trace genuinely has none).
func paddedTrace(env *defense.Envelope, quantum uint64) *Trace {
	totals := env.Counts()
	instr := totals.Get(march.EvInstructions)
	m := int(instr / quantum)
	if m < 1 {
		m = 1
	}
	t := &Trace{}
	appendQuantized(t, totals, m)
	return t
}

// LayerTruth is the ground-truth description of one observable layer of a
// victim: its kind, its primary hyper-parameter (conv output channels /
// dense output width; zero for relu and pool), its kernel size (conv
// only) and its input volume (known to the scorer, estimated by the
// attacker through shape propagation).
type LayerTruth struct {
	Kind   string `json:"kind"`
	Param  int    `json:"param,omitempty"`
	Kernel int    `json:"kernel,omitempty"`
	InVol  int    `json:"-"`
}

// trueTopology lists a network's observable layers — flatten is skipped,
// matching what the side-channel trace exposes.
func trueTopology(net *nn.Network) []LayerTruth {
	var out []LayerTruth
	shape := append([]int(nil), net.InShape...)
	for _, l := range net.Layers {
		inVol := tensor.Volume(shape)
		switch lt := l.(type) {
		case *nn.Conv2D:
			out = append(out, LayerTruth{Kind: "conv", Param: lt.Geom.OutC, Kernel: lt.Geom.K, InVol: inVol})
		case *nn.Dense:
			out = append(out, LayerTruth{Kind: "dense", Param: lt.Out, InVol: inVol})
		case *nn.ReLU:
			out = append(out, LayerTruth{Kind: "relu", InVol: inVol})
		case *nn.MaxPool2:
			out = append(out, LayerTruth{Kind: "pool", InVol: inVol})
		case *nn.Flatten:
			// invisible: no simulated work
		default:
			out = append(out, LayerTruth{Kind: instrument.UnknownKind, InVol: inVol})
		}
		shape = l.OutShape()
	}
	return out
}
