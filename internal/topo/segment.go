package topo

// The segmenter: change-point detection over the flat trace. Each sample's
// *signature* is its vector of per-instruction event rates (loads per
// instruction, branches per instruction, ...), which is what
// distinguishes kernel kinds independently of layer size. A layer
// boundary is declared between two consecutive samples whose signatures
// differ by more than a relative threshold on any rate — with an absolute
// floor so the ±1-count quantization wobble of tiny rates (branch misses
// at ~10⁻⁴ per instruction) cannot fire spurious cuts.

import "repro/internal/march"

// signatureEvents are the rate numerators of a sample signature. The
// denominator is always retired instructions.
var signatureEvents = []march.Event{
	march.EvL1DLoads,
	march.EvL1DLoadMisses,
	march.EvCacheReferences,
	march.EvCacheMisses,
	march.EvBranches,
	march.EvBranchMisses,
	march.EvDTLBLoads,
}

// Segment is one contiguous run of trace samples attributed to a single
// recovered layer, with the summed counter footprint reconstruction and
// estimation read magnitudes from.
type Segment struct {
	Start, End int // sample range [Start, End)
	Counts     march.Counts
}

// SegmenterConfig tunes the change-point detector.
type SegmenterConfig struct {
	// RelThreshold is the relative rate change that declares a boundary
	// (default 0.25: a 25% shift in any per-instruction rate).
	RelThreshold float64
	// AbsThreshold is the absolute rate change floor (default 0.002):
	// changes smaller than this are quantization wobble, never boundaries.
	AbsThreshold float64
}

func (c SegmenterConfig) withDefaults() SegmenterConfig {
	if c.RelThreshold <= 0 {
		c.RelThreshold = 0.25
	}
	if c.AbsThreshold <= 0 {
		c.AbsThreshold = 0.002
	}
	return c
}

// signature returns the per-instruction rates of one sample.
func signature(c march.Counts) []float64 {
	instr := float64(c.Get(march.EvInstructions))
	if instr < 1 {
		instr = 1
	}
	out := make([]float64, len(signatureEvents))
	for i, e := range signatureEvents {
		out[i] = float64(c.Get(e)) / instr
	}
	return out
}

// boundary reports whether two consecutive sample signatures belong to
// different layers.
func boundary(a, b []float64, cfg SegmenterConfig) bool {
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		if diff < cfg.AbsThreshold {
			continue
		}
		hi := a[i]
		if b[i] > hi {
			hi = b[i]
		}
		if diff > cfg.RelThreshold*hi {
			return true
		}
	}
	return false
}

// SegmentTrace cuts a flat trace at its change points and returns the
// recovered segments with summed footprints. An empty trace yields no
// segments; a homogeneous trace (an envelope-padded deployment) yields
// exactly one.
func SegmentTrace(samples []march.Counts, cfg SegmenterConfig) []Segment {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil
	}
	var segs []Segment
	start := 0
	prev := signature(samples[0])
	for i := 1; i < len(samples); i++ {
		cur := signature(samples[i])
		if boundary(prev, cur, cfg) {
			segs = append(segs, finishSegment(samples, start, i))
			start = i
		}
		prev = cur
	}
	segs = append(segs, finishSegment(samples, start, len(samples)))
	return segs
}

func finishSegment(samples []march.Counts, start, end int) Segment {
	s := Segment{Start: start, End: end}
	for _, c := range samples[start:end] {
		for e := range s.Counts {
			s.Counts[e] += c[e]
		}
	}
	return s
}

// boundariesOf lists the end index of every segment — comparable against
// a Trace's ground-truth Boundaries for segmenter validation.
func boundariesOf(segs []Segment) []int {
	out := make([]int, len(segs))
	for i, s := range segs {
		out[i] = s.End
	}
	return out
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
