package topo

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/tensor"
)

// testInputs draws a small MNIST-like image pool shared by the campaign
// fixtures.
func testInputs(t *testing.T, n int) []*tensor.Tensor {
	t.Helper()
	_, test, err := dataset.MNISTLike(dataset.Config{PerClassTrain: 1, PerClassTest: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out []*tensor.Tensor
	for _, s := range test.Samples {
		out = append(out, s.Image)
		if len(out) == n {
			break
		}
	}
	return out
}

func testConfig(t *testing.T, level defense.Level) Config {
	t.Helper()
	return Config{
		InH: 28, InW: 28, InC: 1, Classes: 10,
		Inputs:      testInputs(t, 6),
		Level:       level,
		TrainSize:   8,
		HoldoutSize: 6,
		Runs:        6,
		Workers:     2,
		Seed:        17,
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(ctx, Config{InH: 28, InW: 28, InC: 1, Classes: 10}); err == nil {
		t.Fatal("config without inputs accepted")
	}
	ins := testInputs(t, 1)
	if _, err := Run(ctx, Config{InH: 28, InW: 28, InC: 1, Classes: 10, Inputs: ins, TrainSize: 1}); err == nil {
		t.Fatal("single-member training zoo accepted")
	}
	if _, err := Run(ctx, Config{InH: 28, InW: 28, InC: 1, Classes: 10, Inputs: ins, Runs: 1}); err == nil {
		t.Fatal("single measured run accepted")
	}
	if _, err := Run(ctx, Config{InH: 28, InW: 28, InC: 1, Classes: 10, Inputs: ins,
		Events: march.ExtendedEvents()}); err == nil {
		t.Fatal("events beyond one register group accepted")
	}
}

// TestTrainHoldoutDisjoint: no held-out victim architecture may appear in
// the training zoo — the whole point of the scenario is reconstructing
// architectures the attacker never profiled.
func TestTrainHoldoutDisjoint(t *testing.T) {
	c, err := NewCampaign(testConfig(t, defense.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	trained := c.trainZoo.Names()
	for name := range c.holdZoo.Names() {
		if trained[name] {
			t.Fatalf("victim architecture %q is in the training zoo", name)
		}
	}
	if c.trainZoo.Len() != 8 || c.holdZoo.Len() != 6 {
		t.Fatalf("zoo sizes %d/%d, want 8/6", c.trainZoo.Len(), c.holdZoo.Len())
	}
}

// TestSegmenterRecoversKnownBoundaries validates the change-point
// segmenter against the known-boundary attribution: on every held-out
// baseline victim, the recovered segment ends must equal the
// ground-truth layer boundaries sample-for-sample, and the per-segment
// kinds must follow the true layer stack.
func TestSegmenterRecoversKnownBoundaries(t *testing.T) {
	c, err := NewCampaign(testConfig(t, defense.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	for id, net := range c.holdNets {
		trace, err := extractTrace(net, c.cfg.Level, c.cfg.Inputs[0], c.cfg.Quantum)
		if err != nil {
			t.Fatal(err)
		}
		segs := SegmentTrace(trace.Samples, c.cfg.Segmenter)
		if got, want := boundariesOf(segs), trace.Boundaries; !reflect.DeepEqual(got, want) {
			t.Fatalf("victim %d: segment boundaries %v, attribution boundaries %v", id, got, want)
		}
		if len(segs) != len(trace.Kinds) {
			t.Fatalf("victim %d: %d segments for %d layers", id, len(segs), len(trace.Kinds))
		}
	}
}

// TestSegmentTraceDegenerate: the segmenter must survive the inputs the
// padded deployment produces.
func TestSegmentTraceDegenerate(t *testing.T) {
	if segs := SegmentTrace(nil, SegmenterConfig{}); segs != nil {
		t.Fatalf("empty trace produced %d segments", len(segs))
	}
	// A homogeneous stream — identical samples — must yield one segment.
	var s march.Counts
	s[march.EvInstructions] = 5000
	s[march.EvL1DLoads] = 1200
	uniform := []march.Counts{s, s, s, s}
	segs := SegmentTrace(uniform, SegmenterConfig{})
	if len(segs) != 1 || segs[0].Start != 0 || segs[0].End != 4 {
		t.Fatalf("uniform trace segments = %+v, want one [0,4) segment", segs)
	}
	if got := segs[0].Counts.Get(march.EvInstructions); got != 20000 {
		t.Fatalf("segment sum = %d, want 20000", got)
	}
}

// TestBaselineReconstruction is the acceptance criterion's headline: on
// held-out, never-profiled specs under the baseline defense, the
// subsystem recovers the exact layer count on ≥90% of victims and the
// per-segment layer kind at ≥90% accuracy — and the
// reconstruct-then-validate footprint check agrees with the measured
// victim profiles.
func TestBaselineReconstruction(t *testing.T) {
	res, err := Run(context.Background(), testConfig(t, defense.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Padded {
		t.Fatal("baseline campaign reported as padded")
	}
	if res.ExactCountRate < 0.9 {
		t.Fatalf("exact layer-count rate = %.3f, want >= 0.9", res.ExactCountRate)
	}
	if res.MeanKindAccuracy < 0.9 {
		t.Fatalf("mean kind accuracy = %.3f, want >= 0.9", res.MeanKindAccuracy)
	}
	for _, v := range res.Victims {
		if !v.BoundaryMatch {
			t.Fatalf("victim %d (%s): segmenter missed the attribution boundaries", v.ArchID, v.Name)
		}
	}
	if res.MeanParamRelErr < 0 || res.MeanParamRelErr > 0.3 {
		t.Fatalf("mean hyper-parameter relative error = %.3f, want (0, 0.3]", res.MeanParamRelErr)
	}
	if res.MeanFootprintRelErr < 0 || res.MeanFootprintRelErr > 0.3 {
		t.Fatalf("mean footprint verification error = %.3f, want (0, 0.3]", res.MeanFootprintRelErr)
	}
}

// TestPaddedEnvelopeCollapsesReconstruction is the defense direction: the
// envelope-padded deployment's constant-rate trace carries no layer
// structure, so kind accuracy falls to within 1.5× of chance and the
// layer count is essentially never exact.
func TestPaddedEnvelopeCollapsesReconstruction(t *testing.T) {
	res, err := Run(context.Background(), testConfig(t, defense.PaddedEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Padded {
		t.Fatal("padded-envelope campaign not padded")
	}
	if res.MeanKindAccuracy > 1.5*res.ChanceKind {
		t.Fatalf("padded kind accuracy = %.3f, want <= 1.5x chance (%.3f)", res.MeanKindAccuracy, res.ChanceKind)
	}
	if res.ExactCountRate > 0.2 {
		t.Fatalf("padded exact layer-count rate = %.3f, want <= 0.2", res.ExactCountRate)
	}
	for _, v := range res.Victims {
		if v.BoundaryMatch {
			t.Fatalf("victim %d: padded trace still exposes the attribution boundaries", v.ArchID)
		}
	}
	// The footprint check runs against *measured* profiles of the deployed
	// padded targets, which the envelope makes identical across victims
	// (constant-time kernels + equalized pads); the recovered stack is the
	// same for every victim too, so every verification error must agree
	// exactly. If the deployment silently stopped padding, the per-victim
	// measured L1 loads would differ and so would these values.
	for _, v := range res.Victims[1:] {
		if v.FootprintRelErr != res.Victims[0].FootprintRelErr {
			t.Fatalf("victim %d footprint error %v differs from victim 0's %v — padded deployments are not equalized",
				v.ArchID, v.FootprintRelErr, res.Victims[0].FootprintRelErr)
		}
	}
}

// TestPaddedTraceMatchesDeployedFootprint ties the synthesized padded
// observer trace to the *implemented* defense: the trace's counter
// totals must equal the measured steady-state per-classification deltas
// of a real PaddedEnvelope deployment of every victim, on every
// directly-counted event. If Hardened.Classify stopped applying the pad
// (or the envelope stopped covering an event), the homogeneous trace the
// collapse results are scored on would no longer describe the deployment
// and this fails.
func TestPaddedTraceMatchesDeployedFootprint(t *testing.T) {
	c, err := NewCampaign(testConfig(t, defense.PaddedEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	trace := paddedTrace(c.env, c.cfg.Quantum)
	var total march.Counts
	for _, s := range trace.Samples {
		for e := range total {
			total[e] += s[e]
		}
	}
	direct := []march.Event{
		march.EvInstructions, march.EvBranches, march.EvBranchMisses,
		march.EvCacheReferences, march.EvCacheMisses,
		march.EvL1DLoads, march.EvL1DLoadMisses,
		march.EvLLCLoads, march.EvLLCLoadMisses,
		march.EvDTLBLoads, march.EvDTLBLoadMisses,
	}
	input := c.cfg.Inputs[0]
	for id, net := range c.holdNets {
		engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
		if err != nil {
			t.Fatal(err)
		}
		target, err := defense.New(net, engine, defense.Config{
			Level:         defense.PaddedEnvelope,
			Runtime:       instrument.NoRuntime(),
			Envelope:      c.env,
			EnvelopeIndex: id,
		})
		if err != nil {
			t.Fatal(err)
		}
		engine.ColdReset()
		for i := 0; i < traceWarmup; i++ {
			if _, err := target.Classify(input); err != nil {
				t.Fatal(err)
			}
		}
		before := engine.Counts()
		if _, err := target.Classify(input); err != nil {
			t.Fatal(err)
		}
		delta := engine.Counts().Sub(before)
		for _, e := range direct {
			if delta.Get(e) != total.Get(e) {
				t.Fatalf("victim %d: deployed padded %s = %d, synthesized trace totals %d — the observer model diverged from the deployment",
					id, e, delta.Get(e), total.Get(e))
			}
		}
	}
}

// TestWorkerInvariance: the campaign's serialized result must be
// byte-identical at workers=1 and workers=8 (run under -race in CI).
func TestWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		cfg := testConfig(t, defense.Baseline)
		cfg.Workers = workers
		cfg.HoldoutSize = 4
		cfg.TrainSize = 6
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one, eight := run(1), run(8)
	if string(one) != string(eight) {
		t.Fatalf("topo results differ across worker counts:\n  workers=1: %s\n  workers=8: %s", one, eight)
	}
}

// TestBuildRecoveredDegenerate: unrealizable recovered stacks must fail
// to rebuild (and therefore report an unverifiable reconstruction)
// instead of panicking or silently building something else.
func TestBuildRecoveredDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		guesses []LayerGuess
	}{
		{"empty", nil},
		{"conv after dense", []LayerGuess{{Kind: "dense", Param: 8}, {Kind: "conv", Param: 4, Kernel: 3}}},
		{"pool after dense", []LayerGuess{{Kind: "dense", Param: 8}, {Kind: "pool"}}},
		{"unknown kind", []LayerGuess{{Kind: "wat"}}},
		{"oversized kernel", []LayerGuess{{Kind: "conv", Param: 4, Kernel: 31}}},
		{"zero width dense", []LayerGuess{{Kind: "dense", Param: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := buildRecovered(tc.guesses, 12, 12, 1, 4, 1); err == nil {
				t.Fatalf("degenerate stack %q built successfully", tc.name)
			}
		})
	}
	// A sane stack must build.
	ok := []LayerGuess{
		{Kind: "conv", Param: 4, Kernel: 3}, {Kind: "relu"}, {Kind: "pool"},
		{Kind: "dense", Param: 4}, {Kind: "relu"}, {Kind: "dense", Param: 2},
	}
	net, err := buildRecovered(ok, 12, 12, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(trueTopology(net)); got != len(ok) {
		t.Fatalf("rebuilt stack has %d observable layers, want %d", got, len(ok))
	}
}

// TestEstimatorSolver pins the ridge least-squares machinery on an exact
// synthetic system.
func TestEstimatorSolver(t *testing.T) {
	// target = 0.5 + 2·f1 − 1·f2 + 0.25·f3, exactly.
	var feats [][4]float64
	var targets []float64
	for i := 0; i < 12; i++ {
		f := [4]float64{1, float64(i%5) + 1, float64(i%3) + 2, float64(i%7) + 3}
		feats = append(feats, f)
		targets = append(targets, 0.5+2*f[1]-1*f[2]+0.25*f[3])
	}
	e := fitEstimator(feats, targets)
	if !e.ok {
		t.Fatal("estimator not fitted")
	}
	want := [4]float64{0.5, 2, -1, 0.25}
	for i := range want {
		if math.Abs(e.w[i]-want[i]) > 1e-3 {
			t.Fatalf("weight %d = %v, want %v (all: %v)", i, e.w[i], want[i], e.w)
		}
	}
}
