package topo

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/hpc"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Seed-derivation domains (core.DeriveSeed's third argument), disjoint
// from the evaluation (0, 1), attack (2, 3), sweep (4) and archid
// (10, 11) stages.
const (
	seedDomainTrainZoo       = 20 // training-zoo spec generation
	seedDomainHoldoutZoo     = 21 // held-out victim-zoo spec generation
	seedDomainTrainWeights   = 22 // per-training-member weight construction
	seedDomainHoldoutWeights = 23 // per-victim weight construction
	seedDomainPipeline       = 24 // collection campaign root
	seedDomainRebuild        = 25 // recovered-spec verification weights
)

// Config controls a topology-recovery campaign. The zero value (plus an
// input shape, class count and Inputs) reconstructs 6 held-out victims
// with models trained on an 8-member zoo at the baseline level.
type Config struct {
	// Name identifies the campaign in the result ("mnist-topo/baseline").
	Name string
	// InH/InW/InC/Classes describe the victims' (public) input interface;
	// both zoos are generated over it.
	InH, InW, InC, Classes int
	// Inputs is the shared image pool; pipeline run r of every victim
	// classifies Inputs[r%len(Inputs)].
	Inputs []*tensor.Tensor
	// Events are the pipeline session's monitored HPC events; default
	// instructions and L1-dcache-loads (the verification channels). One
	// campaign session counts one register group.
	Events []march.Event
	// Level hardens every victim deployment; default Baseline.
	// PaddedEnvelope pads every victim to the holdout zoo's envelope.
	Level defense.Level
	// TrainSize / HoldoutSize are the zoo sizes; defaults 8 / 6. The two
	// zoos are disjoint by construction: no held-out victim architecture
	// ever appears in the training zoo.
	TrainSize, HoldoutSize int
	// Runs is the measured pipeline observations per victim; default 8.
	Runs int
	// Quantum is the trace-sampling quantum in instructions; default
	// DefaultQuantum.
	Quantum uint64
	// Segmenter tunes the change-point detector (zero value = defaults).
	Segmenter SegmenterConfig
	// Workers is the pipeline worker count; 0 → GOMAXPROCS.
	Workers int
	// Seed is the campaign root seed; default 1. Zoo generation, weights,
	// shard seeds and noise all derive from it.
	Seed int64
	// Session offsets the pipeline root seed — the per-register-group
	// sessions of a wide event set (see repro.Scenario.TopoGrouped).
	Session int
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// DisableRuntime removes the simulated framework overhead.
	DisableRuntime bool
	// DisableNoise removes measurement noise (deterministic counts).
	DisableNoise bool
	// Obs, when non-nil, records campaign telemetry. Observational
	// output only — results are byte-identical with or without it.
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = fmt.Sprintf("topo/%s", c.Level)
	}
	if len(c.Events) == 0 {
		c.Events = []march.Event{march.EvInstructions, march.EvL1DLoads}
	}
	if c.TrainSize <= 0 {
		c.TrainSize = 8
	}
	if c.HoldoutSize <= 0 {
		c.HoldoutSize = 6
	}
	if c.Runs <= 0 {
		c.Runs = 8
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.InH <= 0 || c.InW <= 0 || c.InC <= 0 || c.Classes <= 1 {
		return fmt.Errorf("topo: bad victim input shape %dx%dx%d/%d classes", c.InH, c.InW, c.InC, c.Classes)
	}
	if len(c.Inputs) == 0 {
		return fmt.Errorf("topo: need at least one input image")
	}
	if c.TrainSize < 2 {
		return fmt.Errorf("topo: need a training zoo of at least 2 architectures, got %d", c.TrainSize)
	}
	if c.HoldoutSize < 1 {
		return fmt.Errorf("topo: need at least 1 held-out victim, got %d", c.HoldoutSize)
	}
	if c.Runs < 2 {
		return fmt.Errorf("topo: need at least 2 measured runs per victim, got %d", c.Runs)
	}
	return nil
}

// LayerGuess is one recovered layer: the classified kind, the regressed
// primary hyper-parameter (conv channels / dense width), the snapped
// kernel size (conv only), and the segment footprint it was read from.
type LayerGuess struct {
	Kind         string `json:"kind"`
	Param        int    `json:"param,omitempty"`
	Kernel       int    `json:"kernel,omitempty"`
	Samples      int    `json:"samples"`
	Instructions uint64 `json:"instructions"`
	L1Loads      uint64 `json:"l1_loads"`
}

// VictimResult is the per-victim reconstruction scorecard.
type VictimResult struct {
	ArchID int    `json:"id"`
	Name   string `json:"name"`
	// True and Recovered are the ground-truth and reconstructed layer
	// stacks (observable layers only; flatten is invisible).
	True      []LayerTruth `json:"true_layers"`
	Recovered []LayerGuess `json:"recovered_layers"`
	// ExactCount reports len(Recovered) == len(True); BoundaryMatch
	// whether the segmenter reproduced the attribution's boundaries
	// sample-exactly.
	ExactCount    bool `json:"exact_count"`
	BoundaryMatch bool `json:"boundary_match"`
	// KindAccuracy is position-aligned kind agreement over
	// max(len(True), len(Recovered)) slots.
	KindAccuracy float64 `json:"kind_accuracy"`
	// ParamRelErr is the mean relative error of the regressed
	// hyper-parameters over kind-matched slots (conv: channels and
	// kernel; dense: width); -1 when no such slot exists.
	ParamRelErr float64 `json:"param_rel_err"`
	// FootprintRelErr is the reconstruct-then-validate check: the
	// recovered spec is rebuilt and its deterministic footprint compared
	// against the victim's measured pipeline profiles on the verification
	// event; -1 when the recovered stack does not build.
	FootprintRelErr float64 `json:"footprint_rel_err"`
}

// Result is the outcome of one topology-recovery campaign.
type Result struct {
	Name    string        `json:"name"`
	Level   defense.Level `json:"level"`
	Padded  bool          `json:"padded"`
	Seed    int64         `json:"seed"`
	Quantum uint64        `json:"quantum"`
	// Events are the pipeline session events (joined order for
	// multi-session campaigns).
	Events []march.Event `json:"events"`
	// TrainSpecs / HoldoutSpecs are the two disjoint hypothesis spaces.
	TrainSpecs   []nn.SpecInfo `json:"train_specs"`
	HoldoutSpecs []nn.SpecInfo `json:"holdout_specs"`
	// Kinds are the layer kinds the classifier discriminates; ChanceKind
	// is 1/len(Kinds).
	Kinds      []string `json:"kinds"`
	ChanceKind float64  `json:"chance_kind"`
	// Victims are the per-victim scorecards in architecture-id order.
	Victims []VictimResult `json:"victims"`
	// Aggregates over the holdout zoo. ExactCountRate is the fraction of
	// victims whose layer count was recovered exactly; MeanKindAccuracy
	// averages the per-victim kind accuracies; the error means average
	// the non-sentinel per-victim values (-1 when none exist).
	ExactCountRate      float64 `json:"exact_count_rate"`
	MeanKindAccuracy    float64 `json:"mean_kind_accuracy"`
	MeanParamRelErr     float64 `json:"mean_param_rel_err"`
	MeanFootprintRelErr float64 `json:"mean_footprint_rel_err"`
}

// Campaign is the precomputed per-campaign state: the two disjoint zoos
// and their deterministic networks, the fitted attacker models, the
// victim traces and their reconstructions. Multi-session campaigns reuse
// one Campaign so the zoos are generated (and the models fitted) exactly
// once; only the pipeline collection is per-session.
type Campaign struct {
	cfg       Config
	trainZoo  *nn.Zoo
	holdZoo   *nn.Zoo
	trainNets []*nn.Network
	holdNets  []*nn.Network
	env       *defense.Envelope // non-nil iff the deployment is padded
	kindModel *KindModel
	est       estimators
	truths    [][]LayerTruth
	recovered [][]LayerGuess
	boundary  []bool // per-victim segmenter-vs-attribution agreement
}

// NewCampaign validates the configuration, generates the disjoint zoos,
// fits the attacker models on the training zoo and reconstructs every
// held-out victim from its flat trace. cfg.Events and cfg.Session are
// ignored here — they are per-session inputs to Collect.
func NewCampaign(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg}
	var err error
	c.trainZoo, err = nn.GenerateZoo(nn.ZooGenConfig{
		InH: cfg.InH, InW: cfg.InW, InC: cfg.InC, Classes: cfg.Classes,
		Size: cfg.TrainSize, Seed: core.DeriveSeed(cfg.Seed, 0, seedDomainTrainZoo),
	})
	if err != nil {
		return nil, fmt.Errorf("topo: training zoo: %w", err)
	}
	c.holdZoo, err = nn.GenerateZoo(nn.ZooGenConfig{
		InH: cfg.InH, InW: cfg.InW, InC: cfg.InC, Classes: cfg.Classes,
		Size: cfg.HoldoutSize, Seed: core.DeriveSeed(cfg.Seed, 0, seedDomainHoldoutZoo),
		Avoid: c.trainZoo.Names(),
	})
	if err != nil {
		return nil, fmt.Errorf("topo: holdout zoo: %w", err)
	}
	if c.trainNets, err = buildZooNets(c.trainZoo, cfg.Seed, seedDomainTrainWeights); err != nil {
		return nil, err
	}
	if c.holdNets, err = buildZooNets(c.holdZoo, cfg.Seed, seedDomainHoldoutWeights); err != nil {
		return nil, err
	}
	if cfg.Level == defense.PaddedEnvelope {
		if c.env, err = defense.NewEnvelope(c.holdNets, cfg.Inputs[0]); err != nil {
			return nil, err
		}
	}
	if err := c.fitModels(); err != nil {
		return nil, err
	}
	if err := c.reconstructVictims(); err != nil {
		return nil, err
	}
	return c, nil
}

// buildZooNets constructs every zoo member with weights derived from the
// campaign seed in the given domain.
func buildZooNets(zoo *nn.Zoo, seed int64, domain int) ([]*nn.Network, error) {
	nets := make([]*nn.Network, zoo.Len())
	for _, s := range zoo.Specs() {
		net, err := zoo.Build(s.ID, core.DeriveSeed(seed, s.ID, domain))
		if err != nil {
			return nil, fmt.Errorf("topo: building %s: %w", s.Name, err)
		}
		nets[s.ID] = net
	}
	return nets, nil
}

// Padded reports whether the campaign's victims are envelope-padded.
func (c *Campaign) Padded() bool { return c.env != nil }

// fitModels extracts attributed training traces and fits the kind
// classifier and hyper-parameter estimators on them.
func (c *Campaign) fitModels() error {
	var segs []trainSegment
	for id, net := range c.trainNets {
		trace, err := extractTrace(net, c.cfg.Level, c.cfg.Inputs[0], c.cfg.Quantum)
		if err != nil {
			return err
		}
		truth := trueTopology(net)
		if len(truth) != len(trace.Kinds) {
			return fmt.Errorf("topo: training member %d: %d observable layers but %d traced segments",
				id, len(truth), len(trace.Kinds))
		}
		start := 0
		for i, end := range trace.Boundaries {
			if trace.Kinds[i] != truth[i].Kind {
				return fmt.Errorf("topo: training member %d layer %d: trace kind %q vs truth %q",
					id, i, trace.Kinds[i], truth[i].Kind)
			}
			seg := finishSegment(trace.Samples, start, end)
			segs = append(segs, trainSegment{
				kind:   truth[i].Kind,
				counts: seg.Counts,
				param:  truth[i].Param,
				kernel: truth[i].Kernel,
				inVol:  truth[i].InVol,
			})
			start = end
		}
	}
	var err error
	if c.kindModel, err = trainKindModel(segs); err != nil {
		return err
	}
	c.est = fitEstimators(segs)
	return nil
}

// reconstructVictims extracts every held-out victim's flat trace, segments
// it, classifies each segment and regresses its hyper-parameters.
func (c *Campaign) reconstructVictims() error {
	c.truths = make([][]LayerTruth, len(c.holdNets))
	c.recovered = make([][]LayerGuess, len(c.holdNets))
	c.boundary = make([]bool, len(c.holdNets))
	for id, net := range c.holdNets {
		c.truths[id] = trueTopology(net)
		var trace *Trace
		if c.env != nil {
			trace = paddedTrace(c.env, c.cfg.Quantum)
		} else {
			var err error
			if trace, err = extractTrace(net, c.cfg.Level, c.cfg.Inputs[0], c.cfg.Quantum); err != nil {
				return err
			}
		}
		segs := SegmentTrace(trace.Samples, c.cfg.Segmenter)
		c.boundary[id] = equalInts(boundariesOf(segs), trace.Boundaries)
		c.recovered[id] = c.reconstruct(segs)
	}
	return nil
}

// reconstruct turns recovered segments into a layer stack: kinds first
// (so shape propagation can look ahead), then hyper-parameters, walking
// the (publicly known) input shape through the estimated layers so each
// estimator sees its segment's input volume. Conv-channel and dense-width
// estimates are refined through the following relu segment when one was
// recovered: the relu's calibrated element throughput reveals the
// preceding layer's output volume, which pins the channel count (given
// the kernel guess) and the width directly.
func (c *Campaign) reconstruct(segs []Segment) []LayerGuess {
	kinds := make([]string, len(segs))
	for i, s := range segs {
		kinds[i] = c.kindModel.Predict(s.Counts)
	}
	// nextVol estimates segment i+1's element volume via the relu
	// throughput calibration; 0 when unavailable.
	nextVol := func(i int) int {
		if i+1 >= len(segs) || kinds[i+1] != "relu" || c.est.reluVolPerInstr <= 0 {
			return 0
		}
		instr := segs[i+1].Counts.Get(march.EvInstructions)
		return int(float64(instr)*c.est.reluVolPerInstr + 0.5)
	}
	h, w, ch := c.cfg.InH, c.cfg.InW, c.cfg.InC
	guesses := make([]LayerGuess, 0, len(segs))
	for i, s := range segs {
		inVol := h * w * ch
		g := LayerGuess{
			Kind:         kinds[i],
			Samples:      s.End - s.Start,
			Instructions: s.Counts.Get(march.EvInstructions),
			L1Loads:      s.Counts.Get(march.EvL1DLoads),
		}
		switch kinds[i] {
		case "conv":
			oc, structural := c.est.convFromStructure(s.Counts, inVol)
			if !structural {
				oc = c.est.convChannels.predict(s.Counts, inVol)
			}
			k := snapOddKernel(c.est.convKernel.predict(s.Counts, inVol))
			if outVol := nextVol(i); outVol > 0 && oc >= 1 {
				// The relu-calibrated output volume pins the spatial map:
				// pick the odd kernel whose output area best matches
				// outVol/outC, then re-derive the channel count from it.
				k = bestKernel(h, w, float64(outVol)/float64(oc))
				oh, ow := h-k+1, w-k+1
				if refined := (outVol + oh*ow/2) / (oh * ow); refined >= 1 {
					oc = refined
				}
			}
			for k > 1 && (h-k+1 < 1 || w-k+1 < 1) {
				k -= 2 // keep the propagated geometry realizable
			}
			g.Param, g.Kernel = oc, k
			h, w, ch = maxInt(h-k+1, 1), maxInt(w-k+1, 1), g.Param
		case "pool":
			h, w = maxInt(h/2, 1), maxInt(w/2, 1)
		case "dense":
			g.Param = c.est.denseWidth.predict(s.Counts, inVol)
			if outVol := nextVol(i); outVol > 0 {
				g.Param = outVol
			}
			h, w, ch = 1, 1, g.Param
		}
		guesses = append(guesses, g)
	}
	return guesses
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bestKernel returns the odd kernel size whose valid output area
// (h−k+1)·(w−k+1) is closest to the target area.
func bestKernel(h, w int, area float64) int {
	best, bestDiff := 1, math.Inf(1)
	for k := 1; k <= h && k <= w; k += 2 {
		diff := math.Abs(float64((h-k+1)*(w-k+1)) - area)
		if diff < bestDiff {
			best, bestDiff = k, diff
		}
	}
	return best
}

// Collect runs one collection session on the concurrent sharded pipeline
// and returns the labelled per-run profiles, byVictim[victim id][run].
// Each shard deploys a fresh instance of its victim through the
// class-aware factory; sessions of the same campaign observe the same
// victims with disjoint observation seeds.
func (c *Campaign) Collect(ctx context.Context, events []march.Event, session int) (map[int][]hpc.Profile, error) {
	p, err := c.sessionPipeline(events, session)
	if err != nil {
		return nil, err
	}
	return p.CollectProfilesByClass(ctx, c.factory(), c.Pools())
}

// sessionPipeline builds one collection session's pipeline: session-
// derived root seed over the campaign's run budget.
func (c *Campaign) sessionPipeline(events []march.Event, session int) (*pipeline.Pipeline, error) {
	if len(events) == 0 || len(events) > hpc.DefaultCounters {
		return nil, fmt.Errorf("topo: a session counts 1..%d events, got %d (split wide sets into register groups)",
			hpc.DefaultCounters, len(events))
	}
	ev, err := core.NewEvaluator(core.Config{
		Events:       events,
		RunsPerClass: c.cfg.Runs,
		Obs:          c.cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return pipeline.New(ev, pipeline.Config{
		Workers:   c.cfg.Workers,
		RootSeed:  core.DeriveSeed(c.cfg.Seed, session, seedDomainPipeline),
		ShardRuns: c.cfg.ShardRuns,
		Obs:       c.cfg.Obs,
	})
}

// Pools returns the per-victim input pools of a collection session:
// every victim classifies the shared campaign pool.
func (c *Campaign) Pools() map[int][]*tensor.Tensor {
	perClass := make(map[int][]*tensor.Tensor, len(c.holdNets))
	for id := range c.holdNets {
		perClass[id] = c.cfg.Inputs
	}
	return perClass
}

// SessionExecutor builds one collection session's pipeline and plan
// executor — the two halves the distributed fabric splits across
// processes: the coordinator plans shards and merges payloads with the
// pipeline, and a shardworker process executes plans with the executor.
// Both sides rebuild identical state from the campaign configuration
// alone, which is what keeps fabric campaigns byte-identical to
// in-process ones.
func (c *Campaign) SessionExecutor(events []march.Event, session int) (*pipeline.Pipeline, *pipeline.Executor, error) {
	p, err := c.sessionPipeline(events, session)
	if err != nil {
		return nil, nil, err
	}
	exec, err := p.Executor(c.factory(), c.Pools())
	if err != nil {
		return nil, nil, err
	}
	return p, exec, nil
}

// factory builds the class-aware target factory: shard workers deploy
// victim `class` hardened at the campaign's level on a fresh engine
// seeded from the shard seed, padded to the holdout envelope when the
// level is PaddedEnvelope.
func (c *Campaign) factory() pipeline.ClassTargetFactory {
	cfg, nets, env := c.cfg, c.holdNets, c.env
	return func(class int, seed int64) (core.Target, error) {
		if class < 0 || class >= len(nets) {
			return nil, fmt.Errorf("topo: no victim %d", class)
		}
		var noise *march.NoiseModel
		if !cfg.DisableNoise {
			noise = march.DefaultNoise(seed)
		}
		engine, err := march.NewEngine(march.Config{
			Hierarchy: instrument.SimHierarchy(),
			Noise:     noise,
		})
		if err != nil {
			return nil, err
		}
		rt := instrument.DefaultRuntime()
		if cfg.DisableRuntime {
			rt = instrument.NoRuntime()
		}
		return defense.New(nets[class], engine, defense.Config{
			Level:         cfg.Level,
			Seed:          seed + 1,
			Runtime:       rt,
			Envelope:      env,
			EnvelopeIndex: class,
		})
	}
}

// Score assembles the campaign result from collected profiles (events
// must list the joined feature order when profiles were merged across
// sessions): per-victim scorecards, the reconstruct-then-validate
// footprint check, and the aggregates.
func (c *Campaign) Score(events []march.Event, byVictim map[int][]hpc.Profile) (*Result, error) {
	res := &Result{
		Name:         c.cfg.Name,
		Level:        c.cfg.Level,
		Padded:       c.Padded(),
		Seed:         c.cfg.Seed,
		Quantum:      c.cfg.Quantum,
		Events:       append([]march.Event(nil), events...),
		TrainSpecs:   c.trainZoo.Infos(),
		HoldoutSpecs: c.holdZoo.Infos(),
		Kinds:        c.kindModel.Kinds(),
	}
	res.ChanceKind = 1 / float64(len(res.Kinds))
	verifyEvent, verifiable := verificationEvent(events)
	var exact, kindSum, paramSum, footSum float64
	paramN, footN := 0, 0
	for id := range c.holdNets {
		spec, _ := c.holdZoo.ByID(id)
		v := VictimResult{
			ArchID:          id,
			Name:            spec.Name,
			True:            c.truths[id],
			Recovered:       c.recovered[id],
			BoundaryMatch:   c.boundary[id],
			ParamRelErr:     -1,
			FootprintRelErr: -1,
		}
		v.ExactCount = len(v.Recovered) == len(v.True)
		v.KindAccuracy = kindAccuracy(v.True, v.Recovered)
		if err, ok := paramRelErr(v.True, v.Recovered); ok {
			v.ParamRelErr = err
			paramSum += err
			paramN++
		}
		if verifiable {
			if err, ok := c.verifyFootprint(id, v.Recovered, byVictim[id], verifyEvent); ok {
				v.FootprintRelErr = err
				footSum += err
				footN++
			}
		}
		if v.ExactCount {
			exact++
		}
		kindSum += v.KindAccuracy
		res.Victims = append(res.Victims, v)
	}
	n := float64(len(c.holdNets))
	res.ExactCountRate = exact / n
	res.MeanKindAccuracy = kindSum / n
	res.MeanParamRelErr = -1
	if paramN > 0 {
		res.MeanParamRelErr = paramSum / float64(paramN)
	}
	res.MeanFootprintRelErr = -1
	if footN > 0 {
		res.MeanFootprintRelErr = footSum / float64(footN)
	}
	return res, nil
}

// Run is the end-to-end single-session campaign: NewCampaign, Collect,
// Score.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	c, err := NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	byVictim, err := c.Collect(ctx, cfg.Events, cfg.Session)
	if err != nil {
		return nil, err
	}
	return c.Score(cfg.Events, byVictim)
}

// verificationEvent picks the footprint-check channel: L1 loads when
// profiled (runtime- and noise-free in the simulation, so the check is
// sharp), else the first profiled event the rebuild can account for. The
// cycle-family events are never usable — their measured values mix
// base-CPI, stall penalties and the runtime model's cycle contribution,
// none of which the kernel-level rebuild (plus runtimeMean, which covers
// only retirement and LLC counters) can reproduce — so a cycle-only
// session reports no verification at all rather than condemning a
// perfect reconstruction with a spurious ~100% error.
func verificationEvent(events []march.Event) (march.Event, bool) {
	usable := func(e march.Event) bool {
		switch e {
		case march.EvCycles, march.EvBusCycles, march.EvRefCycles:
			return false
		}
		return true
	}
	for _, e := range events {
		if e == march.EvL1DLoads {
			return e, true
		}
	}
	for _, e := range events {
		if usable(e) {
			return e, true
		}
	}
	return 0, false
}

// kindAccuracy scores position-aligned kind agreement over
// max(len(truth), len(rec)) slots: missing or surplus recovered layers
// count as misses.
func kindAccuracy(truth []LayerTruth, rec []LayerGuess) float64 {
	n := len(truth)
	if len(rec) > n {
		n = len(rec)
	}
	if n == 0 {
		return 1
	}
	match := 0
	for i := 0; i < len(truth) && i < len(rec); i++ {
		if truth[i].Kind == rec[i].Kind {
			match++
		}
	}
	return float64(match) / float64(n)
}

// paramRelErr averages the relative error of the regressed
// hyper-parameters over kind-matched positions (conv contributes channel
// and kernel errors, dense the width error). ok is false when no
// kind-matched parametric position exists.
func paramRelErr(truth []LayerTruth, rec []LayerGuess) (float64, bool) {
	sum, n := 0.0, 0
	relErr := func(got, want int) float64 {
		d := float64(got - want)
		if d < 0 {
			d = -d
		}
		return d / float64(want)
	}
	for i := 0; i < len(truth) && i < len(rec); i++ {
		if truth[i].Kind != rec[i].Kind {
			continue
		}
		switch truth[i].Kind {
		case "conv":
			sum += relErr(rec[i].Param, truth[i].Param)
			sum += relErr(rec[i].Kernel, truth[i].Kernel)
			n += 2
		case "dense":
			sum += relErr(rec[i].Param, truth[i].Param)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// verifyFootprint closes the reconstruct-then-validate loop: the recovered
// stack is rebuilt (fresh deterministic weights), its per-run kernel
// footprint measured over the same input cycle the pipeline used, and the
// mean compared against the victim's measured profiles on the
// verification event. ok is false when the recovered stack does not build
// or no profiles exist.
func (c *Campaign) verifyFootprint(victim int, rec []LayerGuess, profiles []hpc.Profile, event march.Event) (float64, bool) {
	if len(profiles) == 0 {
		return 0, false
	}
	measured := 0.0
	for _, p := range profiles {
		measured += p.Get(event)
	}
	measured /= float64(len(profiles))
	net, err := buildRecovered(rec, c.cfg.InH, c.cfg.InW, c.cfg.InC, c.cfg.Classes,
		core.DeriveSeed(c.cfg.Seed, victim, seedDomainRebuild))
	if err != nil {
		return 0, false
	}
	expected, err := c.expectedFootprint(net, event)
	if err != nil {
		return 0, false
	}
	denom := measured
	if denom < 1 {
		denom = 1
	}
	diff := measured - expected
	if diff < 0 {
		diff = -diff
	}
	return diff / denom, true
}

// expectedFootprint measures the rebuilt candidate's mean per-run count of
// one event over the pipeline's input cycle (kernel region plus the
// runtime model's mean contribution when the campaign runs with runtime).
func (c *Campaign) expectedFootprint(net *nn.Network, event march.Event) (float64, error) {
	opts, err := defense.KernelOptions(c.cfg.Level)
	if err != nil {
		return 0, err
	}
	opts.Runtime = instrument.NoRuntime()
	engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		return 0, err
	}
	cl, err := instrument.New(net, engine, opts)
	if err != nil {
		return 0, err
	}
	engine.ColdReset()
	for i := 0; i < traceWarmup; i++ {
		if _, err := cl.Classify(c.cfg.Inputs[0]); err != nil {
			return 0, err
		}
	}
	distinct := len(c.cfg.Inputs)
	if distinct > c.cfg.Runs {
		distinct = c.cfg.Runs
	}
	total := 0.0
	for i := 0; i < distinct; i++ {
		// weight = how many of the campaign's runs classify input i.
		weight := c.cfg.Runs/len(c.cfg.Inputs) + boolToInt(i < c.cfg.Runs%len(c.cfg.Inputs))
		before := engine.Counts()
		if _, err := cl.Classify(c.cfg.Inputs[i]); err != nil {
			return 0, err
		}
		delta := engine.Counts().Sub(before)
		total += float64(delta.Get(event)) * float64(weight)
	}
	mean := total / float64(c.cfg.Runs)
	return mean + runtimeMean(c.cfg, event), nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runtimeMean is the runtime model's mean contribution to one event — the
// part of the measured profiles the kernel-level rebuild cannot account
// for. Zero for events the Background model never touches (the per-level
// L1/TLB events in particular, which is why L1 loads verify sharply).
func runtimeMean(cfg Config, event march.Event) float64 {
	if cfg.DisableRuntime {
		return 0
	}
	rt := instrument.DefaultRuntime()
	switch event {
	case march.EvInstructions:
		return float64(rt.Ops + rt.Branches)
	case march.EvBranches:
		return float64(rt.Branches)
	case march.EvBranchMisses:
		return float64(rt.BranchMisses)
	case march.EvCacheReferences, march.EvLLCLoads:
		return float64(rt.CacheRefs)
	case march.EvCacheMisses, march.EvLLCLoadMisses:
		return float64(rt.CacheMisses)
	default:
		return 0
	}
}

// buildRecovered materializes a recovered layer stack as a network with
// fresh deterministic weights — the candidate the attacker profiles to
// validate the reconstruction. Stacks that are not realizable (a conv
// after a dense collapse, pooling a degenerate map, an unknown kind)
// fail, which the scorer reports as an unverifiable reconstruction.
func buildRecovered(guesses []LayerGuess, inH, inW, inC, classes int, seed int64) (*nn.Network, error) {
	if len(guesses) == 0 {
		return nil, fmt.Errorf("topo: empty recovered stack")
	}
	rng := rand.New(rand.NewSource(seed))
	h, w, ch := inH, inW, inC
	flat := false
	var layers []nn.Layer
	for i, g := range guesses {
		switch g.Kind {
		case "conv":
			if flat {
				return nil, fmt.Errorf("topo: recovered conv at %d after dense collapse", i)
			}
			k := g.Kernel
			if k < 1 {
				k = 1
			}
			if h-k+1 < 1 || w-k+1 < 1 || g.Param < 1 {
				return nil, fmt.Errorf("topo: recovered conv at %d does not fit %dx%d", i, h, w)
			}
			conv, err := nn.NewConv2D(tensor.ConvGeom{InH: h, InW: w, InC: ch, K: k, Stride: 1, Pad: 0, OutC: g.Param}, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, conv)
			s := conv.OutShape()
			h, w, ch = s[0], s[1], s[2]
		case "relu":
			if flat {
				layers = append(layers, nn.NewReLU([]int{ch}))
			} else {
				layers = append(layers, nn.NewReLU([]int{h, w, ch}))
			}
		case "pool":
			if flat {
				return nil, fmt.Errorf("topo: recovered pool at %d after dense collapse", i)
			}
			p, err := nn.NewMaxPool2([]int{h, w, ch})
			if err != nil {
				return nil, err
			}
			layers = append(layers, p)
			s := p.OutShape()
			h, w, ch = s[0], s[1], s[2]
		case "dense":
			in := ch
			if !flat {
				fl := nn.NewFlatten([]int{h, w, ch})
				layers = append(layers, fl)
				in = fl.OutShape()[0]
				flat = true
			}
			if g.Param < 1 {
				return nil, fmt.Errorf("topo: recovered dense at %d has width %d", i, g.Param)
			}
			d, err := nn.NewDense(in, g.Param, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, d)
			h, w, ch = 1, 1, g.Param
		default:
			return nil, fmt.Errorf("topo: recovered unknown layer kind %q at %d", g.Kind, i)
		}
	}
	return &nn.Network{InShape: []int{inH, inW, inC}, Layers: layers, Classes: classes}, nil
}
