package archid

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testZoo and testInputs build the shared campaign fixtures once: the full
// default zoo over MNIST-shaped inputs and a small image pool.
func testZoo(t *testing.T) *nn.Zoo {
	t.Helper()
	z, err := nn.DefaultZoo(28, 28, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func testInputs(t *testing.T, n int) []*tensor.Tensor {
	t.Helper()
	_, test, err := dataset.MNISTLike(dataset.Config{PerClassTrain: 1, PerClassTest: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out []*tensor.Tensor
	for _, s := range test.Samples {
		out = append(out, s.Image)
		if len(out) == n {
			break
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	z := testZoo(t)
	if _, err := Run(ctx, Config{Zoo: z}); err == nil {
		t.Fatal("config without inputs accepted")
	}
	ins := testInputs(t, 2)
	if _, err := Run(ctx, Config{Zoo: z, Inputs: ins, ProfileRuns: 1, AttackRuns: 2}); err == nil {
		t.Fatal("single profiling run accepted")
	}
	if _, err := Run(ctx, Config{Zoo: z, Inputs: ins, Events: march.ExtendedEvents()}); err == nil {
		t.Fatal("events beyond one register group accepted")
	}
}

// TestBaselineFingerprintsArchitecture is the scenario's headline: at the
// baseline level the template attacker recovers the deployed architecture
// from the zoo far above chance (the architectures' footprints differ by
// orders of magnitude).
func TestBaselineFingerprintsArchitecture(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Name:        "test/baseline",
		Zoo:         testZoo(t),
		Inputs:      testInputs(t, 6),
		ProfileRuns: 10,
		AttackRuns:  5,
		Workers:     2,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	chance := res.ChanceLevel()
	if acc := res.Attack.Template.Accuracy(); acc < 3*chance {
		t.Fatalf("baseline template recovery = %.3f, want >= 3x chance (%.3f)", acc, chance)
	}
	if acc := res.Attack.KNN.Accuracy(); acc < 3*chance {
		t.Fatalf("baseline kNN recovery = %.3f, want >= 3x chance (%.3f)", acc, chance)
	}
	if res.Padded {
		t.Fatal("baseline deployment reported as padded")
	}
	if len(res.Specs) != res.Attack.Template.Total/5 { // 5 attack runs per arch
		t.Fatalf("specs %d vs matrix total %d", len(res.Specs), res.Attack.Template.Total)
	}
}

// TestConstantTimePaddingHidesArchitecture: the envelope-padded
// constant-time deployment reduces recovery to (near) chance — and not via
// the old templates[0] fallback: predictions must spread over multiple
// architectures and per-arch variances must carry the scale-relative
// floor, proving the scores stayed finite and comparable.
func TestConstantTimePaddingHidesArchitecture(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Name:        "test/constant-time",
		Zoo:         testZoo(t),
		Inputs:      testInputs(t, 6),
		Level:       defense.ConstantTime,
		ProfileRuns: 10,
		AttackRuns:  5,
		Workers:     2,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Padded {
		t.Fatal("constant-time deployment not padded")
	}
	chance := res.ChanceLevel()
	if acc := res.Attack.Template.Accuracy(); acc > 2.5*chance {
		t.Fatalf("padded constant-time template recovery = %.3f, want <= 2.5x chance (%.3f)", acc, chance)
	}
	// The fallback signature would be every prediction landing on the
	// lowest architecture id; genuine chance-level behavior spreads.
	predicted := map[int]bool{}
	for _, row := range res.Attack.Template.Matrix {
		for pred, n := range row {
			if n > 0 {
				predicted[pred] = true
			}
		}
	}
	if len(predicted) < 2 {
		t.Fatalf("template predictions collapsed onto %v — the templates[0] fallback", predicted)
	}
	for _, tpl := range res.Attack.Templates {
		for e, v := range tpl.Variance {
			if v <= 1e-9 {
				t.Fatalf("arch %d event %s variance %g at the degenerate absolute floor", tpl.Class, e, v)
			}
		}
	}
}

// TestConstantTimeWithoutPadStillLeaks is the ablation that justifies the
// envelope pad: per-kernel constant time alone leaves every architecture's
// own fixed footprint observable, and recovery stays far above chance.
func TestConstantTimeWithoutPadStillLeaks(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Name:        "test/constant-time-nopad",
		Zoo:         testZoo(t),
		Inputs:      testInputs(t, 6),
		Level:       defense.ConstantTime,
		NoPad:       true,
		ProfileRuns: 10,
		AttackRuns:  5,
		Workers:     2,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Padded {
		t.Fatal("NoPad deployment reported as padded")
	}
	chance := res.ChanceLevel()
	if acc := res.Attack.Template.Accuracy(); acc < 3*chance {
		t.Fatalf("unpadded constant-time recovery = %.3f, want >= 3x chance (%.3f)", acc, chance)
	}
}

// TestWorkerInvariance: the campaign's serialized result must be
// byte-identical at workers=1 and workers=8 (run under -race in CI).
func TestWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		res, err := Run(context.Background(), Config{
			Name:        "test/invariance",
			Zoo:         testZoo(t),
			Inputs:      testInputs(t, 4),
			ProfileRuns: 6,
			AttackRuns:  3,
			Workers:     workers,
			Seed:        23,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := run(1)
	eight := run(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("archid results differ across worker counts:\n  workers=1: %s\n  workers=8: %s", one, eight)
	}
}

// TestPaddedEnvelopeLevelMatchesConstantTimePad: the promoted
// defense.PaddedEnvelope level is the same campaign as the legacy
// ConstantTime-with-pad spelling — byte-identical results.
func TestPaddedEnvelopeLevelMatchesConstantTimePad(t *testing.T) {
	run := func(level defense.Level) []byte {
		res, err := Run(context.Background(), Config{
			Name:        "test/padded-equivalence",
			Zoo:         testZoo(t),
			Inputs:      testInputs(t, 4),
			Level:       level,
			ProfileRuns: 6,
			AttackRuns:  3,
			Workers:     2,
			Seed:        23,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Padded {
			t.Fatalf("%s campaign not padded", level)
		}
		res.Level = 0 // the level itself is the one intended difference
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ct, pe := run(defense.ConstantTime), run(defense.PaddedEnvelope)
	if string(ct) != string(pe) {
		t.Fatalf("constant-time+pad and padded-envelope campaigns differ:\n%s\nvs\n%s", ct, pe)
	}
}

// TestEvidenceMatchesSpecs: the deterministic layer evidence must report
// exactly the layer stacks the zoo registered.
func TestEvidenceMatchesSpecs(t *testing.T) {
	zoo := testZoo(t)
	evidence, err := EvidenceFor(zoo, 1, testInputs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != zoo.Len() {
		t.Fatalf("evidence for %d architectures, want %d", len(evidence), zoo.Len())
	}
	for _, ev := range evidence {
		spec, ok := zoo.ByID(ev.ArchID)
		if !ok {
			t.Fatalf("evidence for unknown arch %d", ev.ArchID)
		}
		if ev.Layers != spec.Layers {
			t.Fatalf("%s: evidence reports %d layers, spec has %d", spec.Name, ev.Layers, spec.Layers)
		}
		if len(ev.PerLayer) != ev.Layers {
			t.Fatalf("%s: %d per-layer profiles for %d layers", spec.Name, len(ev.PerLayer), ev.Layers)
		}
		wantConv := 0
		if spec.Family == "cnn" {
			wantConv = spec.Depth - 1
		}
		if ev.Kinds["conv"] != wantConv {
			t.Fatalf("%s: evidence kinds %v, want %d conv layers", spec.Name, ev.Kinds, wantConv)
		}
	}
	// Determinism: a second computation is identical.
	again, err := EvidenceFor(zoo, 1, testInputs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evidence, again) {
		t.Fatal("layer evidence not deterministic")
	}
}
