package archid

// Envelope padding: the constant-time deployment of the fingerprinting
// scenario. Per-kernel constant time makes each network's footprint
// input-independent, but every architecture still executes its *own*
// fixed instruction and memory stream — which identifies it exactly. The
// countermeasure is to pad every classification up to the zoo-wide
// footprint envelope: after the real inference, the serving loop issues
// dummy arithmetic, retired no-op branches, LLC filler traffic and stall
// cycles until the deterministic part of the counters matches the
// envelope for every architecture. What remains observable is measurement
// noise and runtime jitter — identically distributed across the zoo.
//
// The pad is computed once per campaign from the deterministic
// steady-state kernel footprint of each architecture (no noise, no
// runtime model), decomposed into the engine's independent counter
// components so the per-component envelope maxima are simultaneously
// reachable by non-negative pads. Padded per-run deltas are then exactly
// equal across the zoo for the six directly-counted paper events;
// bus-cycles and ref-cycles, being ratio-derived from the absolute cycle
// counter, can wobble by ±1 count from truncation at each deployment's
// own absolute offset — five orders of magnitude below the measurement
// noise. The per-level L1/TLB events stay unpadded (extended events
// remain a residual fingerprint, as in real padding countermeasures).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// padWarmup is the number of unmeasured classifications before the
// footprint measurement — matches the evaluator's steady-state warm-up
// discipline (constant-time streams reach their periodic fixed point
// within one run; a margin is kept anyway).
const padWarmup = 4

// padCounts is one architecture's per-classification pad, in the
// engine's independent counter components.
type padCounts struct {
	ops, branches, branchMisses uint64
	llcRefs, llcMisses          uint64
	stall                       uint64
}

// components is the independent-counter decomposition of a footprint:
// instructions split into non-branch ops and branches, LLC references
// split into hits and misses (references = hits + misses, so maximizing
// references and misses independently could demand a pad with more misses
// than references — hits and misses are the independent pair), and the
// stall-cycle residue of the cycle counter (cycles minus the base-CPI
// contribution of the instructions).
type components struct {
	ops, branches, branchMisses uint64
	llcHits, llcMisses          uint64
	extra                       uint64
}

func decompose(delta march.Counts, extra uint64) components {
	instr := delta.Get(march.EvInstructions)
	br := delta.Get(march.EvBranches)
	return components{
		ops:          instr - br,
		branches:     br,
		branchMisses: delta.Get(march.EvBranchMisses),
		llcHits:      delta.Get(march.EvCacheReferences) - delta.Get(march.EvCacheMisses),
		llcMisses:    delta.Get(march.EvCacheMisses),
		extra:        extra,
	}
}

// kernelFootprint measures the deterministic steady-state footprint of
// one constant-time deployment: a noise-free engine, no runtime model,
// warm-up, then one measured classification. Constant-time streams are
// input-independent, so any input yields the same counts. The stall-cycle
// residue is read from the engine directly (Engine.StallCycles), which is
// exact under any timing model — reconstructing it from Counts would
// alias the base-CPI truncation.
func kernelFootprint(net *nn.Network, input *tensor.Tensor) (march.Counts, uint64, error) {
	engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		return march.Counts{}, 0, err
	}
	target, err := defense.New(net, engine, defense.Config{
		Level:   defense.ConstantTime,
		Runtime: instrument.NoRuntime(),
	})
	if err != nil {
		return march.Counts{}, 0, err
	}
	engine.ColdReset()
	for i := 0; i < padWarmup; i++ {
		if _, err := target.Classify(input); err != nil {
			return march.Counts{}, 0, fmt.Errorf("archid: pad warm-up: %w", err)
		}
	}
	before, stallBefore := engine.Counts(), engine.StallCycles()
	if _, err := target.Classify(input); err != nil {
		return march.Counts{}, 0, fmt.Errorf("archid: pad measurement: %w", err)
	}
	after, stallAfter := engine.Counts(), engine.StallCycles()
	return after.Sub(before), stallAfter - stallBefore, nil
}

// envelopePads measures every architecture's constant-time footprint and
// returns the per-architecture pads to the component-wise envelope
// (maximum over the zoo). By construction every pad is non-negative and
// all architectures land on identical deterministic totals for the eight
// paper events; residual variation is noise and jitter only.
func envelopePads(nets []*nn.Network, input *tensor.Tensor) ([]padCounts, error) {
	comps := make([]components, len(nets))
	var env components
	for i, net := range nets {
		delta, extra, err := kernelFootprint(net, input)
		if err != nil {
			return nil, err
		}
		comps[i] = decompose(delta, extra)
		env = maxComponents(env, comps[i])
	}
	pads := make([]padCounts, len(nets))
	for i, c := range comps {
		padHits := env.llcHits - c.llcHits
		padMisses := env.llcMisses - c.llcMisses
		pads[i] = padCounts{
			ops:          env.ops - c.ops,
			branches:     env.branches - c.branches,
			branchMisses: env.branchMisses - c.branchMisses,
			llcRefs:      padHits + padMisses,
			llcMisses:    padMisses,
			stall:        env.extra - c.extra,
		}
	}
	return pads, nil
}

func maxComponents(a, b components) components {
	m := func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	}
	return components{
		ops:          m(a.ops, b.ops),
		branches:     m(a.branches, b.branches),
		branchMisses: m(a.branchMisses, b.branchMisses),
		llcHits:      m(a.llcHits, b.llcHits),
		llcMisses:    m(a.llcMisses, b.llcMisses),
		extra:        m(a.extra, b.extra),
	}
}

// paddedTarget wraps a hardened deployment, topping every classification
// up to the envelope. It satisfies core.Target.
type paddedTarget struct {
	inner core.Target
	pad   padCounts
}

// Engine exposes the simulated core (core.Target).
func (t *paddedTarget) Engine() *march.Engine { return t.inner.Engine() }

// Classify runs one inference, then pads to the envelope (core.Target).
func (t *paddedTarget) Classify(img *tensor.Tensor) (int, error) {
	cls, err := t.inner.Classify(img)
	if err != nil {
		return 0, err
	}
	p := t.pad
	t.inner.Engine().Pad(p.ops, p.branches, p.branchMisses, p.llcRefs, p.llcMisses, p.stall)
	return cls, nil
}
