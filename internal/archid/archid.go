// Package archid is the architecture-fingerprinting stage: the attack the
// paper's title promises but the input-recovery stages never ask — *which
// model architecture is running at all*. Following CSI-NN (Batina et al.),
// the adversary holds a hypothesis space of plausible deployments (the
// internal/nn model zoo), profiles each candidate's HPC footprint, and
// recovers the deployed architecture from a single observed
// classification's counters.
//
// The stage reuses the whole existing machinery with the *architecture id*
// as the class label: per-architecture profiles are collected through the
// concurrent sharded pipeline (one victim deployment per shard, built by a
// class-aware factory), split and scored by the same Gaussian-template and
// kNN attackers as the input-recovery stage, and every observation derives
// from the root seed — so results are bit-identical at any worker count.
//
// Unlike the input-recovery scenario, hardening the *kernels* is not
// enough here: a constant-time network still executes its own
// architecture's fixed instruction and memory stream, which fingerprints
// it perfectly. The constant-time deployment therefore additionally pads
// every classification to the zoo-wide footprint envelope (dummy
// arithmetic, retired no-op branches, LLC filler traffic, stall cycles) —
// the natural extension of the paper's "indistinguishable CPU footprint"
// countermeasure from the input secret to the model secret. Baseline,
// dense-execution and noise-injection deployments stay unpadded, so the
// stage quantifies exactly how much each level leaks about the model.
package archid

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/hpc"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Seed-derivation domains (core.DeriveSeed's third argument), disjoint
// from the evaluation (0, 1) and attack (2, 3) stages.
const (
	seedDomainWeights  = 10 // per-architecture weight construction
	seedDomainPipeline = 11 // collection campaign root
)

// Config controls an architecture-fingerprinting campaign. The zero value
// (plus a Zoo and Inputs) profiles 40 and attacks 20 classifications per
// architecture with the paper's base events at the baseline level.
type Config struct {
	// Name identifies the campaign in the result ("mnist/baseline").
	Name string
	// Zoo is the hypothesis space of candidate architectures (≥2 specs).
	Zoo *nn.Zoo
	// Inputs is the shared image pool every candidate deployment
	// classifies; run r uses Inputs[r%len(Inputs)]. The secret is the
	// model, not the input, so all architectures see the same pool.
	Inputs []*tensor.Tensor
	// Events are the monitored HPC events; default cache-misses and
	// branches. One campaign counts one register group — callers split
	// wider sets into groups (see repro.ArchIDGrouped).
	Events []march.Event
	// Level hardens every candidate deployment; default Baseline.
	Level defense.Level
	// ProfileRuns / AttackRuns are per-architecture observation budgets;
	// defaults 40 / 20.
	ProfileRuns, AttackRuns int
	// K is the kNN neighbourhood size; default 5 (clamped by the attacker).
	K int
	// Workers is the pipeline worker count; 0 → GOMAXPROCS.
	Workers int
	// Seed is the campaign root seed; default 1. Weights, shard seeds,
	// noise and jitter all derive from it.
	Seed int64
	// Session distinguishes collection campaigns that must observe the
	// *same* victims (weights derive from Seed alone) but draw disjoint
	// observations — the per-register-group sessions of a wide event set.
	// It offsets only the pipeline's root seed.
	Session int
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// DisableRuntime removes the simulated framework overhead.
	DisableRuntime bool
	// DisableNoise removes measurement noise (deterministic counts).
	DisableNoise bool
	// NoPad disables the envelope padding that ConstantTime and
	// PaddedEnvelope deployments otherwise apply (ablation: shows that
	// per-kernel constant time alone does not hide the architecture).
	NoPad bool
	// Obs, when non-nil, records campaign telemetry. Observational
	// output only — results are byte-identical with or without it.
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = fmt.Sprintf("archid/%s", c.Level)
	}
	if len(c.Events) == 0 {
		c.Events = []march.Event{march.EvCacheMisses, march.EvBranches}
	}
	if c.ProfileRuns <= 0 {
		c.ProfileRuns = 40
	}
	if c.AttackRuns <= 0 {
		c.AttackRuns = 20
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Zoo == nil || c.Zoo.Len() < 2 {
		n := 0
		if c.Zoo != nil {
			n = c.Zoo.Len()
		}
		return fmt.Errorf("archid: need a zoo of at least 2 architectures, got %d", n)
	}
	if len(c.Inputs) == 0 {
		return fmt.Errorf("archid: need at least one input image")
	}
	if c.ProfileRuns < 2 {
		return fmt.Errorf("archid: need at least 2 profiling runs per architecture, got %d", c.ProfileRuns)
	}
	if c.AttackRuns < 1 {
		return fmt.Errorf("archid: need at least 1 attack run per architecture, got %d", c.AttackRuns)
	}
	return nil
}

// SpecInfo is the serializable metadata of one zoo architecture (the
// Spec minus its build closure), as reported in results and goldens.
type SpecInfo = nn.SpecInfo

// Result is the outcome of one fingerprinting campaign.
type Result struct {
	// Attack holds the confusion matrices and accuracies of both
	// attackers over the architecture labels.
	Attack *attack.Result
	// Specs are the zoo's architectures in ID (= class label) order.
	Specs []SpecInfo
	// Evidence is the per-architecture layer-level fingerprint an
	// instrumenting analyst additionally recovers (CSI-NN's layer counts).
	Evidence []LayerEvidence
	// Level is the hardening level every deployment ran at.
	Level defense.Level
	// Padded reports whether the constant-time envelope pad was applied.
	Padded bool
	// Seed is the resolved root seed the campaign derived every weight,
	// shard seed and noise stream from — the value that reproduces the
	// result at any worker count.
	Seed int64
}

// ChanceLevel is the accuracy of guessing the architecture uniformly.
func (r *Result) ChanceLevel() float64 { return r.Attack.ChanceLevel() }

// Nets builds every zoo architecture with weights derived deterministically
// from the campaign seed: spec i is constructed from
// DeriveSeed(seed, i, weights-domain) alone, so any process replaying the
// campaign holds bit-identical victims.
func Nets(zoo *nn.Zoo, seed int64) ([]*nn.Network, error) {
	if zoo == nil {
		return nil, fmt.Errorf("archid: nil zoo")
	}
	nets := make([]*nn.Network, zoo.Len())
	for _, s := range zoo.Specs() {
		net, err := zoo.Build(s.ID, core.DeriveSeed(seed, s.ID, seedDomainWeights))
		if err != nil {
			return nil, fmt.Errorf("archid: building %s: %w", s.Name, err)
		}
		nets[s.ID] = net
	}
	return nets, nil
}

// Campaign is the precomputed per-campaign state shared by every
// collection session: the deterministic zoo victims, their envelope
// (under ConstantTime/PaddedEnvelope) and their layer evidence.
// Multi-session campaigns — the per-register-group collections of a wide
// event set — reuse one Campaign so the victims are built (and the
// envelope measured) exactly once.
type Campaign struct {
	cfg      Config
	nets     []*nn.Network
	env      *defense.Envelope // nil unless the deployment is envelope-padded
	evidence []LayerEvidence
}

// NewCampaign validates the configuration and precomputes the victims,
// envelope and evidence. cfg.Events and cfg.Session are ignored here —
// they are per-session inputs to Collect.
func NewCampaign(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nets, err := Nets(cfg.Zoo, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg, nets: nets}
	padded := (cfg.Level == defense.ConstantTime || cfg.Level == defense.PaddedEnvelope) && !cfg.NoPad
	if padded {
		if c.env, err = defense.NewEnvelope(nets, cfg.Inputs[0]); err != nil {
			return nil, err
		}
	}
	if c.evidence, err = evidenceForNets(cfg.Zoo, nets, cfg.Inputs[0]); err != nil {
		return nil, err
	}
	return c, nil
}

// Padded reports whether the campaign's deployments are envelope-padded.
func (c *Campaign) Padded() bool { return c.env != nil }

// Collect runs one collection session on the concurrent sharded pipeline
// and returns the labelled per-run profiles, byArch[architecture id][run].
// Each shard deploys a fresh instance of its class's architecture through
// the class-aware factory; sessions of the same campaign observe the same
// victims with disjoint observation seeds.
func (c *Campaign) Collect(ctx context.Context, events []march.Event, session int) (map[int][]hpc.Profile, error) {
	p, err := c.sessionPipeline(events, session)
	if err != nil {
		return nil, err
	}
	return p.CollectProfilesByClass(ctx, c.factory(), c.Pools())
}

// sessionPipeline builds one collection session's pipeline: session-
// derived root seed over the campaign's run budget.
func (c *Campaign) sessionPipeline(events []march.Event, session int) (*pipeline.Pipeline, error) {
	if len(events) == 0 || len(events) > hpc.DefaultCounters {
		return nil, fmt.Errorf("archid: a session counts 1..%d events, got %d (split wide sets into register groups)",
			hpc.DefaultCounters, len(events))
	}
	ev, err := core.NewEvaluator(core.Config{
		Events:       events,
		RunsPerClass: c.cfg.ProfileRuns + c.cfg.AttackRuns,
		Obs:          c.cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return pipeline.New(ev, pipeline.Config{
		Workers:   c.cfg.Workers,
		RootSeed:  core.DeriveSeed(c.cfg.Seed, session, seedDomainPipeline),
		ShardRuns: c.cfg.ShardRuns,
		Obs:       c.cfg.Obs,
	})
}

// Pools returns the per-architecture input pools of a collection session:
// every candidate deployment classifies the shared campaign pool.
func (c *Campaign) Pools() map[int][]*tensor.Tensor {
	perClass := make(map[int][]*tensor.Tensor, c.cfg.Zoo.Len())
	for _, s := range c.cfg.Zoo.Specs() {
		perClass[s.ID] = c.cfg.Inputs
	}
	return perClass
}

// SessionExecutor builds one collection session's pipeline and plan
// executor — the two halves the distributed fabric splits across
// processes: the coordinator plans shards and merges payloads with the
// pipeline, and a shardworker process executes plans with the executor.
// Both sides rebuild identical state from the campaign configuration
// alone, which is what keeps fabric campaigns byte-identical to
// in-process ones.
func (c *Campaign) SessionExecutor(events []march.Event, session int) (*pipeline.Pipeline, *pipeline.Executor, error) {
	p, err := c.sessionPipeline(events, session)
	if err != nil {
		return nil, nil, err
	}
	exec, err := p.Executor(c.factory(), c.Pools())
	if err != nil {
		return nil, nil, err
	}
	return p, exec, nil
}

// Score fits and scores both attackers on collected profiles (events must
// list the joined feature order when profiles were merged across
// sessions) and attaches the zoo metadata and layer evidence.
func (c *Campaign) Score(events []march.Event, byArch map[int][]hpc.Profile) (*Result, error) {
	profSet, atkSet, err := attack.Split(byArch, c.cfg.ProfileRuns)
	if err != nil {
		return nil, err
	}
	res, err := attack.Evaluate(c.cfg.Name, events, profSet, atkSet, c.cfg.K)
	if err != nil {
		return nil, err
	}
	return &Result{
		Attack:   res,
		Specs:    c.cfg.Zoo.Infos(),
		Evidence: c.evidence,
		Level:    c.cfg.Level,
		Padded:   c.Padded(),
		Seed:     c.cfg.Seed,
	}, nil
}

// Run is the end-to-end single-session campaign: Collect then Score.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	c, err := NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	byArch, err := c.Collect(ctx, cfg.Events, cfg.Session)
	if err != nil {
		return nil, err
	}
	return c.Score(cfg.Events, byArch)
}

// factory builds the class-aware target factory: shard workers deploy
// architecture `class` hardened at the campaign's level on a fresh engine
// seeded from the shard seed. Padded campaigns deploy at the
// PaddedEnvelope level with the shared envelope (member index = class);
// the NoPad ablation of PaddedEnvelope falls back to the bare
// constant-time kernels.
func (c *Campaign) factory() pipeline.ClassTargetFactory {
	cfg, nets, env := c.cfg, c.nets, c.env
	level := cfg.Level
	if env != nil {
		level = defense.PaddedEnvelope
	} else if level == defense.PaddedEnvelope {
		level = defense.ConstantTime
	}
	return func(class int, seed int64) (core.Target, error) {
		if class < 0 || class >= len(nets) {
			return nil, fmt.Errorf("archid: no architecture %d", class)
		}
		var noise *march.NoiseModel
		if !cfg.DisableNoise {
			noise = march.DefaultNoise(seed)
		}
		engine, err := march.NewEngine(march.Config{
			Hierarchy: instrument.SimHierarchy(),
			Noise:     noise,
		})
		if err != nil {
			return nil, err
		}
		rt := instrument.DefaultRuntime()
		if cfg.DisableRuntime {
			rt = instrument.NoRuntime()
		}
		return defense.New(nets[class], engine, defense.Config{
			Level:         level,
			Seed:          seed + 1,
			Runtime:       rt,
			Envelope:      env,
			EnvelopeIndex: class,
		})
	}
}

// LayerEvidence is the per-architecture layer-level fingerprint recovered
// from instrumented execution (the CSI-NN observation: layer counts and
// kinds are visible in the side channel). It is computed on a noise-free
// reference deployment, so it is deterministic.
type LayerEvidence struct {
	ArchID int
	Name   string
	// Layers is the number of instrumented layers observed (the runtime
	// pseudo-layer excluded); Kinds is the layer-kind histogram.
	Layers int
	Kinds  map[string]int
	// PerLayer lists each layer's instruction and L1-load footprint in
	// execution order — the trace CSI-NN reads layer boundaries from.
	PerLayer []LayerProfile
}

// LayerProfile is one layer's deterministic event footprint.
type LayerProfile struct {
	Index        int    `json:"index"`
	Kind         string `json:"kind"`
	Instructions uint64 `json:"instructions"`
	L1DLoads     uint64 `json:"l1d_loads"`
}

// EvidenceFor computes the layer evidence for every zoo architecture by
// replaying one attributed classification of inputs[0] on a noise-free
// baseline deployment per spec, with victims built from the campaign
// seed. Campaigns reuse their already-built victims via NewCampaign.
func EvidenceFor(zoo *nn.Zoo, seed int64, inputs []*tensor.Tensor) ([]LayerEvidence, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("archid: need at least one input image")
	}
	nets, err := Nets(zoo, seed)
	if err != nil {
		return nil, err
	}
	return evidenceForNets(zoo, nets, inputs[0])
}

// evidenceForNets is EvidenceFor over already-built victims.
func evidenceForNets(zoo *nn.Zoo, nets []*nn.Network, input *tensor.Tensor) ([]LayerEvidence, error) {
	out := make([]LayerEvidence, 0, zoo.Len())
	for _, s := range zoo.Specs() {
		net := nets[s.ID]
		engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
		if err != nil {
			return nil, err
		}
		cl, err := instrument.New(net, engine, instrument.Options{SparsitySkip: true})
		if err != nil {
			return nil, fmt.Errorf("archid: instrumenting %s: %w", s.Name, err)
		}
		_, attribution, err := cl.ClassifyWithAttribution(input)
		if err != nil {
			return nil, fmt.Errorf("archid: attributing %s: %w", s.Name, err)
		}
		layers, kinds := instrument.SummarizeAttribution(attribution)
		ev := LayerEvidence{ArchID: s.ID, Name: s.Name, Layers: layers, Kinds: kinds}
		for _, lc := range attribution {
			if lc.Index < 0 {
				continue
			}
			ev.PerLayer = append(ev.PerLayer, LayerProfile{
				Index:        lc.Index,
				Kind:         lc.Kind,
				Instructions: lc.Counts.Get(march.EvInstructions),
				L1DLoads:     lc.Counts.Get(march.EvL1DLoads),
			})
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ArchID < out[j].ArchID })
	return out, nil
}
