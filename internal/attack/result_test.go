package attack

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hpc"
	"repro/internal/march"
)

func TestSplitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	byClass := map[int][]hpc.Profile{}
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 5; i++ {
			byClass[cls] = append(byClass[cls], gaussianProfile(rng, 100, 1000))
		}
	}
	if _, _, err := Split(map[int][]hpc.Profile{0: byClass[0]}, 2); err == nil {
		t.Fatal("single class accepted")
	}
	if _, _, err := Split(byClass, 1); err == nil {
		t.Fatal("profileRuns < 2 accepted")
	}
	if _, _, err := Split(byClass, 5); err == nil {
		t.Fatal("split with no held-out observations accepted")
	}
	prof, atk, err := Split(byClass, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cls := 0; cls < 2; cls++ {
		if len(prof[cls]) != 3 || len(atk[cls]) != 2 {
			t.Fatalf("class %d split = %d/%d, want 3/2", cls, len(prof[cls]), len(atk[cls]))
		}
		// Positional split: the attack set is exactly the tail.
		if !reflect.DeepEqual(atk[cls], byClass[cls][3:]) {
			t.Fatalf("class %d attack set is not the positional tail", cls)
		}
	}
}

// TestEvaluateDeterministic: the same observations must always produce
// byte-identical results — the property the pipeline's worker-invariance
// guarantee rests on.
func TestEvaluateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	byClass := map[int][]hpc.Profile{}
	means := map[int][2]float64{1: {100, 5000}, 2: {180, 5050}, 3: {260, 4950}}
	for cls, m := range means {
		for i := 0; i < 30; i++ {
			byClass[cls] = append(byClass[cls], gaussianProfile(rng, m[0], m[1]))
		}
	}
	run := func() *Result {
		prof, atk, err := Split(byClass, 20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate("det", events, prof, atk, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated Evaluate diverged:\n%+v\n%+v", a, b)
	}
	if a.ProfileRuns != 20 || a.AttackRuns != 10 || len(a.Classes) != 3 {
		t.Fatalf("result metadata wrong: %+v", a)
	}
	if a.Template.Total != 30 || a.KNN.Total != 30 {
		t.Fatalf("matrix totals = %d/%d, want 30", a.Template.Total, a.KNN.Total)
	}
	if a.ChanceLevel() != 1.0/3 {
		t.Fatalf("chance = %v", a.ChanceLevel())
	}
	// Well-separated classes: both attackers must beat chance comfortably.
	if a.Template.Accuracy() < 0.8 || a.KNN.Accuracy() < 0.8 {
		t.Fatalf("accuracies %.2f/%.2f on well-separated classes", a.Template.Accuracy(), a.KNN.Accuracy())
	}
}
