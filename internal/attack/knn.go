package attack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/stats"
)

// KNN is a k-nearest-neighbour attacker over HPC profiles: a
// non-parametric alternative to the Gaussian template attack, robust when
// per-class event distributions are skewed or multi-modal. Features are
// standardized per event (z-scores over the profiling set) so events of
// wildly different magnitudes (cycles vs cache-misses) contribute
// comparably to the distance.
type KNN struct {
	k       int
	events  []march.Event
	mean    map[march.Event]float64
	std     map[march.Event]float64
	points  [][]float64
	labels  []int
	classes []int
}

// NewKNN fits a k-NN attacker from labelled profiles. k defaults to 5 and
// is clamped to the training size.
func NewKNN(k int, events []march.Event, samples map[int][]hpc.Profile) (*KNN, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("attack: kNN needs at least one event")
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("attack: kNN needs at least 2 classes, got %d", len(samples))
	}
	if k <= 0 {
		k = 5
	}
	a := &KNN{k: k, events: append([]march.Event(nil), events...)}
	for cls := range samples {
		a.classes = append(a.classes, cls)
	}
	sort.Ints(a.classes)

	// Standardization statistics per event over the whole profiling set.
	// Samples are accumulated in sorted class order: float summation is not
	// associative, so iterating the map directly would make the fitted
	// mean/std (and therefore borderline classifications) vary run to run.
	a.mean = map[march.Event]float64{}
	a.std = map[march.Event]float64{}
	for _, e := range events {
		var all []float64
		for _, cls := range a.classes {
			for _, p := range samples[cls] {
				all = append(all, p.Get(e))
			}
		}
		a.mean[e] = stats.Mean(all)
		sd := stats.StdDev(all)
		if sd < 1e-9 {
			sd = 1
		}
		a.std[e] = sd
	}
	for _, cls := range a.classes {
		for _, p := range samples[cls] {
			a.points = append(a.points, a.vector(p))
			a.labels = append(a.labels, cls)
		}
	}
	if a.k > len(a.points) {
		a.k = len(a.points)
	}
	return a, nil
}

// vector standardizes a profile into feature space.
func (a *KNN) vector(p hpc.Profile) []float64 {
	v := make([]float64, len(a.events))
	for i, e := range a.events {
		v[i] = (p.Get(e) - a.mean[e]) / a.std[e]
	}
	return v
}

// Classify returns the majority class among the k nearest profiling
// points. Ties are broken deterministically: most votes first, then the
// class with the closest neighbour, then the smallest class id — never map
// iteration order, so a tied query resolves identically on every call.
func (a *KNN) Classify(p hpc.Profile) int {
	q := a.vector(p)
	type nb struct {
		d   float64
		cls int
	}
	nbs := make([]nb, len(a.points))
	for i, pt := range a.points {
		var d float64
		for j := range q {
			diff := q[j] - pt[j]
			d += diff * diff
		}
		nbs[i] = nb{d: math.Sqrt(d), cls: a.labels[i]}
	}
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].d != nbs[j].d {
			return nbs[i].d < nbs[j].d
		}
		return nbs[i].cls < nbs[j].cls
	})
	votes := map[int]int{}
	closest := map[int]float64{}
	for i := 0; i < a.k; i++ {
		cls := nbs[i].cls
		votes[cls]++
		if _, ok := closest[cls]; !ok {
			closest[cls] = nbs[i].d
		}
	}
	cand := make([]int, 0, len(votes))
	for cls := range votes {
		cand = append(cand, cls)
	}
	sort.Ints(cand)
	best := cand[0]
	for _, cls := range cand[1:] {
		switch {
		case votes[cls] > votes[best]:
			best = cls
		case votes[cls] == votes[best] && closest[cls] < closest[best]:
			best = cls
		}
	}
	return best
}

// Predict implements Model.
func (a *KNN) Predict(p hpc.Profile) int { return a.Classify(p) }

// K returns the effective neighbourhood size.
func (a *KNN) K() int { return a.k }
