// Package attack demonstrates that the leakage the Evaluator flags is
// exploitable: a Gaussian template attack that recovers the input category
// of a classification from its HPC profile alone.
//
// This is the adversary the paper's threat model warns about (following
// Wei et al.'s input-recovery direction): an observer with access to the
// performance counters of the machine — but not to the classifier's inputs
// or internals — profiles the per-category distributions of HPC events
// once, then infers the category of every subsequent private input.
package attack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/stats"
)

// varEps is the scale-relative variance regularization: a channel's
// variance is floored at varEps·mean² + varEps, so a constant channel of
// magnitude 10⁵ gets a floor of ~10 (commensurate with counter noise)
// instead of the old absolute 1e-9 that exploded distances into -Inf
// log-likelihoods.
const varEps = 1e-9

// Template is the profiled model of one category: per-event mean and
// variance of the observed counts.
type Template struct {
	Class    int
	Mean     map[march.Event]float64
	Variance map[march.Event]float64
	N        int
}

// Profiler accumulates labelled profiles during the profiling phase.
type Profiler struct {
	events  []march.Event
	samples map[int][]hpc.Profile
}

// NewProfiler creates a profiler over the given events.
func NewProfiler(events []march.Event) (*Profiler, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("attack: profiler needs at least one event")
	}
	return &Profiler{events: append([]march.Event(nil), events...), samples: map[int][]hpc.Profile{}}, nil
}

// Add records one labelled observation.
func (p *Profiler) Add(class int, prof hpc.Profile) {
	p.samples[class] = append(p.samples[class], prof)
}

// Build fits Gaussian templates; every class needs at least two samples.
func (p *Profiler) Build() (*Attacker, error) {
	if len(p.samples) < 2 {
		return nil, fmt.Errorf("attack: need profiles for at least 2 classes, got %d", len(p.samples))
	}
	var classes []int
	for cls := range p.samples {
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	var templates []Template
	for _, cls := range classes {
		obs := p.samples[cls]
		if len(obs) < 2 {
			return nil, fmt.Errorf("attack: class %d has %d profiles, need at least 2", cls, len(obs))
		}
		t := Template{Class: cls, Mean: map[march.Event]float64{}, Variance: map[march.Event]float64{}, N: len(obs)}
		for _, e := range p.events {
			xs := make([]float64, len(obs))
			for i, o := range obs {
				xs[i] = o.Get(e)
			}
			m := stats.Mean(xs)
			t.Mean[e] = m
			// Regularize (near-)constant channels *relative to the channel's
			// scale*. HPC counts are O(10⁴–10⁵), so an absolute floor like
			// 1e-9 turns one constant channel (typical under ConstantTime)
			// into -d²/(2·1e-9) terms that underflow every class's
			// log-likelihood to -Inf and silently bias Classify toward the
			// first template. The floor ε·mean²+ε keeps the scores finite: a
			// constant channel then contributes comparably across classes
			// instead of dominating them all into -Inf.
			t.Variance[e] = math.Max(stats.Variance(xs), varEps*m*m+varEps)
		}
		templates = append(templates, t)
	}
	return &Attacker{events: p.events, templates: templates}, nil
}

// Attacker classifies unlabelled HPC profiles against the templates.
type Attacker struct {
	events    []march.Event
	templates []Template
}

// Templates returns the fitted templates (read-only view).
func (a *Attacker) Templates() []Template { return a.templates }

// Classify returns the maximum-likelihood class for a profile, along with
// the per-class log-likelihoods (diagonal Gaussian model). Ties (and any
// degenerate non-finite scores) break deterministically toward the lowest
// class id: templates are fitted in ascending class order and a later
// class must score *strictly* higher to win, so the result never depends
// on map iteration or on which template happened to be first.
func (a *Attacker) Classify(prof hpc.Profile) (int, map[int]float64) {
	scores := make(map[int]float64, len(a.templates))
	var best int
	bestLL := math.Inf(-1)
	for i, t := range a.templates {
		ll := 0.0
		for _, e := range a.events {
			x := prof.Get(e)
			d := x - t.Mean[e]
			ll += -0.5*math.Log(2*math.Pi*t.Variance[e]) - d*d/(2*t.Variance[e])
		}
		if math.IsNaN(ll) {
			ll = math.Inf(-1)
		}
		scores[t.Class] = ll
		if i == 0 || ll > bestLL {
			bestLL, best = ll, t.Class
		}
	}
	return best, scores
}

// Predict implements Model.
func (a *Attacker) Predict(p hpc.Profile) int {
	cls, _ := a.Classify(p)
	return cls
}

// ConfusionMatrix tallies attack outcomes: Matrix[true][predicted].
type ConfusionMatrix struct {
	Classes []int
	Matrix  map[int]map[int]int
	Total   int
	Correct int
}

// NewConfusionMatrix builds an empty matrix over the classes.
func NewConfusionMatrix(classes []int) *ConfusionMatrix {
	cm := &ConfusionMatrix{Classes: append([]int(nil), classes...), Matrix: map[int]map[int]int{}}
	sort.Ints(cm.Classes)
	for _, c := range cm.Classes {
		cm.Matrix[c] = map[int]int{}
	}
	return cm
}

// Record tallies one attack outcome.
func (cm *ConfusionMatrix) Record(truth, predicted int) {
	if _, ok := cm.Matrix[truth]; !ok {
		cm.Matrix[truth] = map[int]int{}
		cm.Classes = append(cm.Classes, truth)
		sort.Ints(cm.Classes)
	}
	cm.Matrix[truth][predicted]++
	cm.Total++
	if truth == predicted {
		cm.Correct++
	}
}

// Accuracy returns the fraction of correct predictions (0 when empty).
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.Total == 0 {
		return 0
	}
	return float64(cm.Correct) / float64(cm.Total)
}

// ChanceLevel returns 1/numClasses — the accuracy of random guessing.
func (cm *ConfusionMatrix) ChanceLevel() float64 {
	if len(cm.Classes) == 0 {
		return 0
	}
	return 1 / float64(len(cm.Classes))
}
