package attack

import (
	"fmt"
	"sort"

	"repro/internal/hpc"
	"repro/internal/march"
)

// Model is the common prediction interface of the fitted attackers: given
// one unlabelled HPC profile, return the recovered input category.
type Model interface {
	Predict(prof hpc.Profile) int
}

// Result is the outcome of one end-to-end attack campaign: both attackers
// fitted on the same profiling observations and scored on the same
// held-out attack observations. It is the exploitation counterpart of the
// Evaluator's Report — where the Report says "these distributions are
// distinguishable", the Result says "and here is how often an adversary
// recovers the category from them".
type Result struct {
	// Name identifies the campaign (dataset/defense).
	Name string
	// Events are the profiled HPC events (feature order of the attackers).
	Events []march.Event
	// Classes are the attacked categories in ascending order.
	Classes []int
	// ProfileRuns / AttackRuns are the per-class observation counts of the
	// profiling and held-out attack phases.
	ProfileRuns, AttackRuns int
	// K is the effective kNN neighbourhood size.
	K int
	// Templates are the fitted Gaussian templates (per-class mean/variance).
	Templates []Template
	// Template / KNN are the confusion matrices of the two attackers over
	// the held-out observations.
	Template *ConfusionMatrix
	KNN      *ConfusionMatrix
}

// ChanceLevel is the accuracy of random guessing over the result's classes.
func (r *Result) ChanceLevel() float64 {
	if len(r.Classes) == 0 {
		return 0
	}
	return 1 / float64(len(r.Classes))
}

// Split partitions per-class labelled observations into the profiling set
// (the first profileRuns observations of every class) and the held-out
// attack set (the rest). Every class needs at least two profiling
// observations (Gaussian templates need a variance) and one attack
// observation.
func Split(byClass map[int][]hpc.Profile, profileRuns int) (profSet, atkSet map[int][]hpc.Profile, err error) {
	if len(byClass) < 2 {
		return nil, nil, fmt.Errorf("attack: need observations for at least 2 classes, got %d", len(byClass))
	}
	if profileRuns < 2 {
		return nil, nil, fmt.Errorf("attack: need at least 2 profiling runs per class, got %d", profileRuns)
	}
	profSet = make(map[int][]hpc.Profile, len(byClass))
	atkSet = make(map[int][]hpc.Profile, len(byClass))
	for cls, obs := range byClass {
		if len(obs) <= profileRuns {
			return nil, nil, fmt.Errorf("attack: class %d has %d observations, need > %d to hold out attack runs",
				cls, len(obs), profileRuns)
		}
		profSet[cls] = obs[:profileRuns]
		atkSet[cls] = obs[profileRuns:]
	}
	return profSet, atkSet, nil
}

// Evaluate fits the Gaussian template and kNN attackers on the profiling
// set and classifies every held-out observation in deterministic
// (class, run) order. All inputs are read in sorted class order and both
// attackers break ties deterministically, so the same observations always
// yield byte-identical confusion matrices.
func Evaluate(name string, events []march.Event, profSet, atkSet map[int][]hpc.Profile, k int) (*Result, error) {
	classes := make([]int, 0, len(profSet))
	for cls := range profSet {
		classes = append(classes, cls)
	}
	sort.Ints(classes)

	profiler, err := NewProfiler(events)
	if err != nil {
		return nil, err
	}
	for _, cls := range classes {
		for _, p := range profSet[cls] {
			profiler.Add(cls, p)
		}
	}
	tpl, err := profiler.Build()
	if err != nil {
		return nil, err
	}
	knn, err := NewKNN(k, events, profSet)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:      name,
		Events:    append([]march.Event(nil), events...),
		Classes:   classes,
		K:         knn.K(),
		Templates: tpl.Templates(),
		Template:  NewConfusionMatrix(classes),
		KNN:       NewConfusionMatrix(classes),
	}
	for _, cls := range classes {
		obs := atkSet[cls]
		if len(obs) == 0 {
			return nil, fmt.Errorf("attack: class %d has no held-out attack observations", cls)
		}
		if res.ProfileRuns == 0 {
			res.ProfileRuns, res.AttackRuns = len(profSet[cls]), len(obs)
		}
		for _, p := range obs {
			res.Template.Record(cls, tpl.Predict(p))
			res.KNN.Record(cls, knn.Predict(p))
		}
	}
	return res, nil
}
