package attack

import (
	"math/rand"
	"testing"

	"repro/internal/hpc"
	"repro/internal/march"
)

func knnSamples(rng *rand.Rand, means map[int][2]float64, perClass int) map[int][]hpc.Profile {
	out := map[int][]hpc.Profile{}
	for cls, m := range means {
		for i := 0; i < perClass; i++ {
			out[cls] = append(out[cls], gaussianProfile(rng, m[0], m[1]))
		}
	}
	return out
}

func TestNewKNNValidation(t *testing.T) {
	if _, err := NewKNN(3, nil, map[int][]hpc.Profile{0: nil, 1: nil}); err == nil {
		t.Fatal("empty event list accepted")
	}
	if _, err := NewKNN(3, []march.Event{march.EvCycles}, map[int][]hpc.Profile{0: nil}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestKNNDefaultsAndClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := knnSamples(rng, map[int][2]float64{0: {100, 1000}, 1: {300, 1000}}, 2)
	a, err := NewKNN(0, []march.Event{march.EvCacheMisses}, samples)
	if err != nil {
		t.Fatal(err)
	}
	// k defaults to 5 but clamps to the 4 available points.
	if a.K() != 4 {
		t.Fatalf("k = %d, want clamped 4", a.K())
	}
}

func TestKNNRecoversWellSeparatedClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	means := map[int][2]float64{0: {100, 5000}, 1: {200, 5030}, 2: {320, 4980}}
	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	a, err := NewKNN(5, events, knnSamples(rng, means, 50))
	if err != nil {
		t.Fatal(err)
	}
	cm := NewConfusionMatrix([]int{0, 1, 2})
	for cls, m := range means {
		for i := 0; i < 40; i++ {
			cm.Record(cls, a.Classify(gaussianProfile(rng, m[0], m[1])))
		}
	}
	if cm.Accuracy() < 0.9 {
		t.Fatalf("kNN accuracy = %.3f, want >= 0.9", cm.Accuracy())
	}
}

func TestKNNStandardizationMakesScalesComparable(t *testing.T) {
	// The cycles event is ~10⁶× larger than cache-misses; without
	// standardization it would dominate the distance and hide the
	// informative small event. Classes differ ONLY in cache-misses.
	rng := rand.New(rand.NewSource(3))
	mk := func(miss float64) hpc.Profile {
		return hpc.Profile{
			march.EvCacheMisses: miss + rng.NormFloat64()*3,
			march.EvCycles:      2e9 + rng.NormFloat64()*1e6, // uninformative
		}
	}
	samples := map[int][]hpc.Profile{}
	for i := 0; i < 40; i++ {
		samples[0] = append(samples[0], mk(100))
		samples[1] = append(samples[1], mk(200))
	}
	a, err := NewKNN(5, []march.Event{march.EvCacheMisses, march.EvCycles}, samples)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 50; i++ {
		if a.Classify(mk(100)) == 0 {
			correct++
		}
		if a.Classify(mk(200)) == 1 {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("standardized kNN got %d/100 on scale-mismatched events", correct)
	}
}

// TestKNNTieBreakDeterministic is the regression test for the map-order
// vote loop: a deliberately tied query (equal votes per class, equal
// closest distances) must resolve by ascending class id — the same answer
// on every one of 100 calls, where the old `for cls, v := range votes`
// tie-break flipped with map iteration order.
func TestKNNTieBreakDeterministic(t *testing.T) {
	// One event, two classes symmetric around the query: after
	// standardization the training points sit at exactly ±1, so k=4 sees
	// two neighbours of each class at distance 1 — votes tied 2-2, closest
	// distances tied 1-1.
	samples := map[int][]hpc.Profile{
		7: {{march.EvCacheMisses: 100}, {march.EvCacheMisses: 100}},
		2: {{march.EvCacheMisses: 300}, {march.EvCacheMisses: 300}},
	}
	a, err := NewKNN(4, []march.Event{march.EvCacheMisses}, samples)
	if err != nil {
		t.Fatal(err)
	}
	query := hpc.Profile{march.EvCacheMisses: 200}
	for i := 0; i < 100; i++ {
		if got := a.Classify(query); got != 2 {
			t.Fatalf("call %d: tied query classified as %d, want lowest class id 2", i, got)
		}
	}
}

// TestKNNTieBreakPrefersCloserClass: with votes tied but one class owning
// the nearer neighbour, the nearer class must win regardless of class id.
func TestKNNTieBreakPrefersCloserClass(t *testing.T) {
	samples := map[int][]hpc.Profile{
		1: {{march.EvCacheMisses: 130}, {march.EvCacheMisses: 400}},
		9: {{march.EvCacheMisses: 90}, {march.EvCacheMisses: 60}},
	}
	a, err := NewKNN(2, []march.Event{march.EvCacheMisses}, samples)
	if err != nil {
		t.Fatal(err)
	}
	// The two nearest neighbours of 120 are 130 (class 1) and 90 (class 9):
	// votes 1-1, class 1 is closer, so class 1 must win even though 9 > 1
	// would never be reached and 1 < 9 agrees — flip the query to favour 9.
	for i := 0; i < 100; i++ {
		if got := a.Classify(hpc.Profile{march.EvCacheMisses: 120}); got != 1 {
			t.Fatalf("call %d: got %d, want closer class 1", i, got)
		}
		if got := a.Classify(hpc.Profile{march.EvCacheMisses: 95}); got != 9 {
			t.Fatalf("call %d: got %d, want closer class 9", i, got)
		}
	}
}

func TestKNNAgreesWithTemplateOnGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	means := map[int][2]float64{0: {100, 5000}, 1: {260, 5100}}
	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	samples := knnSamples(rng, means, 60)

	prof, err := NewProfiler(events)
	if err != nil {
		t.Fatal(err)
	}
	for cls, ps := range samples {
		for _, p := range ps {
			prof.Add(cls, p)
		}
	}
	tpl, err := prof.Build()
	if err != nil {
		t.Fatal(err)
	}
	knn, err := NewKNN(7, events, samples)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		cls := i % 2
		m := means[cls]
		p := gaussianProfile(rng, m[0], m[1])
		t1, _ := tpl.Classify(p)
		t2 := knn.Classify(p)
		if t1 == t2 {
			agree++
		}
	}
	if agree < 90 {
		t.Fatalf("kNN and template agree on only %d/%d clean draws", agree, trials)
	}
}
