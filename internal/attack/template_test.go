package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hpc"
	"repro/internal/march"
)

func gaussianProfile(rng *rand.Rand, missMean, branchMean float64) hpc.Profile {
	return hpc.Profile{
		march.EvCacheMisses: missMean + rng.NormFloat64()*5,
		march.EvBranches:    branchMean + rng.NormFloat64()*50,
	}
}

func TestNewProfilerValidation(t *testing.T) {
	if _, err := NewProfiler(nil); err == nil {
		t.Fatal("empty event list accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	p, _ := NewProfiler([]march.Event{march.EvCacheMisses})
	if _, err := p.Build(); err == nil {
		t.Fatal("no classes accepted")
	}
	rng := rand.New(rand.NewSource(1))
	p.Add(0, gaussianProfile(rng, 100, 1000))
	p.Add(0, gaussianProfile(rng, 100, 1000))
	p.Add(1, gaussianProfile(rng, 200, 1000))
	if _, err := p.Build(); err == nil {
		t.Fatal("class with a single profile accepted")
	}
}

func TestAttackRecoversWellSeparatedClasses(t *testing.T) {
	events := []march.Event{march.EvCacheMisses, march.EvBranches}
	p, err := NewProfiler(events)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	means := map[int][2]float64{0: {100, 5000}, 1: {200, 5030}, 2: {320, 4980}}
	for cls, m := range means {
		for i := 0; i < 50; i++ {
			p.Add(cls, gaussianProfile(rng, m[0], m[1]))
		}
	}
	atk, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(atk.Templates()) != 3 {
		t.Fatalf("templates = %d, want 3", len(atk.Templates()))
	}
	cm := NewConfusionMatrix([]int{0, 1, 2})
	for cls, m := range means {
		for i := 0; i < 40; i++ {
			pred, scores := atk.Classify(gaussianProfile(rng, m[0], m[1]))
			if len(scores) != 3 {
				t.Fatalf("scores over %d classes", len(scores))
			}
			cm.Record(cls, pred)
		}
	}
	if cm.Accuracy() < 0.95 {
		t.Fatalf("attack accuracy = %.3f on well-separated classes, want >= 0.95", cm.Accuracy())
	}
	if cm.ChanceLevel() != 1.0/3 {
		t.Fatalf("chance level = %v", cm.ChanceLevel())
	}
}

func TestAttackAtChanceForIdenticalDistributions(t *testing.T) {
	events := []march.Event{march.EvCacheMisses}
	p, _ := NewProfiler(events)
	rng := rand.New(rand.NewSource(3))
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 100; i++ {
			p.Add(cls, gaussianProfile(rng, 150, 1000)) // same distribution
		}
	}
	atk, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	cm := NewConfusionMatrix([]int{0, 1})
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 200; i++ {
			pred, _ := atk.Classify(gaussianProfile(rng, 150, 1000))
			cm.Record(cls, pred)
		}
	}
	// Accuracy should hover near 50%; anything above 65% would mean the
	// attack invents structure that is not there.
	if cm.Accuracy() > 0.65 {
		t.Fatalf("attack accuracy = %.3f on identical distributions", cm.Accuracy())
	}
}

func TestConstantChannelRegularized(t *testing.T) {
	// A zero-variance event must not produce NaN/∞ likelihoods.
	p, _ := NewProfiler([]march.Event{march.EvCacheMisses})
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 3; i++ {
			p.Add(cls, hpc.Profile{march.EvCacheMisses: float64(100 * (cls + 1))})
		}
	}
	atk, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	pred, scores := atk.Classify(hpc.Profile{march.EvCacheMisses: 199})
	if pred != 1 {
		t.Fatalf("pred = %d, want 1 (closest template)", pred)
	}
	for cls, s := range scores {
		if s != s { // NaN check
			t.Fatalf("class %d score is NaN", cls)
		}
	}
}

func TestConstantChannelDoesNotHijackClassification(t *testing.T) {
	// HPC-scale regression for the variance floor: one channel is constant
	// per class at O(10⁵) with per-class offsets of a few counts (the
	// padded-counter picture under ConstantTime), the other channel cleanly
	// separates the classes. The old absolute 1e-9 floor turned the
	// constant channel into -d²/(2e-9) ≈ -10⁹..10¹⁰ terms that drowned the
	// informative channel and misclassified toward whichever class's
	// constant happened to sit nearest — the scale-relative floor keeps the
	// constant channel's contribution commensurate with counter noise.
	events := []march.Event{march.EvInstructions, march.EvCacheMisses}
	p, err := NewProfiler(events)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	constant := map[int]float64{0: 100000, 1: 100002, 2: 100007}
	informative := map[int]float64{0: 100, 1: 300, 2: 500}
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 30; i++ {
			p.Add(cls, hpc.Profile{
				march.EvInstructions: constant[cls],
				march.EvCacheMisses:  informative[cls] + rng.NormFloat64()*4,
			})
		}
	}
	atk, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tpl := range atk.Templates() {
		v := tpl.Variance[march.EvInstructions]
		if v < 1 {
			t.Fatalf("class %d constant-channel variance = %g, want a scale-relative floor ≥ 1", tpl.Class, v)
		}
	}
	// A class-2 observation whose constant channel jittered one count
	// toward class 0/1's constants must still classify as 2 on the
	// informative channel.
	pred, scores := atk.Classify(hpc.Profile{
		march.EvInstructions: 100001,
		march.EvCacheMisses:  informative[2],
	})
	if pred != 2 {
		t.Fatalf("pred = %d, want 2: the constant channel hijacked the decision (scores %v)", pred, scores)
	}
	for cls, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("class %d score = %v, want finite", cls, s)
		}
	}
}

func TestClassifyDeterministicTieBreak(t *testing.T) {
	// Exactly tied (and degenerate non-finite) scores must break toward
	// the lowest class id — never toward whichever template happened to be
	// built first or a map iteration order.
	p, _ := NewProfiler([]march.Event{march.EvCacheMisses})
	for cls := 5; cls >= 2; cls-- { // added out of order on purpose
		for i := 0; i < 3; i++ {
			p.Add(cls, hpc.Profile{march.EvCacheMisses: 150})
		}
	}
	atk, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pred, scores := atk.Classify(hpc.Profile{march.EvCacheMisses: 150})
		if pred != 2 {
			t.Fatalf("tied classification = %d, want lowest class 2", pred)
		}
		for cls, s := range scores {
			if math.IsNaN(s) {
				t.Fatalf("class %d score is NaN", cls)
			}
		}
	}
	// A NaN observation degrades to -Inf scores but stays deterministic.
	pred, scores := atk.Classify(hpc.Profile{march.EvCacheMisses: math.NaN()})
	if pred != 2 {
		t.Fatalf("NaN-observation classification = %d, want lowest class 2", pred)
	}
	for cls, s := range scores {
		if !math.IsInf(s, -1) {
			t.Fatalf("class %d score = %v, want -Inf for a NaN observation", cls, s)
		}
	}
}

func TestConfusionMatrixRecordUnknownClass(t *testing.T) {
	cm := NewConfusionMatrix([]int{0})
	cm.Record(5, 5)
	if cm.Accuracy() != 1 || len(cm.Classes) != 2 {
		t.Fatalf("matrix after unknown class: acc=%v classes=%v", cm.Accuracy(), cm.Classes)
	}
	empty := NewConfusionMatrix(nil)
	if empty.Accuracy() != 0 || empty.ChanceLevel() != 0 {
		t.Fatal("empty matrix accessors wrong")
	}
}

func TestQuickAttackPrefersNearestTemplate(t *testing.T) {
	// With equal variances, classification must pick the class whose mean
	// is closest to the observation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := NewProfiler([]march.Event{march.EvCacheMisses})
		m0 := 100 + rng.Float64()*50
		m1 := 300 + rng.Float64()*50
		for i := 0; i < 30; i++ {
			p.Add(0, hpc.Profile{march.EvCacheMisses: m0 + rng.NormFloat64()*4})
			p.Add(1, hpc.Profile{march.EvCacheMisses: m1 + rng.NormFloat64()*4})
		}
		atk, err := p.Build()
		if err != nil {
			return false
		}
		predLo, _ := atk.Classify(hpc.Profile{march.EvCacheMisses: m0})
		predHi, _ := atk.Classify(hpc.Profile{march.EvCacheMisses: m1})
		return predLo == 0 && predHi == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
