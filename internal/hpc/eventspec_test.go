package hpc

import (
	"testing"

	"repro/internal/march"
)

func TestParseEventSpecNamedSets(t *testing.T) {
	base, err := ParseEventSpec("base")
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || base[0] != march.EvCacheMisses || base[1] != march.EvBranches {
		t.Fatalf("base = %v", base)
	}
	fig, err := ParseEventSpec("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig) != len(march.AllEvents()) {
		t.Fatalf("fig2b has %d events, want %d", len(fig), len(march.AllEvents()))
	}
	ext, err := ParseEventSpec("extended")
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != march.NumEvents {
		t.Fatalf("extended has %d events, want %d", len(ext), march.NumEvents)
	}
}

func TestParseEventSpecCommaList(t *testing.T) {
	evs, err := ParseEventSpec("cycles, instructions")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0] != march.EvCycles || evs[1] != march.EvInstructions {
		t.Fatalf("list = %v", evs)
	}
	if _, err := ParseEventSpec("no-such-event"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := ParseEventSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}
