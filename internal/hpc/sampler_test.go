package hpc

import (
	"testing"

	"repro/internal/march"
)

func TestSampleSeriesValidation(t *testing.T) {
	e := newEngine(t)
	p, _ := NewPMU(e, 6)
	if _, err := p.SampleSeries(3, func(int) {}); err == nil {
		t.Fatal("SampleSeries before Program accepted")
	}
	p.Program(march.EvInstructions)
	if _, err := p.SampleSeries(0, func(int) {}); err == nil {
		t.Fatal("zero stages accepted")
	}
	pm, _ := NewPMU(e, 2)
	if err := pm.Program(march.EvCycles, march.EvBranches, march.EvInstructions); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.SampleSeries(2, func(int) {}); err == nil {
		t.Fatal("multiplexed sampling accepted")
	}
}

func TestSampleSeriesPerStageDeltas(t *testing.T) {
	e := newEngine(t)
	p, _ := NewPMU(e, 6)
	if err := p.Program(march.EvInstructions, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	work := []uint64{10, 0, 55, 7}
	series, err := p.SampleSeries(len(work), func(stage int) {
		e.Ops(work[stage])
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Samples) != len(work) {
		t.Fatalf("samples = %d, want %d", len(series.Samples), len(work))
	}
	for i, w := range work {
		if got := series.Samples[i].Deltas.Get(march.EvInstructions); got != float64(w) {
			t.Fatalf("stage %d delta = %v, want %d", i, got, w)
		}
	}
	if got := series.Total(march.EvInstructions); got != 72 {
		t.Fatalf("total = %v, want 72", got)
	}
	if got := series.Peak(march.EvInstructions); got != 2 {
		t.Fatalf("peak stage = %d, want 2", got)
	}
}

func TestSampleSeriesEmptyPeak(t *testing.T) {
	s := &Series{}
	if s.Peak(march.EvCycles) != -1 {
		t.Fatal("empty series peak != -1")
	}
	if s.Total(march.EvCycles) != 0 {
		t.Fatal("empty series total != 0")
	}
}

func TestSampleSeriesMatchesMeasureTotals(t *testing.T) {
	// Sampling in stages must account for exactly the same totals a flat
	// measurement would see (no noise model on this engine).
	e := newEngine(t)
	p, _ := NewPMU(e, 6)
	p.Program(march.EvInstructions)
	stageWork := func(stage int) { e.Ops(uint64(10 * (stage + 1))) }
	series, err := p.SampleSeries(5, stageWork)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := p.MeasureOnce(func() {
		for s := 0; s < 5; s++ {
			stageWork(s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if series.Total(march.EvInstructions) != prof.Get(march.EvInstructions) {
		t.Fatalf("sampled total %v != measured %v",
			series.Total(march.EvInstructions), prof.Get(march.EvInstructions))
	}
}
