// Package hpc models the Hardware Performance Counter interface the
// paper's Evaluator uses: a Performance Monitoring Unit (PMU) with a small
// number of programmable counter registers, perf-style event multiplexing
// with scaling when more events are requested than registers exist, and a
// `perf stat`-style formatter (including the Indian digit grouping shown in
// the paper's Figure 2(b)).
//
// The paper notes that Linux perf is "limited to observing a maximum of 6
// to 8 hardware events in parallel because of the restrictions in the
// number of built-in HPC registers"; this package reproduces exactly that
// constraint and the time-slice multiplexing perf uses to work around it.
package hpc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/march"
)

// DefaultCounters is the number of programmable HPC registers, matching
// the paper's "6 to 8" observation (we model 6 programmable counters).
const DefaultCounters = 6

// Profile maps events to counted (and possibly scaled) values for one
// measurement interval — the per-classification observation the Evaluator
// collects.
type Profile map[march.Event]float64

// Get returns the profile value for an event (0 when absent).
func (p Profile) Get(e march.Event) float64 { return p[e] }

// Events returns the profiled events in canonical (alphabetical) order.
func (p Profile) Events() []march.Event {
	evs := make([]march.Event, 0, len(p))
	for e := range p {
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].String() < evs[j].String() })
	return evs
}

// Vector flattens the profile into a float slice over the given event
// order, for use by the template attack.
func (p Profile) Vector(order []march.Event) []float64 {
	out := make([]float64, len(order))
	for i, e := range order {
		out[i] = p[e]
	}
	return out
}

// PMU is a simulated Performance Monitoring Unit bound to one engine. It
// schedules requested events onto a limited set of counter registers,
// rotating groups in round-robin time slices like perf, and scales counts
// by enabled/running time.
//
// The measure path is allocation-free in steady state: per-event scratch
// lives in fixed arrays on the PMU, and the *Into variants write results
// into a caller-provided Profile, so campaign loops (the pipeline's shard
// workers) can reuse one Profile across thousands of measurements.
type PMU struct {
	engine    *march.Engine
	registers int
	events    []march.Event
	groups    [][]march.Event
	// programmed[e] tracks the current event selection so reused Profiles
	// can be scrubbed of keys left over from a previous programming.
	programmed [march.NumEvents]bool
	// Scratch reused across Measure calls (indexed by event id).
	raw     [march.NumEvents]float64
	enabled [march.NumEvents]int
}

// NewPMU creates a PMU with the given number of programmable registers
// (DefaultCounters when 0).
func NewPMU(engine *march.Engine, registers int) (*PMU, error) {
	if engine == nil {
		return nil, fmt.Errorf("hpc: PMU needs an engine")
	}
	if registers <= 0 {
		registers = DefaultCounters
	}
	return &PMU{engine: engine, registers: registers}, nil
}

// Registers returns the number of programmable counters.
func (p *PMU) Registers() int { return p.registers }

// Program selects the events to monitor. Duplicate events are rejected.
// When more events than registers are requested, the PMU splits them into
// round-robin groups (multiplexing).
func (p *PMU) Program(events ...march.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("hpc: no events requested")
	}
	seen := map[march.Event]bool{}
	for _, e := range events {
		if int(e) < 0 || int(e) >= march.NumEvents {
			return fmt.Errorf("hpc: invalid event %d", int(e))
		}
		if seen[e] {
			return fmt.Errorf("hpc: duplicate event %s", e)
		}
		seen[e] = true
	}
	p.events = append([]march.Event(nil), events...)
	p.programmed = [march.NumEvents]bool{}
	for _, e := range events {
		p.programmed[e] = true
	}
	p.groups = p.groups[:0]
	for i := 0; i < len(events); i += p.registers {
		end := i + p.registers
		if end > len(events) {
			end = len(events)
		}
		p.groups = append(p.groups, events[i:end])
	}
	return nil
}

// Multiplexed reports whether the current programming requires rotation.
func (p *PMU) Multiplexed() bool { return len(p.groups) > 1 }

// Measure runs workload under observation and returns a Profile.
//
// Without multiplexing, every event is counted for the whole run. With
// multiplexing, the workload must be divisible into slices: the PMU calls
// workload repeatedly with the slice index (0..slices-1), rotating one
// event group per slice, and scales each event's observed count by
// total-slices/enabled-slices — exactly perf's enabled/running scaling.
// slices must be ≥ the number of groups; pass 1 plus a single-call
// workload when not multiplexed.
func (p *PMU) Measure(slices int, workload func(slice int)) (Profile, error) {
	prof := make(Profile, len(p.events))
	if err := p.MeasureInto(prof, slices, workload); err != nil {
		return nil, err
	}
	return prof, nil
}

// MeasureInto is Measure writing the result into a caller-provided
// Profile. After the first call with a given programming, re-using the
// same Profile makes the measure path allocation-free (the keys already
// exist; values are overwritten).
//
//detlint:allocpath
func (p *PMU) MeasureInto(prof Profile, slices int, workload func(slice int)) error {
	if len(p.events) == 0 {
		return fmt.Errorf("hpc: Measure before Program")
	}
	if slices <= 0 {
		return fmt.Errorf("hpc: slices must be positive, got %d", slices)
	}
	if len(p.groups) > 1 && slices < len(p.groups) {
		return fmt.Errorf("hpc: %d slices cannot rotate %d multiplex groups", slices, len(p.groups))
	}
	for _, e := range p.events {
		p.raw[e] = 0
		p.enabled[e] = 0
	}
	for s := 0; s < slices; s++ {
		group := p.groups[s%len(p.groups)]
		start := p.engine.Counts()
		workload(s)
		end := p.engine.Counts()
		delta := end.Sub(start)
		for _, e := range group {
			p.raw[e] += float64(delta.Get(e))
			p.enabled[e]++
		}
	}
	for _, e := range p.events {
		n := p.enabled[e]
		if n == 0 {
			return fmt.Errorf("hpc: event %s never scheduled (slices=%d, groups=%d)", e, slices, len(p.groups))
		}
		prof[e] = p.raw[e] * float64(slices) / float64(n)
	}
	p.scrubStale(prof)
	p.applyNoise(prof)
	return nil
}

// scrubStale deletes Profile keys that are not part of the current
// programming. A Profile reused across Program calls with different event
// sets would otherwise keep the previous programming's counts — and
// Profile.Events() / attacker feature vectors would silently include them.
//
// It must be called *after* the measure loop has written every programmed
// event, so prof is a superset of the programmed set and the length check
// alone decides whether stale keys exist: the steady-state path (same
// Profile, unchanged programming) costs one comparison and no map
// iteration, keeping the measure hot path at its 0-alloc nanosecond
// budget. The delete loop itself is allocation-free.
//
//detlint:allocpath
func (p *PMU) scrubStale(prof Profile) {
	if len(prof) == len(p.events) {
		return
	}
	for e := range prof {
		if int(e) < 0 || int(e) >= march.NumEvents || !p.programmed[e] {
			delete(prof, e)
		}
	}
}

// applyNoise applies measurement noise once per interval, mirroring a real
// system where the reading itself is jittered.
//
//detlint:allocpath
func (p *PMU) applyNoise(prof Profile) {
	noise := p.engine.Noise()
	if noise == nil {
		return
	}
	var c march.Counts
	for _, e := range p.events {
		c[e] = uint64(prof[e])
	}
	noise.Apply(&c)
	for _, e := range p.events {
		prof[e] = float64(c.Get(e))
	}
}

// MeasureOnce is the common single-interval form: it observes one call of
// workload with no multiplex rotation error when enough registers exist.
func (p *PMU) MeasureOnce(workload func()) (Profile, error) {
	prof := make(Profile, len(p.events))
	if err := p.MeasureOnceInto(prof, workload); err != nil {
		return nil, err
	}
	return prof, nil
}

// MeasureOnceInto is MeasureOnce writing into a caller-provided Profile —
// the zero-allocation steady-state form the collection pipeline uses (one
// Profile reused across a shard's runs). The observed counts are identical
// to MeasureOnce's: a single interval needs no multiplex scaling.
//
//detlint:allocpath
func (p *PMU) MeasureOnceInto(prof Profile, workload func()) error {
	if len(p.events) == 0 {
		return fmt.Errorf("hpc: Measure before Program")
	}
	if len(p.groups) > 1 {
		return fmt.Errorf("hpc: %d events exceed %d registers; use Measure with ≥%d slices",
			len(p.events), p.registers, len(p.groups))
	}
	start := p.engine.Counts()
	workload()
	end := p.engine.Counts()
	delta := end.Sub(start)
	for _, e := range p.events {
		prof[e] = float64(delta.Get(e))
	}
	p.scrubStale(prof)
	p.applyNoise(prof)
	return nil
}

// MeasureBatchInto measures len(profs) back-to-back workload invocations
// in one replay session, writing workload(i)'s profile into profs[i].
// The counters are snapshotted once per input boundary — input i's ending
// snapshot is input i+1's starting snapshot, exactly the values two
// adjacent MeasureOnceInto calls would read, since nothing touches the
// engine between one interval's end and the next's start. Stale-scrub and
// the noise model run per input in run order, so the noise stream is
// consumed identically to the sequential path: batch=1 and batch=N
// produce bit-identical per-run profiles. Like MeasureOnceInto it is a
// single-interval measure and requires all programmed events to fit one
// register group.
//
//detlint:allocpath
func (p *PMU) MeasureBatchInto(profs []Profile, workload func(i int)) error {
	if len(p.events) == 0 {
		return fmt.Errorf("hpc: Measure before Program")
	}
	if len(p.groups) > 1 {
		return fmt.Errorf("hpc: %d events exceed %d registers; use Measure with ≥%d slices",
			len(p.events), p.registers, len(p.groups))
	}
	start := p.engine.Counts()
	for i := range profs {
		workload(i)
		end := p.engine.Counts()
		delta := end.Sub(start)
		for _, e := range p.events {
			profs[i][e] = float64(delta.Get(e))
		}
		p.scrubStale(profs[i])
		p.applyNoise(profs[i])
		start = end
	}
	return nil
}

// FormatIndian renders n with Indian digit grouping (last three digits,
// then groups of two), the format visible in the paper's Figure 2(b):
// 2,26,77,01,129.
func FormatIndian(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	head := s[:len(s)-3]
	tail := s[len(s)-3:]
	var groups []string
	for len(head) > 2 {
		groups = append([]string{head[len(head)-2:]}, groups...)
		head = head[:len(head)-2]
	}
	if head != "" {
		groups = append([]string{head}, groups...)
	}
	return strings.Join(groups, ",") + "," + tail
}

// FormatStat renders a Profile in `perf stat` style, one event per line,
// right-aligned Indian-grouped counts — reproducing Figure 2(b).
func FormatStat(p Profile) string {
	type row struct {
		count string
		name  string
	}
	var rows []row
	width := 0
	for _, e := range p.Events() {
		c := FormatIndian(uint64(p[e]))
		if len(c) > width {
			width = len(c)
		}
		rows = append(rows, row{count: c, name: e.String()})
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%*s      %s\n", width, r.count, r.name)
	}
	return b.String()
}

// ParseEventList parses a perf-style comma-separated event list
// ("cache-misses,branches").
func ParseEventList(s string) ([]march.Event, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("hpc: empty event list")
	}
	var out []march.Event
	for _, name := range strings.Split(s, ",") {
		e, err := march.ParseEvent(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ParseEventSpec resolves either a named event set or a perf-style comma
// list. Named sets:
//
//	base     — cache-misses and branches (the paper's Tables 1 and 2)
//	fig2b    — the eight events of Figure 2(b)
//	extended — every modeled event, including per-level cache/TLB events
func ParseEventSpec(s string) ([]march.Event, error) {
	switch strings.TrimSpace(s) {
	case "base":
		return []march.Event{march.EvCacheMisses, march.EvBranches}, nil
	case "fig2b":
		return march.AllEvents(), nil
	case "extended":
		return march.ExtendedEvents(), nil
	default:
		return ParseEventList(s)
	}
}
