package hpc

// Allocation gate for the measurement path: in steady state (a reused
// Profile whose keys exist after the first call), MeasureOnceInto must not
// allocate — the collection pipeline calls it once per monitored
// classification.

import (
	"testing"

	"repro/internal/march"
	"repro/internal/raceinfo"
)

func TestMeasureOnceIntoZeroAllocSteadyState(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	// Include the noise model: the steady-state guarantee must hold on the
	// exact configuration campaigns measure with.
	eng, err := march.NewEngine(march.Config{Noise: march.DefaultNoise(3)})
	if err != nil {
		t.Fatal(err)
	}
	pmu, err := NewPMU(eng, DefaultCounters)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmu.Program(march.EvCacheMisses, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	prof := make(Profile, 2)
	work := func() { eng.Ops(100) }
	// First call populates the map keys.
	if err := pmu.MeasureOnceInto(prof, work); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := pmu.MeasureOnceInto(prof, work); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("MeasureOnceInto steady state allocates %v/op, want 0", allocs)
	}
}

func TestMeasureBatchIntoZeroAllocSteadyState(t *testing.T) {
	if raceinfo.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	eng, err := march.NewEngine(march.Config{Noise: march.DefaultNoise(3)})
	if err != nil {
		t.Fatal(err)
	}
	pmu, err := NewPMU(eng, DefaultCounters)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmu.Program(march.EvCacheMisses, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	profs := make([]Profile, 4)
	for i := range profs {
		profs[i] = make(Profile, 2)
	}
	work := func(i int) { eng.Ops(uint64(50 * (i + 1))) }
	// First call populates every profile's map keys.
	if err := pmu.MeasureBatchInto(profs, work); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := pmu.MeasureBatchInto(profs, work); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("MeasureBatchInto steady state allocates %v/op, want 0", allocs)
	}
}

func TestMeasureIntoMatchesMeasure(t *testing.T) {
	// The Into form must observe exactly what Measure observes (same
	// scaling, same noise stream consumption).
	build := func() (*march.Engine, *PMU) {
		eng, err := march.NewEngine(march.Config{Noise: march.DefaultNoise(9)})
		if err != nil {
			t.Fatal(err)
		}
		pmu, err := NewPMU(eng, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := pmu.Program(march.EvInstructions, march.EvBranches, march.EvCycles); err != nil {
			t.Fatal(err)
		}
		return eng, pmu
	}
	engA, pmuA := build()
	profA, err := pmuA.Measure(4, func(s int) { engA.Ops(uint64(100 * (s + 1))) })
	if err != nil {
		t.Fatal(err)
	}
	engB, pmuB := build()
	profB := Profile{}
	if err := pmuB.MeasureInto(profB, 4, func(s int) { engB.Ops(uint64(100 * (s + 1))) }); err != nil {
		t.Fatal(err)
	}
	if len(profA) != len(profB) {
		t.Fatalf("profile sizes differ: %d vs %d", len(profA), len(profB))
	}
	for e, v := range profA {
		if profB[e] != v {
			t.Fatalf("event %s: Measure=%v MeasureInto=%v", e, v, profB[e])
		}
	}
}
