package hpc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/march"
)

// Process is a simulated process whose hardware activity runs on a
// dedicated engine. It mirrors the paper's deployment: the classifier runs
// as an opaque process, and the Evaluator attaches to it by pid without
// seeing its inputs or internals.
type Process struct {
	PID    int
	Name   string
	Engine *march.Engine
}

// Registry is the simulated process table. It is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
}

// NewRegistry creates an empty process table; PIDs start at 1000 to look
// like real ones.
func NewRegistry() *Registry {
	return &Registry{nextPID: 1000, procs: map[int]*Process{}}
}

// Spawn registers a process running on the given engine and returns it.
func (r *Registry) Spawn(name string, engine *march.Engine) (*Process, error) {
	if engine == nil {
		return nil, fmt.Errorf("hpc: Spawn needs an engine")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Process{PID: r.nextPID, Name: name, Engine: engine}
	r.nextPID++
	r.procs[p.PID] = p
	return p, nil
}

// Lookup finds a process by pid.
func (r *Registry) Lookup(pid int) (*Process, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.procs[pid]
	if !ok {
		return nil, fmt.Errorf("hpc: no such process %d", pid)
	}
	return p, nil
}

// Kill removes a process from the table.
func (r *Registry) Kill(pid int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.procs[pid]; !ok {
		return fmt.Errorf("hpc: no such process %d", pid)
	}
	delete(r.procs, pid)
	return nil
}

// List returns the live processes sorted by pid.
func (r *Registry) List() []*Process {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Process, 0, len(r.procs))
	for _, p := range r.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Attach creates a PMU bound to the process's engine — the simulated
// equivalent of `perf stat -e <events> -p <pid>`. The attached observer
// sees only hardware event counts, never the process's data.
func (r *Registry) Attach(pid int, registers int) (*PMU, error) {
	p, err := r.Lookup(pid)
	if err != nil {
		return nil, err
	}
	return NewPMU(p.Engine, registers)
}
