package hpc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/march"
	"repro/internal/march/mem"
)

func newEngine(t *testing.T) *march.Engine {
	t.Helper()
	e, err := march.NewEngine(march.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewPMUValidation(t *testing.T) {
	if _, err := NewPMU(nil, 0); err == nil {
		t.Fatal("nil engine accepted")
	}
	p, err := NewPMU(newEngine(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Registers() != DefaultCounters {
		t.Fatalf("default registers = %d, want %d", p.Registers(), DefaultCounters)
	}
}

func TestProgramValidation(t *testing.T) {
	p, _ := NewPMU(newEngine(t), 4)
	if err := p.Program(); err == nil {
		t.Fatal("empty program accepted")
	}
	if err := p.Program(march.EvCycles, march.EvCycles); err == nil {
		t.Fatal("duplicate event accepted")
	}
	if err := p.Program(march.Event(99)); err == nil {
		t.Fatal("invalid event accepted")
	}
	if err := p.Program(march.EvCycles, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	if p.Multiplexed() {
		t.Fatal("2 events on 4 registers reported multiplexed")
	}
}

func TestMeasureWithoutProgram(t *testing.T) {
	p, _ := NewPMU(newEngine(t), 4)
	if _, err := p.Measure(1, func(int) {}); err == nil {
		t.Fatal("Measure before Program accepted")
	}
}

func TestMeasureOnceCountsExactly(t *testing.T) {
	e := newEngine(t)
	p, _ := NewPMU(e, 6)
	if err := p.Program(march.EvInstructions, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	prof, err := p.MeasureOnce(func() {
		e.Ops(100)
		for i := 0; i < 10; i++ {
			e.Branch(0x40, true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Get(march.EvInstructions) != 110 {
		t.Fatalf("instructions = %v, want 110", prof.Get(march.EvInstructions))
	}
	if prof.Get(march.EvBranches) != 10 {
		t.Fatalf("branches = %v, want 10", prof.Get(march.EvBranches))
	}
}

func TestMeasureIsolatesInterval(t *testing.T) {
	// Activity before Measure must not leak into the profile.
	e := newEngine(t)
	e.Ops(5000)
	p, _ := NewPMU(e, 6)
	p.Program(march.EvInstructions)
	prof, err := p.MeasureOnce(func() { e.Ops(7) })
	if err != nil {
		t.Fatal(err)
	}
	if prof.Get(march.EvInstructions) != 7 {
		t.Fatalf("interval not isolated: %v", prof.Get(march.EvInstructions))
	}
}

func TestMultiplexingSchedulesAllEventsWithScaling(t *testing.T) {
	// 8 events on 6 registers → 2 groups, as on the paper's machine.
	e := newEngine(t)
	p, _ := NewPMU(e, 6)
	if err := p.Program(march.AllEvents()...); err != nil {
		t.Fatal(err)
	}
	if !p.Multiplexed() {
		t.Fatal("8 events on 6 registers not multiplexed")
	}
	// MeasureOnce must refuse: it cannot rotate groups.
	if _, err := p.MeasureOnce(func() {}); err == nil {
		t.Fatal("MeasureOnce accepted a multiplexed program")
	}
	// A uniform workload over 10 slices: scaled counts must approximate
	// the true totals.
	const slices = 10
	prof, err := p.Measure(slices, func(int) {
		e.Ops(1000)
		for i := 0; i < 100; i++ {
			e.Branch(0x80, true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := float64(slices * 1100)
	got := prof.Get(march.EvInstructions)
	if math.Abs(got-wantInstr)/wantInstr > 0.25 {
		t.Fatalf("scaled instructions = %v, want ≈ %v", got, wantInstr)
	}
	wantBr := float64(slices * 100)
	if got := prof.Get(march.EvBranches); math.Abs(got-wantBr)/wantBr > 0.25 {
		t.Fatalf("scaled branches = %v, want ≈ %v", got, wantBr)
	}
	// Every one of the 8 requested events must be present.
	if len(prof) != len(march.AllEvents()) {
		t.Fatalf("profile has %d events, want %d", len(prof), len(march.AllEvents()))
	}
}

func TestReprogramScrubsStaleProfileKeys(t *testing.T) {
	// A Profile reused across Program calls with different event sets must
	// not keep the previous programming's counts: stale keys would leak
	// into Profile.Events() and attacker feature vectors.
	eng := newEngine(t)
	p, _ := NewPMU(eng, 4)
	if err := p.Program(march.EvInstructions, march.EvBranches); err != nil {
		t.Fatal(err)
	}
	prof := Profile{}
	work := func() { eng.Ops(100) }
	if err := p.MeasureOnceInto(prof, work); err != nil {
		t.Fatal(err)
	}
	if _, ok := prof[march.EvBranches]; !ok {
		t.Fatal("first programming did not record branches")
	}

	if err := p.Program(march.EvInstructions, march.EvCycles); err != nil {
		t.Fatal(err)
	}
	if err := p.MeasureOnceInto(prof, work); err != nil {
		t.Fatal(err)
	}
	if _, ok := prof[march.EvBranches]; ok {
		t.Fatalf("stale branches key survived reprogramming: %v", prof)
	}
	evs := prof.Events()
	if len(evs) != 2 || evs[0] != march.EvCycles || evs[1] != march.EvInstructions {
		t.Fatalf("Events() after reprogramming = %v, want [cycles instructions]", evs)
	}

	// The multiplexed Measure path scrubs too.
	if err := p.Program(march.EvInstructions, march.EvBranches, march.EvCycles,
		march.EvBusCycles, march.EvRefCycles); err != nil {
		t.Fatal(err)
	}
	if err := p.MeasureInto(prof, 2, func(int) { eng.Ops(10) }); err != nil {
		t.Fatal(err)
	}
	if len(prof) != 5 {
		t.Fatalf("multiplexed profile has %d events, want 5: %v", len(prof), prof)
	}
	if err := p.Program(march.EvCacheMisses); err != nil {
		t.Fatal(err)
	}
	if err := p.MeasureInto(prof, 1, func(int) { eng.Ops(10) }); err != nil {
		t.Fatal(err)
	}
	if len(prof) != 1 {
		t.Fatalf("profile after narrowing has %d events, want 1: %v", len(prof), prof)
	}
	if _, ok := prof[march.EvCacheMisses]; !ok {
		t.Fatal("current programming's event missing after scrub")
	}
}

func TestMeasureSliceValidation(t *testing.T) {
	e := newEngine(t)
	p, _ := NewPMU(e, 2)
	p.Program(march.EvCycles, march.EvInstructions, march.EvBranches) // 2 groups
	if _, err := p.Measure(0, func(int) {}); err == nil {
		t.Fatal("zero slices accepted")
	}
	if _, err := p.Measure(1, func(int) {}); err == nil {
		t.Fatal("fewer slices than groups accepted")
	}
	if _, err := p.Measure(2, func(int) { e.Ops(1) }); err != nil {
		t.Fatal(err)
	}
}

func TestProfileAccessors(t *testing.T) {
	prof := Profile{march.EvCycles: 10, march.EvBranches: 5}
	evs := prof.Events()
	if len(evs) != 2 || evs[0] != march.EvBranches {
		t.Fatalf("Events order = %v, want branches first (alphabetical)", evs)
	}
	vec := prof.Vector([]march.Event{march.EvCycles, march.EvCacheMisses})
	if vec[0] != 10 || vec[1] != 0 {
		t.Fatalf("Vector = %v, want [10 0]", vec)
	}
}

func TestFormatIndian(t *testing.T) {
	cases := map[uint64]string{
		0:           "0",
		999:         "999",
		1000:        "1,000",
		83_64_694:   "83,64,694",
		6_24_60_873: "6,24,60,873",
		// From Figure 2(b): 2,26,77,01,129 branches.
		2_26_77_01_129: "2,26,77,01,129",
		// From Figure 2(b): 16,22,12,80,350 cycles.
		16_22_12_80_350: "16,22,12,80,350",
	}
	for n, want := range cases {
		if got := FormatIndian(n); got != want {
			t.Errorf("FormatIndian(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatStatLayout(t *testing.T) {
	prof := Profile{
		march.EvBranches:    2_26_77_01_129,
		march.EvCacheMisses: 83_64_694,
	}
	out := FormatStat(prof)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("FormatStat produced %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "2,26,77,01,129") || !strings.HasSuffix(lines[0], "branches") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "83,64,694") || !strings.HasSuffix(lines[1], "cache-misses") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	// Counts right-aligned: both count columns end at the same offset.
	if strings.Index(lines[0], " branches") < strings.Index(lines[1], " cache-misses")-4 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestParseEventList(t *testing.T) {
	evs, err := ParseEventList("cache-misses, branches")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0] != march.EvCacheMisses || evs[1] != march.EvBranches {
		t.Fatalf("parsed %v", evs)
	}
	if _, err := ParseEventList(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseEventList("cache-misses,bogus"); err == nil {
		t.Fatal("bogus event accepted")
	}
}

func TestRegistrySpawnLookupKill(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Spawn("x", nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	p1, err := r.Spawn("classifier", newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := r.Spawn("other", newEngine(t))
	if p2.PID <= p1.PID {
		t.Fatal("PIDs not increasing")
	}
	got, err := r.Lookup(p1.PID)
	if err != nil || got.Name != "classifier" {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if len(r.List()) != 2 {
		t.Fatalf("List len = %d", len(r.List()))
	}
	if err := r.Kill(p1.PID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(p1.PID); err == nil {
		t.Fatal("killed process still found")
	}
	if err := r.Kill(p1.PID); err == nil {
		t.Fatal("double kill accepted")
	}
}

func TestAttachMeasuresTargetProcessOnly(t *testing.T) {
	r := NewRegistry()
	victim, _ := r.Spawn("victim", newEngine(t))
	bystander, _ := r.Spawn("bystander", newEngine(t))
	pmu, err := r.Attach(victim.PID, 6)
	if err != nil {
		t.Fatal(err)
	}
	pmu.Program(march.EvInstructions)
	prof, err := pmu.MeasureOnce(func() {
		victim.Engine.Ops(42)
		bystander.Engine.Ops(9999) // other process's work is invisible
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Get(march.EvInstructions) != 42 {
		t.Fatalf("attached PMU saw %v instructions, want 42", prof.Get(march.EvInstructions))
	}
	if _, err := r.Attach(55555, 6); err == nil {
		t.Fatal("attach to missing pid accepted")
	}
}

func TestQuickFormatIndianDigitsPreserved(t *testing.T) {
	// Stripping commas recovers the decimal representation.
	f := func(n uint64) bool {
		s := FormatIndian(n)
		return strings.ReplaceAll(s, ",", "") == fmt_uint(n) && !strings.HasPrefix(s, ",")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fmt_uint(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestQuickMultiplexScalingUnbiased(t *testing.T) {
	// For a uniform workload, scaled counts converge to truth regardless
	// of register count.
	f := func(regRaw uint8) bool {
		regs := 1 + int(regRaw%6)
		e, err := march.NewEngine(march.Config{})
		if err != nil {
			return false
		}
		p, err := NewPMU(e, regs)
		if err != nil {
			return false
		}
		if err := p.Program(march.AllEvents()...); err != nil {
			return false
		}
		groups := (len(march.AllEvents()) + regs - 1) / regs
		slices := groups * 6
		prof, err := p.Measure(slices, func(int) {
			e.Ops(500)
			e.Load(mem.Addr(0x1000), 4)
		})
		if err != nil {
			return false
		}
		want := float64(slices) * 501
		got := prof.Get(march.EvInstructions)
		return math.Abs(got-want)/want < 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
