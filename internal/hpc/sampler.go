package hpc

import (
	"fmt"

	"repro/internal/march"
)

// Sample is one interval of a sampled measurement: the event deltas
// observed between two consecutive checkpoints.
type Sample struct {
	Index  int
	Deltas Profile
}

// Series is a sampled time series over a workload — the `perf record`
// analogue to Measure's `perf stat`. It lets an observer see *when*
// during a classification the events occur, not just their totals.
type Series struct {
	Events  []march.Event
	Samples []Sample
}

// Total sums one event over all samples.
func (s *Series) Total(e march.Event) float64 {
	var t float64
	for _, sm := range s.Samples {
		t += sm.Deltas.Get(e)
	}
	return t
}

// Peak returns the sample index with the largest delta of one event
// (-1 for an empty series).
func (s *Series) Peak(e march.Event) int {
	best, bestV := -1, -1.0
	for i, sm := range s.Samples {
		if v := sm.Deltas.Get(e); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SampleSeries observes a workload split into n checkpointed stages and
// returns the per-stage event deltas. The workload callback is invoked
// once per stage index (0..n-1); the PMU reads the counters between
// stages. Unlike Measure, no multiplex rotation happens: all programmed
// events must fit the registers, as the whole point is per-stage
// resolution for every event.
func (p *PMU) SampleSeries(n int, workload func(stage int)) (*Series, error) {
	if len(p.events) == 0 {
		return nil, fmt.Errorf("hpc: SampleSeries before Program")
	}
	if p.Multiplexed() {
		return nil, fmt.Errorf("hpc: SampleSeries cannot multiplex %d events on %d registers", len(p.events), p.registers)
	}
	if n <= 0 {
		return nil, fmt.Errorf("hpc: SampleSeries needs a positive stage count, got %d", n)
	}
	series := &Series{Events: append([]march.Event(nil), p.events...)}
	for stage := 0; stage < n; stage++ {
		before := p.engine.Counts()
		workload(stage)
		delta := p.engine.Counts().Sub(before)
		prof := Profile{}
		for _, e := range p.events {
			prof[e] = float64(delta.Get(e))
		}
		series.Samples = append(series.Samples, Sample{Index: stage, Deltas: prof})
	}
	return series, nil
}
