package tensor

import (
	"fmt"
	"math"
)

// MatMul computes c = a·b for a (m×k) and b (k×n), returning a new (m×n)
// tensor. Inputs must be rank-2.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions differ: %v vs %v", a.Shape, b.Shape)
	}
	c := New(m, n)
	MatMulInto(c.Data, a.Data, b.Data, m, k, n)
	return c, nil
}

// MatMulInto computes dst = a·b with raw slices; dst must have length m*n.
// The loop order (i,k,j) keeps the inner loop streaming over b and dst rows,
// which matters for the pure-Go training speed.
func MatMulInto(dst, a, b []float32, m, k, n int) {
	if len(dst) != m*n || len(a) != m*k || len(b) != k*n {
		panic(fmt.Sprintf("tensor: MatMulInto size mismatch m=%d k=%d n=%d (dst=%d a=%d b=%d)", m, k, n, len(dst), len(a), len(b)))
	}
	clear(dst)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		for p, av := range ar {
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes dst = a·bᵀ for a (m×k) and b (n×k); dst length m*n.
func MatMulTransB(dst, a, b []float32, m, k, n int) {
	if len(dst) != m*n || len(a) != m*k || len(b) != n*k {
		panic(fmt.Sprintf("tensor: MatMulTransB size mismatch m=%d k=%d n=%d", m, k, n))
	}
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var s float32
			for p, av := range ar {
				s += av * br[p]
			}
			dst[i*n+j] = s
		}
	}
}

// MatMulTransA computes dst = aᵀ·b for a (k×m) and b (k×n); dst length m*n.
func MatMulTransA(dst, a, b []float32, m, k, n int) {
	if len(dst) != m*n || len(a) != k*m || len(b) != k*n {
		panic(fmt.Sprintf("tensor: MatMulTransA size mismatch m=%d k=%d n=%d", m, k, n))
	}
	clear(dst)
	for p := 0; p < k; p++ {
		ar := a[p*m : (p+1)*m]
		br := b[p*n : (p+1)*n]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst[i*n : (i+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// ConvGeom describes a 2-D convolution geometry (square kernel, no dilation).
type ConvGeom struct {
	InH, InW, InC int // input height, width, channels
	K             int // kernel side
	Stride        int
	Pad           int
	OutC          int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Validate checks that the geometry is internally consistent.
func (g ConvGeom) Validate() error {
	switch {
	case g.InH <= 0 || g.InW <= 0 || g.InC <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.K <= 0 || g.Stride <= 0 || g.Pad < 0 || g.OutC <= 0:
		return fmt.Errorf("tensor: conv geometry has invalid kernel/stride/pad/outc %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col expands input (HWC, shape {InH,InW,InC}) into a matrix of shape
// {OutH*OutW, K*K*InC} so convolution becomes a matmul with the filter
// matrix {K*K*InC, OutC}. Out-of-bounds (padding) elements are zero.
func Im2Col(dst []float32, in []float32, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	cols := g.K * g.K * g.InC
	if len(dst) != oh*ow*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d, want %d", len(dst), oh*ow*cols))
	}
	if len(in) != g.InH*g.InW*g.InC {
		panic(fmt.Sprintf("tensor: Im2Col input length %d, want %d", len(in), g.InH*g.InW*g.InC))
	}
	di := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ky := 0; ky < g.K; ky++ {
				iy := oy*g.Stride + ky - g.Pad
				for kx := 0; kx < g.K; kx++ {
					ix := ox*g.Stride + kx - g.Pad
					if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
						for c := 0; c < g.InC; c++ {
							dst[di] = 0
							di++
						}
						continue
					}
					src := (iy*g.InW + ix) * g.InC
					copy(dst[di:di+g.InC], in[src:src+g.InC])
					di += g.InC
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters-and-accumulates the column
// matrix back into an input-shaped gradient buffer (which must be
// pre-zeroed by the caller or is overwritten here — this function zeroes it).
func Col2Im(dstIn []float32, cols []float32, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	ncols := g.K * g.K * g.InC
	if len(cols) != oh*ow*ncols {
		panic(fmt.Sprintf("tensor: Col2Im cols length %d, want %d", len(cols), oh*ow*ncols))
	}
	if len(dstIn) != g.InH*g.InW*g.InC {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", len(dstIn), g.InH*g.InW*g.InC))
	}
	clear(dstIn)
	si := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ky := 0; ky < g.K; ky++ {
				iy := oy*g.Stride + ky - g.Pad
				for kx := 0; kx < g.K; kx++ {
					ix := ox*g.Stride + kx - g.Pad
					if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
						si += g.InC
						continue
					}
					dst := (iy*g.InW + ix) * g.InC
					for c := 0; c < g.InC; c++ {
						dstIn[dst+c] += cols[si]
						si++
					}
				}
			}
		}
	}
}

// Conv2D performs a 2-D convolution of in (HWC {InH,InW,InC}) with filters
// (shape {K*K*InC, OutC}) and bias (len OutC), returning HWC output
// {OutH,OutW,OutC}. It uses im2col + matmul.
func Conv2D(in *Tensor, filters *Tensor, bias []float32, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if in.Len() != g.InH*g.InW*g.InC {
		return nil, fmt.Errorf("tensor: Conv2D input volume %d does not match geometry %+v", in.Len(), g)
	}
	cols := g.K * g.K * g.InC
	if filters.Len() != cols*g.OutC {
		return nil, fmt.Errorf("tensor: Conv2D filter volume %d, want %d", filters.Len(), cols*g.OutC)
	}
	if len(bias) != g.OutC {
		return nil, fmt.Errorf("tensor: Conv2D bias length %d, want %d", len(bias), g.OutC)
	}
	oh, ow := g.OutH(), g.OutW()
	colBuf := make([]float32, oh*ow*cols)
	Im2Col(colBuf, in.Data, g)
	out := New(oh, ow, g.OutC)
	MatMulInto(out.Data, colBuf, filters.Data, oh*ow, cols, g.OutC)
	for i := 0; i < oh*ow; i++ {
		row := out.Data[i*g.OutC : (i+1)*g.OutC]
		for c := range row {
			row[c] += bias[c]
		}
	}
	return out, nil
}

// MaxPool2 performs 2×2 max pooling with stride 2 over an HWC tensor,
// truncating odd trailing rows/columns (floor semantics). It also returns
// the flat argmax index of each pooled element for use in backprop.
func MaxPool2(in *Tensor) (*Tensor, []int32, error) {
	if in.Rank() != 3 {
		return nil, nil, fmt.Errorf("tensor: MaxPool2 requires HWC rank-3 input, got %v", in.Shape)
	}
	h, w, c := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		return nil, nil, fmt.Errorf("tensor: MaxPool2 input %v too small", in.Shape)
	}
	out := New(oh, ow, c)
	arg := make([]int32, oh*ow*c)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < c; ch++ {
				bestIdx := ((2*oy)*w + 2*ox) * c
				best := in.Data[bestIdx+ch]
				bi := bestIdx + ch
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := ((2*oy+dy)*w+(2*ox+dx))*c + ch
						if in.Data[idx] > best {
							best, bi = in.Data[idx], idx
						}
					}
				}
				o := (oy*ow+ox)*c + ch
				out.Data[o] = best
				arg[o] = int32(bi)
			}
		}
	}
	return out, arg, nil
}

// ReLU applies max(0,x) element-wise, returning a new tensor.
func ReLU(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Softmax returns the softmax of a rank-1 tensor, numerically stabilized by
// subtracting the max logit.
func Softmax(in *Tensor) *Tensor {
	out := New(in.Shape...)
	if len(in.Data) == 0 {
		return out
	}
	maxv := in.Data[0]
	for _, v := range in.Data {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range in.Data {
		e := math.Exp(float64(v - maxv))
		out.Data[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}
