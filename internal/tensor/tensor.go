// Package tensor provides the dense float32 tensor type and the numeric
// kernels (matmul, im2col convolution, pooling, softmax) that the neural
// network substrate is built on.
//
// Tensors are stored row-major (last dimension contiguous). Image tensors
// use HWC layout: shape {height, width, channels}. Batched tensors prepend
// the batch dimension: {batch, height, width, channels}.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied). It returns an error if len(data) does not match
// the shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; intended for tests and
// literals with statically known shapes.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Volume returns the product of the dimensions of shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// volume. It returns an error on volume mismatch.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	if Volume(shape) != len(t.Data) {
		return nil, fmt.Errorf("tensor: cannot reshape volume %d to %v", len(t.Data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// At returns the element at the given multi-index. It panics on rank or
// bounds violations; it is a convenience for tests, not a hot-path API.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled adds s*u to t element-wise in place. It panics on shape
// mismatch (programmer error on a hot path).
func (t *Tensor) AddScaled(u *Tensor, s float32) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	for i, v := range u.Data {
		t.Data[i] += s * v
	}
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxIndex returns the index of the maximum element (first on ties) and its
// value. It panics on an empty tensor.
func (t *Tensor) MaxIndex() (int, float32) {
	if len(t.Data) == 0 {
		panic("tensor: MaxIndex of empty tensor")
	}
	best, bv := 0, t.Data[0]
	for i, v := range t.Data {
		if v > bv {
			best, bv = i, v
		}
	}
	return best, bv
}

// CountNonZero returns the number of elements with |v| > eps.
func (t *Tensor) CountNonZero(eps float32) int {
	n := 0
	for _, v := range t.Data {
		if v > eps || v < -eps {
			n++
		}
	}
	return n
}

// L2 returns the Euclidean norm of the tensor.
func (t *Tensor) L2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// String renders a short description (shape and a few leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 4 {
		n = 4
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
