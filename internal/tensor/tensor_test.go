package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tt.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tt.Rank())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	_, err := FromSlice([]float32{1, 2, 3}, 2, 2)
	if err == nil {
		t.Fatal("FromSlice accepted mismatched volume")
	}
	tt, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", tt.At(1, 0))
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4, 5)
	tt.Set(7.5, 2, 1, 3)
	if got := tt.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset: ((2*4)+1)*5+3 = 48.
	if tt.Data[48] != 7.5 {
		t.Fatalf("flat offset wrong: Data[48] = %v", tt.Data[48])
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshape(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Fatal("Reshape accepted wrong volume")
	}
	// Reshape shares data.
	b.Data[0] = -1
	if a.Data[0] != -1 {
		t.Fatal("Reshape copied data; want shared backing array")
	}
}

func TestScaleAddScaledSum(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{10, 20, 30}, 3)
	a.AddScaled(b, 0.5)
	want := []float32{6, 12, 18}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("AddScaled[%d] = %v, want %v", i, a.Data[i], want[i])
		}
	}
	a.Scale(2)
	if !almostEq(a.Sum(), 72, 1e-6) {
		t.Fatalf("Sum = %v, want 72", a.Sum())
	}
}

func TestMaxIndex(t *testing.T) {
	a := MustFromSlice([]float32{3, 9, 9, 1}, 4)
	i, v := a.MaxIndex()
	if i != 1 || v != 9 {
		t.Fatalf("MaxIndex = (%d,%v), want (1,9) first-on-ties", i, v)
	}
}

func TestCountNonZero(t *testing.T) {
	a := MustFromSlice([]float32{0, 1e-9, -1e-9, 0.5, -2}, 5)
	if n := a.CountNonZero(1e-6); n != 2 {
		t.Fatalf("CountNonZero = %d, want 2", n)
	}
	if n := a.CountNonZero(0); n != 4 {
		t.Fatalf("CountNonZero(0) = %d, want 4", n)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("MatMul accepted mismatched inner dims")
	}
	c := New(6)
	if _, err := MatMul(c, b); err == nil {
		t.Fatal("MatMul accepted rank-1 operand")
	}
}

// naiveMatMul is the reference triple loop for cross-checking kernels.
func naiveMatMul(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			out[i*n+j] = float32(s)
		}
	}
	return out
}

func TestMatMulAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		want := naiveMatMul(a, b, m, k, n)
		got := make([]float32, m*n)
		MatMulInto(got, a, b, m, k, n)
		for i := range want {
			if !almostEq(float64(got[i]), float64(want[i]), 1e-4) {
				t.Fatalf("trial %d: MatMulInto[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulTransBAndTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 5, 4, 6
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = rng.Float32() - 0.5
	}
	for i := range b {
		b[i] = rng.Float32() - 0.5
	}
	want := naiveMatMul(a, b, m, k, n)

	// TransB: build bT (n×k) then a·bTᵀ should equal a·b.
	bT := make([]float32, n*k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT[j*k+p] = b[p*n+j]
		}
	}
	got := make([]float32, m*n)
	MatMulTransB(got, a, bT, m, k, n)
	for i := range want {
		if !almostEq(float64(got[i]), float64(want[i]), 1e-4) {
			t.Fatalf("MatMulTransB[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// TransA: build aT (k×m) then aTᵀ·b should equal a·b.
	aT := make([]float32, k*m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aT[p*m+i] = a[i*k+p]
		}
	}
	clear(got)
	MatMulTransA(got, aT, b, m, k, n)
	for i := range want {
		if !almostEq(float64(got[i]), float64(want[i]), 1e-4) {
			t.Fatalf("MatMulTransA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InH: 8, InW: 8, InC: 3, K: 3, Stride: 1, Pad: 0, OutC: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if good.OutH() != 6 || good.OutW() != 6 {
		t.Fatalf("OutH/OutW = %d/%d, want 6/6", good.OutH(), good.OutW())
	}
	bad := good
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad = good
	bad.InH = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("InH=0 accepted")
	}
	bad = good
	bad.K = 10
	if err := bad.Validate(); err == nil {
		t.Fatal("empty output accepted")
	}
}

// naiveConv is a direct reference convolution for cross-checking im2col.
func naiveConv(in []float32, filt []float32, bias []float32, g ConvGeom) []float32 {
	oh, ow := g.OutH(), g.OutW()
	out := make([]float32, oh*ow*g.OutC)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for oc := 0; oc < g.OutC; oc++ {
				s := float64(bias[oc])
				for ky := 0; ky < g.K; ky++ {
					for kx := 0; kx < g.K; kx++ {
						iy, ix := oy*g.Stride+ky-g.Pad, ox*g.Stride+kx-g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							continue
						}
						for c := 0; c < g.InC; c++ {
							w := filt[((ky*g.K+kx)*g.InC+c)*g.OutC+oc]
							s += float64(in[(iy*g.InW+ix)*g.InC+c]) * float64(w)
						}
					}
				}
				out[(oy*ow+ox)*g.OutC+oc] = float32(s)
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	geoms := []ConvGeom{
		{InH: 6, InW: 6, InC: 1, K: 3, Stride: 1, Pad: 0, OutC: 2},
		{InH: 8, InW: 7, InC: 3, K: 3, Stride: 1, Pad: 1, OutC: 4},
		{InH: 9, InW: 9, InC: 2, K: 5, Stride: 2, Pad: 2, OutC: 3},
	}
	for gi, g := range geoms {
		in := New(g.InH, g.InW, g.InC)
		for i := range in.Data {
			in.Data[i] = rng.Float32()*2 - 1
		}
		filt := New(g.K*g.K*g.InC, g.OutC)
		for i := range filt.Data {
			filt.Data[i] = rng.Float32()*2 - 1
		}
		bias := make([]float32, g.OutC)
		for i := range bias {
			bias[i] = rng.Float32()
		}
		got, err := Conv2D(in, filt, bias, g)
		if err != nil {
			t.Fatalf("geom %d: %v", gi, err)
		}
		want := naiveConv(in.Data, filt.Data, bias, g)
		for i := range want {
			if !almostEq(float64(got.Data[i]), float64(want[i]), 1e-3) {
				t.Fatalf("geom %d: Conv2D[%d] = %v, want %v", gi, i, got.Data[i], want[i])
			}
		}
	}
}

func TestConv2DErrors(t *testing.T) {
	g := ConvGeom{InH: 6, InW: 6, InC: 1, K: 3, Stride: 1, OutC: 2}
	in := New(5, 5, 1) // wrong volume
	filt := New(9, 2)
	bias := make([]float32, 2)
	if _, err := Conv2D(in, filt, bias, g); err == nil {
		t.Fatal("Conv2D accepted wrong input volume")
	}
	in = New(6, 6, 1)
	if _, err := Conv2D(in, New(8, 2), bias, g); err == nil {
		t.Fatal("Conv2D accepted wrong filter volume")
	}
	if _, err := Conv2D(in, filt, make([]float32, 3), g); err == nil {
		t.Fatal("Conv2D accepted wrong bias length")
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint identity,
	// which is exactly what conv backprop relies on.
	rng := rand.New(rand.NewSource(5))
	g := ConvGeom{InH: 7, InW: 6, InC: 2, K: 3, Stride: 1, Pad: 1, OutC: 1}
	nIn := g.InH * g.InW * g.InC
	nCols := g.OutH() * g.OutW() * g.K * g.K * g.InC
	x := make([]float32, nIn)
	y := make([]float32, nCols)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	for i := range y {
		y[i] = rng.Float32() - 0.5
	}
	cx := make([]float32, nCols)
	Im2Col(cx, x, g)
	var lhs float64
	for i := range y {
		lhs += float64(cx[i]) * float64(y[i])
	}
	ay := make([]float32, nIn)
	Col2Im(ay, y, g)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(ay[i])
	}
	if !almostEq(lhs, rhs, 1e-3) {
		t.Fatalf("adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2(t *testing.T) {
	in := MustFromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 8, 1,
		0, 0, 2, 2,
		9, 1, 3, 7,
	}, 4, 4, 1)
	out, arg, err := MaxPool2(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 8, 9, 7}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("MaxPool2[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	// argmax indices must point back at the winning elements.
	for i := range want {
		if in.Data[arg[i]] != want[i] {
			t.Fatalf("arg[%d] -> %v, want %v", i, in.Data[arg[i]], want[i])
		}
	}
}

func TestMaxPool2OddDims(t *testing.T) {
	in := New(5, 5, 2)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out, _, err := MaxPool2(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 2 || out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("odd-dim pool shape = %v, want [2 2 2]", out.Shape)
	}
}

func TestMaxPool2Errors(t *testing.T) {
	if _, _, err := MaxPool2(New(4, 4)); err == nil {
		t.Fatal("rank-2 input accepted")
	}
	if _, _, err := MaxPool2(New(1, 4, 1)); err == nil {
		t.Fatal("too-small input accepted")
	}
}

func TestReLU(t *testing.T) {
	in := MustFromSlice([]float32{-1, 0, 2, -0.5}, 4)
	out := ReLU(in)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("ReLU[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	if in.Data[0] != -1 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	in := MustFromSlice([]float32{1, 2, 3, 4}, 4)
	out := Softmax(in)
	if !almostEq(out.Sum(), 1, 1e-6) {
		t.Fatalf("softmax sum = %v, want 1", out.Sum())
	}
	for i := 1; i < len(out.Data); i++ {
		if out.Data[i] <= out.Data[i-1] {
			t.Fatal("softmax not monotone for monotone logits")
		}
	}
	// Shift invariance.
	shifted := MustFromSlice([]float32{101, 102, 103, 104}, 4)
	out2 := Softmax(shifted)
	for i := range out.Data {
		if !almostEq(float64(out.Data[i]), float64(out2.Data[i]), 1e-6) {
			t.Fatal("softmax not shift invariant")
		}
	}
	// Large logits must not overflow.
	big := MustFromSlice([]float32{1000, 1000, 999}, 3)
	ob := Softmax(big)
	if math.IsNaN(float64(ob.Data[0])) || !almostEq(ob.Sum(), 1, 1e-6) {
		t.Fatalf("softmax unstable for large logits: %v", ob.Data)
	}
}

// Property-based tests via testing/quick.

func TestQuickMatMulDistributesOverAddition(t *testing.T) {
	// a·(b+c) == a·b + a·c for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, k*n)
		for i := range a {
			a[i] = rng.Float32() - 0.5
		}
		for i := range b {
			b[i] = rng.Float32() - 0.5
			c[i] = rng.Float32() - 0.5
		}
		bc := make([]float32, k*n)
		for i := range bc {
			bc[i] = b[i] + c[i]
		}
		lhs := make([]float32, m*n)
		MatMulInto(lhs, a, bc, m, k, n)
		ab := make([]float32, m*n)
		ac := make([]float32, m*n)
		MatMulInto(ab, a, b, m, k, n)
		MatMulInto(ac, a, c, m, k, n)
		for i := range lhs {
			if !almostEq(float64(lhs[i]), float64(ab[i]+ac[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConvLinearity(t *testing.T) {
	// conv(x+y) == conv(x) + conv(y) - bias (conv is affine in its input).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConvGeom{InH: 5, InW: 5, InC: 1 + rng.Intn(2), K: 3, Stride: 1, Pad: 1, OutC: 1 + rng.Intn(3)}
		vol := g.InH * g.InW * g.InC
		x := New(g.InH, g.InW, g.InC)
		y := New(g.InH, g.InW, g.InC)
		for i := 0; i < vol; i++ {
			x.Data[i] = rng.Float32() - 0.5
			y.Data[i] = rng.Float32() - 0.5
		}
		filt := New(g.K*g.K*g.InC, g.OutC)
		for i := range filt.Data {
			filt.Data[i] = rng.Float32() - 0.5
		}
		bias := make([]float32, g.OutC)
		xy := x.Clone()
		xy.AddScaled(y, 1)
		cxy, err := Conv2D(xy, filt, bias, g)
		if err != nil {
			return false
		}
		cx, _ := Conv2D(x, filt, bias, g)
		cy, _ := Conv2D(y, filt, bias, g)
		for i := range cxy.Data {
			if !almostEq(float64(cxy.Data[i]), float64(cx.Data[i]+cy.Data[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxPoolDominance(t *testing.T) {
	// Every pooled output must be >= all four inputs of its window... it IS
	// the max, so verify max property and membership.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w, c := 2+2*rng.Intn(3), 2+2*rng.Intn(3), 1+rng.Intn(3)
		in := New(h, w, c)
		for i := range in.Data {
			in.Data[i] = rng.Float32()*10 - 5
		}
		out, arg, err := MaxPool2(in)
		if err != nil {
			return false
		}
		oh, ow := h/2, w/2
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					o := (oy*ow+ox)*c + ch
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := ((2*oy+dy)*w+(2*ox+dx))*c + ch
							if in.Data[idx] > out.Data[o] {
								return false
							}
						}
					}
					if in.Data[arg[o]] != out.Data[o] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxIsDistribution(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
			// Keep logits in a sane band; softmax of ±1e30 is a delta anyway.
			if raw[i] > 50 {
				raw[i] = 50
			}
			if raw[i] < -50 {
				raw[i] = -50
			}
		}
		in := MustFromSlice(raw, len(raw))
		out := Softmax(in)
		sum := 0.0
		for _, v := range out.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
