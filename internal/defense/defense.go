// Package defense implements the countermeasure direction from the
// paper's conclusion: "designing CNN architectures with indistinguishable
// CPU footprints while classifying different image categories".
//
// Three hardening levels are provided, each wrapping the instrumented
// classifier:
//
//   - DenseExecution: disable the sparsity-skipping optimization so the
//     amount of memory traffic no longer depends on activation sparsity.
//   - ConstantTime: additionally remove every data-dependent branch
//     (branchless ReLU/max), yielding an input-independent instruction and
//     branch stream.
//   - NoiseInjection: keep the leaky kernels but add randomized dummy
//     memory traffic after each classification to mask the signal.
package defense

import (
	"fmt"
	"math/rand"

	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/mem"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Level selects a hardening strategy.
type Level int

// Hardening levels.
const (
	// Baseline is the unprotected sparsity-skipping implementation.
	Baseline Level = iota
	// DenseExecution always executes the full weight walk.
	DenseExecution
	// ConstantTime is DenseExecution plus branchless kernels.
	ConstantTime
	// NoiseInjection keeps leaky kernels but masks them with dummy traffic.
	NoiseInjection
	// PaddedEnvelope is ConstantTime plus envelope padding: every
	// classification is topped up to the footprint envelope of a
	// configurable hypothesis set (Config.Envelope), hiding *which model*
	// is deployed in addition to what it is looking at.
	PaddedEnvelope
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Baseline:
		return "baseline"
	case DenseExecution:
		return "dense-execution"
	case ConstantTime:
		return "constant-time"
	case NoiseInjection:
		return "noise-injection"
	case PaddedEnvelope:
		return "padded-envelope"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Config assembles a hardened classifier.
type Config struct {
	Level Level
	// NoiseLines is the mean number of dummy cache lines touched per
	// classification under NoiseInjection (default 2048).
	NoiseLines int
	// Seed drives the dummy-traffic randomness.
	Seed int64
	// Runtime is passed through to the instrumented classifier.
	Runtime instrument.RuntimeModel
	// Envelope and EnvelopeIndex select the deployment's pad under
	// PaddedEnvelope: the precomputed hypothesis-set envelope and this
	// deployment's member index in it. Required at that level.
	Envelope      *Envelope
	EnvelopeIndex int
}

// KernelOptions returns the instrumented-kernel configuration a hardening
// level implies (without runtime model or seed): which sparsity and
// branchlessness story the deployed kernels execute. PaddedEnvelope runs
// the constant-time kernels — the pad is applied on top by Hardened.
func KernelOptions(level Level) (instrument.Options, error) {
	var opts instrument.Options
	switch level {
	case Baseline, NoiseInjection:
		opts.SparsitySkip = true
	case DenseExecution:
		opts.SparsitySkip = false
	case ConstantTime, PaddedEnvelope:
		opts.ConstantTime = true
	default:
		return instrument.Options{}, fmt.Errorf("defense: unknown level %d", int(level))
	}
	return opts, nil
}

// Hardened wraps an instrumented classifier with a defense level. It
// satisfies core.Target.
type Hardened struct {
	inner  *instrument.Classifier
	level  Level
	rng    *rand.Rand
	lines  int
	region mem.Region
	pad    march.PadSpec
	padded bool
}

// New builds a hardened classifier for net on engine.
func New(net *nn.Network, engine *march.Engine, cfg Config) (*Hardened, error) {
	opts, err := KernelOptions(cfg.Level)
	if err != nil {
		return nil, err
	}
	opts.Runtime = cfg.Runtime
	opts.Seed = cfg.Seed
	inner, err := instrument.New(net, engine, opts)
	if err != nil {
		return nil, err
	}
	h := &Hardened{inner: inner, level: cfg.Level, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Level == PaddedEnvelope {
		if cfg.Envelope == nil {
			return nil, fmt.Errorf("defense: PaddedEnvelope needs a precomputed Envelope (see NewEnvelope)")
		}
		pad, err := cfg.Envelope.Pad(cfg.EnvelopeIndex)
		if err != nil {
			return nil, err
		}
		h.pad, h.padded = pad, true
	}
	if cfg.Level == NoiseInjection {
		h.lines = cfg.NoiseLines
		if h.lines <= 0 {
			h.lines = 2048
		}
		// A scratch buffer the dummy loads sweep over; sized at 4× the LLC
		// so sweeps actually generate misses. It lands at the classifier's
		// activation-scratch base and shares simulated addresses with it —
		// the same aliasing the old per-classification arena reset produced
		// — which is fine: the sweep only needs deterministic addresses
		// that thrash the cache, not exclusive ownership.
		llc := engine.Hierarchy().Last().Config().Size
		region, err := engine.Arena().Alloc("defense.noise", llc*4)
		if err != nil {
			return nil, err
		}
		h.region = region
	}
	return h, nil
}

// Level returns the configured hardening level.
func (h *Hardened) Level() Level { return h.level }

// ScratchTop exposes the inner classifier's activation-scratch ceiling:
// the first simulated address safe for a co-located tenant's
// allocations (see instrument.Classifier.ScratchTop).
func (h *Hardened) ScratchTop() mem.Addr { return h.inner.ScratchTop() }

// Engine exposes the simulated core (core.Target).
func (h *Hardened) Engine() *march.Engine { return h.inner.Engine() }

// Classify runs one classification with the defense applied (core.Target).
func (h *Hardened) Classify(img *tensor.Tensor) (int, error) {
	cls, err := h.inner.Classify(img)
	if err != nil {
		return 0, err
	}
	if h.level == NoiseInjection {
		h.injectNoise()
	}
	if h.padded {
		h.inner.Engine().PadExtended(h.pad)
	}
	return cls, nil
}

// ClassifyBatchInto classifies len(imgs) inputs back-to-back in one
// hardened replay session, writing the predicted class of imgs[i] into
// preds[i]. The whole batch is validated up front (see
// instrument.Classifier.ValidateBatch); per-input defense actions — noise
// injection's RNG-driven loads, the padded envelope's extension — then
// interleave with the inferences exactly as in sequential Classify calls,
// so the access sequence and every defense RNG stream are bit-identical
// to the unbatched path.
//
//detlint:allocpath
func (h *Hardened) ClassifyBatchInto(preds []int, imgs []*tensor.Tensor) error {
	if len(preds) != len(imgs) {
		return fmt.Errorf("defense: %d prediction slots for %d batch inputs", len(preds), len(imgs))
	}
	if err := h.inner.ValidateBatch(imgs); err != nil {
		return err
	}
	for i, img := range imgs {
		cls, err := h.Classify(img)
		if err != nil {
			return fmt.Errorf("defense: batch input %d: %w", i, err)
		}
		preds[i] = cls
	}
	return nil
}

// ClassifyBatch is ClassifyBatchInto allocating the prediction slice.
func (h *Hardened) ClassifyBatch(imgs []*tensor.Tensor) ([]int, error) {
	preds := make([]int, len(imgs))
	if err := h.ClassifyBatchInto(preds, imgs); err != nil {
		return nil, err
	}
	return preds, nil
}

// injectNoise touches a random number of random lines in the scratch
// buffer, decoupling total cache traffic from the input.
func (h *Hardened) injectNoise() {
	eng := h.inner.Engine()
	n := h.lines/2 + h.rng.Intn(h.lines) // uniform in [lines/2, 3·lines/2)
	span := int(h.region.Size / 64)
	for i := 0; i < n; i++ {
		line := h.rng.Intn(span)
		eng.Load(h.region.Base+mem.Addr(line*64), 4)
	}
	eng.Ops(uint64(2 * n))
}
