package defense

// Envelope padding, promoted from internal/archid to a first-class
// hardening level: per-kernel constant time makes each network's footprint
// input-independent, but every architecture still executes its *own* fixed
// instruction and memory stream — which identifies it exactly. The
// PaddedEnvelope level therefore tops every classification up to the
// footprint envelope of a configurable hypothesis set (dummy arithmetic,
// retired no-op branches, LLC filler traffic, external L1/dTLB traffic and
// stall cycles) until the deterministic part of the counters matches the
// envelope for every member. What remains observable is measurement noise
// and runtime jitter — identically distributed across the set.
//
// The envelope is computed once per hypothesis set from the deterministic
// steady-state kernel footprint of each member (no noise, no runtime
// model), decomposed into the engine's independent counter components so
// the per-component maxima are simultaneously reachable by non-negative
// pads. Padded per-run deltas are then exactly equal across the set for
// every directly-counted event — including the per-level L1 and dTLB
// events that the original archid pad left observable as a residual
// channel; bus-cycles and ref-cycles, being ratio-derived from the
// absolute cycle counter, can wobble by ±1 count from truncation at each
// deployment's own absolute offset — five orders of magnitude below the
// measurement noise.

import (
	"fmt"

	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// padWarmup is the number of unmeasured classifications before the
// footprint measurement — matches the evaluator's steady-state warm-up
// discipline (constant-time streams reach their periodic fixed point
// within one run; a margin is kept anyway).
const padWarmup = 4

// components is the independent-counter decomposition of a footprint:
// instructions split into non-branch ops and branches; each cache level's
// references split into hits and misses (references = hits + misses, so
// maximizing references and misses independently could demand a pad with
// more misses than references — hits and misses are the independent
// pair); and the stall-cycle residue of the cycle counter (cycles minus
// the base-CPI contribution of the instructions).
type components struct {
	ops, branches, branchMisses uint64
	llcHits, llcMisses          uint64
	l1Hits, l1Misses            uint64
	tlbHits, tlbMisses          uint64
	extra                       uint64
}

func decompose(delta march.Counts, extra uint64) components {
	instr := delta.Get(march.EvInstructions)
	br := delta.Get(march.EvBranches)
	return components{
		ops:          instr - br,
		branches:     br,
		branchMisses: delta.Get(march.EvBranchMisses),
		llcHits:      delta.Get(march.EvCacheReferences) - delta.Get(march.EvCacheMisses),
		llcMisses:    delta.Get(march.EvCacheMisses),
		l1Hits:       delta.Get(march.EvL1DLoads) - delta.Get(march.EvL1DLoadMisses),
		l1Misses:     delta.Get(march.EvL1DLoadMisses),
		tlbHits:      delta.Get(march.EvDTLBLoads) - delta.Get(march.EvDTLBLoadMisses),
		tlbMisses:    delta.Get(march.EvDTLBLoadMisses),
		extra:        extra,
	}
}

func maxComponents(a, b components) components {
	m := func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	}
	return components{
		ops:          m(a.ops, b.ops),
		branches:     m(a.branches, b.branches),
		branchMisses: m(a.branchMisses, b.branchMisses),
		llcHits:      m(a.llcHits, b.llcHits),
		llcMisses:    m(a.llcMisses, b.llcMisses),
		l1Hits:       m(a.l1Hits, b.l1Hits),
		l1Misses:     m(a.l1Misses, b.l1Misses),
		tlbHits:      m(a.tlbHits, b.tlbHits),
		tlbMisses:    m(a.tlbMisses, b.tlbMisses),
		extra:        m(a.extra, b.extra),
	}
}

// pad converts an envelope/footprint component pair into the PadSpec that
// tops the footprint up to the envelope. Hit/miss pairs recombine into
// reference counts so every pad stays non-negative by construction.
func (env components) pad(c components) march.PadSpec {
	llcPadHits := env.llcHits - c.llcHits
	llcPadMisses := env.llcMisses - c.llcMisses
	l1PadHits := env.l1Hits - c.l1Hits
	l1PadMisses := env.l1Misses - c.l1Misses
	tlbPadHits := env.tlbHits - c.tlbHits
	tlbPadMisses := env.tlbMisses - c.tlbMisses
	return march.PadSpec{
		Ops:          env.ops - c.ops,
		Branches:     env.branches - c.branches,
		BranchMisses: env.branchMisses - c.branchMisses,
		LLCRefs:      llcPadHits + llcPadMisses,
		LLCMisses:    llcPadMisses,
		L1Loads:      l1PadHits + l1PadMisses,
		L1Misses:     l1PadMisses,
		TLBLoads:     tlbPadHits + tlbPadMisses,
		TLBMisses:    tlbPadMisses,
		StallCycles:  env.extra - c.extra,
	}
}

// kernelFootprint measures the deterministic steady-state footprint of one
// constant-time deployment: a noise-free engine, no runtime model,
// warm-up, then one measured classification. Constant-time streams are
// input-independent, so any input yields the same counts. The stall-cycle
// residue is read from the engine directly (Engine.StallCycles), which is
// exact under any timing model — reconstructing it from Counts would
// alias the base-CPI truncation.
func kernelFootprint(net *nn.Network, input *tensor.Tensor) (march.Counts, uint64, error) {
	engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		return march.Counts{}, 0, err
	}
	target, err := New(net, engine, Config{
		Level:   ConstantTime,
		Runtime: instrument.NoRuntime(),
	})
	if err != nil {
		return march.Counts{}, 0, err
	}
	engine.ColdReset()
	for i := 0; i < padWarmup; i++ {
		if _, err := target.Classify(input); err != nil {
			return march.Counts{}, 0, fmt.Errorf("defense: envelope warm-up: %w", err)
		}
	}
	before, stallBefore := engine.Counts(), engine.StallCycles()
	if _, err := target.Classify(input); err != nil {
		return march.Counts{}, 0, fmt.Errorf("defense: envelope measurement: %w", err)
	}
	after, stallAfter := engine.Counts(), engine.StallCycles()
	return after.Sub(before), stallAfter - stallBefore, nil
}

// Envelope is the precomputed footprint envelope of a hypothesis set: the
// component-wise maximum of the members' deterministic constant-time
// footprints, plus each member's pad up to it. Multi-session campaigns
// build one Envelope and share it across every pipeline shard, so the
// member footprints are measured exactly once.
type Envelope struct {
	pads []march.PadSpec
	env  components
}

// NewEnvelope measures every hypothesis member's constant-time footprint
// on the reference input and returns the envelope. Members deployed under
// PaddedEnvelope select their pad by index (Config.EnvelopeIndex); a
// deployment whose network is not a hypothesis member must be included in
// nets so its pad is well-defined and non-negative.
func NewEnvelope(nets []*nn.Network, input *tensor.Tensor) (*Envelope, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("defense: envelope needs at least one hypothesis network")
	}
	if input == nil {
		return nil, fmt.Errorf("defense: envelope needs a reference input")
	}
	comps := make([]components, len(nets))
	var env components
	for i, net := range nets {
		delta, extra, err := kernelFootprint(net, input)
		if err != nil {
			return nil, err
		}
		comps[i] = decompose(delta, extra)
		env = maxComponents(env, comps[i])
	}
	pads := make([]march.PadSpec, len(nets))
	for i, c := range comps {
		pads[i] = env.pad(c)
	}
	return &Envelope{pads: pads, env: env}, nil
}

// Len returns the number of hypothesis members.
func (e *Envelope) Len() int { return len(e.pads) }

// Pad returns member i's per-classification pad.
func (e *Envelope) Pad(i int) (march.PadSpec, error) {
	if i < 0 || i >= len(e.pads) {
		return march.PadSpec{}, fmt.Errorf("defense: envelope has no member %d (len %d)", i, len(e.pads))
	}
	return e.pads[i], nil
}

// Counts returns the envelope's deterministic per-classification totals
// for the directly-counted events — the footprint every padded member
// presents. Cycle-family events (cycles, bus-cycles, ref-cycles) are
// derived from the timing model at measurement time and are left zero.
func (e *Envelope) Counts() march.Counts {
	var c march.Counts
	c[march.EvInstructions] = e.env.ops + e.env.branches
	c[march.EvBranches] = e.env.branches
	c[march.EvBranchMisses] = e.env.branchMisses
	c[march.EvCacheReferences] = e.env.llcHits + e.env.llcMisses
	c[march.EvCacheMisses] = e.env.llcMisses
	c[march.EvL1DLoads] = e.env.l1Hits + e.env.l1Misses
	c[march.EvL1DLoadMisses] = e.env.l1Misses
	c[march.EvLLCLoads] = e.env.llcHits + e.env.llcMisses
	c[march.EvLLCLoadMisses] = e.env.llcMisses
	c[march.EvDTLBLoads] = e.env.tlbHits + e.env.tlbMisses
	c[march.EvDTLBLoadMisses] = e.env.tlbMisses
	return c
}
