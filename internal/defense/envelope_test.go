package defense

import (
	"math/rand"
	"testing"

	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// envelopeZooNets builds a small mixed hypothesis set (MLP and CNN
// variants over a 12×12 input) with deterministic weights.
func envelopeZooNets(t *testing.T) []*nn.Network {
	t.Helper()
	zoo, err := nn.GenerateZoo(nn.ZooGenConfig{InH: 12, InW: 12, InC: 1, Classes: 4, Size: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*nn.Network, zoo.Len())
	for _, s := range zoo.Specs() {
		if nets[s.ID], err = zoo.Build(s.ID, int64(100+s.ID)); err != nil {
			t.Fatal(err)
		}
	}
	return nets
}

// TestEnvelopePadsEqualizeExtendedFootprints is the regression test for
// the residual channel the original archid padding left open: padded
// deterministic footprints of every hypothesis member must be identical
// across the *full* default event set — the eight paper events plus the
// per-level L1/LLC/dTLB events — not just the directly-padded LLC and
// instruction counters. Only the ratio-derived bus/ref-cycles may wobble
// by ±1 count (truncation at each deployment's own absolute offset).
func TestEnvelopePadsEqualizeExtendedFootprints(t *testing.T) {
	nets := envelopeZooNets(t)
	input := tensor.New(12, 12, 1)
	rng := rand.New(rand.NewSource(3))
	for i := range input.Data {
		if rng.Float64() < 0.5 {
			input.Data[i] = rng.Float32()
		}
	}
	env, err := NewEnvelope(nets, input)
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != len(nets) {
		t.Fatalf("envelope has %d members, want %d", env.Len(), len(nets))
	}
	var want march.Counts
	for i, net := range nets {
		engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
		if err != nil {
			t.Fatal(err)
		}
		target, err := New(net, engine, Config{
			Level:         PaddedEnvelope,
			Runtime:       instrument.NoRuntime(),
			Envelope:      env,
			EnvelopeIndex: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		engine.ColdReset()
		for w := 0; w < padWarmup; w++ {
			if _, err := target.Classify(input); err != nil {
				t.Fatal(err)
			}
		}
		before := engine.Counts()
		if _, err := target.Classify(input); err != nil {
			t.Fatal(err)
		}
		got := engine.Counts().Sub(before)
		if i == 0 {
			want = got
			continue
		}
		for _, e := range march.ExtendedEvents() {
			g, w := got.Get(e), want.Get(e)
			if e == march.EvBusCycles || e == march.EvRefCycles {
				// The ratio-derived counters truncate at each member's own
				// absolute cycle offset (warm-up cold runs differ), so their
				// per-run deltas may wobble by one count.
				diff := int64(g) - int64(w)
				if diff < -1 || diff > 1 {
					t.Fatalf("member %d padded %s = %d, member 0 = %d — beyond the ±1 truncation wobble", i, e, g, w)
				}
				continue
			}
			if g != w {
				t.Fatalf("member %d padded %s = %d, member 0 = %d — envelope not equalized", i, e, g, w)
			}
		}
	}
	// The equalized totals must match the envelope's reported counts on
	// every directly-counted (non-cycle-family) event.
	envCounts := env.Counts()
	for _, e := range []march.Event{
		march.EvInstructions, march.EvBranches, march.EvBranchMisses,
		march.EvCacheReferences, march.EvCacheMisses,
		march.EvL1DLoads, march.EvL1DLoadMisses,
		march.EvLLCLoads, march.EvLLCLoadMisses,
		march.EvDTLBLoads, march.EvDTLBLoadMisses,
	} {
		if want.Get(e) != envCounts.Get(e) {
			t.Fatalf("padded %s = %d, envelope reports %d", e, want.Get(e), envCounts.Get(e))
		}
	}
}

// TestPaddedEnvelopeNeedsEnvelope: the level must refuse to deploy
// without a precomputed envelope instead of silently not padding.
func TestPaddedEnvelopeNeedsEnvelope(t *testing.T) {
	nets := envelopeZooNets(t)
	engine, err := march.NewEngine(march.Config{Hierarchy: instrument.SimHierarchy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nets[0], engine, Config{Level: PaddedEnvelope}); err == nil {
		t.Fatal("PaddedEnvelope deployment without an envelope accepted")
	}
	env, err := NewEnvelope(nets[:1], tensor.New(12, 12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nets[0], engine, Config{Level: PaddedEnvelope, Envelope: env, EnvelopeIndex: 5}); err == nil {
		t.Fatal("out-of-range envelope index accepted")
	}
}
