package defense

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hpc"
	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// batchInvarianceEvents is the profile the property test compares; cache
// misses and branches are the paper's base pair.
var batchInvarianceEvents = []march.Event{march.EvCacheMisses, march.EvBranches}

func batchInvarianceImages(n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]*tensor.Tensor, n)
	for k := range imgs {
		img := tensor.New(12, 12, 1)
		for i := range img.Data {
			if rng.Float64() < 0.5 {
				img.Data[i] = rng.Float32()
			}
		}
		imgs[k] = img
	}
	return imgs
}

// TestBatchInvarianceAcrossZooAndLevels is the batched-execution
// byte-invariance property: for every architecture in the default zoo at
// every defense level, measuring N inputs as one batch of N, as N batches
// of 1, or as N sequential MeasureOnceInto intervals must produce
// bit-identical per-input profiles — including the defenses whose
// per-input actions are RNG-driven (noise injection) or applied after
// every inference (padded envelope). A fresh engine/target per variant
// keeps the noise, jitter and defense RNG streams aligned; any
// batch-order divergence in the replay or the measurement would surface
// as a float mismatch here.
func TestBatchInvarianceAcrossZooAndLevels(t *testing.T) {
	zoo, err := nn.DefaultZoo(12, 12, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	specs := zoo.Specs()
	nets := make([]*nn.Network, len(specs))
	for _, s := range specs {
		if nets[s.ID], err = zoo.Build(s.ID, int64(300+s.ID)); err != nil {
			t.Fatal(err)
		}
	}
	imgs := batchInvarianceImages(4, 41)
	env, err := NewEnvelope(nets, imgs[0])
	if err != nil {
		t.Fatal(err)
	}

	newTarget := func(t *testing.T, net *nn.Network, idx int, level Level) *Hardened {
		t.Helper()
		eng, err := march.NewEngine(march.Config{
			Hierarchy: instrument.SimHierarchy(),
			Noise:     march.DefaultNoise(77),
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := New(net, eng, Config{
			Level:         level,
			Seed:          13,
			Runtime:       instrument.DefaultRuntime(),
			Envelope:      env,
			EnvelopeIndex: idx,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	newPMU := func(t *testing.T, h *Hardened) *hpc.PMU {
		t.Helper()
		pmu, err := hpc.NewPMU(h.Engine(), hpc.DefaultCounters)
		if err != nil {
			t.Fatal(err)
		}
		if err := pmu.Program(batchInvarianceEvents...); err != nil {
			t.Fatal(err)
		}
		return pmu
	}

	levels := []Level{Baseline, DenseExecution, ConstantTime, NoiseInjection, PaddedEnvelope}
	for _, s := range specs {
		for _, level := range levels {
			s, level := s, level
			t.Run(s.Name+"/"+level.String(), func(t *testing.T) {
				// Reference: N sequential single-run measure intervals.
				seqT := newTarget(t, nets[s.ID], s.ID, level)
				seqPMU := newPMU(t, seqT)
				seqProfs := make([]hpc.Profile, len(imgs))
				seqPreds := make([]int, len(imgs))
				for i, img := range imgs {
					img := img
					seqProfs[i] = make(hpc.Profile, len(batchInvarianceEvents))
					var classifyErr error
					work := func() { seqPreds[i], classifyErr = seqT.Classify(img) }
					if err := seqPMU.MeasureOnceInto(seqProfs[i], work); err != nil {
						t.Fatal(err)
					}
					if classifyErr != nil {
						t.Fatal(classifyErr)
					}
				}

				// One batch of N.
				batT := newTarget(t, nets[s.ID], s.ID, level)
				batPMU := newPMU(t, batT)
				batProfs := make([]hpc.Profile, len(imgs))
				for i := range batProfs {
					batProfs[i] = make(hpc.Profile, len(batchInvarianceEvents))
				}
				batPreds := make([]int, len(imgs))
				var batErr error
				if err := batPMU.MeasureBatchInto(batProfs, func(i int) {
					if batErr == nil {
						batPreds[i], batErr = batT.Classify(imgs[i])
					}
				}); err != nil {
					t.Fatal(err)
				}
				if batErr != nil {
					t.Fatal(batErr)
				}

				// N batches of 1.
				oneT := newTarget(t, nets[s.ID], s.ID, level)
				onePMU := newPMU(t, oneT)
				oneProfs := make([]hpc.Profile, len(imgs))
				onePreds := make([]int, len(imgs))
				for i := range imgs {
					i := i
					oneProfs[i] = make(hpc.Profile, len(batchInvarianceEvents))
					var oneErr error
					if err := onePMU.MeasureBatchInto(oneProfs[i:i+1], func(int) {
						onePreds[i], oneErr = oneT.Classify(imgs[i])
					}); err != nil {
						t.Fatal(err)
					}
					if oneErr != nil {
						t.Fatal(oneErr)
					}
				}

				if !reflect.DeepEqual(batPreds, seqPreds) || !reflect.DeepEqual(onePreds, seqPreds) {
					t.Fatalf("predictions diverge: sequential %v, batch=4 %v, batch=1 %v", seqPreds, batPreds, onePreds)
				}
				for i := range imgs {
					for _, e := range batchInvarianceEvents {
						if batProfs[i][e] != seqProfs[i][e] {
							t.Errorf("input %d %s: batch=4 %v, sequential %v", i, e, batProfs[i][e], seqProfs[i][e])
						}
						if oneProfs[i][e] != seqProfs[i][e] {
							t.Errorf("input %d %s: batch=1 %v, sequential %v", i, e, oneProfs[i][e], seqProfs[i][e])
						}
					}
				}

				// Hardened.ClassifyBatch itself: same predictions, and the
				// final counter state (pads, noise sweeps and jitter
				// included) matches the sequential target's bit-for-bit.
				apiT := newTarget(t, nets[s.ID], s.ID, level)
				apiPreds, err := apiT.ClassifyBatch(imgs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(apiPreds, seqPreds) {
					t.Fatalf("ClassifyBatch predictions %v, sequential %v", apiPreds, seqPreds)
				}
				if got, want := apiT.Engine().Counts(), seqT.Engine().Counts(); !reflect.DeepEqual(got, want) {
					t.Fatalf("ClassifyBatch final counts diverge from sequential:\nbatch      %+v\nsequential %+v", got, want)
				}
			})
		}
	}
}
