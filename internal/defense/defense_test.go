package defense

import (
	"math/rand"
	"testing"

	"repro/internal/instrument"
	"repro/internal/march"
	"repro/internal/march/cache"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func smallHierarchy(t *testing.T) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(
		cache.Config{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
		cache.Config{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, Policy: cache.TreePLRU},
		cache.Config{Name: "LLC", Size: 2048, LineSize: 64, Assoc: 4, Policy: cache.LRU},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func buildHardened(t *testing.T, level Level) *Hardened {
	t.Helper()
	net, err := nn.Build(nn.Arch{Name: "tiny", InH: 12, InW: 12, InC: 1, Conv1: 4, Conv2: 4, Kernel: 3, Classes: 3}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := march.NewEngine(march.Config{Hierarchy: smallHierarchy(t)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(net, eng, Config{Level: level, Seed: 7, Runtime: instrument.NoRuntime()})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func image(seed int64, density float64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := tensor.New(12, 12, 1)
	for i := range img.Data {
		if rng.Float64() < density {
			img.Data[i] = 0.3 + rng.Float32()*0.7
		}
	}
	return img
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		Baseline: "baseline", DenseExecution: "dense-execution",
		ConstantTime: "constant-time", NoiseInjection: "noise-injection",
		Level(9): "level(9)",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level(%d) = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestNewRejectsUnknownLevel(t *testing.T) {
	net, _ := nn.Build(nn.Arch{Name: "t", InH: 12, InW: 12, InC: 1, Conv1: 2, Conv2: 2, Kernel: 3, Classes: 2}, rand.New(rand.NewSource(1)))
	eng, _ := march.NewEngine(march.Config{})
	if _, err := New(net, eng, Config{Level: Level(42)}); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestAllLevelsPredictIdentically(t *testing.T) {
	img := image(5, 0.5)
	var ref int
	for i, level := range []Level{Baseline, DenseExecution, ConstantTime, NoiseInjection} {
		h := buildHardened(t, level)
		got, err := h.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		if h.Level() != level {
			t.Fatalf("Level() = %v, want %v", h.Level(), level)
		}
		if i == 0 {
			ref = got
		} else if got != ref {
			t.Fatalf("%v predicted %d, baseline predicted %d", level, got, ref)
		}
	}
}

// footprintDelta measures |instructions(sparse) - instructions(dense)| for
// a defense level — the input dependence the defenses should remove.
func footprintDelta(t *testing.T, level Level, ev march.Event) float64 {
	t.Helper()
	h := buildHardened(t, level)
	sparse := image(10, 0.05)
	dense := image(11, 0.95)
	before := h.Engine().Counts()
	if _, err := h.Classify(sparse); err != nil {
		t.Fatal(err)
	}
	mid := h.Engine().Counts()
	if _, err := h.Classify(dense); err != nil {
		t.Fatal(err)
	}
	after := h.Engine().Counts()
	a := float64(mid.Sub(before).Get(ev))
	b := float64(after.Sub(mid).Get(ev))
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

func TestDenseExecutionRemovesWorkDependence(t *testing.T) {
	leaky := footprintDelta(t, Baseline, march.EvInstructions)
	hardened := footprintDelta(t, DenseExecution, march.EvInstructions)
	if hardened*10 > leaky {
		t.Fatalf("dense execution instruction delta %v not ≪ baseline %v", hardened, leaky)
	}
}

func TestConstantTimeRemovesBranchDependence(t *testing.T) {
	if d := footprintDelta(t, ConstantTime, march.EvBranches); d != 0 {
		t.Fatalf("constant-time branch delta = %v, want 0", d)
	}
	if d := footprintDelta(t, ConstantTime, march.EvBranchMisses); d != 0 {
		t.Fatalf("constant-time branch-miss delta = %v, want 0", d)
	}
}

func TestNoiseInjectionAddsTraffic(t *testing.T) {
	base := buildHardened(t, Baseline)
	noisy := buildHardened(t, NoiseInjection)
	img := image(12, 0.5)
	bb := base.Engine().Counts()
	base.Classify(img)
	baseRefs := base.Engine().Counts().Sub(bb).Get(march.EvCacheReferences)
	nb := noisy.Engine().Counts()
	noisy.Classify(img)
	noisyRefs := noisy.Engine().Counts().Sub(nb).Get(march.EvCacheReferences)
	if noisyRefs <= baseRefs {
		t.Fatalf("noise injection refs %d not above baseline %d", noisyRefs, baseRefs)
	}
}

func TestNoiseInjectionVariesAcrossRuns(t *testing.T) {
	h := buildHardened(t, NoiseInjection)
	img := image(13, 0.5)
	var deltas []uint64
	prev := h.Engine().Counts()
	for i := 0; i < 3; i++ {
		if _, err := h.Classify(img); err != nil {
			t.Fatal(err)
		}
		cur := h.Engine().Counts()
		deltas = append(deltas, cur.Sub(prev).Get(march.EvCacheReferences))
		prev = cur
	}
	if deltas[0] == deltas[1] && deltas[1] == deltas[2] {
		t.Fatal("noise injection produced identical traffic across runs")
	}
}
