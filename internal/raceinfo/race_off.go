//go:build !race

// Package raceinfo reports whether the race detector is active, so
// allocation-gate tests can skip under -race (the detector's
// instrumentation allocates).
package raceinfo

// Enabled is true when the binary was built with -race.
const Enabled = false
