package fabric

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestRunStreamDeliversInPlanOrder: payloads arrive at the deliver
// callback strictly in plans-slice order even when completion order is
// reversed, and match Run's assembly exactly.
func TestRunStreamDeliversInPlanOrder(t *testing.T) {
	d := &fakeDispatcher{procs: 4, delay: 2 * time.Millisecond}
	c := &Coordinator{Dispatcher: d}
	plans := makePlans(8)
	var got []int
	err := c.RunStream(context.Background(), plans, func(i int, payload []byte) error {
		got = append(got, i)
		if string(payload) != string(payloadFor(plans[i].Index)) {
			t.Fatalf("delivery %d payload %q, want %q", i, payload, payloadFor(plans[i].Index))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if got[i] != i {
			t.Fatalf("delivery order %v, want plan order", got)
		}
	}
}

// TestRunStreamStopCancelsOutstanding: a deliver error stops the
// campaign, cancels in-flight dispatches, and is returned verbatim.
func TestRunStreamStopCancelsOutstanding(t *testing.T) {
	d := &fakeDispatcher{procs: 2, stallOn: map[int]bool{5: true}}
	c := &Coordinator{Dispatcher: d}
	plans := makePlans(6)
	stop := errors.New("monitor detected leakage")
	deliveries := 0
	err := c.RunStream(context.Background(), plans, func(int, []byte) error {
		deliveries++
		if deliveries == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the deliver error", err)
	}
	if deliveries != 2 {
		t.Fatalf("%d deliveries after stop, want 2", deliveries)
	}
}

// TestRunStreamJournalsCompletions: streamed completions are journaled
// exactly like Run's, so a later batch Run resumes from them without
// re-dispatching.
func TestRunStreamJournalsCompletions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.journal")
	camp := CampaignDigest([]byte("stream-campaign"))
	plans := makePlans(6)

	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	d1 := &fakeDispatcher{procs: 2}
	var streamed [][]byte
	if err := (&Coordinator{Dispatcher: d1, Journal: j}).RunStream(context.Background(), plans, func(_ int, payload []byte) error {
		streamed = append(streamed, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	d2 := &fakeDispatcher{procs: 2}
	batch, err := (&Coordinator{Dispatcher: d2, Journal: j2}).Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d2.dispatched()); n != 0 {
		t.Fatalf("batch rerun re-dispatched %d shards after streaming, want 0", n)
	}
	for i := range plans {
		if string(batch[i]) != string(streamed[i]) {
			t.Fatalf("journaled payload %d differs between streamed and batch delivery", i)
		}
	}
}

// TestRunStreamFailurePropagates: a dispatcher failure surfaces and
// stops delivery.
func TestRunStreamFailurePropagates(t *testing.T) {
	boom := errors.New("worker died")
	d := &fakeDispatcher{procs: 1, failOn: map[int]error{1: boom}}
	c := &Coordinator{Dispatcher: d}
	plans := makePlans(4)
	var delivered []int
	err := c.RunStream(context.Background(), plans, func(i int, _ []byte) error {
		delivered = append(delivered, i)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the dispatch failure", err)
	}
	for _, i := range delivered {
		if i >= 1 {
			t.Fatalf("shard %d delivered after failing shard, deliveries %v", i, delivered)
		}
	}
}
