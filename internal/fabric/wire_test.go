package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeInit, Spec: json.RawMessage(`{"stage":"report"}`)},
		{Type: TypeReady},
		{Type: TypeShard, Plan: &pipeline.Plan{Index: 3, Class: 1, Start: 6, Count: 6, Seed: -42}},
		{Type: TypeResult, Index: 3, Payload: []byte(`[{"x":1}]`), Digest: "abc"},
		{Type: TypeError, Err: "boom"},
		{Type: TypeShutdown},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Err != want.Err || got.Index != want.Index ||
			got.Digest != want.Digest || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame round trip: got %+v want %+v", got, want)
		}
		if want.Plan != nil && (got.Plan == nil || *got.Plan != *want.Plan) {
			t.Fatalf("plan round trip: got %+v want %+v", got.Plan, want.Plan)
		}
		if got.V != ProtocolVersion {
			t.Fatalf("frame version %d, want %d", got.V, ProtocolVersion)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsVersionMismatch(t *testing.T) {
	// Hand-build a frame claiming a future protocol version; WriteFrame
	// cannot produce one, which is the point.
	data, err := json.Marshal(Frame{V: ProtocolVersion + 1, Type: TypeReady})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	buf.Write(hdr[:])
	buf.Write(data)
	_, err = ReadFrame(&buf)
	if err == nil {
		t.Fatal("version-mismatched frame accepted silently")
	}
	if !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("mismatch error does not name the protocol: %v", err)
	}
}

func TestReadFrameRejectsCorruptStream(t *testing.T) {
	// Truncated body.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Absurd length prefix must not trigger a giant allocation.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Valid length, invalid JSON.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("{{{{")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("corrupt JSON frame accepted")
	}
}
