package fabric

// The worker side of the protocol: a shardworker process reads frames
// from its coordinator, builds the campaign runner from the init spec,
// and answers each shard frame with a result frame. Serve is transport-
// agnostic — cmd/shardworker hands it either its stdio pipes or a TCP
// connection.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Runner executes shard plans for one campaign. *pipeline.Executor
// satisfies it; repro's worker glue builds one from a campaign spec.
type Runner interface {
	Execute(ctx context.Context, plan pipeline.Plan) ([]hpc.Profile, error)
}

// obsSettable is the optional runner seam for worker-side telemetry: a
// runner implementing it (e.g. *pipeline.Executor) gets the recorder
// Serve creates when the coordinator's init frame requests telemetry.
type obsSettable interface {
	SetObs(*obs.Recorder)
}

// BuildRunner constructs the campaign runner from the opaque spec in the
// init frame. It runs once per worker process.
type BuildRunner func(ctx context.Context, spec []byte) (Runner, error)

// ServeOptions carries test hooks into the serve loop. Production
// workers pass nil; the fault-injection suite uses the hooks to kill or
// fail a worker at precise protocol points.
type ServeOptions struct {
	// BeforeExecute runs after a shard frame is read, before the plan
	// executes. Returning an error fails the worker as if execution did.
	BeforeExecute func(plan pipeline.Plan) error
	// AfterResult runs after a result frame is written, with the count of
	// results written so far. Returning an error fails the worker.
	AfterResult func(sent int) error
}

// Serve runs the worker protocol until the coordinator sends shutdown or
// the transport closes. Shard execution errors are reported with an
// error frame and also returned, so the process exits non-zero and the
// coordinator sees the failure on both channels.
func Serve(ctx context.Context, r io.Reader, w io.Writer, build BuildRunner, opts *ServeOptions) error {
	if opts == nil {
		opts = &ServeOptions{}
	}
	init, err := ReadFrame(r)
	if err != nil {
		return fmt.Errorf("fabric: reading init frame: %w", err)
	}
	if init.Type != TypeInit {
		return fmt.Errorf("fabric: first frame is %q, want %q", init.Type, TypeInit)
	}
	runner, err := build(ctx, init.Spec)
	if err != nil {
		werr := fmt.Errorf("fabric: building campaign runner: %w", err)
		WriteFrame(w, Frame{Type: TypeError, Err: werr.Error()})
		return werr
	}
	var rec *obs.Recorder
	if init.Obs {
		rec = obs.New(obs.Config{Label: "shardworker"})
		if s, ok := runner.(obsSettable); ok {
			s.SetObs(rec)
		}
	}
	if err := WriteFrame(w, Frame{Type: TypeReady}); err != nil {
		return err
	}
	sent := 0
	for {
		f, err := ReadFrame(r)
		if err == io.EOF {
			return nil // coordinator closed the pipe: clean shutdown
		}
		if err != nil {
			return fmt.Errorf("fabric: reading frame: %w", err)
		}
		switch f.Type {
		case TypeShutdown:
			return nil
		case TypeShard:
			if f.Plan == nil {
				return failShard(w, fmt.Errorf("fabric: shard frame without a plan"))
			}
			if opts.BeforeExecute != nil {
				if err := opts.BeforeExecute(*f.Plan); err != nil {
					return failShard(w, fmt.Errorf("fabric: shard %d: %w", f.Plan.Index, err))
				}
			}
			sp := rec.ShardSpan(0, f.Plan.Index, f.Plan.Class)
			profs, err := runner.Execute(ctx, *f.Plan)
			sp.End()
			if err != nil {
				return failShard(w, fmt.Errorf("fabric: shard %d: %w", f.Plan.Index, err))
			}
			payload, err := pipeline.EncodeProfiles(profs)
			if err != nil {
				return failShard(w, fmt.Errorf("fabric: shard %d: %w", f.Plan.Index, err))
			}
			// Ship the worker's telemetry BEFORE the result, so the
			// coordinator's per-dispatch read loop ingests it and still
			// ends on the result frame it is waiting for.
			if rec != nil {
				if err := writeTelemetry(w, rec, f.Plan.Index); err != nil {
					return err
				}
			}
			res := Frame{
				Type:    TypeResult,
				Index:   f.Plan.Index,
				Payload: payload,
				Digest:  pipeline.PayloadDigest(payload),
			}
			if err := WriteFrame(w, res); err != nil {
				return err
			}
			sent++
			if opts.AfterResult != nil {
				if err := opts.AfterResult(sent); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("fabric: unexpected %q frame", f.Type)
		}
	}
}

// failShard reports a shard failure on the wire and returns it; the
// write error, if any, is secondary to the execution error.
func failShard(w io.Writer, err error) error {
	WriteFrame(w, Frame{Type: TypeError, Err: err.Error()})
	return err
}

// writeTelemetry drains the worker recorder and sends the deltas as a
// telemetry frame for shard index. An empty drain sends nothing.
func writeTelemetry(w io.Writer, rec *obs.Recorder, index int) error {
	t := rec.Drain()
	if len(t.Events) == 0 && len(t.Counters) == 0 {
		return nil
	}
	payload, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("fabric: encoding telemetry: %w", err)
	}
	return WriteFrame(w, Frame{Type: TypeTelemetry, Index: index, Payload: payload})
}
