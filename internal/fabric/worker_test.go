package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/pipeline"
)

// echoRunner returns one synthetic profile per requested run, derived
// from the plan alone — a deterministic stand-in for real measurement.
type echoRunner struct{ spec string }

func (r echoRunner) Execute(_ context.Context, plan pipeline.Plan) ([]hpc.Profile, error) {
	if plan.Class < 0 {
		return nil, fmt.Errorf("bad class %d", plan.Class)
	}
	ev := march.ExtendedEvents()[0]
	profs := make([]hpc.Profile, plan.Count)
	for i := range profs {
		profs[i] = hpc.Profile{ev: float64(plan.Start+i) + float64(plan.Seed%97)}
	}
	return profs, nil
}

// startWorker wires a Serve loop to in-memory pipes and returns the
// coordinator-side endpoints plus the loop's exit channel.
func startWorker(t *testing.T, opts *ServeOptions) (io.Writer, io.Reader, chan error) {
	t.Helper()
	toWorker, coordOut := io.Pipe()
	workerOut, fromWorker := io.Pipe()
	errc := make(chan error, 1)
	build := func(_ context.Context, spec []byte) (Runner, error) {
		var s struct {
			Fail bool `json:"fail"`
		}
		if err := json.Unmarshal(spec, &s); err != nil {
			return nil, err
		}
		if s.Fail {
			return nil, errors.New("spec says fail")
		}
		return echoRunner{spec: string(spec)}, nil
	}
	go func() {
		errc <- Serve(context.Background(), toWorker, fromWorker, build, opts)
		fromWorker.Close()
	}()
	return coordOut, workerOut, errc
}

func TestWorkerServeShardLifecycle(t *testing.T) {
	in, out, errc := startWorker(t, nil)
	if err := WriteFrame(in, Frame{Type: TypeInit, Spec: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(out)
	if err != nil || f.Type != TypeReady {
		t.Fatalf("handshake: %+v, %v", f, err)
	}
	plan := pipeline.Plan{Index: 4, Class: 2, Start: 10, Count: 3, Seed: 123}
	if err := WriteFrame(in, Frame{Type: TypeShard, Plan: &plan}); err != nil {
		t.Fatal(err)
	}
	res, err := ReadFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != TypeResult || res.Index != plan.Index {
		t.Fatalf("result frame: %+v", res)
	}
	if got := pipeline.PayloadDigest(res.Payload); got != res.Digest {
		t.Fatalf("digest mismatch: %s != %s", got, res.Digest)
	}
	profs, err := pipeline.DecodeProfiles(res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != plan.Count {
		t.Fatalf("payload has %d profiles, want %d", len(profs), plan.Count)
	}
	// Duplicate delivery of the same shard must reproduce identical bytes.
	if err := WriteFrame(in, Frame{Type: TypeShard, Plan: &plan}); err != nil {
		t.Fatal(err)
	}
	res2, err := ReadFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2.Payload) != string(res.Payload) {
		t.Fatal("duplicate shard delivery produced different bytes")
	}
	if err := WriteFrame(in, Frame{Type: TypeShutdown}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve exit: %v", err)
	}
}

func TestWorkerServeReportsExecutionError(t *testing.T) {
	in, out, errc := startWorker(t, nil)
	WriteFrame(in, Frame{Type: TypeInit, Spec: json.RawMessage(`{}`)})
	if f, err := ReadFrame(out); err != nil || f.Type != TypeReady {
		t.Fatalf("handshake: %+v, %v", f, err)
	}
	plan := pipeline.Plan{Index: 0, Class: -1, Start: 0, Count: 1, Seed: 1}
	WriteFrame(in, Frame{Type: TypeShard, Plan: &plan})
	f, err := ReadFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeError || !strings.Contains(f.Err, "bad class") {
		t.Fatalf("error frame: %+v", f)
	}
	if err := <-errc; err == nil {
		t.Fatal("serve exited clean after a shard failure")
	}
}

func TestWorkerServeRejectsBadSpec(t *testing.T) {
	in, out, errc := startWorker(t, nil)
	WriteFrame(in, Frame{Type: TypeInit, Spec: json.RawMessage(`{"fail":true}`)})
	f, err := ReadFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeError || !strings.Contains(f.Err, "spec says fail") {
		t.Fatalf("error frame: %+v", f)
	}
	if err := <-errc; err == nil {
		t.Fatal("serve exited clean after a spec failure")
	}
}

func TestWorkerServeRequiresInitFirst(t *testing.T) {
	in, _, errc := startWorker(t, nil)
	plan := pipeline.Plan{Index: 0, Class: 0, Start: 0, Count: 1, Seed: 1}
	WriteFrame(in, Frame{Type: TypeShard, Plan: &plan})
	err := <-errc
	if err == nil || !strings.Contains(err.Error(), "want \"init\"") {
		t.Fatalf("serve accepted a shard before init: %v", err)
	}
}

func TestWorkerServeAfterResultHook(t *testing.T) {
	opts := &ServeOptions{AfterResult: func(sent int) error {
		if sent >= 1 {
			return errors.New("injected post-result failure")
		}
		return nil
	}}
	in, out, errc := startWorker(t, opts)
	WriteFrame(in, Frame{Type: TypeInit, Spec: json.RawMessage(`{}`)})
	if f, err := ReadFrame(out); err != nil || f.Type != TypeReady {
		t.Fatalf("handshake: %+v, %v", f, err)
	}
	plan := pipeline.Plan{Index: 0, Class: 0, Start: 0, Count: 1, Seed: 1}
	WriteFrame(in, Frame{Type: TypeShard, Plan: &plan})
	if f, err := ReadFrame(out); err != nil || f.Type != TypeResult {
		t.Fatalf("first result: %+v, %v", f, err)
	}
	err := <-errc
	if err == nil || !strings.Contains(err.Error(), "injected post-result failure") {
		t.Fatalf("AfterResult error not propagated: %v", err)
	}
}
