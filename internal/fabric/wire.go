// Package fabric is the distributed audit fabric: the coordinator,
// worker protocol and completion journal that distribute a campaign's
// shard plans across worker processes while preserving the repo's
// foundational guarantee — processes=1 ≡ processes=N, byte for byte.
//
// # Architecture
//
//	coordinator ── plans ──► ProcPool ── frames ──► cmd/shardworker × N
//	     ▲                                               │
//	     └──── payloads (merged by shard id) ◄───────────┘
//	     └──── journal (append-only JSONL, resumable)
//
// The unit of distribution is the pipeline's wire Plan: (class, start,
// count, seed). A worker process is initialized once with an opaque
// campaign spec (it rebuilds the victims, pools and evaluator from seeds
// alone), then executes plans on demand, returning each shard's
// canonically-encoded profiles. The coordinator merges results keyed by
// shard id — never arrival order — journals completions so a crashed
// campaign resumes without re-measuring finished shards, and on any
// worker failure cancels the outstanding dispatches and surfaces the
// worker's stderr.
//
// Transport is length-prefixed JSON frames over stdin/stdout pipes (the
// default) or a local TCP connection (the -connect variant), chosen by
// the pool configuration.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pipeline"
)

// ProtocolVersion is the fabric wire-protocol version. Every frame
// carries it; a mismatch anywhere fails the campaign loudly — merging
// bytes produced by a different protocol would silently corrupt results.
const ProtocolVersion = 1

// maxFrame bounds a single frame; a corrupt length prefix must not make
// a reader attempt a multi-gigabyte allocation.
const maxFrame = 64 << 20

// Frame types.
const (
	// TypeInit carries the opaque campaign spec, coordinator → worker,
	// exactly once per worker at startup.
	TypeInit = "init"
	// TypeReady acknowledges a successful init, worker → coordinator.
	TypeReady = "ready"
	// TypeShard carries one wire plan, coordinator → worker.
	TypeShard = "shard"
	// TypeResult carries one shard's encoded profiles, worker → coordinator.
	TypeResult = "result"
	// TypeError reports a fatal worker-side failure, worker → coordinator.
	TypeError = "error"
	// TypeShutdown asks the worker to exit cleanly, coordinator → worker.
	TypeShutdown = "shutdown"
	// TypeTelemetry carries a worker's drained obs.Telemetry (spans and
	// counter deltas), worker → coordinator, immediately before the shard's
	// result frame. Telemetry frames are observational only: they carry no
	// Digest, are excluded from PayloadDigest and the campaign digest by
	// construction (neither covers them), and are only ever sent when the
	// coordinator asked for them in the init frame — so an obs-off campaign
	// sees a byte-identical frame sequence to every earlier protocol
	// version.
	TypeTelemetry = "telemetry"
)

// Frame is the single message envelope of the worker protocol.
type Frame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	// Spec is the opaque campaign spec (init frames).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Plan is the dispatched shard (shard frames).
	Plan *pipeline.Plan `json:"plan,omitempty"`
	// Index, Payload and Digest describe a finished shard (result
	// frames): the plan index, the canonical pipeline.EncodeProfiles
	// payload and its pipeline.PayloadDigest.
	Index   int    `json:"index,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	Digest  string `json:"digest,omitempty"`
	// Err is the failure description (error frames).
	Err string `json:"err,omitempty"`
	// Obs asks the worker to collect and ship telemetry (init frames).
	// It rides the frame envelope, NOT the campaign spec: the spec bytes
	// feed CampaignDigest and the journals, and toggling observability
	// must never change a campaign's identity.
	Obs bool `json:"obs,omitempty"`
}

// WriteFrame serializes one frame as a 4-byte big-endian length prefix
// followed by the frame's JSON encoding.
func WriteFrame(w io.Writer, f Frame) error {
	f.V = ProtocolVersion
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encoding %s frame: %w", f.Type, err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("fabric: %s frame of %d bytes exceeds the %d-byte limit", f.Type, len(data), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fabric: writing %s frame: %w", f.Type, err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("fabric: writing %s frame: %w", f.Type, err)
	}
	return nil
}

// ReadFrame reads and validates one frame. The protocol version is
// checked here, at the lowest layer, so no higher layer can ever act on
// a frame from an incompatible peer.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF propagates untouched: it means "peer gone"
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return Frame{}, fmt.Errorf("fabric: frame length %d outside (0, %d]", n, maxFrame)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Frame{}, fmt.Errorf("fabric: truncated frame: %w", err)
	}
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return Frame{}, fmt.Errorf("fabric: corrupt frame: %w", err)
	}
	if f.V != ProtocolVersion {
		return Frame{}, fmt.Errorf("fabric: protocol version %d, want %d — coordinator and shardworker binaries are out of sync", f.V, ProtocolVersion)
	}
	return f, nil
}
