package fabric

// The coordinator: owns a campaign's shard plans, feeds them to a
// Dispatcher (in-process or a shardworker ProcPool), journals every
// completion, and assembles the results strictly in plan order. All
// ordering and merge decisions live here, keyed by shard id — arrival
// order is deliberately unobservable, which is what makes processes=1
// and processes=N byte-identical.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// CampaignDigest binds a journal to a campaign: the canonical digest of
// the campaign spec bytes.
func CampaignDigest(spec []byte) string {
	return pipeline.PayloadDigest(spec)
}

// Coordinator runs shard plans through a dispatcher with journaled
// resumption.
type Coordinator struct {
	// Dispatcher executes the plans (pipeline.InProcess or *ProcPool).
	Dispatcher pipeline.Dispatcher
	// Journal, when non-nil, is consulted before dispatching (journaled
	// shards are served from it without re-execution) and appended to
	// after every completed shard.
	Journal *Journal
	// Obs receives campaign progress telemetry: journal skips and
	// appends, shards completed. Observational output only — the plan
	// order, dispatch decisions and merged bytes ignore it.
	Obs *obs.Recorder
}

// Run executes every plan and returns the result payloads in plan order:
// payloads[i] belongs to plans[i], regardless of which worker finished
// first. On the first failure it cancels all outstanding dispatches,
// waits for them to drain, and returns that error; shards journaled
// before the failure remain journaled, so a rerun resumes rather than
// restarts.
func (c *Coordinator) Run(ctx context.Context, plans []pipeline.Plan) ([][]byte, error) {
	payloads := make([][]byte, len(plans))
	var pending []int
	for i, pl := range plans {
		if c.Journal != nil {
			if p, ok := c.Journal.Payload(pl.Index); ok {
				payloads[i] = p
				c.Obs.Add(obs.CJournalSkips, 1)
				c.Obs.Add(obs.CShardsDone, 1)
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return payloads, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	procs := c.Dispatcher.Procs()
	if procs < 1 {
		procs = 1
	}
	if procs > len(pending) {
		procs = len(pending)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	jobs := make(chan int)
	for k := 0; k < procs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				payload, err := c.Dispatcher.Dispatch(runCtx, plans[i])
				if err != nil {
					fail(fmt.Errorf("fabric: shard %d: %w", plans[i].Index, err))
					return
				}
				if c.Journal != nil {
					if err := c.Journal.Append(plans[i].Index, payload); err != nil {
						fail(err)
						return
					}
					c.Obs.Add(obs.CJournalAppends, 1)
				}
				payloads[i] = payload
				c.Obs.Add(obs.CShardsDone, 1)
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return payloads, nil
}

// RunStream executes every plan and delivers each result payload —
// strictly in plans-slice order, on the caller's goroutine — the moment
// it and all its predecessors are available, instead of assembling the
// whole campaign first. Journal-served shards are delivered without
// re-execution and completions are journaled exactly as Run journals
// them, so an interrupted streaming campaign resumes identically. A
// non-nil error from deliver cancels the outstanding dispatches, drains
// them, and is returned verbatim — the streaming monitor stops a
// campaign mid-flight by returning its stop sentinel here.
func (c *Coordinator) RunStream(ctx context.Context, plans []pipeline.Plan, deliver func(i int, payload []byte) error) error {
	ready := make([]chan []byte, len(plans))
	for i := range ready {
		ready[i] = make(chan []byte, 1)
	}
	var pending []int
	for i, pl := range plans {
		if c.Journal != nil {
			if p, ok := c.Journal.Payload(pl.Index); ok {
				ready[i] <- p
				c.Obs.Add(obs.CJournalSkips, 1)
				c.Obs.Add(obs.CShardsDone, 1)
				continue
			}
		}
		pending = append(pending, i)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	if len(pending) > 0 {
		procs := c.Dispatcher.Procs()
		if procs < 1 {
			procs = 1
		}
		if procs > len(pending) {
			procs = len(pending)
		}
		jobs := make(chan int)
		for k := 0; k < procs; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					payload, err := c.Dispatcher.Dispatch(runCtx, plans[i])
					if err != nil {
						fail(fmt.Errorf("fabric: shard %d: %w", plans[i].Index, err))
						return
					}
					if c.Journal != nil {
						if err := c.Journal.Append(plans[i].Index, payload); err != nil {
							fail(err)
							return
						}
						c.Obs.Add(obs.CJournalAppends, 1)
					}
					c.Obs.Add(obs.CShardsDone, 1)
					ready[i] <- payload // cap 1: never blocks
				}
			}()
		}
		// Plans are fed in slice order, so the shards the deliverer is
		// waiting on are always the ones being executed.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			for _, i := range pending {
				select {
				case jobs <- i:
				case <-runCtx.Done():
					return
				}
			}
		}()
	}

	var deliverErr error
stream:
	for i := range plans {
		var payload []byte
		select {
		case payload = <-ready[i]:
		case <-runCtx.Done():
			// A completed shard may have raced the cancellation: take it
			// if it is already buffered, otherwise stop delivering.
			select {
			case payload = <-ready[i]:
			default:
				break stream
			}
		}
		if err := deliver(i, payload); err != nil {
			deliverErr = err
			cancel()
			break
		}
	}
	wg.Wait()
	switch {
	case deliverErr != nil:
		return deliverErr
	case firstErr != nil:
		return firstErr
	default:
		return ctx.Err()
	}
}
