package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCampaign matches the campaign digest baked into the testdata
// fixtures: CampaignDigest([]byte("spec-bytes")).
const fixtureCampaign = "a4679a4ff0ee30b04d6e0e8f1ef926c65052d2faac3c609656e10fbea45852ed"

// copyFixture copies a testdata journal into a temp dir — OpenJournal
// truncates and appends, and fixtures must stay pristine.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalFixtureDigest(t *testing.T) {
	if got := CampaignDigest([]byte("spec-bytes")); got != fixtureCampaign {
		t.Fatalf("fixture campaign digest drifted: %s", got)
	}
}

func TestJournalLoadsValidFixture(t *testing.T) {
	j, err := OpenJournal(copyFixture(t, "valid.journal"), fixtureCampaign)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Done() != 2 {
		t.Fatalf("loaded %d completions, want 2", j.Done())
	}
	for i, want := range []string{"hello", "world"} {
		p, ok := j.Payload(i)
		if !ok || string(p) != want {
			t.Fatalf("shard %d payload = %q, %v; want %q", i, p, ok, want)
		}
	}
}

func TestJournalTruncatesCorruptTail(t *testing.T) {
	path := copyFixture(t, "corrupt-tail.journal")
	j, err := OpenJournal(path, fixtureCampaign)
	if err != nil {
		t.Fatal(err)
	}
	// Only the torn final record is lost; the clean prefix survives.
	if j.Done() != 1 {
		t.Fatalf("loaded %d completions, want 1", j.Done())
	}
	if _, ok := j.Payload(1); ok {
		t.Fatal("corrupt shard 1 record survived the load")
	}
	// The missing shard can be re-recorded, and a reopen then sees both.
	if err := j.Append(1, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, fixtureCampaign)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 2 {
		t.Fatalf("after repair reopen loaded %d completions, want 2", j2.Done())
	}
}

func TestJournalRejectsForeignCampaign(t *testing.T) {
	path := copyFixture(t, "valid.journal")
	other := CampaignDigest([]byte("a different campaign"))
	j, err := OpenJournal(path, other)
	if err != nil {
		t.Fatal(err)
	}
	if j.Done() != 0 {
		t.Fatalf("foreign journal yielded %d completions, want 0", j.Done())
	}
	if err := j.Append(0, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The file was reset to the new campaign; the old entries are gone.
	j2, err := OpenJournal(path, other)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 1 {
		t.Fatalf("reset journal reopened with %d completions, want 1", j2.Done())
	}
	if p, ok := j2.Payload(0); !ok || string(p) != "fresh" {
		t.Fatalf("shard 0 payload = %q, %v; want %q", p, ok, "fresh")
	}
}

func TestJournalDigestMismatchInvalidatesSuffix(t *testing.T) {
	path := copyFixture(t, "valid.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the shard-1 record: its digest no longer
	// matches, so the record (and everything after) must be dropped.
	tampered := strings.Replace(string(data), `"payload":"d29ybGQ="`, `"payload":"d29yBGQ="`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in fixture")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path, fixtureCampaign)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Done() != 1 {
		t.Fatalf("tampered journal yielded %d completions, want 1", j.Done())
	}
	if _, ok := j.Payload(1); ok {
		t.Fatal("digest-mismatched record survived")
	}
}

func TestJournalAppendDuplicateKeepsFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.journal")
	camp := CampaignDigest([]byte("dup"))
	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(7, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(7, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if p, _ := j.Payload(7); string(p) != "first" {
		t.Fatalf("duplicate append overwrote payload: %q", p)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Done() != 1 {
		t.Fatalf("duplicate append left %d records, want 1", j2.Done())
	}
}

func TestJournalFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.journal")
	camp := CampaignDigest([]byte("fresh"))
	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	if j.Done() != 0 {
		t.Fatalf("fresh journal has %d completions", j.Done())
	}
	if err := j.Append(0, []byte("zero")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if p, ok := j2.Payload(0); !ok || string(p) != "zero" {
		t.Fatalf("reopen lost shard 0: %q, %v", p, ok)
	}
}
