package fabric

// ProcPool process-level tests. The test binary doubles as the worker
// process: TestMain re-executes itself as a protocol-speaking fake
// shardworker when FABRIC_TEST_WORKER is set, so the pool is exercised
// against a real subprocess without building cmd/shardworker.

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

func TestMain(m *testing.M) {
	if os.Getenv("FABRIC_TEST_WORKER") != "" {
		runChattyWorker()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runChattyWorker speaks the worker protocol on stdio after spewing far
// more stderr than the pool's retained tail.
func runChattyWorker() {
	chunk := bytes.Repeat([]byte("chatter "), 512) // 4 KiB per write
	for i := 0; i < 8; i++ {                       // 32 KiB total, 4x the tail limit
		os.Stderr.Write(chunk)
	}
	br := bufio.NewReader(os.Stdin)
	f, err := ReadFrame(br)
	if err != nil || f.Type != TypeInit {
		os.Exit(2)
	}
	if err := WriteFrame(os.Stdout, Frame{Type: TypeReady}); err != nil {
		os.Exit(2)
	}
	for {
		f, err := ReadFrame(br)
		if err != nil || f.Type == TypeShutdown {
			return
		}
		if f.Type == TypeShard {
			WriteFrame(os.Stdout, Frame{Type: TypeError, Index: f.Plan.Index, Err: "chatty worker declines every shard"})
		}
	}
}

// TestTailBufferRecordsTruncation: an over-limit stderr stream keeps the
// newest bytes, counts the dropped ones, and says so in error text.
func TestTailBufferRecordsTruncation(t *testing.T) {
	tb := &tailBuffer{}
	tb.Write(bytes.Repeat([]byte("a"), stderrTailLimit))
	if tb.Dropped() != 0 {
		t.Fatalf("Dropped() = %d before overflow, want 0", tb.Dropped())
	}
	if strings.Contains(tb.String(), "truncated") {
		t.Fatalf("untruncated tail claims truncation: %q", tb.String()[:60])
	}
	tb.Write([]byte("bbbb"))
	if tb.Dropped() != 4 {
		t.Fatalf("Dropped() = %d after 4-byte overflow, want 4", tb.Dropped())
	}
	s := tb.String()
	if !strings.HasPrefix(s, "[tail truncated, 4 bytes dropped] ") {
		t.Fatalf("truncated tail does not say so: %q", s[:60])
	}
	if !strings.HasSuffix(s, "bbbb") {
		t.Fatalf("tail lost the newest bytes: %q", s[len(s)-20:])
	}
}

// TestProcPoolChattyWorkerExitTelemetry: a worker that floods stderr
// past the retained tail gets its truncation recorded — in the dispatch
// error text and in the worker-exit obs event — instead of its earliest
// output vanishing silently.
func TestProcPoolChattyWorkerExitTelemetry(t *testing.T) {
	ctx := context.Background()
	rec := obs.New(obs.Config{Label: "pool-test"})
	pool, err := StartPool(ctx, PoolConfig{
		Bin:   os.Args[0],
		Env:   []string{"FABRIC_TEST_WORKER=1"},
		Spec:  []byte(`{"fixture":true}`),
		Procs: 1,
		Obs:   rec,
	})
	if err != nil {
		t.Fatalf("StartPool: %v", err)
	}
	defer pool.Close()

	if _, err := pool.Dispatch(ctx, pipeline.Plan{Index: 0, Class: 0, Start: 0, Count: 1, Seed: 1}); err == nil {
		t.Fatal("Dispatch succeeded against the declining worker")
	}
	pool.Close()

	tel := rec.Drain()
	var exit *obs.Event
	for i, e := range tel.Events {
		if e.Cat == "fabric" && e.Name == "worker-exit" {
			exit = &tel.Events[i]
		}
	}
	if exit == nil {
		t.Fatalf("no worker-exit event in telemetry (%d events)", len(tel.Events))
	}
	if !strings.Contains(exit.Extra, "stderr tail truncated") || !strings.Contains(exit.Extra, "bytes dropped") {
		t.Fatalf("worker-exit event does not record the truncation: %q", exit.Extra)
	}
	exits := int64(0)
	for _, cv := range tel.Counters {
		if cv.C == obs.CWorkerExits {
			exits = cv.N
		}
	}
	if exits != 1 {
		t.Fatalf("worker_exits counter = %d, want 1 (exit telemetry must be once per worker)", exits)
	}
}
