package fabric

// ProcPool is the subprocess Dispatcher: it launches N shardworker
// processes, initializes each with the campaign spec, and dispatches
// shard plans over length-prefixed frames — stdin/stdout pipes by
// default, a local TCP connection per worker behind the TCP flag. A
// worker's death mid-shard fails the dispatch with the process's exit
// status and captured stderr, which the coordinator turns into prompt
// cancellation of everything outstanding.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// stderrTailLimit bounds how much worker stderr is retained for error
// reports — enough to show a panic or a failure message, never unbounded.
const stderrTailLimit = 8 << 10

// tailBuffer keeps the last stderrTailLimit bytes written to it and
// records how much it had to drop — a truncated tail must say so, or an
// over-chatty worker's first (usually most informative) output vanishes
// silently from every error report.
type tailBuffer struct {
	mu      sync.Mutex
	buf     []byte
	dropped int64
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if over := len(t.buf) - stderrTailLimit; over > 0 {
		t.buf = t.buf[over:]
		t.dropped += int64(over)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	tail := strings.TrimSpace(string(t.buf))
	if t.dropped > 0 {
		return fmt.Sprintf("[tail truncated, %d bytes dropped] %s", t.dropped, tail)
	}
	return tail
}

// Dropped reports how many stderr bytes fell off the retained tail.
func (t *tailBuffer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// PoolConfig configures a shardworker pool.
type PoolConfig struct {
	// Bin is the shardworker binary to launch.
	Bin string
	// Args are extra arguments passed to every worker.
	Args []string
	// Env are extra environment variables (the fault-injection hooks in
	// tests); workers inherit the parent environment plus these.
	Env []string
	// Spec is the opaque campaign spec sent in each worker's init frame.
	Spec []byte
	// Procs is the number of worker processes (0 → 1).
	Procs int
	// TCP switches the transport from stdio pipes to a loopback TCP
	// connection per worker (workers are launched with -connect addr).
	TCP bool
	// Obs, when non-nil, arms the fabric's telemetry: workers are asked
	// (via the init frame envelope, never the spec) to ship their spans
	// and counters back over telemetry frames, transports count frames
	// and bytes, and worker exits are recorded as events. The campaign's
	// bytes are identical with or without it.
	Obs *obs.Recorder
}

// worker is one shardworker process and its protocol channel.
type worker struct {
	id       int
	cmd      *exec.Cmd
	in       io.WriteCloser
	out      *bufio.Reader
	conn     net.Conn // TCP transport; nil in stdio mode
	stderr   *tailBuffer
	waitOnce sync.Once
	waitErr  error
	exitOnce sync.Once // exit telemetry is recorded exactly once
}

// countingWriter tallies bytes written to a worker into the pool
// recorder; Close passes through so stdio-mode shutdown still works.
type countingWriter struct {
	w   io.WriteCloser
	rec *obs.Recorder
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.rec.Add(obs.CBytesSent, int64(n))
	}
	return n, err
}

func (c *countingWriter) Close() error { return c.w.Close() }

// countingReader tallies bytes read from a worker into the pool recorder.
type countingReader struct {
	r   io.Reader
	rec *obs.Recorder
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.rec.Add(obs.CBytesReceived, int64(n))
	}
	return n, err
}

// kill tears the worker down hard: closing the TCP conn (if any) and
// killing the process unblocks any read the dispatcher is parked on.
func (w *worker) kill() {
	if w.conn != nil {
		w.conn.Close()
	}
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
}

func (w *worker) wait() error {
	w.waitOnce.Do(func() { w.waitErr = w.cmd.Wait() })
	return w.waitErr
}

// describe renders the worker's fate for an error message: exit status
// plus the retained stderr tail.
func (w *worker) describe() string {
	status := "exited cleanly"
	if err := w.wait(); err != nil {
		status = err.Error()
	}
	if tail := w.stderr.String(); tail != "" {
		return fmt.Sprintf("worker %d %s; stderr: %s", w.id, status, tail)
	}
	return fmt.Sprintf("worker %d %s", w.id, status)
}

// ProcPool implements pipeline.Dispatcher over a pool of shardworker
// processes.
type ProcPool struct {
	cfg     PoolConfig
	workers []*worker
	free    chan *worker
	closed  chan struct{}
	once    sync.Once
}

var _ pipeline.Dispatcher = (*ProcPool)(nil)

// StartPool launches and initializes the worker processes. It returns
// only once every worker has acknowledged the campaign spec with a ready
// frame, so dispatch latency never includes campaign construction.
func StartPool(ctx context.Context, cfg PoolConfig) (*ProcPool, error) {
	if cfg.Bin == "" {
		return nil, fmt.Errorf("fabric: no shardworker binary configured")
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	p := &ProcPool{
		cfg:    cfg,
		free:   make(chan *worker, cfg.Procs),
		closed: make(chan struct{}),
	}
	var ln net.Listener
	if cfg.TCP {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("fabric: tcp listener: %w", err)
		}
		defer ln.Close()
	}
	for i := 0; i < cfg.Procs; i++ {
		w, err := p.spawn(ctx, i, ln)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.workers = append(p.workers, w)
		p.free <- w
	}
	return p, nil
}

// spawn launches worker id and completes its init handshake.
func (p *ProcPool) spawn(ctx context.Context, id int, ln net.Listener) (*worker, error) {
	args := append([]string(nil), p.cfg.Args...)
	if ln != nil {
		args = append(args, "-connect", ln.Addr().String())
	}
	cmd := exec.Command(p.cfg.Bin, args...)
	cmd.Env = append(os.Environ(), p.cfg.Env...)
	w := &worker{id: id, cmd: cmd, stderr: &tailBuffer{}}
	cmd.Stderr = w.stderr

	if ln == nil {
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		w.in, w.out = in, bufio.NewReader(p.countReads(out))
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("fabric: starting worker %d (%s): %w", id, p.cfg.Bin, err)
		}
	} else {
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("fabric: starting worker %d (%s): %w", id, p.cfg.Bin, err)
		}
		// Workers are spawned and accepted one at a time, so this
		// connection belongs to this process.
		if tl, ok := ln.(*net.TCPListener); ok {
			//detlint:allow seedpurity — IO watchdog: the accept deadline bounds a hung worker handshake and never reaches campaign bytes
			tl.SetDeadline(time.Now().Add(30 * time.Second))
		}
		conn, err := ln.Accept()
		if err != nil {
			w.kill()
			w.wait()
			return nil, fmt.Errorf("fabric: worker %d never connected: %v (%s)", id, err, w.describe())
		}
		w.conn = conn
		w.in = conn
		w.out = bufio.NewReader(p.countReads(conn))
	}
	if p.cfg.Obs != nil {
		w.in = &countingWriter{w: w.in, rec: p.cfg.Obs}
	}

	if err := p.writeTo(w, Frame{Type: TypeInit, Spec: p.cfg.Spec, Obs: p.cfg.Obs != nil}); err != nil {
		w.kill()
		return nil, fmt.Errorf("fabric: initializing worker %d: %v (%s)", id, err, w.describe())
	}
	f, err := p.readFrom(ctx, w)
	if err != nil {
		return nil, fmt.Errorf("fabric: worker %d handshake: %w", id, err)
	}
	if f.Type == TypeError {
		w.kill()
		w.wait()
		return nil, fmt.Errorf("fabric: worker %d rejected campaign spec: %s", id, f.Err)
	}
	if f.Type != TypeReady {
		w.kill()
		w.wait()
		return nil, fmt.Errorf("fabric: worker %d sent %q during handshake, want %q", id, f.Type, TypeReady)
	}
	return w, nil
}

// countReads wraps a worker transport's read side with byte telemetry
// when the pool recorder is armed; obs-off pools read the raw transport.
func (p *ProcPool) countReads(r io.Reader) io.Reader {
	if p.cfg.Obs == nil {
		return r
	}
	return &countingReader{r: r, rec: p.cfg.Obs}
}

// writeTo sends one frame to a worker, tallying the frame counter.
func (p *ProcPool) writeTo(w *worker, f Frame) error {
	err := WriteFrame(w.in, f)
	if err == nil {
		p.cfg.Obs.Add(obs.CFramesSent, 1)
	}
	return err
}

// noteExit records a worker's fate — exit status and whether its stderr
// tail lost bytes — as telemetry, exactly once per worker.
func (p *ProcPool) noteExit(w *worker) {
	rec := p.cfg.Obs
	if rec == nil {
		return
	}
	w.exitOnce.Do(func() {
		status := "exited cleanly"
		if err := w.wait(); err != nil {
			status = err.Error()
		}
		if dropped := w.stderr.Dropped(); dropped > 0 {
			status = fmt.Sprintf("%s; stderr tail truncated (%d bytes dropped)", status, dropped)
		}
		rec.MarkExtra(w.id, "fabric", "worker-exit", status)
		rec.Add(obs.CWorkerExits, 1)
	})
}

// readFrom reads one frame from a worker under a context watchdog: if
// ctx is cancelled while the read blocks, the worker is killed (and its
// conn closed), which unblocks the read immediately.
func (p *ProcPool) readFrom(ctx context.Context, w *worker) (Frame, error) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			w.kill()
		case <-p.closed:
			w.kill()
		case <-done:
		}
	}()
	f, err := ReadFrame(w.out)
	close(done)
	if err != nil {
		w.kill()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Frame{}, ctxErr
		}
		return Frame{}, fmt.Errorf("%s: %v", w.describe(), err)
	}
	p.cfg.Obs.Add(obs.CFramesReceived, 1)
	return f, nil
}

// Dispatch sends one plan to an idle worker and returns its canonical
// result payload. A worker that dies or misbehaves mid-shard is removed
// from the pool and the dispatch fails with its exit status and stderr.
func (p *ProcPool) Dispatch(ctx context.Context, plan pipeline.Plan) ([]byte, error) {
	var w *worker
	select {
	case w = <-p.free:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closed:
		return nil, fmt.Errorf("fabric: pool closed")
	}
	payload, err := p.dispatchTo(ctx, w, plan)
	if err != nil {
		// The worker is in an unknown protocol state (or dead): never
		// return it to the pool.
		w.kill()
		w.wait()
		p.noteExit(w)
		return nil, err
	}
	select {
	case p.free <- w:
	case <-p.closed:
		w.kill()
	}
	return payload, nil
}

func (p *ProcPool) dispatchTo(ctx context.Context, w *worker, plan pipeline.Plan) ([]byte, error) {
	sp := p.cfg.Obs.SpanT(w.id, "fabric", "dispatch")
	defer sp.End()
	p.cfg.Obs.Add(obs.CShardsDispatched, 1)
	if err := p.writeTo(w, Frame{Type: TypeShard, Plan: &plan}); err != nil {
		w.kill()
		return nil, fmt.Errorf("fabric: sending shard %d: %v (%s)", plan.Index, err, w.describe())
	}
	f, err := p.readFrom(ctx, w)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d: %w", plan.Index, err)
	}
	// A worker ships telemetry frames ahead of its result; ingest them
	// and keep reading — the dispatch still ends on result or error.
	for f.Type == TypeTelemetry {
		p.ingestTelemetry(f)
		f, err = p.readFrom(ctx, w)
		if err != nil {
			return nil, fmt.Errorf("fabric: shard %d: %w", plan.Index, err)
		}
	}
	switch f.Type {
	case TypeResult:
		if f.Index != plan.Index {
			return nil, fmt.Errorf("fabric: worker %d answered shard %d with result for shard %d", w.id, plan.Index, f.Index)
		}
		if got := pipeline.PayloadDigest(f.Payload); got != f.Digest {
			return nil, fmt.Errorf("fabric: shard %d payload digest mismatch: %s != %s", plan.Index, got, f.Digest)
		}
		return f.Payload, nil
	case TypeError:
		return nil, fmt.Errorf("fabric: shard %d failed on worker %d: %s", plan.Index, w.id, f.Err)
	default:
		return nil, fmt.Errorf("fabric: worker %d sent unexpected %q frame for shard %d", w.id, f.Type, plan.Index)
	}
}

// ingestTelemetry merges one telemetry frame into the pool recorder. A
// malformed payload is dropped — telemetry must never fail a campaign.
func (p *ProcPool) ingestTelemetry(f Frame) {
	if p.cfg.Obs == nil {
		return
	}
	var t obs.Telemetry
	if err := json.Unmarshal(f.Payload, &t); err != nil {
		return
	}
	p.cfg.Obs.Merge(t)
}

// Procs reports the pool's process count.
func (p *ProcPool) Procs() int { return p.cfg.Procs }

// Close shuts the pool down: every worker gets a shutdown frame and a
// grace period, then anything still alive is killed.
func (p *ProcPool) Close() error {
	p.once.Do(func() { close(p.closed) })
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.writeTo(w, Frame{Type: TypeShutdown})
			if w.conn == nil {
				w.in.Close()
			}
			done := make(chan struct{})
			go func() {
				w.wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				w.kill()
				<-done
			}
			if w.conn != nil {
				w.conn.Close()
			}
			p.noteExit(w)
		}(w)
	}
	wg.Wait()
	return nil
}
