package fabric

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// fakeDispatcher answers plans with deterministic synthetic payloads,
// records every dispatch, and can be told to fail or stall specific
// shards.
type fakeDispatcher struct {
	mu       sync.Mutex
	procs    int
	calls    []int
	failOn   map[int]error
	stallOn  map[int]bool // block until ctx cancellation
	delay    time.Duration
	canceled int // stalled dispatches that observed cancellation
}

func payloadFor(index int) []byte { return []byte(fmt.Sprintf("payload-%d", index)) }

func (d *fakeDispatcher) Dispatch(ctx context.Context, plan pipeline.Plan) ([]byte, error) {
	d.mu.Lock()
	d.calls = append(d.calls, plan.Index)
	fail := d.failOn[plan.Index]
	stall := d.stallOn[plan.Index]
	d.mu.Unlock()
	if stall {
		<-ctx.Done()
		d.mu.Lock()
		d.canceled++
		d.mu.Unlock()
		return nil, ctx.Err()
	}
	if fail != nil {
		return nil, fail
	}
	if d.delay > 0 {
		// Later shards finish sooner: completion order is the reverse of
		// plan order, which the merge must not care about.
		time.Sleep(d.delay * time.Duration(1+len(d.stallOn)) / time.Duration(1+plan.Index))
	}
	return payloadFor(plan.Index), nil
}

func (d *fakeDispatcher) Procs() int {
	if d.procs <= 0 {
		return 1
	}
	return d.procs
}

func (d *fakeDispatcher) Close() error { return nil }

func (d *fakeDispatcher) dispatched() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.calls...)
}

func makePlans(n int) []pipeline.Plan {
	plans := make([]pipeline.Plan, n)
	for i := range plans {
		plans[i] = pipeline.Plan{Index: i, Class: i % 2, Start: (i / 2) * 5, Count: 5, Seed: int64(100 + i)}
	}
	return plans
}

func TestCoordinatorMergesByPlanOrderNotArrival(t *testing.T) {
	d := &fakeDispatcher{procs: 4, delay: 2 * time.Millisecond}
	c := &Coordinator{Dispatcher: d}
	plans := makePlans(8)
	payloads, err := c.Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if string(payloads[i]) != string(payloadFor(plans[i].Index)) {
			t.Fatalf("payloads[%d] = %q, want %q", i, payloads[i], payloadFor(plans[i].Index))
		}
	}
	if len(d.dispatched()) != len(plans) {
		t.Fatalf("dispatched %d shards, want %d", len(d.dispatched()), len(plans))
	}
}

func TestCoordinatorResumesFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.journal")
	camp := CampaignDigest([]byte("resume-campaign"))
	plans := makePlans(6)

	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	d1 := &fakeDispatcher{procs: 2}
	first, err := (&Coordinator{Dispatcher: d1, Journal: j}).Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A rerun against the same journal dispatches nothing and returns the
	// exact same bytes.
	j2, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	d2 := &fakeDispatcher{procs: 2}
	second, err := (&Coordinator{Dispatcher: d2, Journal: j2}).Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d2.dispatched()); n != 0 {
		t.Fatalf("resumed run re-dispatched %d shards, want 0", n)
	}
	for i := range plans {
		if string(first[i]) != string(second[i]) {
			t.Fatalf("resumed payload %d differs", i)
		}
	}
}

func TestCoordinatorPartialJournalRunsOnlyMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.journal")
	camp := CampaignDigest([]byte("partial-campaign"))
	plans := makePlans(5)

	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-journal shards 0, 2 and 4: only 1 and 3 should dispatch.
	for _, idx := range []int{0, 2, 4} {
		if err := j.Append(idx, payloadFor(idx)); err != nil {
			t.Fatal(err)
		}
	}
	d := &fakeDispatcher{procs: 3}
	payloads, err := (&Coordinator{Dispatcher: d, Journal: j}).Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	got := d.dispatched()
	if len(got) != 2 {
		t.Fatalf("dispatched %v, want exactly shards 1 and 3", got)
	}
	for _, idx := range got {
		if idx != 1 && idx != 3 {
			t.Fatalf("dispatched journaled shard %d", idx)
		}
	}
	for i := range plans {
		if string(payloads[i]) != string(payloadFor(i)) {
			t.Fatalf("payloads[%d] = %q", i, payloads[i])
		}
	}
}

func TestCoordinatorFailureCancelsOutstanding(t *testing.T) {
	d := &fakeDispatcher{
		procs:   3,
		failOn:  map[int]error{1: errors.New("worker 1 exit status 1; stderr: synthetic crash")},
		stallOn: map[int]bool{0: true, 2: true},
	}
	c := &Coordinator{Dispatcher: d}
	done := make(chan struct{})
	var payloads [][]byte
	var err error
	go func() {
		payloads, err = c.Run(context.Background(), makePlans(6))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not cancel outstanding dispatches after a failure")
	}
	if err == nil || payloads != nil {
		t.Fatalf("failed run returned %v, %v", payloads, err)
	}
	if !strings.Contains(err.Error(), "synthetic crash") {
		t.Fatalf("worker stderr not surfaced in coordinator error: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("failing shard not named: %v", err)
	}
	d.mu.Lock()
	canceled := d.canceled
	d.mu.Unlock()
	if canceled == 0 {
		t.Fatal("no stalled dispatch observed cancellation")
	}
}

func TestCoordinatorJournalsBeforeFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.journal")
	camp := CampaignDigest([]byte("crash-campaign"))
	plans := makePlans(4)

	j, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential dispatcher failing on shard 2: shards 0 and 1 must be
	// journaled even though the run as a whole fails.
	d := &fakeDispatcher{procs: 1, failOn: map[int]error{2: errors.New("boom")}}
	if _, err := (&Coordinator{Dispatcher: d, Journal: j}).Run(context.Background(), plans); err == nil {
		t.Fatal("run succeeded despite failing shard")
	}
	j.Close()

	j2, err := OpenJournal(path, camp)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Done() != 2 {
		t.Fatalf("journal holds %d completions after crash, want 2", j2.Done())
	}
	// The resumed run finishes the campaign, re-dispatching only 2 and 3.
	d2 := &fakeDispatcher{procs: 1}
	payloads, err := (&Coordinator{Dispatcher: d2, Journal: j2}).Run(context.Background(), plans)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if got := d2.dispatched(); len(got) != 2 {
		t.Fatalf("resume dispatched %v, want shards 2 and 3", got)
	}
	for i := range plans {
		if string(payloads[i]) != string(payloadFor(i)) {
			t.Fatalf("payloads[%d] = %q", i, payloads[i])
		}
	}
}

func TestCoordinatorContextCancellation(t *testing.T) {
	d := &fakeDispatcher{procs: 2, stallOn: map[int]bool{0: true, 1: true}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := (&Coordinator{Dispatcher: d}).Run(ctx, makePlans(4))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled coordinator never returned")
	}
}
