package fabric

// The shard-completion journal: an append-only JSONL file recording each
// finished shard's index, result digest and payload. A campaign that
// crashes — coordinator or worker, mid-shard or mid-write — resumes by
// loading the journal's valid prefix and re-running only the shards that
// are missing or whose trailing record was torn. Because shard payloads
// are canonical bytes, replaying a journaled shard is indistinguishable
// from re-measuring it, so resumed campaigns stay byte-identical to
// clean runs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/pipeline"
)

// journalHeader is the first line of every journal, binding the file to
// one campaign. Resuming against a journal written for a different
// campaign spec would merge foreign bytes; the digest check turns that
// into a fresh start instead.
type journalHeader struct {
	V        int    `json:"v"`
	Campaign string `json:"campaign"`
}

// journalEntry is one completed shard.
type journalEntry struct {
	V      int    `json:"v"`
	Shard  int    `json:"shard"`
	Digest string `json:"digest"`
	// Payload is the shard's canonical result payload. JSON []byte is
	// base64-encoded on disk, keeping each record a single line.
	Payload []byte `json:"payload"`
}

// Journal is the append-only completion log for one campaign.
type Journal struct {
	mu       sync.Mutex
	path     string
	campaign string
	f        *os.File
	done     map[int][]byte // shard index → payload, the loaded valid prefix
}

// OpenJournal opens (or creates) the journal at path for the campaign
// with the given digest. If the file already holds a valid prefix for
// this campaign, those completions are loaded and will be served from
// Payload instead of re-executed; a torn or corrupt tail is truncated
// away so only the affected shard re-runs. A journal for a different
// campaign digest is discarded and started fresh.
func OpenJournal(path, campaign string) (*Journal, error) {
	j := &Journal{path: path, campaign: campaign, done: map[int][]byte{}}
	keep, err := j.loadValidPrefix()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: opening journal %s: %w", path, err)
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: truncating journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: seeking journal %s: %w", path, err)
	}
	j.f = f
	if keep == 0 {
		// Fresh (or reset) journal: write the campaign-binding header.
		j.done = map[int][]byte{}
		hdr, err := json.Marshal(journalHeader{V: ProtocolVersion, Campaign: campaign})
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := j.writeLine(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// loadValidPrefix scans the existing file and returns the byte offset of
// the end of its valid prefix, populating j.done along the way. Any line
// that fails to parse, fails its digest check, or follows a wrong-
// campaign header invalidates itself and everything after it.
func (j *Journal) loadValidPrefix() (int64, error) {
	data, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fabric: reading journal %s: %w", j.path, err)
	}
	var offset int64
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), maxFrame)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		// A final line without a trailing newline is a torn write:
		// everything up to the previous record survives, this line does not.
		end := offset + int64(len(line)) + 1
		if end > int64(len(data)) {
			break
		}
		if first {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.V != ProtocolVersion || hdr.Campaign != j.campaign {
				return 0, nil // foreign or unreadable journal: start fresh
			}
			first = false
			offset = end
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		if e.V != ProtocolVersion || e.Shard < 0 || e.Digest != pipeline.PayloadDigest(e.Payload) {
			break
		}
		j.done[e.Shard] = e.Payload
		offset = end
	}
	if first {
		return 0, nil
	}
	return offset, nil
}

func (j *Journal) writeLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fabric: appending to journal %s: %w", j.path, err)
	}
	return j.f.Sync()
}

// Payload returns the journaled result for a shard, if one survived the
// valid-prefix load.
func (j *Journal) Payload(index int) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.done[index]
	return p, ok
}

// Done reports how many shard completions the journal currently holds.
func (j *Journal) Done() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append records a completed shard. The record is synced before Append
// returns, so a completion acknowledged here survives any later crash.
func (j *Journal) Append(index int, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[index]; ok {
		return nil // duplicate completion (e.g. re-dispatch race): keep first
	}
	line, err := json.Marshal(journalEntry{
		V:       ProtocolVersion,
		Shard:   index,
		Digest:  pipeline.PayloadDigest(payload),
		Payload: payload,
	})
	if err != nil {
		return err
	}
	if err := j.writeLine(line); err != nil {
		return err
	}
	j.done[index] = payload
	return nil
}

// Close closes the underlying file. The journal is left on disk — it is
// the campaign's resume state, deleted only by the caller once the
// campaign has fully succeeded.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
