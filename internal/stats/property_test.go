package stats

// Property-style tests for the hypothesis-testing machinery: instead of
// pinning single examples, these assert invariants — argument symmetry,
// p-value bounds, and null behavior on identical samples — over many
// seeded random sample pairs drawn from a mix of distributions (Gaussian,
// uniform, heavy ties, constants) shaped like HPC count data.

import (
	"math"
	"math/rand"
	"testing"
)

// sampleGen draws one random sample of length n for trial-specific rng.
type sampleGen struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}

func generators() []sampleGen {
	return []sampleGen{
		{"gaussian", func(rng *rand.Rand, n int) []float64 {
			mean := 1000 + 500*rng.Float64()
			sd := 1 + 30*rng.Float64()
			out := make([]float64, n)
			for i := range out {
				out[i] = mean + sd*rng.NormFloat64()
			}
			return out
		}},
		{"uniform", func(rng *rand.Rand, n int) []float64 {
			lo := 100 * rng.Float64()
			w := 1 + 200*rng.Float64()
			out := make([]float64, n)
			for i := range out {
				out[i] = lo + w*rng.Float64()
			}
			return out
		}},
		// Integer counts with heavy ties — the shape real HPC events have.
		{"ties", func(rng *rand.Rand, n int) []float64 {
			base := float64(rng.Intn(50))
			out := make([]float64, n)
			for i := range out {
				out[i] = base + float64(rng.Intn(5))
			}
			return out
		}},
		{"constant", func(rng *rand.Rand, n int) []float64 {
			v := 10 * rng.Float64()
			out := make([]float64, n)
			for i := range out {
				out[i] = v
			}
			return out
		}},
	}
}

func sampleSizes(rng *rand.Rand) (int, int) {
	return 8 + rng.Intn(40), 8 + rng.Intn(40)
}

// TestWelchSymmetryAndBounds: Welch's t-test must be symmetric in its
// arguments (t negates, df and p unchanged) and p must stay in [0,1].
func TestWelchSymmetryAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := generators()
	for trial := 0; trial < 300; trial++ {
		ga := gens[rng.Intn(len(gens))]
		gb := gens[rng.Intn(len(gens))]
		na, nb := sampleSizes(rng)
		a, b := ga.gen(rng, na), gb.gen(rng, nb)

		ab, errAB := WelchTTest(a, b)
		ba, errBA := WelchTTest(b, a)
		if (errAB == nil) != (errBA == nil) {
			t.Fatalf("trial %d (%s vs %s): asymmetric errors: %v vs %v", trial, ga.name, gb.name, errAB, errBA)
		}
		if errAB != nil {
			// Only the zero-variance-different-means case may error; it
			// needs two distinct constant samples.
			if ga.name != "constant" || gb.name != "constant" {
				t.Fatalf("trial %d (%s vs %s): unexpected error %v", trial, ga.name, gb.name, errAB)
			}
			continue
		}
		if ab.T != -ba.T {
			t.Fatalf("trial %d (%s vs %s): t not antisymmetric: %v vs %v", trial, ga.name, gb.name, ab.T, ba.T)
		}
		if ab.DF != ba.DF || ab.P != ba.P {
			t.Fatalf("trial %d (%s vs %s): df/p not symmetric: %+v vs %+v", trial, ga.name, gb.name, ab, ba)
		}
		if ab.P < 0 || ab.P > 1 || math.IsNaN(ab.P) {
			t.Fatalf("trial %d (%s vs %s): p=%v outside [0,1]", trial, ga.name, gb.name, ab.P)
		}
		if d := CohensD(a, b); d != -CohensD(b, a) {
			t.Fatalf("trial %d: Cohen's d not antisymmetric: %v vs %v", trial, d, CohensD(b, a))
		}
	}
}

// TestMannWhitneySymmetryAndBounds: the rank-sum test must satisfy
// U_a + U_b = n_a·n_b, negate z under argument swap, keep p symmetric and
// inside [0,1] — including under heavy ties.
func TestMannWhitneySymmetryAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	gens := generators()
	for trial := 0; trial < 300; trial++ {
		ga := gens[rng.Intn(len(gens))]
		gb := gens[rng.Intn(len(gens))]
		na, nb := sampleSizes(rng)
		a, b := ga.gen(rng, na), gb.gen(rng, nb)

		ab, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatalf("trial %d (%s vs %s): %v", trial, ga.name, gb.name, err)
		}
		ba, err := MannWhitneyU(b, a)
		if err != nil {
			t.Fatalf("trial %d (%s vs %s) swapped: %v", trial, ga.name, gb.name, err)
		}
		if sum, want := ab.U+ba.U, float64(na)*float64(nb); math.Abs(sum-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d (%s vs %s): U_a+U_b = %v, want %v", trial, ga.name, gb.name, sum, want)
		}
		if ab.Z != -ba.Z {
			t.Fatalf("trial %d (%s vs %s): z not antisymmetric: %v vs %v", trial, ga.name, gb.name, ab.Z, ba.Z)
		}
		if ab.P != ba.P {
			t.Fatalf("trial %d (%s vs %s): p not symmetric: %v vs %v", trial, ga.name, gb.name, ab.P, ba.P)
		}
		if ab.P < 0 || ab.P > 1 || math.IsNaN(ab.P) {
			t.Fatalf("trial %d (%s vs %s): p=%v outside [0,1]", trial, ga.name, gb.name, ab.P)
		}
	}
}

// TestIdenticalSamplesNeverDistinguishable: a sample tested against
// itself must yield p = 1 under both tests — identical distributions can
// never be flagged as a leak, at any alpha.
func TestIdenticalSamplesNeverDistinguishable(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, g := range generators() {
		for trial := 0; trial < 50; trial++ {
			n, _ := sampleSizes(rng)
			x := g.gen(rng, n)

			w, err := WelchTTest(x, x)
			if err != nil {
				t.Fatalf("%s trial %d: Welch on identical samples errored: %v", g.name, trial, err)
			}
			if w.T != 0 || w.P != 1 {
				t.Fatalf("%s trial %d: Welch(x,x) = t %v, p %v; want t 0, p 1", g.name, trial, w.T, w.P)
			}
			if w.Significant(0.9999) {
				t.Fatalf("%s trial %d: identical samples flagged distinguishable", g.name, trial)
			}

			m, err := MannWhitneyU(x, x)
			if err != nil {
				t.Fatalf("%s trial %d: Mann-Whitney on identical samples errored: %v", g.name, trial, err)
			}
			if m.Z != 0 || m.P != 1 {
				t.Fatalf("%s trial %d: MannWhitney(x,x) = z %v, p %v; want z 0, p 1", g.name, trial, m.Z, m.P)
			}
		}
	}
}

// TestKolmogorovSmirnovSymmetry: the KS statistic is a metric over
// empirical CDFs, so it must be symmetric and in [0,1], and zero for a
// sample against itself.
func TestKolmogorovSmirnovSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	gens := generators()
	for trial := 0; trial < 200; trial++ {
		ga := gens[rng.Intn(len(gens))]
		gb := gens[rng.Intn(len(gens))]
		na, nb := sampleSizes(rng)
		a, b := ga.gen(rng, na), gb.gen(rng, nb)
		ab, err := KolmogorovSmirnov(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := KolmogorovSmirnov(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if ab != ba {
			t.Fatalf("trial %d: KS not symmetric: %v vs %v", trial, ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("trial %d: KS=%v outside [0,1]", trial, ab)
		}
		self, err := KolmogorovSmirnov(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if self != 0 {
			t.Fatalf("trial %d: KS(x,x) = %v, want 0", trial, self)
		}
	}
}

// TestHolmBonferroniMonotone: Holm's step-down is uniformly more
// conservative than the uncorrected test and monotone in the p-value
// order — a rejected hypothesis must have p no larger than any accepted
// one.
func TestHolmBonferroniMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
			if rng.Float64() < 0.3 {
				ps[i] /= 1000 // sprinkle strong rejections
			}
		}
		alpha := 0.01 + 0.1*rng.Float64()
		rej := HolmBonferroni(ps, alpha)
		if len(rej) != n {
			t.Fatalf("trial %d: %d decisions for %d p-values", trial, len(rej), n)
		}
		maxRej, minAcc := -1.0, 2.0
		for i, r := range rej {
			if r && ps[i] >= alpha {
				t.Fatalf("trial %d: Holm rejected p=%v ≥ alpha=%v (less conservative than uncorrected)", trial, ps[i], alpha)
			}
			if r && ps[i] > maxRej {
				maxRej = ps[i]
			}
			if !r && ps[i] < minAcc {
				minAcc = ps[i]
			}
		}
		if maxRej > minAcc {
			t.Fatalf("trial %d: non-monotone decisions: rejected p=%v but accepted p=%v", trial, maxRej, minAcc)
		}
	}
}
