package stats

// Sequential hypothesis testing for the streaming leakage monitor: the
// batch tests of this package decide once, after a fixed trace budget;
// an online detector instead re-examines the evidence as observations
// stream in and stops the moment an event×pair crosses significance.
// Two pieces make that sound and reproducible:
//
//   - incremental test state (SeqMannWhitney, SeqWelch) that absorbs one
//     observation at a time and can be interrogated at any point. The
//     Mann-Whitney implementation is *bit-identical* to the batch
//     MannWhitneyU on the same multisets: it walks the merged samples in
//     the same ascending tie-group order and accumulates the rank sum
//     and tie correction in the same float-addition sequence, so a
//     monitor run to exhaustion reproduces the batch p-values exactly;
//   - an alpha-spending boundary (SpendingBoundary) that schedules how
//     much of the overall significance level each interim look may
//     consume, so repeated testing does not silently inflate the
//     false-positive rate.

import (
	"fmt"
	"math"
	"sort"
)

// SeqMannWhitney is the incremental form of MannWhitneyU: observations
// are inserted one at a time and Test recomputes the tie-corrected
// rank-sum statistic over everything seen so far. Both samples are kept
// sorted, so a look costs one linear merge walk instead of a fresh
// sort; run to exhaustion, Test returns bit-for-bit the MannWhitneyU
// result of the same two samples.
type SeqMannWhitney struct {
	a, b []float64 // ascending
}

// insertSorted places v into its ascending position.
func insertSorted(s []float64, v float64) []float64 {
	i := sort.SearchFloat64s(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AddA absorbs one observation of the first sample.
func (s *SeqMannWhitney) AddA(v float64) { s.a = insertSorted(s.a, v) }

// AddB absorbs one observation of the second sample.
func (s *SeqMannWhitney) AddB(v float64) { s.b = insertSorted(s.b, v) }

// Na returns the first sample's current size.
func (s *SeqMannWhitney) Na() int { return len(s.a) }

// Nb returns the second sample's current size.
func (s *SeqMannWhitney) Nb() int { return len(s.b) }

// Test runs the tie-corrected rank-sum test over everything absorbed so
// far. The merged walk visits tie groups in ascending value order and,
// within a group, adds the shared mid-rank once per first-sample member
// — the exact accumulation sequence of the batch MannWhitneyU, which is
// what makes the sequential and batch p-values bit-identical.
func (s *SeqMannWhitney) Test() (MannWhitneyResult, error) {
	na, nb := len(s.a), len(s.b)
	if na < 2 || nb < 2 {
		return MannWhitneyResult{}, fmt.Errorf("stats: Mann-Whitney needs ≥2 samples per group, got %d and %d", na, nb)
	}
	n := float64(na + nb)
	var rankSumA float64
	var tieTerm float64
	i, j, pos := 0, 0, 0
	for i < na || j < nb {
		var v float64
		if j >= nb || (i < na && s.a[i] <= s.b[j]) {
			v = s.a[i]
		} else {
			v = s.b[j]
		}
		ca, cb := 0, 0
		for i < na && s.a[i] == v {
			i++
			ca++
		}
		for j < nb && s.b[j] == v {
			j++
			cb++
		}
		// Ranks pos+1 .. pos+ca+cb share the mid-rank, exactly as the
		// batch group [i, j) shares float64(i+1+j)/2.
		t := float64(ca + cb)
		mid := float64(pos+1+pos+ca+cb) / 2
		if t > 1 {
			tieTerm += t*t*t - t
		}
		for k := 0; k < ca; k++ {
			rankSumA += mid
		}
		pos += ca + cb
	}

	u := rankSumA - float64(na)*float64(na+1)/2
	mean := float64(na) * float64(nb) / 2
	varU := float64(na) * float64(nb) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if varU <= 0 {
		return MannWhitneyResult{U: u, Z: 0, P: 1}, nil
	}
	d := u - mean
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(varU)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p}, nil
}

// SeqWelch is the incremental form of WelchTTest. It retains the raw
// observations in arrival order and recomputes the batch test at each
// look: Welch's statistic is cheap (two passes over the samples) and
// recomputing — instead of maintaining running moments — keeps the
// exhaustion result bit-identical to the batch path, whose Mean and
// Variance sum in index order.
type SeqWelch struct {
	a, b []float64 // arrival order
}

// AddA absorbs one observation of the first sample.
func (s *SeqWelch) AddA(v float64) { s.a = append(s.a, v) }

// AddB absorbs one observation of the second sample.
func (s *SeqWelch) AddB(v float64) { s.b = append(s.b, v) }

// Na returns the first sample's current size.
func (s *SeqWelch) Na() int { return len(s.a) }

// Nb returns the second sample's current size.
func (s *SeqWelch) Nb() int { return len(s.b) }

// Test runs Welch's t-test over everything absorbed so far.
func (s *SeqWelch) Test() (TTestResult, error) {
	return WelchTTest(s.a, s.b)
}

// SpendingBoundary schedules how the overall significance level Alpha
// is spent across interim looks, Pocock-style: the cumulative alpha
// available at information fraction t ∈ [0, 1] is
//
//	α(t) = Alpha · ln(1 + (e−1)·t)
//
// which rises steeply early (the monitor may stop on strong evidence
// after few traces) and reaches exactly Alpha at t = 1. Looks consume
// the schedule through an AlphaSpender.
type SpendingBoundary struct {
	// Alpha is the overall significance level (the batch campaign's α).
	Alpha float64
}

// Spent returns the cumulative alpha available at information fraction
// t (clamped to [0, 1]).
func (sb SpendingBoundary) Spent(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t > 1 {
		t = 1
	}
	return sb.Alpha * math.Log(1+(math.E-1)*t)
}

// AlphaSpender doles the schedule out to successive looks of one
// hypothesis: the look at information fraction t may spend the
// *increment* Spent(t) − Spent(t_prev), and the increment is consumed
// whether or not the look rejects. Because the increments sum to at
// most Alpha over any look sequence, the union bound gives a rigorous
// per-hypothesis false-positive guarantee — P(any look rejects under
// the null) ≤ Σ increments ≤ Alpha — regardless of how many looks the
// monitor takes or how correlated they are. (The price is conservatism:
// early stopping needs evidence strong enough to clear a fraction of
// Alpha. A campaign that never crosses the boundary still ends in the
// batch report, whose alarms apply the full batch Alpha.)
type AlphaSpender struct {
	// Boundary is the spending schedule.
	Boundary SpendingBoundary

	spent float64
}

// Cross evaluates one look: the p-value at information fraction t is
// compared against the alpha increment this look is allotted, and the
// increment is consumed either way.
func (as *AlphaSpender) Cross(p, t float64) bool {
	cum := as.Boundary.Spent(t)
	inc := cum - as.spent
	if inc <= 0 {
		return false
	}
	as.spent = cum
	return p < inc
}

// SpentSoFar returns the cumulative alpha consumed by past looks.
func (as *AlphaSpender) SpentSoFar() float64 { return as.spent }
