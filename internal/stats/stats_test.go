package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want 32/7", v)
	}
	if s := StdDev(xs); !approx(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases not zero")
	}
}

func TestMinMaxQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 5 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v, want 3", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v, want 5", q)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(2, 3, 0.4) + RegIncBeta(3, 2, 0.6); !approx(got, 1, 1e-10) {
		t.Fatalf("symmetry violated: %v", got)
	}
	// Edges.
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Fatal("edge values wrong")
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) {
		t.Fatal("negative parameter accepted")
	}
}

func TestStudentTSFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{1.372, 10, 0.10},  // t_{0.10,10}
		{1.812, 10, 0.05},  // t_{0.05,10}
		{2.228, 10, 0.025}, // t_{0.025,10}
		{1.96, 1e6, 0.025}, // approaches the normal for huge df
		{2.576, 1e6, 0.005},
	}
	for _, c := range cases {
		got := StudentTSF(c.t, c.df)
		if !approx(got, c.want, 0.002) {
			t.Errorf("SF(t=%v, df=%v) = %v, want ≈%v", c.t, c.df, got, c.want)
		}
	}
	if StudentTSF(math.Inf(1), 5) != 0 {
		t.Fatal("SF(inf) != 0")
	}
	if !math.IsNaN(StudentTSF(1, 0)) {
		t.Fatal("df=0 accepted")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, 1.96: 0.975, -1.96: 0.025}
	for x, want := range cases {
		if got := NormalCDF(x); !approx(got, want, 1e-3) {
			t.Errorf("NormalCDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestWelchTTestValidation(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("n=1 sample accepted")
	}
	if _, err := WelchTTest([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Fatal("zero variance with different means accepted")
	}
	r, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3})
	if err != nil || r.P != 1 || r.T != 0 {
		t.Fatalf("identical constants: %+v, %v", r, err)
	}
}

func TestWelchTTestAgainstReference(t *testing.T) {
	// Reference values computed independently (exact Welch formulas for t
	// and df; two-tailed p via Simpson integration of the t density):
	// t = -2.83526, df = 27.7136, p = 0.0084527.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.T, -2.83526, 1e-4) {
		t.Errorf("t = %v, want -2.83526", r.T)
	}
	if !approx(r.P, 0.0084527, 1e-5) {
		t.Errorf("p = %v, want 0.0084527", r.P)
	}
	if !approx(r.DF, 27.7136, 0.01) {
		t.Errorf("df = %v, want ≈27.7136", r.DF)
	}
	if !r.Significant(0.05) || !r.Significant(0.01) || r.Significant(0.001) {
		t.Error("significance thresholds wrong")
	}
}

func TestWelchTTestSeparatedGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1 // one-sigma mean shift
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-10 {
		t.Fatalf("p = %v for clearly separated samples", r.P)
	}
	if r.T > -10 {
		t.Fatalf("t = %v, want strongly negative", r.T)
	}
}

func TestWelchTTestNullDistribution(t *testing.T) {
	// Under H0, p should exceed 0.05 in roughly 95% of trials.
	rng := rand.New(rand.NewSource(2))
	rejections := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		r, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.10 {
		t.Fatalf("false positive rate = %v, want ≈0.05", rate)
	}
}

func TestCohensD(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	d := CohensD(a, b)
	if !approx(d, -2/math.Sqrt(2.5), 1e-9) {
		t.Fatalf("d = %v", d)
	}
	if CohensD([]float64{1}, b) != 0 {
		t.Fatal("degenerate d not zero")
	}
	if CohensD([]float64{2, 2}, []float64{2, 2}) != 0 {
		t.Fatal("zero-variance d not zero")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Fatal("empty sample accepted")
	}
	same := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(same, same)
	if err != nil || d != 0 {
		t.Fatalf("KS(same,same) = %v, %v", d, err)
	}
	d, _ = KolmogorovSmirnov([]float64{1, 2, 3}, []float64{10, 11, 12})
	if d != 1 {
		t.Fatalf("KS(disjoint) = %v, want 1", d)
	}
}

func TestHolmBonferroni(t *testing.T) {
	ps := []float64{0.001, 0.02, 0.04, 0.2}
	rej := HolmBonferroni(ps, 0.05)
	// Holm at 0.05: 0.001 < 0.05/4 → reject; 0.02 > 0.05/3=0.0167 → stop.
	want := []bool{true, false, false, false}
	for i := range want {
		if rej[i] != want[i] {
			t.Fatalf("Holm[%d] = %v, want %v (all %v)", i, rej[i], want[i], rej)
		}
	}
	// All tiny → all rejected.
	rej = HolmBonferroni([]float64{1e-9, 1e-8, 1e-7}, 0.05)
	for i, r := range rej {
		if !r {
			t.Fatalf("tiny p %d not rejected", i)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -2}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 6 {
		t.Fatalf("total = %d, want 6", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Fatal("bin counts do not sum to total")
	}
	// Clamping: -2 lands in bin 0, 1.5 in the last bin.
	if h.Counts[0] < 1 || h.Counts[3] < 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.MaxCount() < 1 {
		t.Fatal("MaxCount wrong")
	}
	if c := h.BinCenter(0); !approx(c, 0.125, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", c)
	}
	if _, err := NewHistogram(xs, 0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(xs, 1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
}

// TestHistogramSkipsNaN: int(NaN) binning is platform-defined, so NaN
// inputs must be skipped rather than counted into an arbitrary bin.
func TestHistogramSkipsNaN(t *testing.T) {
	h, err := NewHistogram([]float64{math.NaN(), 0.25, math.NaN(), 0.75}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 2 {
		t.Fatalf("total = %d, want 2 (NaNs counted)", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v, want [1 1]", h.Counts)
	}
}

// TestHistogramClampsInf: int(±Inf) is platform-defined like int(NaN), so
// infinite values must clamp into the correct edge bin by sign.
func TestHistogramClampsInf(t *testing.T) {
	h, err := NewHistogram([]float64{math.Inf(1), math.Inf(-1), 0.75}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Fatalf("total = %d, want 3", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [1 2] (+Inf in top bin, -Inf in bottom)", h.Counts)
	}
}

func TestQuickTTestAntisymmetry(t *testing.T) {
	// t(a,b) = -t(b,a), identical p.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 3
			b[i] = rng.NormFloat64()*2 + 0.5
		}
		r1, err1 := WelchTTest(a, b)
		r2, err2 := WelchTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(r1.T, -r2.T, 1e-9) && approx(r1.P, r2.P, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPValueInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n+rng.Intn(10))
		for i := range a {
			a[i] = rng.NormFloat64() * (1 + rng.Float64()*10)
		}
		for i := range b {
			b[i] = rng.NormFloat64()*(1+rng.Float64()*10) + rng.Float64()*20 - 10
		}
		r, err := WelchTTest(a, b)
		if err != nil {
			return true // degenerate draw; nothing to assert
		}
		return r.P >= 0 && r.P <= 1 && r.DF > 0 && !math.IsNaN(r.T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleInvarianceOfT(t *testing.T) {
	// Scaling both samples by the same positive factor leaves t unchanged.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 1 + rng.Float64()*999
		n := 10 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		as := make([]float64, n)
		bs := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() + 1
			b[i] = rng.NormFloat64()
			as[i] = a[i] * scale
			bs[i] = b[i] * scale
		}
		r1, err1 := WelchTTest(a, b)
		r2, err2 := WelchTTest(as, bs)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(r1.T, r2.T, 1e-6*math.Abs(r1.T)+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHistogramConservesMass(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		h, err := NewHistogram(raw, -10, 10, 8)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(raw) && h.Total == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileRejectsNaN(t *testing.T) {
	// NaN slips past both `q < 0` and `q > 1` (every comparison with NaN
	// is false) and used to reach int(math.Floor(NaN)), whose result is
	// platform-defined — the exact class of silent cross-platform drift
	// the byte-identity goldens cannot survive.
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(xs, NaN) did not panic")
		}
	}()
	Quantile([]float64{1, 2, 3}, math.NaN())
}
