package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMannWhitneyValidation(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestMannWhitneyIdenticalConstants(t *testing.T) {
	r, err := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.Z != 0 {
		t.Fatalf("identical constants: %+v", r)
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2
	}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Fatalf("clearly separated samples not rejected: %+v", r)
	}
	if r.Z >= 0 {
		t.Fatalf("z = %v, want negative for a < b", r.Z)
	}
}

func TestMannWhitneyNullRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejections := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		r, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	if rate := float64(rejections) / trials; rate > 0.10 {
		t.Fatalf("false positive rate = %v", rate)
	}
}

func TestMannWhitneyKnownSmallCase(t *testing.T) {
	// Hand-computed example: a = {1,2,3}, b = {4,5,6}; every b beats
	// every a so U(a) = 0 and the ranks are untied.
	r, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.U != 0 {
		t.Fatalf("U = %v, want 0", r.U)
	}
	// And the mirrored order gives the maximal U = na*nb = 9.
	r2, _ := MannWhitneyU([]float64{4, 5, 6}, []float64{1, 2, 3})
	if r2.U != 9 {
		t.Fatalf("mirrored U = %v, want 9", r2.U)
	}
	if r.P != r2.P {
		t.Fatalf("p not symmetric: %v vs %v", r.P, r2.P)
	}
}

func TestMannWhitneyHandlesHeavyTies(t *testing.T) {
	// HPC counts are integers: ties are the norm, not the exception.
	a := []float64{10, 10, 10, 11, 11, 12, 12, 12}
	b := []float64{12, 12, 13, 13, 13, 14, 14, 14}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 0.05 {
		t.Fatalf("shifted tied samples not separated: %+v", r)
	}
	if r.P < 0 || r.P > 1 {
		t.Fatalf("p out of range: %v", r.P)
	}
}

func TestQuickMannWhitneyPInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n+rng.Intn(10))
		for i := range a {
			a[i] = float64(rng.Intn(20)) // integer-valued: many ties
		}
		for i := range b {
			b[i] = float64(rng.Intn(20)) + rng.Float64()*3
		}
		r, err := MannWhitneyU(a, b)
		if err != nil {
			return false
		}
		return r.P >= 0 && r.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMannWhitneyAgreesWithTTestOnGaussians(t *testing.T) {
	// For well-separated Gaussian samples both tests must reject; for
	// identical distributions with few samples, usually neither does.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 60)
		b := make([]float64, 60)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() + 3
		}
		tt, err1 := WelchTTest(a, b)
		mw, err2 := MannWhitneyU(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return tt.Significant(0.01) && mw.Significant(0.01)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
