package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of the rank-sum test.
type MannWhitneyResult struct {
	U float64 // Mann-Whitney U statistic (of the first sample)
	Z float64 // normal approximation z-score (tie-corrected)
	P float64 // two-tailed p-value (normal approximation)
}

// Significant reports rejection of the null hypothesis at level alpha.
func (r MannWhitneyResult) Significant(alpha float64) bool { return r.P < alpha }

// MannWhitneyU runs the two-sample Mann-Whitney U test (Wilcoxon rank-sum)
// with the tie-corrected normal approximation — the nonparametric
// cross-check the evaluator can use when the Gaussian assumptions behind
// the paper's t-test are in doubt. Samples should have ≥ 8 points each
// for the normal approximation to be reasonable.
func MannWhitneyU(a, b []float64) (MannWhitneyResult, error) {
	na, nb := len(a), len(b)
	if na < 2 || nb < 2 {
		return MannWhitneyResult{}, fmt.Errorf("stats: Mann-Whitney needs ≥2 samples per group, got %d and %d", na, nb)
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties; accumulate the tie correction term.
	n := float64(na + nb)
	var rankSumA float64
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		// Ranks i+1 .. j share the mid-rank.
		mid := float64(i+1+j) / 2
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		for k := i; k < j; k++ {
			if all[k].first {
				rankSumA += mid
			}
		}
		i = j
	}

	u := rankSumA - float64(na)*float64(na+1)/2
	mean := float64(na) * float64(nb) / 2
	varU := float64(na) * float64(nb) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if varU <= 0 {
		// All observations identical: no evidence of difference.
		return MannWhitneyResult{U: u, Z: 0, P: 1}, nil
	}
	// Continuity correction toward the mean.
	d := u - mean
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(varU)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p}, nil
}
