package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestSeqMannWhitneyMatchesBatchBitForBit streams observations into the
// sequential test in interleaved arrival order and asserts that every
// look with ≥2 samples per group — not just the final one — reproduces
// the batch MannWhitneyU result bit-for-bit on the same prefix
// multisets. Heavy ties are included deliberately: the tie-correction
// accumulation order is where a naive incremental implementation drifts.
func TestSeqMannWhitneyMatchesBatchBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		gen  func() float64
	}{
		{"continuous", func() float64 { return rng.NormFloat64() * 1e4 }},
		{"heavy-ties", func() float64 { return float64(rng.Intn(6)) }},
		{"shifted", func() float64 { return rng.NormFloat64() + 0.8 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var seq SeqMannWhitney
			var a, b []float64
			for k := 0; k < 120; k++ {
				v := c.gen()
				if k%2 == 0 {
					seq.AddA(v)
					a = append(a, v)
				} else {
					seq.AddB(v)
					b = append(b, v)
				}
				if len(a) < 2 || len(b) < 2 {
					continue
				}
				got, err := seq.Test()
				if err != nil {
					t.Fatal(err)
				}
				want, err := MannWhitneyU(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("look %d: sequential %+v != batch %+v (bit-identity broken)", k, got, want)
				}
			}
		})
	}
}

// TestSeqWelchMatchesBatch pins the Welch accumulator to the batch test
// at every look.
func TestSeqWelchMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var seq SeqWelch
	var a, b []float64
	for k := 0; k < 80; k++ {
		v := rng.NormFloat64()*3 + float64(k%5)
		if k%2 == 0 {
			seq.AddA(v)
			a = append(a, v)
		} else {
			seq.AddB(v)
			b = append(b, v)
		}
		if len(a) < 2 || len(b) < 2 {
			continue
		}
		got, err := seq.Test()
		if err != nil {
			t.Fatal(err)
		}
		want, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("look %d: sequential %+v != batch %+v", k, got, want)
		}
	}
}

// TestSpendingBoundaryShape pins the schedule's defining properties:
// zero spend before any information, monotone growth, and exactly Alpha
// at exhaustion (so the final look applies the batch threshold).
func TestSpendingBoundaryShape(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05, 0.1} {
		sb := SpendingBoundary{Alpha: alpha}
		if got := sb.Spent(0); got != 0 {
			t.Fatalf("alpha=%v: Spent(0) = %v, want 0", alpha, got)
		}
		if got := sb.Spent(1); math.Abs(got-alpha) > 1e-12 {
			t.Fatalf("alpha=%v: Spent(1) = %v, want alpha", alpha, got)
		}
		if got := sb.Spent(2); math.Abs(got-alpha) > 1e-12 {
			t.Fatalf("alpha=%v: Spent is not clamped above t=1: %v", alpha, got)
		}
		prev := 0.0
		for i := 1; i <= 100; i++ {
			cur := sb.Spent(float64(i) / 100)
			if cur < prev {
				t.Fatalf("alpha=%v: spending not monotone at t=%v", alpha, float64(i)/100)
			}
			prev = cur
		}
	}
}

// nullTrialStops runs one sequential campaign under the null (both
// groups drawn from the same distribution) with looks every pair of
// observations, and reports whether the spending boundary ever fired
// before the budget was exhausted.
func nullTrialStops(rng *rand.Rand, alpha float64, budget, minSamples int) bool {
	var seq SeqMannWhitney
	spender := AlphaSpender{Boundary: SpendingBoundary{Alpha: alpha}}
	for k := 0; k < 2*budget; k++ {
		v := rng.NormFloat64()
		if k%2 == 0 {
			seq.AddA(v)
		} else {
			seq.AddB(v)
		}
		if seq.Na() < minSamples || seq.Nb() < minSamples {
			continue
		}
		res, err := seq.Test()
		if err != nil {
			return false
		}
		t := float64(seq.Na()+seq.Nb()) / float64(2*budget)
		if spender.Cross(res.P, t) {
			return true
		}
	}
	return false
}

// TestSequentialFalsePositiveRateUnderNull is the property test the
// boundary's soundness rests on: under the identical-samples null, the
// early-stopping monitor must not reject more often than the configured
// alpha, at several alphas. The increment-spending scheme gives this as
// a theorem (union bound over looks); the trials are seeded, so the
// realized counts are deterministic — this pins the false-positive rate
// of the exact look schedule the monitor uses, not just an asymptotic
// claim.
func TestSequentialFalsePositiveRateUnderNull(t *testing.T) {
	const trials = 150
	for _, alpha := range []float64{0.01, 0.05, 0.1} {
		rng := rand.New(rand.NewSource(int64(1000 * alpha)))
		stops := 0
		for i := 0; i < trials; i++ {
			if nullTrialStops(rng, alpha, 60, 8) {
				stops++
			}
		}
		rate := float64(stops) / trials
		// The guarantee is rate ≤ alpha; 0.03 absorbs the Monte-Carlo
		// noise of 150 trials.
		limit := alpha + 0.03
		if rate > limit {
			t.Errorf("alpha=%v: null stop rate %v (= %d/%d) exceeds %v", alpha, rate, stops, trials, limit)
		}
	}
}

// TestSeqMannWhitneyDetectsShift sanity-checks power: a clearly shifted
// alternative must cross the boundary well before exhaustion.
func TestSeqMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spender := AlphaSpender{Boundary: SpendingBoundary{Alpha: 0.05}}
	var seq SeqMannWhitney
	const budget = 200
	for k := 0; k < 2*budget; k++ {
		if k%2 == 0 {
			seq.AddA(rng.NormFloat64())
		} else {
			seq.AddB(rng.NormFloat64() + 2.5)
		}
		if seq.Na() < 8 || seq.Nb() < 8 {
			continue
		}
		res, err := seq.Test()
		if err != nil {
			t.Fatal(err)
		}
		tfrac := float64(seq.Na()+seq.Nb()) / float64(2*budget)
		if spender.Cross(res.P, tfrac) {
			if seq.Na()+seq.Nb() >= 2*budget {
				t.Fatalf("shift detected only at exhaustion")
			}
			return
		}
	}
	t.Fatal("clear shift never crossed the boundary")
}
