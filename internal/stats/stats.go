// Package stats implements the hypothesis-testing machinery of the paper's
// Evaluator: Welch's two-sample t-test with two-tailed p-values from the
// Student-t distribution (via the regularized incomplete beta function),
// plus the descriptive statistics, histograms and multiple-testing
// corrections the reports are built from.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema; it panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// on the sorted copy of xs. It panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	// NaN slips past both range comparisons and would make pos NaN,
	// leaving int(math.Floor(pos)) platform-defined — reject it with the
	// other out-of-range inputs.
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles descriptive statistics of one distribution.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		Max:    hi,
		Median: Quantile(xs, 0.5),
	}
}

// TTestResult holds the outcome of a two-sample test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-tailed p-value
}

// Significant reports rejection of the null hypothesis at level alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchTTest runs Welch's unequal-variance two-sample t-test, the test the
// paper applies to per-category HPC distributions. Both samples need at
// least two points and nonzero combined variance.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs ≥2 samples per group, got %d and %d", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se2 := sa + sb
	if se2 == 0 {
		if ma == mb {
			// Identical constants: no evidence of difference.
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{}, fmt.Errorf("stats: zero variance with different means; t undefined")
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * StudentTSF(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// CohensD returns the pooled-variance standardized effect size.
func CohensD(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0
	}
	pooled := ((na-1)*Variance(a) + (nb-1)*Variance(b)) / (na + nb - 2)
	if pooled == 0 {
		return 0
	}
	return (Mean(a) - Mean(b)) / math.Sqrt(pooled)
}

// StudentTSF is the survival function P(T > t) for the Student-t
// distribution with df degrees of freedom, t ≥ 0.
func StudentTSF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	// P(T > t) = I_x(df/2, 1/2) / 2 for t >= 0.
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical-Recipes-style betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF is the standard normal CDF.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// KolmogorovSmirnov returns the two-sample KS statistic (sup distance
// between empirical CDFs) — an extension test the evaluator can use as a
// nonparametric cross-check of the t-test.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: KS needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sb[j] < sa[i]:
			j++
		default:
			// Tie group: both CDFs step together past all equal values.
			v := sa[i]
			for i < len(sa) && sa[i] == v {
				i++
			}
			for j < len(sb) && sb[j] == v {
				j++
			}
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// HolmBonferroni applies the Holm step-down correction to a set of
// p-values at family-wise level alpha, returning a parallel slice of
// reject decisions.
func HolmBonferroni(ps []float64, alpha float64) []bool {
	n := len(ps)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return ps[idx[i]] < ps[idx[j]] })
	reject := make([]bool, n)
	for rank, i := range idx {
		if ps[i] <= alpha/float64(n-rank) {
			reject[i] = true
		} else {
			break // step-down stops at the first acceptance
		}
	}
	return reject
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into `bins` equal-width buckets spanning [lo, hi].
// Values outside are clamped into the edge bins; NaN values are skipped
// (they have no bin, and int(NaN) is platform-defined).
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v] is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		// int(±Inf) is platform-defined like int(NaN); clamp by sign so an
		// infinite value lands in the correct edge bin on every platform.
		if math.IsInf(x, 1) {
			h.Counts[bins-1]++
			h.Total++
			continue
		}
		if math.IsInf(x, -1) {
			h.Counts[0]++
			h.Total++
			continue
		}
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
