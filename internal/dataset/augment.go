package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Augment options for expanding a training split. All transforms preserve
// the image geometry (same height/width/channels) and pixel range [0,1].
type Augment struct {
	// MaxShift translates by up to ±MaxShift pixels in each axis.
	MaxShift int
	// HFlip mirrors horizontally with probability 0.5.
	HFlip bool
	// Noise adds Gaussian pixel noise with this std dev.
	Noise float64
	// Brightness scales all pixels by a factor in [1-b, 1+b].
	Brightness float64
}

// Apply returns an augmented copy of img using rng for randomness.
func (a Augment) Apply(img *tensor.Tensor, rng *rand.Rand) (*tensor.Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("dataset: augment needs HWC input, got %v", img.Shape)
	}
	h, w, c := img.Shape[0], img.Shape[1], img.Shape[2]
	out := img.Clone()
	if a.MaxShift > 0 {
		dy := rng.Intn(2*a.MaxShift+1) - a.MaxShift
		dx := rng.Intn(2*a.MaxShift+1) - a.MaxShift
		out = shift(out, h, w, c, dy, dx)
	}
	if a.HFlip && rng.Intn(2) == 0 {
		out = hflip(out, h, w, c)
	}
	if a.Brightness > 0 {
		f := 1 + (rng.Float64()*2-1)*a.Brightness
		for i, v := range out.Data {
			out.Data[i] = float32(clamp01(float64(v) * f))
		}
	}
	if a.Noise > 0 {
		addNoise(out, rng, a.Noise)
	}
	return out, nil
}

// Expand appends `extra` augmented variants of each sample to the set,
// returning a new Set (the input is not modified).
func Expand(s *Set, a Augment, extra int, seed int64) (*Set, error) {
	if extra < 0 {
		return nil, fmt.Errorf("dataset: negative expansion %d", extra)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Set{Name: s.Name + "-augmented", Classes: s.Classes}
	out.Samples = append(out.Samples, s.Samples...)
	for _, sm := range s.Samples {
		for k := 0; k < extra; k++ {
			img, err := a.Apply(sm.Image, rng)
			if err != nil {
				return nil, err
			}
			out.Samples = append(out.Samples, Sample{Image: img, Label: sm.Label})
		}
	}
	rng.Shuffle(len(out.Samples), func(i, j int) {
		out.Samples[i], out.Samples[j] = out.Samples[j], out.Samples[i]
	})
	return out, nil
}

// shift translates the image by (dy, dx), zero-filling exposed borders.
func shift(img *tensor.Tensor, h, w, c, dy, dx int) *tensor.Tensor {
	out := tensor.New(h, w, c)
	for y := 0; y < h; y++ {
		sy := y - dy
		if sy < 0 || sy >= h {
			continue
		}
		for x := 0; x < w; x++ {
			sx := x - dx
			if sx < 0 || sx >= w {
				continue
			}
			copy(out.Data[(y*w+x)*c:(y*w+x)*c+c], img.Data[(sy*w+sx)*c:(sy*w+sx)*c+c])
		}
	}
	return out
}

// hflip mirrors the image horizontally.
func hflip(img *tensor.Tensor, h, w, c int) *tensor.Tensor {
	out := tensor.New(h, w, c)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			copy(out.Data[(y*w+x)*c:(y*w+x)*c+c], img.Data[(y*w+(w-1-x))*c:(y*w+(w-1-x))*c+c])
		}
	}
	return out
}

// NormalizationStats holds per-channel mean and std over a split.
type NormalizationStats struct {
	Mean []float64
	Std  []float64
}

// ComputeNormalization returns per-channel statistics of a split.
func ComputeNormalization(s *Set) (NormalizationStats, error) {
	if len(s.Samples) == 0 {
		return NormalizationStats{}, fmt.Errorf("dataset: empty set")
	}
	c := s.Samples[0].Image.Shape[2]
	sum := make([]float64, c)
	sum2 := make([]float64, c)
	n := 0
	for _, sm := range s.Samples {
		for i := 0; i < sm.Image.Len(); i += c {
			for ch := 0; ch < c; ch++ {
				v := float64(sm.Image.Data[i+ch])
				sum[ch] += v
				sum2[ch] += v * v
			}
		}
		n += sm.Image.Len() / c
	}
	st := NormalizationStats{Mean: make([]float64, c), Std: make([]float64, c)}
	for ch := 0; ch < c; ch++ {
		st.Mean[ch] = sum[ch] / float64(n)
		variance := sum2[ch]/float64(n) - st.Mean[ch]*st.Mean[ch]
		if variance < 0 {
			variance = 0
		}
		st.Std[ch] = math.Sqrt(variance)
	}
	return st, nil
}
