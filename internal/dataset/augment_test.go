package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sampleImage(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := tensor.New(8, 8, 1)
	for i := range img.Data {
		img.Data[i] = rng.Float32()
	}
	return img
}

func TestAugmentApplyShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Augment{MaxShift: 2, HFlip: true, Noise: 0.1, Brightness: 0.3}
	img := sampleImage(1)
	out, err := a.Apply(img, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(img) {
		t.Fatalf("augment changed shape: %v", out.Shape)
	}
	for i, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %d = %v outside [0,1]", i, v)
		}
	}
	if _, err := a.Apply(tensor.New(8, 8), rng); err == nil {
		t.Fatal("rank-2 input accepted")
	}
}

func TestAugmentIdentityWhenDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := sampleImage(2)
	out, err := Augment{}.Apply(img, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Data {
		if out.Data[i] != img.Data[i] {
			t.Fatal("zero augment modified the image")
		}
	}
	// And the copy is independent.
	out.Data[0] = -1
	if img.Data[0] == -1 {
		t.Fatal("augment returned shared storage")
	}
}

func TestShiftMovesMass(t *testing.T) {
	img := tensor.New(5, 5, 1)
	img.Set(1, 2, 2, 0) // single bright pixel in the center
	out := shift(img, 5, 5, 1, 1, 2)
	if out.At(3, 4, 0) != 1 {
		t.Fatalf("shifted pixel not at (3,4): %v", out.Data)
	}
	if out.Sum() != 1 {
		t.Fatalf("shift changed total mass: %v", out.Sum())
	}
	// Shifting off the edge loses the pixel.
	out = shift(img, 5, 5, 1, 4, 4)
	if out.Sum() != 0 {
		t.Fatalf("off-edge shift kept mass: %v", out.Sum())
	}
}

func TestHFlipInvolution(t *testing.T) {
	img := sampleImage(3)
	once := hflip(img, 8, 8, 1)
	twice := hflip(once, 8, 8, 1)
	for i := range img.Data {
		if twice.Data[i] != img.Data[i] {
			t.Fatal("double hflip is not identity")
		}
	}
	if once.At(0, 0, 0) != img.At(0, 7, 0) {
		t.Fatal("hflip did not mirror")
	}
}

func TestExpand(t *testing.T) {
	train, _, _ := MNISTLike(Config{PerClassTrain: 3, PerClassTest: 1, Classes: 2, Seed: 4})
	out, err := Expand(train, Augment{MaxShift: 1}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 3*len(train.Samples) {
		t.Fatalf("expanded size = %d, want %d", len(out.Samples), 3*len(train.Samples))
	}
	// Labels balanced: each class tripled.
	by := out.ByClass()
	for cls, idxs := range by {
		if len(idxs) != 9 {
			t.Fatalf("class %d has %d samples, want 9", cls, len(idxs))
		}
	}
	if _, err := Expand(train, Augment{}, -1, 7); err == nil {
		t.Fatal("negative expansion accepted")
	}
	// Input set unchanged.
	if len(train.Samples) != 6 {
		t.Fatal("Expand mutated its input")
	}
}

func TestComputeNormalization(t *testing.T) {
	set := &Set{Name: "n", Classes: 1}
	img := tensor.New(2, 2, 2)
	// Channel 0: all 0.5; channel 1: alternating 0 and 1.
	for i := 0; i < 4; i++ {
		img.Data[i*2] = 0.5
		img.Data[i*2+1] = float32(i % 2)
	}
	set.Samples = append(set.Samples, Sample{Image: img, Label: 0})
	st, err := ComputeNormalization(set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Mean[0]-0.5) > 1e-6 || st.Std[0] > 1e-6 {
		t.Fatalf("channel 0 stats = %v/%v", st.Mean[0], st.Std[0])
	}
	if math.Abs(st.Mean[1]-0.5) > 1e-6 || math.Abs(st.Std[1]-0.5) > 1e-6 {
		t.Fatalf("channel 1 stats = %v/%v", st.Mean[1], st.Std[1])
	}
	if _, err := ComputeNormalization(&Set{}); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestQuickAugmentPreservesShapeAndRange(t *testing.T) {
	f := func(seed int64, shiftRaw, flags uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Augment{
			MaxShift:   int(shiftRaw % 4),
			HFlip:      flags&1 != 0,
			Noise:      float64(flags&2) * 0.05,
			Brightness: float64(flags&4) * 0.1,
		}
		img := sampleImage(seed)
		out, err := a.Apply(img, rng)
		if err != nil {
			return false
		}
		if !out.SameShape(img) {
			return false
		}
		for _, v := range out.Data {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
