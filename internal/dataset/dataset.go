// Package dataset generates the synthetic stand-ins for MNIST and CIFAR-10
// used throughout the reproduction.
//
// The paper's experiments only require class-structured inputs: images of
// different categories must activate different neuron sets so the CNN's
// hardware footprint depends on the category. The real datasets cannot be
// downloaded in this offline environment, so we generate deterministic
// class-conditional images instead:
//
//   - MNIST-like: 28×28×1 grey images of stroke-rendered digit glyphs with
//     per-sample translation, thickness and noise jitter.
//   - CIFAR-like: 32×32×3 colour images with per-class procedural texture
//     (stripes, checkers, blobs, gradients, rings, ...) plus jitter.
//
// Both generators are seeded and fully reproducible.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Sample is one labelled image.
type Sample struct {
	Image *tensor.Tensor
	Label int
}

// Set is a labelled dataset split.
type Set struct {
	Name    string
	Samples []Sample
	Classes int
}

// Inputs returns the image tensors as a parallel slice.
func (s *Set) Inputs() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(s.Samples))
	for i := range s.Samples {
		out[i] = s.Samples[i].Image
	}
	return out
}

// Labels returns the labels as a parallel slice.
func (s *Set) Labels() []int {
	out := make([]int, len(s.Samples))
	for i := range s.Samples {
		out[i] = s.Samples[i].Label
	}
	return out
}

// ByClass groups sample indices by label.
func (s *Set) ByClass() map[int][]int {
	m := map[int][]int{}
	for i, sm := range s.Samples {
		m[sm.Label] = append(m[sm.Label], i)
	}
	return m
}

// Filter returns a new Set containing only the listed classes, preserving
// original labels. Classes counts the distinct classes actually present in
// the filtered set — not the unfiltered count, which would misreport the
// chance level (1/Classes) and class iteration of anything derived from
// the filtered split.
func (s *Set) Filter(classes ...int) *Set {
	keep := map[int]bool{}
	for _, c := range classes {
		keep[c] = true
	}
	out := &Set{Name: s.Name + "-filtered"}
	kept := map[int]bool{}
	for _, sm := range s.Samples {
		if keep[sm.Label] {
			out.Samples = append(out.Samples, sm)
			kept[sm.Label] = true
		}
	}
	out.Classes = len(kept)
	return out
}

// Config controls synthetic dataset generation.
type Config struct {
	PerClassTrain int
	PerClassTest  int
	Classes       int // ≤ 10; 0 means 10
	Seed          int64
	Noise         float64 // pixel noise std dev, default 0.05
}

func (c Config) withDefaults() Config {
	if c.Classes <= 0 || c.Classes > 10 {
		c.Classes = 10
	}
	if c.PerClassTrain <= 0 {
		c.PerClassTrain = 100
	}
	if c.PerClassTest <= 0 {
		c.PerClassTest = 20
	}
	if c.Noise <= 0 {
		c.Noise = 0.05
	}
	return c
}

// MNISTLike generates train and test splits of the synthetic digit dataset.
func MNISTLike(cfg Config) (train, test *Set, err error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(name string, perClass int) *Set {
		set := &Set{Name: name, Classes: cfg.Classes}
		for cls := 0; cls < cfg.Classes; cls++ {
			for i := 0; i < perClass; i++ {
				set.Samples = append(set.Samples, Sample{Image: digitImage(cls, rng, cfg.Noise), Label: cls})
			}
		}
		rng.Shuffle(len(set.Samples), func(i, j int) {
			set.Samples[i], set.Samples[j] = set.Samples[j], set.Samples[i]
		})
		return set
	}
	return gen("mnist-like-train", cfg.PerClassTrain), gen("mnist-like-test", cfg.PerClassTest), nil
}

// CIFARLike generates train and test splits of the synthetic colour-texture
// dataset.
func CIFARLike(cfg Config) (train, test *Set, err error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(name string, perClass int) *Set {
		set := &Set{Name: name, Classes: cfg.Classes}
		for cls := 0; cls < cfg.Classes; cls++ {
			for i := 0; i < perClass; i++ {
				set.Samples = append(set.Samples, Sample{Image: textureImage(cls, rng, cfg.Noise), Label: cls})
			}
		}
		rng.Shuffle(len(set.Samples), func(i, j int) {
			set.Samples[i], set.Samples[j] = set.Samples[j], set.Samples[i]
		})
		return set
	}
	return gen("cifar-like-train", cfg.PerClassTrain), gen("cifar-like-test", cfg.PerClassTest), nil
}

// digitStrokes maps each digit class to a polyline skeleton on a 20×20
// design grid (x, y pairs), loosely tracing seven-segment-style glyphs so
// classes are visually and statistically distinct.
var digitStrokes = [10][][]float64{
	0: {{4, 2, 16, 2, 16, 18, 4, 18, 4, 2}},
	1: {{10, 2, 10, 18}, {7, 5, 10, 2}},
	2: {{4, 2, 16, 2, 16, 10, 4, 10, 4, 18, 16, 18}},
	3: {{4, 2, 16, 2, 16, 10, 6, 10}, {16, 10, 16, 18, 4, 18}},
	4: {{4, 2, 4, 10, 16, 10}, {14, 2, 14, 18}},
	5: {{16, 2, 4, 2, 4, 10, 16, 10, 16, 18, 4, 18}},
	6: {{14, 2, 4, 2, 4, 18, 16, 18, 16, 10, 4, 10}},
	7: {{4, 2, 16, 2, 9, 18}},
	8: {{4, 2, 16, 2, 16, 18, 4, 18, 4, 2}, {4, 10, 16, 10}},
	9: {{16, 10, 4, 10, 4, 2, 16, 2, 16, 18, 6, 18}},
}

// digitImage renders one jittered 28×28 digit glyph.
func digitImage(cls int, rng *rand.Rand, noise float64) *tensor.Tensor {
	img := tensor.New(28, 28, 1)
	dx := rng.Float64()*4 - 2 // translation jitter
	dy := rng.Float64()*4 - 2
	thick := 1.0 + rng.Float64()*0.8
	scale := 0.9 + rng.Float64()*0.25
	for _, poly := range digitStrokes[cls%10] {
		for i := 0; i+3 < len(poly); i += 2 {
			x0, y0 := poly[i]*scale+4+dx, poly[i+1]*scale+4+dy
			x1, y1 := poly[i+2]*scale+4+dx, poly[i+3]*scale+4+dy
			drawLine(img, x0, y0, x1, y1, thick)
		}
	}
	addNoise(img, rng, noise)
	return img
}

// drawLine stamps an anti-aliased thick segment into a 28×28×1 image.
// Endpoints are finite by construction (stroke-table literals jittered by
// bounded rng draws); the guard pins that invariant at the boundary so
// the int(float) conversions below never see NaN/Inf.
func drawLine(img *tensor.Tensor, x0, y0, x1, y1, thick float64) {
	if math.IsNaN(x0) || math.IsNaN(y0) || math.IsNaN(x1) || math.IsNaN(y1) ||
		math.IsInf(x0, 0) || math.IsInf(y0, 0) || math.IsInf(x1, 0) || math.IsInf(y1, 0) {
		return
	}
	steps := int(math.Hypot(x1-x0, y1-y0)*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		cx, cy := x0+(x1-x0)*t, y0+(y1-y0)*t
		lo := int(math.Floor(-thick))
		hi := int(math.Ceil(thick))
		for oy := lo; oy <= hi; oy++ {
			for ox := lo; ox <= hi; ox++ {
				px, py := int(math.Round(cx))+ox, int(math.Round(cy))+oy
				if px < 0 || px >= 28 || py < 0 || py >= 28 {
					continue
				}
				d := math.Hypot(float64(ox), float64(oy))
				v := 1.0 - d/(thick+0.5)
				if v <= 0 {
					continue
				}
				idx := (py*28 + px)
				if float32(v) > img.Data[idx] {
					img.Data[idx] = float32(v)
				}
			}
		}
	}
}

// textureImage renders one jittered 32×32×3 procedural texture for a class.
func textureImage(cls int, rng *rand.Rand, noise float64) *tensor.Tensor {
	img := tensor.New(32, 32, 3)
	phase := rng.Float64() * 2 * math.Pi
	freq := 0.55 + rng.Float64()*0.2
	// Per-class base colour (loosely: plane, car, bird, cat, ... palette).
	baseR := 0.2 + 0.08*float64(cls%5)
	baseG := 0.25 + 0.07*float64((cls*3)%5)
	baseB := 0.3 + 0.06*float64((cls*7)%5)
	cx := 16 + rng.Float64()*6 - 3
	cy := 16 + rng.Float64()*6 - 3
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			fx, fy := float64(x), float64(y)
			var p float64
			switch cls % 10 {
			case 0: // horizontal stripes
				p = 0.5 + 0.5*math.Sin(fy*freq+phase)
			case 1: // vertical stripes
				p = 0.5 + 0.5*math.Sin(fx*freq+phase)
			case 2: // checkerboard
				p = 0.5 + 0.5*math.Sin(fx*freq+phase)*math.Sin(fy*freq+phase)
			case 3: // rings
				r := math.Hypot(fx-cx, fy-cy)
				p = 0.5 + 0.5*math.Sin(r*freq*1.4+phase)
			case 4: // diagonal stripes
				p = 0.5 + 0.5*math.Sin((fx+fy)*freq*0.8+phase)
			case 5: // radial gradient blob
				r := math.Hypot(fx-cx, fy-cy)
				p = math.Exp(-r * r / 80)
			case 6: // horizontal gradient
				p = fx / 31
			case 7: // vertical gradient
				p = fy / 31
			case 8: // corner blob + stripes mix
				r := math.Hypot(fx-6, fy-6)
				p = 0.6*math.Exp(-r*r/60) + 0.4*(0.5+0.5*math.Sin(fx*freq+phase))
			default: // 9: plaid
				p = 0.5 + 0.25*math.Sin(fx*freq+phase) + 0.25*math.Sin(fy*freq*1.3+phase)
			}
			idx := (y*32 + x) * 3
			img.Data[idx+0] = float32(clamp01(baseR + 0.6*p))
			img.Data[idx+1] = float32(clamp01(baseG + 0.55*p))
			img.Data[idx+2] = float32(clamp01(baseB + 0.5*p))
		}
	}
	addNoise(img, rng, noise)
	return img
}

func addNoise(img *tensor.Tensor, rng *rand.Rand, std float64) {
	for i := range img.Data {
		v := float64(img.Data[i]) + rng.NormFloat64()*std
		img.Data[i] = float32(clamp01(v))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Describe summarizes a split for logs.
func Describe(s *Set) string {
	by := s.ByClass()
	return fmt.Sprintf("%s: %d samples, %d classes (first class size %d)", s.Name, len(s.Samples), len(by), len(by[0]))
}
