package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestMNISTLikeShapesAndLabels(t *testing.T) {
	train, test, err := MNISTLike(Config{PerClassTrain: 5, PerClassTest: 3, Classes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Samples) != 20 || len(test.Samples) != 12 {
		t.Fatalf("split sizes = %d/%d, want 20/12", len(train.Samples), len(test.Samples))
	}
	for _, sm := range train.Samples {
		if sm.Image.Shape[0] != 28 || sm.Image.Shape[1] != 28 || sm.Image.Shape[2] != 1 {
			t.Fatalf("mnist-like shape = %v", sm.Image.Shape)
		}
		if sm.Label < 0 || sm.Label >= 4 {
			t.Fatalf("label %d out of range", sm.Label)
		}
	}
}

func TestCIFARLikeShapesAndLabels(t *testing.T) {
	train, _, err := CIFARLike(Config{PerClassTrain: 4, PerClassTest: 2, Classes: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Samples) != 40 {
		t.Fatalf("train size = %d, want 40", len(train.Samples))
	}
	for _, sm := range train.Samples {
		if sm.Image.Shape[0] != 32 || sm.Image.Shape[1] != 32 || sm.Image.Shape[2] != 3 {
			t.Fatalf("cifar-like shape = %v", sm.Image.Shape)
		}
	}
}

func TestPixelsInUnitRange(t *testing.T) {
	train, _, _ := MNISTLike(Config{PerClassTrain: 3, PerClassTest: 1, Seed: 3, Noise: 0.3})
	ctrain, _, _ := CIFARLike(Config{PerClassTrain: 3, PerClassTest: 1, Seed: 3, Noise: 0.3})
	for _, set := range []*Set{train, ctrain} {
		for _, sm := range set.Samples {
			for i, v := range sm.Image.Data {
				if v < 0 || v > 1 {
					t.Fatalf("%s pixel %d = %v outside [0,1]", set.Name, i, v)
				}
			}
		}
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, _, _ := MNISTLike(Config{PerClassTrain: 2, PerClassTest: 1, Seed: 42})
	b, _, _ := MNISTLike(Config{PerClassTrain: 2, PerClassTest: 1, Seed: 42})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Samples[i].Image.Data {
			if a.Samples[i].Image.Data[j] != b.Samples[i].Image.Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c, _, _ := MNISTLike(Config{PerClassTrain: 2, PerClassTest: 1, Seed: 43})
	same := true
	for j := range a.Samples[0].Image.Data {
		if a.Samples[0].Image.Data[j] != c.Samples[0].Image.Data[j] {
			same = false
			break
		}
	}
	if same && a.Samples[0].Label == c.Samples[0].Label {
		t.Fatal("different seeds produced identical first sample")
	}
}

func TestClassesAreStatisticallyDistinct(t *testing.T) {
	// Mean images of different digit classes must differ substantially;
	// this is the property the whole paper depends on.
	train, _, _ := MNISTLike(Config{PerClassTrain: 20, PerClassTest: 1, Classes: 4, Seed: 7})
	means := make([][]float64, 4)
	counts := make([]int, 4)
	for i := range means {
		means[i] = make([]float64, 28*28)
	}
	for _, sm := range train.Samples {
		for j, v := range sm.Image.Data {
			means[sm.Label][j] += float64(v)
		}
		counts[sm.Label]++
	}
	for c := 0; c < 4; c++ {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			var dist float64
			for j := range means[a] {
				d := means[a][j] - means[b][j]
				dist += d * d
			}
			if math.Sqrt(dist) < 1.0 {
				t.Errorf("mean images of classes %d and %d too similar (L2 %.3f)", a, b, math.Sqrt(dist))
			}
		}
	}
}

func TestWithinClassVariation(t *testing.T) {
	// Jitter must make samples within a class differ (otherwise there is no
	// within-class distribution for the t-test).
	train, _, _ := MNISTLike(Config{PerClassTrain: 2, PerClassTest: 1, Classes: 1, Seed: 9})
	a, b := train.Samples[0].Image, train.Samples[1].Image
	diff := 0.0
	for j := range a.Data {
		d := float64(a.Data[j] - b.Data[j])
		diff += d * d
	}
	if math.Sqrt(diff) < 0.1 {
		t.Fatalf("within-class samples nearly identical (L2 %.4f)", math.Sqrt(diff))
	}
}

func TestFilterAndAccessors(t *testing.T) {
	train, _, _ := MNISTLike(Config{PerClassTrain: 3, PerClassTest: 1, Classes: 5, Seed: 4})
	f := train.Filter(1, 3)
	if len(f.Samples) != 6 {
		t.Fatalf("filtered size = %d, want 6", len(f.Samples))
	}
	for _, sm := range f.Samples {
		if sm.Label != 1 && sm.Label != 3 {
			t.Fatalf("filter leaked label %d", sm.Label)
		}
	}
	// Classes must report the kept-class count, not the unfiltered one:
	// chance levels and class iteration derive from it.
	if f.Classes != 2 {
		t.Fatalf("filtered Classes = %d, want 2 (unfiltered set has %d)", f.Classes, train.Classes)
	}
	// Requested classes absent from the set do not inflate the count; an
	// empty filter reports zero classes.
	if g := train.Filter(1, 3, 97); g.Classes != 2 {
		t.Fatalf("Classes with absent request = %d, want 2", g.Classes)
	}
	if e := train.Filter(42); e.Classes != 0 || len(e.Samples) != 0 {
		t.Fatalf("empty filter: Classes=%d samples=%d, want 0/0", e.Classes, len(e.Samples))
	}
	if len(train.Inputs()) != len(train.Labels()) {
		t.Fatal("Inputs/Labels length mismatch")
	}
	by := train.ByClass()
	total := 0
	for _, idxs := range by {
		total += len(idxs)
	}
	if total != len(train.Samples) {
		t.Fatal("ByClass does not partition the set")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Classes != 10 || c.PerClassTrain != 100 || c.PerClassTest != 20 || c.Noise != 0.05 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	c = Config{Classes: 99}.withDefaults()
	if c.Classes != 10 {
		t.Fatalf("Classes=99 not clamped: %d", c.Classes)
	}
}

func TestDescribe(t *testing.T) {
	train, _, _ := MNISTLike(Config{PerClassTrain: 2, PerClassTest: 1, Classes: 2, Seed: 1})
	s := Describe(train)
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestQuickDigitImagesAlwaysValid(t *testing.T) {
	f := func(seed int64, cls uint8) bool {
		train, _, err := MNISTLike(Config{PerClassTrain: 1, PerClassTest: 1, Classes: 1 + int(cls%10), Seed: seed})
		if err != nil {
			return false
		}
		for _, sm := range train.Samples {
			nz := sm.Image.CountNonZero(1e-6)
			// A glyph must paint something but not everything.
			if nz == 0 || nz == sm.Image.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawLineRejectsNonFiniteEndpoints(t *testing.T) {
	// drawLine's int(float) conversions rely on finite endpoints; the
	// boundary guard must turn NaN/Inf inputs into a no-op rather than
	// letting platform-defined int(NaN) indices touch the image.
	cases := [][4]float64{
		{math.NaN(), 5, 20, 20},
		{5, math.NaN(), 20, 20},
		{5, 5, math.Inf(1), 20},
		{5, 5, 20, math.Inf(-1)},
	}
	for _, c := range cases {
		img := tensor.New(28, 28, 1)
		drawLine(img, c[0], c[1], c[2], c[3], 1.5)
		for i, v := range img.Data {
			if v != 0 {
				t.Fatalf("drawLine(%v) wrote pixel %d = %v; want untouched image", c, i, v)
			}
		}
	}
}

func TestDrawLineFiniteStillDraws(t *testing.T) {
	// The guard must not swallow legitimate strokes.
	img := tensor.New(28, 28, 1)
	drawLine(img, 4, 4, 24, 24, 1.5)
	sum := float32(0)
	for _, v := range img.Data {
		sum += v
	}
	if sum == 0 {
		t.Fatal("drawLine(finite endpoints) drew nothing")
	}
}
