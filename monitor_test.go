package repro

// Streaming-monitor acceptance tests: a monitored campaign run to
// exhaustion must reproduce the batch Evaluate report byte-for-byte on
// the existing golden campaign (at any worker and process count), and an
// early-stopped campaign's detection — event, pair, statistics and trace
// cost — must be a pure function of the configuration, pinned by
// testdata/golden_monitor.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pipeline"
)

var (
	monitorScenarioOnce sync.Once
	monitorScenarioVal  *Scenario
	monitorScenarioErr  error
)

// monitorScenario is the golden campaign's scenario (MNIST, seed 5),
// built once and shared across the monitor tests.
func monitorScenario(t *testing.T) *Scenario {
	t.Helper()
	monitorScenarioOnce.Do(func() {
		monitorScenarioVal, monitorScenarioErr = NewScenario(ScenarioConfig{
			Dataset: DatasetMNIST,
			Seed:    5,
		})
	})
	if monitorScenarioErr != nil {
		t.Fatal(monitorScenarioErr)
	}
	return monitorScenarioVal
}

// goldenMonitorConfig is the early-stopping campaign the monitor golden
// pins: the golden report campaign's classes, budget and seed with the
// default boundary.
func goldenMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Classes: []int{1, 2},
		Budget:  60,
		Seed:    17,
	}
}

// TestMonitorExhaustionMatchesBatchEvaluate: with early stopping off,
// the streamed campaign's final report must be byte-identical to the
// batch Evaluate of the same budget on the un-regenerated golden
// campaign — at one worker and at eight.
func TestMonitorExhaustionMatchesBatchEvaluate(t *testing.T) {
	s := monitorScenario(t)
	batch, err := s.Evaluate(EvalConfig{
		Classes:      []int{1, 2},
		RunsPerClass: 60,
		Workers:      2,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, batch)
	for _, workers := range []int{1, 8} {
		cfg := goldenMonitorConfig()
		cfg.Workers = workers
		cfg.NoStop = true
		rep, err := s.Monitor(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stopped || rep.Detection != nil {
			t.Fatalf("workers=%d: NoStop campaign stopped early", workers)
		}
		if rep.TracesSeen != 120 {
			t.Fatalf("workers=%d: consumed %d traces, want the full 120", workers, rep.TracesSeen)
		}
		if rep.Report == nil {
			t.Fatalf("workers=%d: exhausted campaign missing batch report", workers)
		}
		if got := mustJSON(t, rep.Report); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: streamed exhaustion report differs from batch Evaluate bytes", workers)
		}
	}
}

// TestMonitorExhaustionByteInvariantAcrossProcesses: the same campaign
// streamed from shardworker OS processes produces the identical report
// bytes.
func TestMonitorExhaustionByteInvariantAcrossProcesses(t *testing.T) {
	s := monitorScenario(t)
	cfg := goldenMonitorConfig()
	cfg.NoStop = true
	inproc, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, inproc.Report)

	cfg = goldenMonitorConfig()
	cfg.NoStop = true
	cfg.Processes = 2
	cfg.Fabric = fabricCfg(t)
	rep, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, rep.Report); !bytes.Equal(got, want) {
		t.Fatal("processes=2 exhaustion report differs from in-process bytes")
	}
}

// TestMonitorEarlyStopDeterministicAcrossParallelism: the detection — the
// leaking event, the distinguished pair, the p-value and above all the
// trace count at the stop — must be identical at every worker count and
// when streamed from worker processes.
func TestMonitorEarlyStopDeterministicAcrossParallelism(t *testing.T) {
	s := monitorScenario(t)
	run := func(cfg MonitorConfig) *MonitorReport {
		t.Helper()
		rep, err := s.Monitor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Stopped || rep.Detection == nil {
			t.Fatal("golden monitor campaign did not detect; the baseline deployment must leak within budget")
		}
		return rep
	}
	ref := run(goldenMonitorConfig())
	want := mustJSON(t, ref)
	for _, workers := range []int{2, 8} {
		cfg := goldenMonitorConfig()
		cfg.Workers = workers
		if got := mustJSON(t, run(cfg)); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d detection differs:\n%s\nvs workers=1\n%s", workers, got, want)
		}
	}
	cfg := goldenMonitorConfig()
	cfg.Processes = 2
	cfg.Fabric = fabricCfg(t)
	if got := mustJSON(t, run(cfg)); !bytes.Equal(got, want) {
		t.Fatalf("processes=2 detection differs:\n%s\nvs in-process\n%s", got, want)
	}
}

const goldenMonitorPath = "testdata/golden_monitor.json"

type goldenDetection struct {
	Event      string  `json:"event"`
	ClassA     int     `json:"class_a"`
	ClassB     int     `json:"class_b"`
	P          float64 `json:"p"`
	Stat       float64 `json:"stat"`
	PairTraces int     `json:"pair_traces"`
	Traces     int     `json:"traces"`
}

type goldenMonitor struct {
	Name       string           `json:"name"`
	Stopped    bool             `json:"stopped"`
	TracesSeen int              `json:"traces_seen"`
	Detection  *goldenDetection `json:"detection,omitempty"`
}

func toGoldenMonitor(rep *MonitorReport) goldenMonitor {
	g := goldenMonitor{Name: rep.Name, Stopped: rep.Stopped, TracesSeen: rep.TracesSeen}
	if d := rep.Detection; d != nil {
		g.Detection = &goldenDetection{
			Event:      d.EventName,
			ClassA:     d.ClassA,
			ClassB:     d.ClassB,
			P:          roundSig(d.P),
			Stat:       roundSig(d.Stat),
			PairTraces: d.PairTraces,
			Traces:     d.Traces,
		}
	}
	return g
}

// TestGoldenMonitor pins the early-stop outcome — most importantly the
// first-detection trace count — of the golden monitor campaign.
// Regenerate deliberately with:
//
//	go test -run TestGoldenMonitor -update .
func TestGoldenMonitor(t *testing.T) {
	s := monitorScenario(t)
	rep, err := s.Monitor(goldenMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := toGoldenMonitor(rep)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenMonitorPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMonitorPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenMonitorPath)
		return
	}

	data, err := os.ReadFile(goldenMonitorPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want goldenMonitor
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Stopped != want.Stopped || got.TracesSeen != want.TracesSeen {
		t.Fatalf("monitor outcome drifted:\ngot  %+v\nwant %+v", got, want)
	}
	if (got.Detection == nil) != (want.Detection == nil) {
		t.Fatalf("detection presence drifted:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Detection != nil {
		gd, wd := got.Detection, want.Detection
		if gd.Event != wd.Event || gd.ClassA != wd.ClassA || gd.ClassB != wd.ClassB ||
			gd.PairTraces != wd.PairTraces || gd.Traces != wd.Traces {
			t.Fatalf("detection drifted:\ngot  %+v\nwant %+v", *gd, *wd)
		}
		if !closeEnough(gd.P, wd.P) || !closeEnough(gd.Stat, wd.Stat) {
			t.Fatalf("detection statistics drifted:\ngot  %+v\nwant %+v", *gd, *wd)
		}
	}
}

// TestMonitorMannWhitneyExhaustion: the rank-sum monitor run to
// exhaustion scores its report with the batch Mann-Whitney — the
// sequential state's bit-identity guarantee surfaces end to end as a
// deterministic report.
func TestMonitorMannWhitneyExhaustion(t *testing.T) {
	s := monitorScenario(t)
	run := func(workers int) []byte {
		cfg := goldenMonitorConfig()
		cfg.Workers = workers
		cfg.NoStop = true
		cfg.MannWhitney = true
		rep, err := s.Monitor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Report == nil {
			t.Fatal("exhausted campaign missing report")
		}
		return mustJSON(t, rep.Report)
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("Mann-Whitney exhaustion report differs across worker counts")
	}
}

// TestMonitorTenantMode: the co-residency campaign completes, labels its
// report, and is deterministic — the quantum interleaving of victim and
// co-tenant is part of the reproducible simulation, not a scheduling
// accident.
func TestMonitorTenantMode(t *testing.T) {
	s := monitorScenario(t)
	cfg := MonitorConfig{
		Classes: []int{1, 2},
		Budget:  12,
		Seed:    17,
		Tenants: 2,
		NoStop:  true,
	}
	rep, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "mnist/baseline+cotenant" {
		t.Fatalf("tenant campaign name %q", rep.Name)
	}
	if rep.TracesSeen != 24 || rep.Report == nil {
		t.Fatalf("tenant campaign incomplete: %d traces, report %v", rep.TracesSeen, rep.Report != nil)
	}
	want := mustJSON(t, rep)
	cfg.Workers = 4
	rep2, err := s.Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, rep2); !bytes.Equal(got, want) {
		t.Fatal("tenant campaign differs across worker counts")
	}
	solo := cfg
	solo.Tenants = 0
	solo.Workers = 1
	soloRep, err := s.Monitor(solo)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mustJSON(t, soloRep.Report.Dists), mustJSON(t, rep.Report.Dists)) {
		t.Fatal("co-tenant left no trace in the victim's measured distributions")
	}
}

// TestMonitorCancelledTyped: a cancelled monitor campaign surfaces
// *pipeline.Cancelled wrapping the context error, so the CLI can
// distinguish interruption from an empty result.
func TestMonitorCancelledTyped(t *testing.T) {
	s := monitorScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.MonitorCtx(ctx, goldenMonitorConfig())
	var c *pipeline.Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("err = %v, want *pipeline.Cancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}
