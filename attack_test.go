package repro

// Attack-stage regression tests: the worker-invariance guarantee at the
// public API, the multi-session register-group path, and a golden attack
// report pinning the confusion matrices of a fixed campaign. Regenerate
// the golden file deliberately with:
//
//	go test -run TestAttackGoldenReport -update .

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

const goldenAttackPath = "testdata/golden_attack.json"

// attackScenario is the shared small scenario of the attack tests —
// building one means training a CNN, so it is built once.
var (
	attackScenarioOnce sync.Once
	attackScenarioVal  *Scenario
	attackScenarioErr  error
)

func attackScenario(t *testing.T) *Scenario {
	t.Helper()
	attackScenarioOnce.Do(func() {
		attackScenarioVal, attackScenarioErr = NewScenario(ScenarioConfig{
			Dataset:       DatasetMNIST,
			PerClassTrain: 20,
			PerClassTest:  10,
			Epochs:        1,
			Seed:          5,
		})
	})
	if attackScenarioErr != nil {
		t.Fatal(attackScenarioErr)
	}
	return attackScenarioVal
}

// goldenAttack is the serialized form of an attack result; matrices are
// integer counts, so they are compared exactly.
type goldenAttack struct {
	Name        string              `json:"name"`
	Events      []string            `json:"events"`
	Classes     []int               `json:"classes"`
	ProfileRuns int                 `json:"profile_runs"`
	AttackRuns  int                 `json:"attack_runs"`
	K           int                 `json:"k"`
	TemplateAcc float64             `json:"template_acc"`
	KNNAcc      float64             `json:"knn_acc"`
	Template    map[int]map[int]int `json:"template_matrix"`
	KNN         map[int]map[int]int `json:"knn_matrix"`
}

func toGoldenAttack(res *AttackResult) goldenAttack {
	g := goldenAttack{
		Name:        res.Name,
		Classes:     res.Classes,
		ProfileRuns: res.ProfileRuns,
		AttackRuns:  res.AttackRuns,
		K:           res.K,
		TemplateAcc: res.Template.Accuracy(),
		KNNAcc:      res.KNN.Accuracy(),
		Template:    res.Template.Matrix,
		KNN:         res.KNN.Matrix,
	}
	for _, e := range res.Events {
		g.Events = append(g.Events, e.String())
	}
	return g
}

func goldenAttackCampaign(t *testing.T, workers int) *AttackResult {
	t.Helper()
	res, err := attackScenario(t).Attack(context.Background(), AttackConfig{
		Classes:     []int{1, 2, 3},
		ProfileRuns: 40,
		AttackRuns:  20,
		Workers:     workers,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAttackGoldenReport(t *testing.T) {
	got := toGoldenAttack(goldenAttackCampaign(t, 2))

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenAttackPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenAttackPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden attack report rewritten: %s", goldenAttackPath)
		return
	}

	data, err := os.ReadFile(goldenAttackPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAttackGoldenReport -update .` to create it): %v", err)
	}
	var want goldenAttack
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("attack result drifted from golden file:\ngot:\n%s\nwant:\n%s", gotJSON, data)
	}
}

// TestAttackWorkerInvariance is the acceptance criterion at the public
// API: workers=1 and workers=8 must yield identical confusion matrices
// and accuracies for the same root seed.
func TestAttackWorkerInvariance(t *testing.T) {
	a := goldenAttackCampaign(t, 1)
	b := goldenAttackCampaign(t, 8)
	if !reflect.DeepEqual(toGoldenAttack(a), toGoldenAttack(b)) {
		t.Fatalf("workers=1 and workers=8 disagree:\n%+v\n%+v", toGoldenAttack(a), toGoldenAttack(b))
	}
	if !reflect.DeepEqual(a.Templates, b.Templates) {
		t.Fatal("fitted templates differ across worker counts")
	}
}

// TestAttackGroupedWideEventSet: an event set wider than the register file
// must be collected in register-sized groups whose per-run profiles join
// into one feature vector per observation.
func TestAttackGroupedWideEventSet(t *testing.T) {
	events := AllPaperEvents()
	run := func(workers int) *AttackResult {
		res, err := attackScenario(t).AttackGrouped(context.Background(), DefenseBaseline, AttackConfig{
			Classes:     []int{1, 2},
			Events:      events,
			ProfileRuns: 10,
			AttackRuns:  5,
			Workers:     workers,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(2)
	if len(res.Events) != len(events) {
		t.Fatalf("result covers %d events, want %d", len(res.Events), len(events))
	}
	// Every template must carry a mean for every event of every group.
	for _, tpl := range res.Templates {
		for _, e := range events {
			if _, ok := tpl.Mean[e]; !ok {
				t.Fatalf("template for class %d is missing event %s", tpl.Class, e)
			}
		}
	}
	if res.Template.Total != 10 || res.KNN.Total != 10 { // 2 classes × 5 runs
		t.Fatalf("matrix totals = %d/%d, want 10", res.Template.Total, res.KNN.Total)
	}
	// The grouped path must also be worker-invariant.
	if !reflect.DeepEqual(toGoldenAttack(res), toGoldenAttack(run(1))) {
		t.Fatal("grouped attack differs across worker counts")
	}
}

// TestAttackDefenseReducesRecovery: hardening must not *increase*
// exploitability — the noise-injection defense should push recovery
// accuracy toward chance relative to baseline.
func TestAttackDefenseReducesRecovery(t *testing.T) {
	s := attackScenario(t)
	run := func(level DefenseLevel) *AttackResult {
		res, err := s.AttackGrouped(context.Background(), level, AttackConfig{
			Classes:     []int{1, 2},
			ProfileRuns: 30,
			AttackRuns:  15,
			Workers:     2,
			Seed:        23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(DefenseBaseline)
	hard := run(DefenseConstantTime)
	if base.Template.Accuracy() < hard.Template.Accuracy()-0.2 {
		t.Fatalf("constant-time defense increased template recovery: baseline %.2f vs hardened %.2f",
			base.Template.Accuracy(), hard.Template.Accuracy())
	}
}
